/root/repo/target/release/examples/unreliable_platform-f1aae8729326ac7a.d: examples/unreliable_platform.rs

/root/repo/target/release/examples/unreliable_platform-f1aae8729326ac7a: examples/unreliable_platform.rs

examples/unreliable_platform.rs:
