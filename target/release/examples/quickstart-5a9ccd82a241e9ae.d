/root/repo/target/release/examples/quickstart-5a9ccd82a241e9ae.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-5a9ccd82a241e9ae: examples/quickstart.rs

examples/quickstart.rs:
