/root/repo/target/release/examples/promotion_campaign-061447b23d3e6845.d: examples/promotion_campaign.rs

/root/repo/target/release/examples/promotion_campaign-061447b23d3e6845: examples/promotion_campaign.rs

examples/promotion_campaign.rs:
