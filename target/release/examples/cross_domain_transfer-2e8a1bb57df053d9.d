/root/repo/target/release/examples/cross_domain_transfer-2e8a1bb57df053d9.d: examples/cross_domain_transfer.rs

/root/repo/target/release/examples/cross_domain_transfer-2e8a1bb57df053d9: examples/cross_domain_transfer.rs

examples/cross_domain_transfer.rs:
