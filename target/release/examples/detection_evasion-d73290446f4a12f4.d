/root/repo/target/release/examples/detection_evasion-d73290446f4a12f4.d: examples/detection_evasion.rs

/root/repo/target/release/examples/detection_evasion-d73290446f4a12f4: examples/detection_evasion.rs

examples/detection_evasion.rs:
