/root/repo/target/release/deps/ca_tensor-2e0f633f77683896.d: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/stats.rs

/root/repo/target/release/deps/libca_tensor-2e0f633f77683896.rlib: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/stats.rs

/root/repo/target/release/deps/libca_tensor-2e0f633f77683896.rmeta: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/stats.rs

crates/tensor/src/lib.rs:
crates/tensor/src/init.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/stats.rs:
