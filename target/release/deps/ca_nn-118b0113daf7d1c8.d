/root/repo/target/release/deps/ca_nn-118b0113daf7d1c8.d: crates/nn/src/lib.rs crates/nn/src/activation.rs crates/nn/src/categorical.rs crates/nn/src/encoder.rs crates/nn/src/gru.rs crates/nn/src/linear.rs crates/nn/src/mlp.rs crates/nn/src/optim.rs crates/nn/src/rnn.rs

/root/repo/target/release/deps/libca_nn-118b0113daf7d1c8.rlib: crates/nn/src/lib.rs crates/nn/src/activation.rs crates/nn/src/categorical.rs crates/nn/src/encoder.rs crates/nn/src/gru.rs crates/nn/src/linear.rs crates/nn/src/mlp.rs crates/nn/src/optim.rs crates/nn/src/rnn.rs

/root/repo/target/release/deps/libca_nn-118b0113daf7d1c8.rmeta: crates/nn/src/lib.rs crates/nn/src/activation.rs crates/nn/src/categorical.rs crates/nn/src/encoder.rs crates/nn/src/gru.rs crates/nn/src/linear.rs crates/nn/src/mlp.rs crates/nn/src/optim.rs crates/nn/src/rnn.rs

crates/nn/src/lib.rs:
crates/nn/src/activation.rs:
crates/nn/src/categorical.rs:
crates/nn/src/encoder.rs:
crates/nn/src/gru.rs:
crates/nn/src/linear.rs:
crates/nn/src/mlp.rs:
crates/nn/src/optim.rs:
crates/nn/src/rnn.rs:
