/root/repo/target/release/deps/proptest-37a514d36b9f73d8.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-37a514d36b9f73d8.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-37a514d36b9f73d8.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
