/root/repo/target/release/deps/copyattack_core-108707fc8e01bc4d.d: crates/copyattack-core/src/lib.rs crates/copyattack-core/src/attack.rs crates/copyattack-core/src/baselines.rs crates/copyattack-core/src/campaign.rs crates/copyattack-core/src/config.rs crates/copyattack-core/src/crafting.rs crates/copyattack-core/src/env.rs crates/copyattack-core/src/reinforce.rs crates/copyattack-core/src/retry.rs crates/copyattack-core/src/selection.rs crates/copyattack-core/src/source.rs

/root/repo/target/release/deps/libcopyattack_core-108707fc8e01bc4d.rlib: crates/copyattack-core/src/lib.rs crates/copyattack-core/src/attack.rs crates/copyattack-core/src/baselines.rs crates/copyattack-core/src/campaign.rs crates/copyattack-core/src/config.rs crates/copyattack-core/src/crafting.rs crates/copyattack-core/src/env.rs crates/copyattack-core/src/reinforce.rs crates/copyattack-core/src/retry.rs crates/copyattack-core/src/selection.rs crates/copyattack-core/src/source.rs

/root/repo/target/release/deps/libcopyattack_core-108707fc8e01bc4d.rmeta: crates/copyattack-core/src/lib.rs crates/copyattack-core/src/attack.rs crates/copyattack-core/src/baselines.rs crates/copyattack-core/src/campaign.rs crates/copyattack-core/src/config.rs crates/copyattack-core/src/crafting.rs crates/copyattack-core/src/env.rs crates/copyattack-core/src/reinforce.rs crates/copyattack-core/src/retry.rs crates/copyattack-core/src/selection.rs crates/copyattack-core/src/source.rs

crates/copyattack-core/src/lib.rs:
crates/copyattack-core/src/attack.rs:
crates/copyattack-core/src/baselines.rs:
crates/copyattack-core/src/campaign.rs:
crates/copyattack-core/src/config.rs:
crates/copyattack-core/src/crafting.rs:
crates/copyattack-core/src/env.rs:
crates/copyattack-core/src/reinforce.rs:
crates/copyattack-core/src/retry.rs:
crates/copyattack-core/src/selection.rs:
crates/copyattack-core/src/source.rs:
