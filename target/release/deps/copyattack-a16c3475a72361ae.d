/root/repo/target/release/deps/copyattack-a16c3475a72361ae.d: src/lib.rs src/pipeline.rs

/root/repo/target/release/deps/libcopyattack-a16c3475a72361ae.rlib: src/lib.rs src/pipeline.rs

/root/repo/target/release/deps/libcopyattack-a16c3475a72361ae.rmeta: src/lib.rs src/pipeline.rs

src/lib.rs:
src/pipeline.rs:
