/root/repo/target/release/deps/ca_cluster-9e9d3dd8b43eb58e.d: crates/cluster/src/lib.rs crates/cluster/src/balanced.rs crates/cluster/src/kmeans.rs crates/cluster/src/mask.rs crates/cluster/src/tree.rs

/root/repo/target/release/deps/libca_cluster-9e9d3dd8b43eb58e.rlib: crates/cluster/src/lib.rs crates/cluster/src/balanced.rs crates/cluster/src/kmeans.rs crates/cluster/src/mask.rs crates/cluster/src/tree.rs

/root/repo/target/release/deps/libca_cluster-9e9d3dd8b43eb58e.rmeta: crates/cluster/src/lib.rs crates/cluster/src/balanced.rs crates/cluster/src/kmeans.rs crates/cluster/src/mask.rs crates/cluster/src/tree.rs

crates/cluster/src/lib.rs:
crates/cluster/src/balanced.rs:
crates/cluster/src/kmeans.rs:
crates/cluster/src/mask.rs:
crates/cluster/src/tree.rs:
