/root/repo/target/release/deps/ca_gnn-6016234aef39cbb6.d: crates/gnn/src/lib.rs crates/gnn/src/config.rs crates/gnn/src/model.rs crates/gnn/src/recommender.rs crates/gnn/src/train.rs

/root/repo/target/release/deps/libca_gnn-6016234aef39cbb6.rlib: crates/gnn/src/lib.rs crates/gnn/src/config.rs crates/gnn/src/model.rs crates/gnn/src/recommender.rs crates/gnn/src/train.rs

/root/repo/target/release/deps/libca_gnn-6016234aef39cbb6.rmeta: crates/gnn/src/lib.rs crates/gnn/src/config.rs crates/gnn/src/model.rs crates/gnn/src/recommender.rs crates/gnn/src/train.rs

crates/gnn/src/lib.rs:
crates/gnn/src/config.rs:
crates/gnn/src/model.rs:
crates/gnn/src/recommender.rs:
crates/gnn/src/train.rs:
