/root/repo/target/release/deps/ca_datagen-ce0adc9cd4ae58b5.d: crates/datagen/src/lib.rs crates/datagen/src/config.rs crates/datagen/src/generator.rs crates/datagen/src/latent.rs

/root/repo/target/release/deps/libca_datagen-ce0adc9cd4ae58b5.rlib: crates/datagen/src/lib.rs crates/datagen/src/config.rs crates/datagen/src/generator.rs crates/datagen/src/latent.rs

/root/repo/target/release/deps/libca_datagen-ce0adc9cd4ae58b5.rmeta: crates/datagen/src/lib.rs crates/datagen/src/config.rs crates/datagen/src/generator.rs crates/datagen/src/latent.rs

crates/datagen/src/lib.rs:
crates/datagen/src/config.rs:
crates/datagen/src/generator.rs:
crates/datagen/src/latent.rs:
