/root/repo/target/release/deps/rand-e3562f87554ddda7.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-e3562f87554ddda7.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-e3562f87554ddda7.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
