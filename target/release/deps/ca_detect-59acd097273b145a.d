/root/repo/target/release/deps/ca_detect-59acd097273b145a.d: crates/detect/src/lib.rs crates/detect/src/detector.rs crates/detect/src/features.rs crates/detect/src/screen.rs crates/detect/src/synthetic.rs

/root/repo/target/release/deps/libca_detect-59acd097273b145a.rlib: crates/detect/src/lib.rs crates/detect/src/detector.rs crates/detect/src/features.rs crates/detect/src/screen.rs crates/detect/src/synthetic.rs

/root/repo/target/release/deps/libca_detect-59acd097273b145a.rmeta: crates/detect/src/lib.rs crates/detect/src/detector.rs crates/detect/src/features.rs crates/detect/src/screen.rs crates/detect/src/synthetic.rs

crates/detect/src/lib.rs:
crates/detect/src/detector.rs:
crates/detect/src/features.rs:
crates/detect/src/screen.rs:
crates/detect/src/synthetic.rs:
