/root/repo/target/release/deps/ca_mf-ff795040c96a6f89.d: crates/mf/src/lib.rs crates/mf/src/bpr.rs crates/mf/src/model.rs

/root/repo/target/release/deps/libca_mf-ff795040c96a6f89.rlib: crates/mf/src/lib.rs crates/mf/src/bpr.rs crates/mf/src/model.rs

/root/repo/target/release/deps/libca_mf-ff795040c96a6f89.rmeta: crates/mf/src/lib.rs crates/mf/src/bpr.rs crates/mf/src/model.rs

crates/mf/src/lib.rs:
crates/mf/src/bpr.rs:
crates/mf/src/model.rs:
