/root/repo/target/release/deps/copyattack_bench-9ad14d61226f1158.d: crates/bench/src/lib.rs crates/bench/src/budget_sweep.rs

/root/repo/target/release/deps/libcopyattack_bench-9ad14d61226f1158.rlib: crates/bench/src/lib.rs crates/bench/src/budget_sweep.rs

/root/repo/target/release/deps/libcopyattack_bench-9ad14d61226f1158.rmeta: crates/bench/src/lib.rs crates/bench/src/budget_sweep.rs

crates/bench/src/lib.rs:
crates/bench/src/budget_sweep.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
