/root/repo/target/release/deps/ca_ncf-2d8da3610fd223c1.d: crates/ncf/src/lib.rs crates/ncf/src/model.rs crates/ncf/src/recommender.rs crates/ncf/src/train.rs

/root/repo/target/release/deps/libca_ncf-2d8da3610fd223c1.rlib: crates/ncf/src/lib.rs crates/ncf/src/model.rs crates/ncf/src/recommender.rs crates/ncf/src/train.rs

/root/repo/target/release/deps/libca_ncf-2d8da3610fd223c1.rmeta: crates/ncf/src/lib.rs crates/ncf/src/model.rs crates/ncf/src/recommender.rs crates/ncf/src/train.rs

crates/ncf/src/lib.rs:
crates/ncf/src/model.rs:
crates/ncf/src/recommender.rs:
crates/ncf/src/train.rs:
