/root/repo/target/release/deps/table1-8a7aebb3e90db291.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-8a7aebb3e90db291: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
