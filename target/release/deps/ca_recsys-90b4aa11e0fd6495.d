/root/repo/target/release/deps/ca_recsys-90b4aa11e0fd6495.d: crates/recsys/src/lib.rs crates/recsys/src/blackbox.rs crates/recsys/src/dataset.rs crates/recsys/src/eval.rs crates/recsys/src/faults.rs crates/recsys/src/ids.rs crates/recsys/src/knn.rs crates/recsys/src/metrics.rs crates/recsys/src/popularity.rs crates/recsys/src/split.rs

/root/repo/target/release/deps/libca_recsys-90b4aa11e0fd6495.rlib: crates/recsys/src/lib.rs crates/recsys/src/blackbox.rs crates/recsys/src/dataset.rs crates/recsys/src/eval.rs crates/recsys/src/faults.rs crates/recsys/src/ids.rs crates/recsys/src/knn.rs crates/recsys/src/metrics.rs crates/recsys/src/popularity.rs crates/recsys/src/split.rs

/root/repo/target/release/deps/libca_recsys-90b4aa11e0fd6495.rmeta: crates/recsys/src/lib.rs crates/recsys/src/blackbox.rs crates/recsys/src/dataset.rs crates/recsys/src/eval.rs crates/recsys/src/faults.rs crates/recsys/src/ids.rs crates/recsys/src/knn.rs crates/recsys/src/metrics.rs crates/recsys/src/popularity.rs crates/recsys/src/split.rs

crates/recsys/src/lib.rs:
crates/recsys/src/blackbox.rs:
crates/recsys/src/dataset.rs:
crates/recsys/src/eval.rs:
crates/recsys/src/faults.rs:
crates/recsys/src/ids.rs:
crates/recsys/src/knn.rs:
crates/recsys/src/metrics.rs:
crates/recsys/src/popularity.rs:
crates/recsys/src/split.rs:
