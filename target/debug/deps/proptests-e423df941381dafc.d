/root/repo/target/debug/deps/proptests-e423df941381dafc.d: crates/nn/tests/proptests.rs

/root/repo/target/debug/deps/proptests-e423df941381dafc: crates/nn/tests/proptests.rs

crates/nn/tests/proptests.rs:
