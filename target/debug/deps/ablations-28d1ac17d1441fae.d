/root/repo/target/debug/deps/ablations-28d1ac17d1441fae.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-28d1ac17d1441fae: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
