/root/repo/target/debug/deps/proptests-8cf995a5c9408336.d: crates/cluster/tests/proptests.rs

/root/repo/target/debug/deps/proptests-8cf995a5c9408336: crates/cluster/tests/proptests.rs

crates/cluster/tests/proptests.rs:
