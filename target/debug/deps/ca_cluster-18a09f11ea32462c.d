/root/repo/target/debug/deps/ca_cluster-18a09f11ea32462c.d: crates/cluster/src/lib.rs crates/cluster/src/balanced.rs crates/cluster/src/kmeans.rs crates/cluster/src/mask.rs crates/cluster/src/tree.rs

/root/repo/target/debug/deps/ca_cluster-18a09f11ea32462c: crates/cluster/src/lib.rs crates/cluster/src/balanced.rs crates/cluster/src/kmeans.rs crates/cluster/src/mask.rs crates/cluster/src/tree.rs

crates/cluster/src/lib.rs:
crates/cluster/src/balanced.rs:
crates/cluster/src/kmeans.rs:
crates/cluster/src/mask.rs:
crates/cluster/src/tree.rs:
