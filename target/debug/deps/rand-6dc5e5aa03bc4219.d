/root/repo/target/debug/deps/rand-6dc5e5aa03bc4219.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-6dc5e5aa03bc4219.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
