/root/repo/target/debug/deps/ncf_target-34177f42b8521400.d: tests/ncf_target.rs Cargo.toml

/root/repo/target/debug/deps/libncf_target-34177f42b8521400.rmeta: tests/ncf_target.rs Cargo.toml

tests/ncf_target.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
