/root/repo/target/debug/deps/proptest-1d5ffdbe7f02b3a5.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-1d5ffdbe7f02b3a5.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-1d5ffdbe7f02b3a5.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
