/root/repo/target/debug/deps/attack_surface-d4ef334d8c680b7f.d: tests/attack_surface.rs

/root/repo/target/debug/deps/attack_surface-d4ef334d8c680b7f: tests/attack_surface.rs

tests/attack_surface.rs:
