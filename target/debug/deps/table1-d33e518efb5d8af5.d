/root/repo/target/debug/deps/table1-d33e518efb5d8af5.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-d33e518efb5d8af5: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
