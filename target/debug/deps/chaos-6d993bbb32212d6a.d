/root/repo/target/debug/deps/chaos-6d993bbb32212d6a.d: tests/chaos.rs

/root/repo/target/debug/deps/chaos-6d993bbb32212d6a: tests/chaos.rs

tests/chaos.rs:
