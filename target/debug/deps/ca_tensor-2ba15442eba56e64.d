/root/repo/target/debug/deps/ca_tensor-2ba15442eba56e64.d: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libca_tensor-2ba15442eba56e64.rmeta: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/stats.rs Cargo.toml

crates/tensor/src/lib.rs:
crates/tensor/src/init.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
