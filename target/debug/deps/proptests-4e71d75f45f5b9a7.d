/root/repo/target/debug/deps/proptests-4e71d75f45f5b9a7.d: crates/mf/tests/proptests.rs

/root/repo/target/debug/deps/proptests-4e71d75f45f5b9a7: crates/mf/tests/proptests.rs

crates/mf/tests/proptests.rs:
