/root/repo/target/debug/deps/ca_nn-d937ae160d1c26d0.d: crates/nn/src/lib.rs crates/nn/src/activation.rs crates/nn/src/categorical.rs crates/nn/src/encoder.rs crates/nn/src/gru.rs crates/nn/src/linear.rs crates/nn/src/mlp.rs crates/nn/src/optim.rs crates/nn/src/rnn.rs

/root/repo/target/debug/deps/ca_nn-d937ae160d1c26d0: crates/nn/src/lib.rs crates/nn/src/activation.rs crates/nn/src/categorical.rs crates/nn/src/encoder.rs crates/nn/src/gru.rs crates/nn/src/linear.rs crates/nn/src/mlp.rs crates/nn/src/optim.rs crates/nn/src/rnn.rs

crates/nn/src/lib.rs:
crates/nn/src/activation.rs:
crates/nn/src/categorical.rs:
crates/nn/src/encoder.rs:
crates/nn/src/gru.rs:
crates/nn/src/linear.rs:
crates/nn/src/mlp.rs:
crates/nn/src/optim.rs:
crates/nn/src/rnn.rs:
