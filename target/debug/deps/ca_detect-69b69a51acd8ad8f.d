/root/repo/target/debug/deps/ca_detect-69b69a51acd8ad8f.d: crates/detect/src/lib.rs crates/detect/src/detector.rs crates/detect/src/features.rs crates/detect/src/screen.rs crates/detect/src/synthetic.rs Cargo.toml

/root/repo/target/debug/deps/libca_detect-69b69a51acd8ad8f.rmeta: crates/detect/src/lib.rs crates/detect/src/detector.rs crates/detect/src/features.rs crates/detect/src/screen.rs crates/detect/src/synthetic.rs Cargo.toml

crates/detect/src/lib.rs:
crates/detect/src/detector.rs:
crates/detect/src/features.rs:
crates/detect/src/screen.rs:
crates/detect/src/synthetic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
