/root/repo/target/debug/deps/proptests-f6327d654f60efe4.d: crates/recsys/tests/proptests.rs

/root/repo/target/debug/deps/proptests-f6327d654f60efe4: crates/recsys/tests/proptests.rs

crates/recsys/tests/proptests.rs:
