/root/repo/target/debug/deps/ca_mf-71af469526cedf22.d: crates/mf/src/lib.rs crates/mf/src/bpr.rs crates/mf/src/model.rs

/root/repo/target/debug/deps/libca_mf-71af469526cedf22.rlib: crates/mf/src/lib.rs crates/mf/src/bpr.rs crates/mf/src/model.rs

/root/repo/target/debug/deps/libca_mf-71af469526cedf22.rmeta: crates/mf/src/lib.rs crates/mf/src/bpr.rs crates/mf/src/model.rs

crates/mf/src/lib.rs:
crates/mf/src/bpr.rs:
crates/mf/src/model.rs:
