/root/repo/target/debug/deps/ca_detect-7067db70dd353813.d: crates/detect/src/lib.rs crates/detect/src/detector.rs crates/detect/src/features.rs crates/detect/src/screen.rs crates/detect/src/synthetic.rs

/root/repo/target/debug/deps/libca_detect-7067db70dd353813.rlib: crates/detect/src/lib.rs crates/detect/src/detector.rs crates/detect/src/features.rs crates/detect/src/screen.rs crates/detect/src/synthetic.rs

/root/repo/target/debug/deps/libca_detect-7067db70dd353813.rmeta: crates/detect/src/lib.rs crates/detect/src/detector.rs crates/detect/src/features.rs crates/detect/src/screen.rs crates/detect/src/synthetic.rs

crates/detect/src/lib.rs:
crates/detect/src/detector.rs:
crates/detect/src/features.rs:
crates/detect/src/screen.rs:
crates/detect/src/synthetic.rs:
