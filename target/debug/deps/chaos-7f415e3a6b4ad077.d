/root/repo/target/debug/deps/chaos-7f415e3a6b4ad077.d: tests/chaos.rs Cargo.toml

/root/repo/target/debug/deps/libchaos-7f415e3a6b4ad077.rmeta: tests/chaos.rs Cargo.toml

tests/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
