/root/repo/target/debug/deps/ca_ncf-a6c0b63897eb2447.d: crates/ncf/src/lib.rs crates/ncf/src/model.rs crates/ncf/src/recommender.rs crates/ncf/src/train.rs

/root/repo/target/debug/deps/ca_ncf-a6c0b63897eb2447: crates/ncf/src/lib.rs crates/ncf/src/model.rs crates/ncf/src/recommender.rs crates/ncf/src/train.rs

crates/ncf/src/lib.rs:
crates/ncf/src/model.rs:
crates/ncf/src/recommender.rs:
crates/ncf/src/train.rs:
