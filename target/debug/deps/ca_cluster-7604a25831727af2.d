/root/repo/target/debug/deps/ca_cluster-7604a25831727af2.d: crates/cluster/src/lib.rs crates/cluster/src/balanced.rs crates/cluster/src/kmeans.rs crates/cluster/src/mask.rs crates/cluster/src/tree.rs

/root/repo/target/debug/deps/libca_cluster-7604a25831727af2.rlib: crates/cluster/src/lib.rs crates/cluster/src/balanced.rs crates/cluster/src/kmeans.rs crates/cluster/src/mask.rs crates/cluster/src/tree.rs

/root/repo/target/debug/deps/libca_cluster-7604a25831727af2.rmeta: crates/cluster/src/lib.rs crates/cluster/src/balanced.rs crates/cluster/src/kmeans.rs crates/cluster/src/mask.rs crates/cluster/src/tree.rs

crates/cluster/src/lib.rs:
crates/cluster/src/balanced.rs:
crates/cluster/src/kmeans.rs:
crates/cluster/src/mask.rs:
crates/cluster/src/tree.rs:
