/root/repo/target/debug/deps/ca_datagen-5b62b5e33a19b443.d: crates/datagen/src/lib.rs crates/datagen/src/config.rs crates/datagen/src/generator.rs crates/datagen/src/latent.rs Cargo.toml

/root/repo/target/debug/deps/libca_datagen-5b62b5e33a19b443.rmeta: crates/datagen/src/lib.rs crates/datagen/src/config.rs crates/datagen/src/generator.rs crates/datagen/src/latent.rs Cargo.toml

crates/datagen/src/lib.rs:
crates/datagen/src/config.rs:
crates/datagen/src/generator.rs:
crates/datagen/src/latent.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
