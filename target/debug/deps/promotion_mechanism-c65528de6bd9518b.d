/root/repo/target/debug/deps/promotion_mechanism-c65528de6bd9518b.d: crates/gnn/tests/promotion_mechanism.rs

/root/repo/target/debug/deps/promotion_mechanism-c65528de6bd9518b: crates/gnn/tests/promotion_mechanism.rs

crates/gnn/tests/promotion_mechanism.rs:
