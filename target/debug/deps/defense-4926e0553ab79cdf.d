/root/repo/target/debug/deps/defense-4926e0553ab79cdf.d: tests/defense.rs

/root/repo/target/debug/deps/defense-4926e0553ab79cdf: tests/defense.rs

tests/defense.rs:
