/root/repo/target/debug/deps/copyattack_core-20e195a9f568e737.d: crates/copyattack-core/src/lib.rs crates/copyattack-core/src/attack.rs crates/copyattack-core/src/baselines.rs crates/copyattack-core/src/campaign.rs crates/copyattack-core/src/config.rs crates/copyattack-core/src/crafting.rs crates/copyattack-core/src/env.rs crates/copyattack-core/src/reinforce.rs crates/copyattack-core/src/retry.rs crates/copyattack-core/src/selection.rs crates/copyattack-core/src/source.rs Cargo.toml

/root/repo/target/debug/deps/libcopyattack_core-20e195a9f568e737.rmeta: crates/copyattack-core/src/lib.rs crates/copyattack-core/src/attack.rs crates/copyattack-core/src/baselines.rs crates/copyattack-core/src/campaign.rs crates/copyattack-core/src/config.rs crates/copyattack-core/src/crafting.rs crates/copyattack-core/src/env.rs crates/copyattack-core/src/reinforce.rs crates/copyattack-core/src/retry.rs crates/copyattack-core/src/selection.rs crates/copyattack-core/src/source.rs Cargo.toml

crates/copyattack-core/src/lib.rs:
crates/copyattack-core/src/attack.rs:
crates/copyattack-core/src/baselines.rs:
crates/copyattack-core/src/campaign.rs:
crates/copyattack-core/src/config.rs:
crates/copyattack-core/src/crafting.rs:
crates/copyattack-core/src/env.rs:
crates/copyattack-core/src/reinforce.rs:
crates/copyattack-core/src/retry.rs:
crates/copyattack-core/src/selection.rs:
crates/copyattack-core/src/source.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
