/root/repo/target/debug/deps/copyattack_bench-ad15a789cf0a0132.d: crates/bench/src/lib.rs crates/bench/src/budget_sweep.rs

/root/repo/target/debug/deps/copyattack_bench-ad15a789cf0a0132: crates/bench/src/lib.rs crates/bench/src/budget_sweep.rs

crates/bench/src/lib.rs:
crates/bench/src/budget_sweep.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
