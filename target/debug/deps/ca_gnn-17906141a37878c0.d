/root/repo/target/debug/deps/ca_gnn-17906141a37878c0.d: crates/gnn/src/lib.rs crates/gnn/src/config.rs crates/gnn/src/model.rs crates/gnn/src/recommender.rs crates/gnn/src/train.rs Cargo.toml

/root/repo/target/debug/deps/libca_gnn-17906141a37878c0.rmeta: crates/gnn/src/lib.rs crates/gnn/src/config.rs crates/gnn/src/model.rs crates/gnn/src/recommender.rs crates/gnn/src/train.rs Cargo.toml

crates/gnn/src/lib.rs:
crates/gnn/src/config.rs:
crates/gnn/src/model.rs:
crates/gnn/src/recommender.rs:
crates/gnn/src/train.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
