/root/repo/target/debug/deps/attack_surface-2d28014016c3c8ba.d: tests/attack_surface.rs Cargo.toml

/root/repo/target/debug/deps/libattack_surface-2d28014016c3c8ba.rmeta: tests/attack_surface.rs Cargo.toml

tests/attack_surface.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
