/root/repo/target/debug/deps/copyattack_core-f548ff80e82d1acc.d: crates/copyattack-core/src/lib.rs crates/copyattack-core/src/attack.rs crates/copyattack-core/src/baselines.rs crates/copyattack-core/src/campaign.rs crates/copyattack-core/src/config.rs crates/copyattack-core/src/crafting.rs crates/copyattack-core/src/env.rs crates/copyattack-core/src/reinforce.rs crates/copyattack-core/src/retry.rs crates/copyattack-core/src/selection.rs crates/copyattack-core/src/source.rs

/root/repo/target/debug/deps/copyattack_core-f548ff80e82d1acc: crates/copyattack-core/src/lib.rs crates/copyattack-core/src/attack.rs crates/copyattack-core/src/baselines.rs crates/copyattack-core/src/campaign.rs crates/copyattack-core/src/config.rs crates/copyattack-core/src/crafting.rs crates/copyattack-core/src/env.rs crates/copyattack-core/src/reinforce.rs crates/copyattack-core/src/retry.rs crates/copyattack-core/src/selection.rs crates/copyattack-core/src/source.rs

crates/copyattack-core/src/lib.rs:
crates/copyattack-core/src/attack.rs:
crates/copyattack-core/src/baselines.rs:
crates/copyattack-core/src/campaign.rs:
crates/copyattack-core/src/config.rs:
crates/copyattack-core/src/crafting.rs:
crates/copyattack-core/src/env.rs:
crates/copyattack-core/src/reinforce.rs:
crates/copyattack-core/src/retry.rs:
crates/copyattack-core/src/selection.rs:
crates/copyattack-core/src/source.rs:
