/root/repo/target/debug/deps/detect_evasion-9a20cdb04afe8ad4.d: crates/bench/src/bin/detect_evasion.rs

/root/repo/target/debug/deps/detect_evasion-9a20cdb04afe8ad4: crates/bench/src/bin/detect_evasion.rs

crates/bench/src/bin/detect_evasion.rs:
