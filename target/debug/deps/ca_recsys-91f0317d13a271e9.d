/root/repo/target/debug/deps/ca_recsys-91f0317d13a271e9.d: crates/recsys/src/lib.rs crates/recsys/src/blackbox.rs crates/recsys/src/dataset.rs crates/recsys/src/eval.rs crates/recsys/src/faults.rs crates/recsys/src/ids.rs crates/recsys/src/knn.rs crates/recsys/src/metrics.rs crates/recsys/src/popularity.rs crates/recsys/src/split.rs Cargo.toml

/root/repo/target/debug/deps/libca_recsys-91f0317d13a271e9.rmeta: crates/recsys/src/lib.rs crates/recsys/src/blackbox.rs crates/recsys/src/dataset.rs crates/recsys/src/eval.rs crates/recsys/src/faults.rs crates/recsys/src/ids.rs crates/recsys/src/knn.rs crates/recsys/src/metrics.rs crates/recsys/src/popularity.rs crates/recsys/src/split.rs Cargo.toml

crates/recsys/src/lib.rs:
crates/recsys/src/blackbox.rs:
crates/recsys/src/dataset.rs:
crates/recsys/src/eval.rs:
crates/recsys/src/faults.rs:
crates/recsys/src/ids.rs:
crates/recsys/src/knn.rs:
crates/recsys/src/metrics.rs:
crates/recsys/src/popularity.rs:
crates/recsys/src/split.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
