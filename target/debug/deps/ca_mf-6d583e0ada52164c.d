/root/repo/target/debug/deps/ca_mf-6d583e0ada52164c.d: crates/mf/src/lib.rs crates/mf/src/bpr.rs crates/mf/src/model.rs Cargo.toml

/root/repo/target/debug/deps/libca_mf-6d583e0ada52164c.rmeta: crates/mf/src/lib.rs crates/mf/src/bpr.rs crates/mf/src/model.rs Cargo.toml

crates/mf/src/lib.rs:
crates/mf/src/bpr.rs:
crates/mf/src/model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
