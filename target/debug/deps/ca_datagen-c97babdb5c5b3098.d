/root/repo/target/debug/deps/ca_datagen-c97babdb5c5b3098.d: crates/datagen/src/lib.rs crates/datagen/src/config.rs crates/datagen/src/generator.rs crates/datagen/src/latent.rs

/root/repo/target/debug/deps/ca_datagen-c97babdb5c5b3098: crates/datagen/src/lib.rs crates/datagen/src/config.rs crates/datagen/src/generator.rs crates/datagen/src/latent.rs

crates/datagen/src/lib.rs:
crates/datagen/src/config.rs:
crates/datagen/src/generator.rs:
crates/datagen/src/latent.rs:
