/root/repo/target/debug/deps/ca_recsys-a2a0b632f633e059.d: crates/recsys/src/lib.rs crates/recsys/src/blackbox.rs crates/recsys/src/dataset.rs crates/recsys/src/eval.rs crates/recsys/src/faults.rs crates/recsys/src/ids.rs crates/recsys/src/knn.rs crates/recsys/src/metrics.rs crates/recsys/src/popularity.rs crates/recsys/src/split.rs

/root/repo/target/debug/deps/libca_recsys-a2a0b632f633e059.rlib: crates/recsys/src/lib.rs crates/recsys/src/blackbox.rs crates/recsys/src/dataset.rs crates/recsys/src/eval.rs crates/recsys/src/faults.rs crates/recsys/src/ids.rs crates/recsys/src/knn.rs crates/recsys/src/metrics.rs crates/recsys/src/popularity.rs crates/recsys/src/split.rs

/root/repo/target/debug/deps/libca_recsys-a2a0b632f633e059.rmeta: crates/recsys/src/lib.rs crates/recsys/src/blackbox.rs crates/recsys/src/dataset.rs crates/recsys/src/eval.rs crates/recsys/src/faults.rs crates/recsys/src/ids.rs crates/recsys/src/knn.rs crates/recsys/src/metrics.rs crates/recsys/src/popularity.rs crates/recsys/src/split.rs

crates/recsys/src/lib.rs:
crates/recsys/src/blackbox.rs:
crates/recsys/src/dataset.rs:
crates/recsys/src/eval.rs:
crates/recsys/src/faults.rs:
crates/recsys/src/ids.rs:
crates/recsys/src/knn.rs:
crates/recsys/src/metrics.rs:
crates/recsys/src/popularity.rs:
crates/recsys/src/split.rs:
