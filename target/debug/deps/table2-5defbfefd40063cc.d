/root/repo/target/debug/deps/table2-5defbfefd40063cc.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-5defbfefd40063cc: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
