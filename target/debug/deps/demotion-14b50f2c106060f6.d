/root/repo/target/debug/deps/demotion-14b50f2c106060f6.d: tests/demotion.rs Cargo.toml

/root/repo/target/debug/deps/libdemotion-14b50f2c106060f6.rmeta: tests/demotion.rs Cargo.toml

tests/demotion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
