/root/repo/target/debug/deps/fig3_depth-cdd00e1aa7bd471f.d: crates/bench/src/bin/fig3_depth.rs

/root/repo/target/debug/deps/fig3_depth-cdd00e1aa7bd471f: crates/bench/src/bin/fig3_depth.rs

crates/bench/src/bin/fig3_depth.rs:
