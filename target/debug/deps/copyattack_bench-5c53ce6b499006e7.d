/root/repo/target/debug/deps/copyattack_bench-5c53ce6b499006e7.d: crates/bench/src/lib.rs crates/bench/src/budget_sweep.rs

/root/repo/target/debug/deps/libcopyattack_bench-5c53ce6b499006e7.rlib: crates/bench/src/lib.rs crates/bench/src/budget_sweep.rs

/root/repo/target/debug/deps/libcopyattack_bench-5c53ce6b499006e7.rmeta: crates/bench/src/lib.rs crates/bench/src/budget_sweep.rs

crates/bench/src/lib.rs:
crates/bench/src/budget_sweep.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
