/root/repo/target/debug/deps/proptests-b171ca6e88eeb26b.d: crates/detect/tests/proptests.rs

/root/repo/target/debug/deps/proptests-b171ca6e88eeb26b: crates/detect/tests/proptests.rs

crates/detect/tests/proptests.rs:
