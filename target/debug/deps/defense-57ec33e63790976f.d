/root/repo/target/debug/deps/defense-57ec33e63790976f.d: tests/defense.rs Cargo.toml

/root/repo/target/debug/deps/libdefense-57ec33e63790976f.rmeta: tests/defense.rs Cargo.toml

tests/defense.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
