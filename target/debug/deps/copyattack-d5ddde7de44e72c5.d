/root/repo/target/debug/deps/copyattack-d5ddde7de44e72c5.d: src/lib.rs src/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libcopyattack-d5ddde7de44e72c5.rmeta: src/lib.rs src/pipeline.rs Cargo.toml

src/lib.rs:
src/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
