/root/repo/target/debug/deps/demotion-0a50bc16b9009ade.d: tests/demotion.rs

/root/repo/target/debug/deps/demotion-0a50bc16b9009ade: tests/demotion.rs

tests/demotion.rs:
