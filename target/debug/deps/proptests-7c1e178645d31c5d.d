/root/repo/target/debug/deps/proptests-7c1e178645d31c5d.d: crates/gnn/tests/proptests.rs

/root/repo/target/debug/deps/proptests-7c1e178645d31c5d: crates/gnn/tests/proptests.rs

crates/gnn/tests/proptests.rs:
