/root/repo/target/debug/deps/copyattack-65d7132b2ea08c57.d: src/lib.rs src/pipeline.rs

/root/repo/target/debug/deps/copyattack-65d7132b2ea08c57: src/lib.rs src/pipeline.rs

src/lib.rs:
src/pipeline.rs:
