/root/repo/target/debug/deps/fig6_budget-35395b13b13beff9.d: crates/bench/src/bin/fig6_budget.rs

/root/repo/target/debug/deps/fig6_budget-35395b13b13beff9: crates/bench/src/bin/fig6_budget.rs

crates/bench/src/bin/fig6_budget.rs:
