/root/repo/target/debug/deps/copyattack-928085c5040057dd.d: src/lib.rs src/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libcopyattack-928085c5040057dd.rmeta: src/lib.rs src/pipeline.rs Cargo.toml

src/lib.rs:
src/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
