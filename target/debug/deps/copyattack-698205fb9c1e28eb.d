/root/repo/target/debug/deps/copyattack-698205fb9c1e28eb.d: src/lib.rs src/pipeline.rs

/root/repo/target/debug/deps/libcopyattack-698205fb9c1e28eb.rlib: src/lib.rs src/pipeline.rs

/root/repo/target/debug/deps/libcopyattack-698205fb9c1e28eb.rmeta: src/lib.rs src/pipeline.rs

src/lib.rs:
src/pipeline.rs:
