/root/repo/target/debug/deps/proptests-7abf631c611dc951.d: crates/copyattack-core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-7abf631c611dc951: crates/copyattack-core/tests/proptests.rs

crates/copyattack-core/tests/proptests.rs:
