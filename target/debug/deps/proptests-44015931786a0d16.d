/root/repo/target/debug/deps/proptests-44015931786a0d16.d: crates/datagen/tests/proptests.rs

/root/repo/target/debug/deps/proptests-44015931786a0d16: crates/datagen/tests/proptests.rs

crates/datagen/tests/proptests.rs:
