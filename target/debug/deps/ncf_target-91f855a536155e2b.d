/root/repo/target/debug/deps/ncf_target-91f855a536155e2b.d: tests/ncf_target.rs

/root/repo/target/debug/deps/ncf_target-91f855a536155e2b: tests/ncf_target.rs

tests/ncf_target.rs:
