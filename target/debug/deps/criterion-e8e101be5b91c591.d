/root/repo/target/debug/deps/criterion-e8e101be5b91c591.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-e8e101be5b91c591.rlib: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-e8e101be5b91c591.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
