/root/repo/target/debug/deps/end_to_end-9ffb07e928e0a22b.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-9ffb07e928e0a22b: tests/end_to_end.rs

tests/end_to_end.rs:
