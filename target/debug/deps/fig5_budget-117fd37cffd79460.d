/root/repo/target/debug/deps/fig5_budget-117fd37cffd79460.d: crates/bench/src/bin/fig5_budget.rs

/root/repo/target/debug/deps/fig5_budget-117fd37cffd79460: crates/bench/src/bin/fig5_budget.rs

crates/bench/src/bin/fig5_budget.rs:
