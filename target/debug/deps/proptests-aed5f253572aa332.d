/root/repo/target/debug/deps/proptests-aed5f253572aa332.d: crates/tensor/tests/proptests.rs

/root/repo/target/debug/deps/proptests-aed5f253572aa332: crates/tensor/tests/proptests.rs

crates/tensor/tests/proptests.rs:
