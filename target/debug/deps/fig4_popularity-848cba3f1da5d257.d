/root/repo/target/debug/deps/fig4_popularity-848cba3f1da5d257.d: crates/bench/src/bin/fig4_popularity.rs

/root/repo/target/debug/deps/fig4_popularity-848cba3f1da5d257: crates/bench/src/bin/fig4_popularity.rs

crates/bench/src/bin/fig4_popularity.rs:
