/root/repo/target/debug/deps/ca_ncf-efc174502dcd3e3e.d: crates/ncf/src/lib.rs crates/ncf/src/model.rs crates/ncf/src/recommender.rs crates/ncf/src/train.rs Cargo.toml

/root/repo/target/debug/deps/libca_ncf-efc174502dcd3e3e.rmeta: crates/ncf/src/lib.rs crates/ncf/src/model.rs crates/ncf/src/recommender.rs crates/ncf/src/train.rs Cargo.toml

crates/ncf/src/lib.rs:
crates/ncf/src/model.rs:
crates/ncf/src/recommender.rs:
crates/ncf/src/train.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
