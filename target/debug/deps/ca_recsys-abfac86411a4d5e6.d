/root/repo/target/debug/deps/ca_recsys-abfac86411a4d5e6.d: crates/recsys/src/lib.rs crates/recsys/src/blackbox.rs crates/recsys/src/dataset.rs crates/recsys/src/eval.rs crates/recsys/src/faults.rs crates/recsys/src/ids.rs crates/recsys/src/knn.rs crates/recsys/src/metrics.rs crates/recsys/src/popularity.rs crates/recsys/src/split.rs

/root/repo/target/debug/deps/ca_recsys-abfac86411a4d5e6: crates/recsys/src/lib.rs crates/recsys/src/blackbox.rs crates/recsys/src/dataset.rs crates/recsys/src/eval.rs crates/recsys/src/faults.rs crates/recsys/src/ids.rs crates/recsys/src/knn.rs crates/recsys/src/metrics.rs crates/recsys/src/popularity.rs crates/recsys/src/split.rs

crates/recsys/src/lib.rs:
crates/recsys/src/blackbox.rs:
crates/recsys/src/dataset.rs:
crates/recsys/src/eval.rs:
crates/recsys/src/faults.rs:
crates/recsys/src/ids.rs:
crates/recsys/src/knn.rs:
crates/recsys/src/metrics.rs:
crates/recsys/src/popularity.rs:
crates/recsys/src/split.rs:
