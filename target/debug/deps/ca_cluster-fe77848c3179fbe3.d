/root/repo/target/debug/deps/ca_cluster-fe77848c3179fbe3.d: crates/cluster/src/lib.rs crates/cluster/src/balanced.rs crates/cluster/src/kmeans.rs crates/cluster/src/mask.rs crates/cluster/src/tree.rs Cargo.toml

/root/repo/target/debug/deps/libca_cluster-fe77848c3179fbe3.rmeta: crates/cluster/src/lib.rs crates/cluster/src/balanced.rs crates/cluster/src/kmeans.rs crates/cluster/src/mask.rs crates/cluster/src/tree.rs Cargo.toml

crates/cluster/src/lib.rs:
crates/cluster/src/balanced.rs:
crates/cluster/src/kmeans.rs:
crates/cluster/src/mask.rs:
crates/cluster/src/tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
