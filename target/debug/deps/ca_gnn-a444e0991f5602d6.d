/root/repo/target/debug/deps/ca_gnn-a444e0991f5602d6.d: crates/gnn/src/lib.rs crates/gnn/src/config.rs crates/gnn/src/model.rs crates/gnn/src/recommender.rs crates/gnn/src/train.rs

/root/repo/target/debug/deps/libca_gnn-a444e0991f5602d6.rlib: crates/gnn/src/lib.rs crates/gnn/src/config.rs crates/gnn/src/model.rs crates/gnn/src/recommender.rs crates/gnn/src/train.rs

/root/repo/target/debug/deps/libca_gnn-a444e0991f5602d6.rmeta: crates/gnn/src/lib.rs crates/gnn/src/config.rs crates/gnn/src/model.rs crates/gnn/src/recommender.rs crates/gnn/src/train.rs

crates/gnn/src/lib.rs:
crates/gnn/src/config.rs:
crates/gnn/src/model.rs:
crates/gnn/src/recommender.rs:
crates/gnn/src/train.rs:
