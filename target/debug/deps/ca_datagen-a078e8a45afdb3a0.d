/root/repo/target/debug/deps/ca_datagen-a078e8a45afdb3a0.d: crates/datagen/src/lib.rs crates/datagen/src/config.rs crates/datagen/src/generator.rs crates/datagen/src/latent.rs

/root/repo/target/debug/deps/libca_datagen-a078e8a45afdb3a0.rlib: crates/datagen/src/lib.rs crates/datagen/src/config.rs crates/datagen/src/generator.rs crates/datagen/src/latent.rs

/root/repo/target/debug/deps/libca_datagen-a078e8a45afdb3a0.rmeta: crates/datagen/src/lib.rs crates/datagen/src/config.rs crates/datagen/src/generator.rs crates/datagen/src/latent.rs

crates/datagen/src/lib.rs:
crates/datagen/src/config.rs:
crates/datagen/src/generator.rs:
crates/datagen/src/latent.rs:
