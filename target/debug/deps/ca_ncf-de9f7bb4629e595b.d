/root/repo/target/debug/deps/ca_ncf-de9f7bb4629e595b.d: crates/ncf/src/lib.rs crates/ncf/src/model.rs crates/ncf/src/recommender.rs crates/ncf/src/train.rs

/root/repo/target/debug/deps/libca_ncf-de9f7bb4629e595b.rlib: crates/ncf/src/lib.rs crates/ncf/src/model.rs crates/ncf/src/recommender.rs crates/ncf/src/train.rs

/root/repo/target/debug/deps/libca_ncf-de9f7bb4629e595b.rmeta: crates/ncf/src/lib.rs crates/ncf/src/model.rs crates/ncf/src/recommender.rs crates/ncf/src/train.rs

crates/ncf/src/lib.rs:
crates/ncf/src/model.rs:
crates/ncf/src/recommender.rs:
crates/ncf/src/train.rs:
