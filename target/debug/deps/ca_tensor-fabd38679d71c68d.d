/root/repo/target/debug/deps/ca_tensor-fabd38679d71c68d.d: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/stats.rs

/root/repo/target/debug/deps/libca_tensor-fabd38679d71c68d.rlib: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/stats.rs

/root/repo/target/debug/deps/libca_tensor-fabd38679d71c68d.rmeta: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/stats.rs

crates/tensor/src/lib.rs:
crates/tensor/src/init.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/stats.rs:
