/root/repo/target/debug/deps/ca_nn-c37e613f0342a3a8.d: crates/nn/src/lib.rs crates/nn/src/activation.rs crates/nn/src/categorical.rs crates/nn/src/encoder.rs crates/nn/src/gru.rs crates/nn/src/linear.rs crates/nn/src/mlp.rs crates/nn/src/optim.rs crates/nn/src/rnn.rs Cargo.toml

/root/repo/target/debug/deps/libca_nn-c37e613f0342a3a8.rmeta: crates/nn/src/lib.rs crates/nn/src/activation.rs crates/nn/src/categorical.rs crates/nn/src/encoder.rs crates/nn/src/gru.rs crates/nn/src/linear.rs crates/nn/src/mlp.rs crates/nn/src/optim.rs crates/nn/src/rnn.rs Cargo.toml

crates/nn/src/lib.rs:
crates/nn/src/activation.rs:
crates/nn/src/categorical.rs:
crates/nn/src/encoder.rs:
crates/nn/src/gru.rs:
crates/nn/src/linear.rs:
crates/nn/src/mlp.rs:
crates/nn/src/optim.rs:
crates/nn/src/rnn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
