/root/repo/target/debug/deps/ca_gnn-a3d5f59789942fee.d: crates/gnn/src/lib.rs crates/gnn/src/config.rs crates/gnn/src/model.rs crates/gnn/src/recommender.rs crates/gnn/src/train.rs

/root/repo/target/debug/deps/ca_gnn-a3d5f59789942fee: crates/gnn/src/lib.rs crates/gnn/src/config.rs crates/gnn/src/model.rs crates/gnn/src/recommender.rs crates/gnn/src/train.rs

crates/gnn/src/lib.rs:
crates/gnn/src/config.rs:
crates/gnn/src/model.rs:
crates/gnn/src/recommender.rs:
crates/gnn/src/train.rs:
