/root/repo/target/debug/deps/ca_detect-e19bfb214d6f9d97.d: crates/detect/src/lib.rs crates/detect/src/detector.rs crates/detect/src/features.rs crates/detect/src/screen.rs crates/detect/src/synthetic.rs

/root/repo/target/debug/deps/ca_detect-e19bfb214d6f9d97: crates/detect/src/lib.rs crates/detect/src/detector.rs crates/detect/src/features.rs crates/detect/src/screen.rs crates/detect/src/synthetic.rs

crates/detect/src/lib.rs:
crates/detect/src/detector.rs:
crates/detect/src/features.rs:
crates/detect/src/screen.rs:
crates/detect/src/synthetic.rs:
