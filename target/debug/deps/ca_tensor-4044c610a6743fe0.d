/root/repo/target/debug/deps/ca_tensor-4044c610a6743fe0.d: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/stats.rs

/root/repo/target/debug/deps/ca_tensor-4044c610a6743fe0: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/stats.rs

crates/tensor/src/lib.rs:
crates/tensor/src/init.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/stats.rs:
