/root/repo/target/debug/deps/ca_mf-bd9912d93c460c57.d: crates/mf/src/lib.rs crates/mf/src/bpr.rs crates/mf/src/model.rs

/root/repo/target/debug/deps/ca_mf-bd9912d93c460c57: crates/mf/src/lib.rs crates/mf/src/bpr.rs crates/mf/src/model.rs

crates/mf/src/lib.rs:
crates/mf/src/bpr.rs:
crates/mf/src/model.rs:
