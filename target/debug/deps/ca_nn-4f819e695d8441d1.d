/root/repo/target/debug/deps/ca_nn-4f819e695d8441d1.d: crates/nn/src/lib.rs crates/nn/src/activation.rs crates/nn/src/categorical.rs crates/nn/src/encoder.rs crates/nn/src/gru.rs crates/nn/src/linear.rs crates/nn/src/mlp.rs crates/nn/src/optim.rs crates/nn/src/rnn.rs

/root/repo/target/debug/deps/libca_nn-4f819e695d8441d1.rlib: crates/nn/src/lib.rs crates/nn/src/activation.rs crates/nn/src/categorical.rs crates/nn/src/encoder.rs crates/nn/src/gru.rs crates/nn/src/linear.rs crates/nn/src/mlp.rs crates/nn/src/optim.rs crates/nn/src/rnn.rs

/root/repo/target/debug/deps/libca_nn-4f819e695d8441d1.rmeta: crates/nn/src/lib.rs crates/nn/src/activation.rs crates/nn/src/categorical.rs crates/nn/src/encoder.rs crates/nn/src/gru.rs crates/nn/src/linear.rs crates/nn/src/mlp.rs crates/nn/src/optim.rs crates/nn/src/rnn.rs

crates/nn/src/lib.rs:
crates/nn/src/activation.rs:
crates/nn/src/categorical.rs:
crates/nn/src/encoder.rs:
crates/nn/src/gru.rs:
crates/nn/src/linear.rs:
crates/nn/src/mlp.rs:
crates/nn/src/optim.rs:
crates/nn/src/rnn.rs:
