/root/repo/target/debug/examples/unreliable_platform-e93a81ea2e90a082.d: examples/unreliable_platform.rs

/root/repo/target/debug/examples/unreliable_platform-e93a81ea2e90a082: examples/unreliable_platform.rs

examples/unreliable_platform.rs:
