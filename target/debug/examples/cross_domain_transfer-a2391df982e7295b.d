/root/repo/target/debug/examples/cross_domain_transfer-a2391df982e7295b.d: examples/cross_domain_transfer.rs

/root/repo/target/debug/examples/cross_domain_transfer-a2391df982e7295b: examples/cross_domain_transfer.rs

examples/cross_domain_transfer.rs:
