/root/repo/target/debug/examples/detection_evasion-20573e80a5a9de96.d: examples/detection_evasion.rs Cargo.toml

/root/repo/target/debug/examples/libdetection_evasion-20573e80a5a9de96.rmeta: examples/detection_evasion.rs Cargo.toml

examples/detection_evasion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
