/root/repo/target/debug/examples/promotion_campaign-cf4ef8d38256aaee.d: examples/promotion_campaign.rs

/root/repo/target/debug/examples/promotion_campaign-cf4ef8d38256aaee: examples/promotion_campaign.rs

examples/promotion_campaign.rs:
