/root/repo/target/debug/examples/promotion_campaign-bda59ed12462db1c.d: examples/promotion_campaign.rs Cargo.toml

/root/repo/target/debug/examples/libpromotion_campaign-bda59ed12462db1c.rmeta: examples/promotion_campaign.rs Cargo.toml

examples/promotion_campaign.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
