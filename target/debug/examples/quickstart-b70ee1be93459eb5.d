/root/repo/target/debug/examples/quickstart-b70ee1be93459eb5.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-b70ee1be93459eb5: examples/quickstart.rs

examples/quickstart.rs:
