/root/repo/target/debug/examples/cross_domain_transfer-9c8c37df74c46b69.d: examples/cross_domain_transfer.rs Cargo.toml

/root/repo/target/debug/examples/libcross_domain_transfer-9c8c37df74c46b69.rmeta: examples/cross_domain_transfer.rs Cargo.toml

examples/cross_domain_transfer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
