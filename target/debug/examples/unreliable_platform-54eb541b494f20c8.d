/root/repo/target/debug/examples/unreliable_platform-54eb541b494f20c8.d: examples/unreliable_platform.rs Cargo.toml

/root/repo/target/debug/examples/libunreliable_platform-54eb541b494f20c8.rmeta: examples/unreliable_platform.rs Cargo.toml

examples/unreliable_platform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
