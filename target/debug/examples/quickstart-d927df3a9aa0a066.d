/root/repo/target/debug/examples/quickstart-d927df3a9aa0a066.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-d927df3a9aa0a066.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
