/root/repo/target/debug/examples/detection_evasion-71ab23814865261b.d: examples/detection_evasion.rs

/root/repo/target/debug/examples/detection_evasion-71ab23814865261b: examples/detection_evasion.rs

examples/detection_evasion.rs:
