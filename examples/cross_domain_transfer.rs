//! Transferability: do profiles selected against one black box also
//! promote on a different recommender?
//!
//! CopyAttack only sees Top-k feedback, so the profiles it learns to copy
//! are not tied to the target model's internals. This example trains the
//! attack against the PinSage-like GNN, then replays the *same* copied
//! profiles against a completely different model family — an ItemKNN
//! co-occurrence recommender deployed on the same data — and measures the
//! promotion on both.
//!
//! Run with: `cargo run --release --example cross_domain_transfer`

use copyattack::core::{CopyAttackAgent, CopyAttackVariant};
use copyattack::par::split_seed;
use copyattack::pipeline::{Pipeline, PipelineConfig};
use copyattack::recsys::eval::RankingEval;
use copyattack::recsys::knn::ItemKnnRecommender;
use copyattack::recsys::BlackBoxRecommender;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("== cross-model transferability of copied profiles ==");
    let cfg = PipelineConfig::tiny(21);
    let pipe = Pipeline::build(&cfg);
    let src = pipe.source_domain();
    let target = pipe.target_items[0];
    let target_src = pipe.world.source_item(target).expect("overlap");

    // Train CopyAttack against the GNN black box.
    let mut agent = CopyAttackAgent::new(
        cfg.attack.config.clone(),
        CopyAttackVariant::full(),
        &src,
        target_src,
    );
    agent.train(&src, || pipe.make_env(target));
    let mut env = pipe.make_env(target);
    let outcome = agent.execute(&src, &mut env);
    let polluted_gnn = env.into_recommender();

    // Reconstruct the injected profiles (the newest accounts).
    let n_total = polluted_gnn.data().n_users();
    let injected: Vec<Vec<_>> = (n_total - outcome.injections..n_total)
        .map(|u| polluted_gnn.data().profile(copyattack::recsys::UserId(u as u32)).to_vec())
        .collect();

    // GNN promotion.
    let eval_seed = split_seed(cfg.seed, 3);
    let hr_gnn_before = pipe.evaluate_promotion(&pipe.recommender, target, eval_seed).hr(20);
    let hr_gnn_after = pipe.evaluate_promotion(&polluted_gnn, target, eval_seed).hr(20);

    // Replay against ItemKNN deployed on the same clean data.
    let mut knn = ItemKnnRecommender::deploy(pipe.split.train.clone());
    let ev = RankingEval::standard(&pipe.split.train);
    let mut rng = StdRng::seed_from_u64(split_seed(cfg.seed, 1));
    let hr_knn_before = ev.evaluate_promotion(&knn, &pipe.eval_users, target, &mut rng).hr(20);
    for p in &injected {
        knn.inject_user(p);
    }
    let mut rng = StdRng::seed_from_u64(split_seed(cfg.seed, 2));
    let hr_knn_after = ev.evaluate_promotion(&knn, &pipe.eval_users, target, &mut rng).hr(20);

    println!("{} copied profiles, trained against the GNN only", injected.len());
    println!("GNN target model:     HR@20 {hr_gnn_before:.4} -> {hr_gnn_after:.4}");
    println!("ItemKNN (never seen): HR@20 {hr_knn_before:.4} -> {hr_knn_after:.4}");
    if hr_knn_after > hr_knn_before {
        println!("=> the copied profiles transfer across model families.");
    } else {
        println!("=> no transfer on this tiny world; try a larger preset.");
    }
}
