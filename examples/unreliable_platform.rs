//! Attacking a platform that fights back with flakiness.
//!
//! The paper's threat model assumes the attacker interacts with a
//! *deployed* recommender — and deployed platforms rate-limit, time out,
//! go down for maintenance, and suspend suspicious accounts. This example
//! runs a full promotion campaign against such a platform:
//!
//! 1. train under a ~20% fault rate, absorbing per-call failures with
//!    retry/backoff, partial rewards, and account re-establishment;
//! 2. hit a total outage mid-campaign, receive a resumable checkpoint;
//! 3. resume from the checkpoint once the platform heals and finish;
//! 4. execute the learned policy and report what the fault layer saw.
//!
//! Everything runs on a seeded logical clock — rerunning this binary
//! reproduces the exact same faults, retries, and rewards.
//!
//! Run with: `cargo run --release --example unreliable_platform`

use copyattack::core::{Campaign, CampaignRun, CopyAttackVariant, ResilienceConfig};
use copyattack::pipeline::{Pipeline, PipelineConfig};
use copyattack::recsys::FaultConfig;

fn main() {
    println!("== campaign against an unreliable platform ==");
    let cfg = PipelineConfig::tiny(21);
    let pipe = Pipeline::build(&cfg);
    let src = pipe.source_domain();
    let target = pipe.target_items[0];
    let target_src = pipe.world.source_item(target).expect("overlap");
    let resilience = ResilienceConfig::default();
    let episodes = cfg.attack.config.episodes;

    let mut campaign =
        Campaign::new(cfg.attack.config.clone(), CopyAttackVariant::full(), &src, vec![target_src]);

    // Phase 1: a flaky-but-alive platform, except the platform goes
    // completely dark partway through the campaign.
    let outage_at = episodes / 2;
    let mut episode_no = 0usize;
    let run = campaign.train_resilient(&src, |_t| {
        let faults = if episode_no == outage_at {
            // Total outage: every call returns ServiceUnavailable.
            FaultConfig { unavailable_prob: 1.0, ..FaultConfig::default() }
        } else {
            FaultConfig::chaos(1000 + episode_no as u64)
        };
        episode_no += 1;
        pipe.make_faulty_env(target, faults, resilience)
    });

    let checkpoint = match run {
        CampaignRun::Completed { .. } => {
            unreachable!("the outage episode cannot complete")
        }
        CampaignRun::Interrupted { checkpoint, cause } => {
            println!(
                "outage after {} of {episodes} episodes (cause: {cause}); \
                 checkpoint taken before the failed episode",
                checkpoint.episodes_completed()
            );
            checkpoint
        }
    };

    // Phase 2: the platform heals (back to ordinary chaos); resume from
    // the checkpoint and run the campaign to completion.
    let mut campaign = Campaign::resume(*checkpoint);
    let mut episode_no = 0usize;
    let run = campaign.train_resilient(&src, |_t| {
        episode_no += 1;
        pipe.make_faulty_env(target, FaultConfig::chaos(2000 + episode_no as u64), resilience)
    });
    let curve = match run {
        CampaignRun::Completed { curve } => curve,
        CampaignRun::Interrupted { checkpoint, cause } => {
            panic!("still down after {} episodes: {cause}", checkpoint.episodes_completed())
        }
    };
    println!(
        "resumed and finished: {} episodes, reward {:.3} -> {:.3}",
        curve.len(),
        curve.first().copied().unwrap_or(0.0),
        curve.last().copied().unwrap_or(0.0),
    );

    // Phase 3: execute the learned policy one more time under chaos and
    // show the attacker's bill and the platform's fault ledger.
    let mut env = pipe.make_faulty_env(target, FaultConfig::chaos(3000), resilience);
    let outcome = campaign.execute_on(&src, target_src, &mut env);
    println!(
        "final attack: reward {:.3}, {} profiles landed, {} injection attempts failed, \
         {} reward rounds skipped (below quorum)",
        outcome.final_reward,
        outcome.injections,
        outcome.failed_injections,
        outcome.skipped_rewards
    );
    let (queries, failed, reestablished) =
        (env.queries(), env.failed_queries(), env.reestablished());
    let faulty = env.into_recommender();
    println!(
        "platform ledger: {} calls, {queries} query attempts ({failed} failed), \
         {reestablished} suspended accounts re-established",
        faulty.calls()
    );
    println!("fault breakdown: {:?}", faulty.stats());
}
