//! A promotion campaign against a *live* platform.
//!
//! Earlier examples attack a frozen recommender: the model never changes
//! between the attacker's calls. Real platforms are services — organic
//! users keep browsing and rating, the model is retrained on a cadence,
//! shards crash and recover from checkpoints, and the operator degrades
//! gracefully instead of going dark. This example deploys the pipeline's
//! target world on the `ca-serve` service layer and runs the attack as
//! one tenant among that traffic:
//!
//! 1. launch a 4-shard supervised platform with organic load, a retrain
//!    loop, and seeded shard crashes;
//! 2. measure the owner population's HR@20 for a cold target item;
//! 3. run the full RL campaign (retries, typed degradation, account
//!    re-establishment) against per-episode clones of the platform;
//! 4. replay the learned injections on the live platform, let the drift
//!    absorb them, and report the uplift plus what the supervisor saw.
//!
//! Everything runs on the logical clock — rerunning this binary
//! reproduces the same crashes, restarts, retrains, and uplift.
//!
//! Run with: `cargo run --release --example live_platform`

use copyattack::core::{Campaign, CampaignRun, CopyAttackVariant, ResilienceConfig};
use copyattack::datagen::OrganicSampler;
use copyattack::pipeline::{Pipeline, PipelineConfig};
use copyattack::recsys::{FallibleBlackBox, UserId};
use copyattack::serve::{LivePlatform, ServeConfig};

fn main() {
    println!("== promotion campaign on a live platform ==");
    let cfg = PipelineConfig::tiny(7);
    let pipe = Pipeline::build(&cfg);
    let src = pipe.source_domain();
    let target = pipe.target_items[0];
    let target_src = pipe.world.source_item(target).expect("overlap");

    // A supervised 4-shard deployment: organic queries and interactions
    // drawn from the ground-truth latent model, periodic retrains, and a
    // seeded crash/stall injector the supervisor has to ride out.
    let serve_cfg = ServeConfig {
        n_shards: 4,
        organic_rate: 2.0,
        retrain_every: 32,
        retrain_ticks: 4,
        checkpoint_every: 16,
        crash_prob: 0.004,
        stall_prob: 0.002,
        stall_detect_ticks: 12,
        restart_base: 8,
        restart_max: 64,
        ..Default::default()
    };
    let sampler = OrganicSampler::from_truth(&pipe.world.truth, cfg.world.affinity_beta);
    let mut live =
        LivePlatform::launch(&pipe.world.target, sampler, serve_cfg).expect("valid config");
    live.advance(200);
    let before = live.owner_hit_rate(target, 20);
    println!(
        "warmed up: clock {}, {} retrains, owner HR@20 for target {} = {before:.4}",
        live.clock(),
        live.stats().models_built,
        target
    );

    // Train the policy against pristine per-episode clones: each episode
    // replays the same drifting world, so the curve is reproducible.
    let template = live.clone();
    let mut campaign =
        Campaign::new(cfg.attack.config.clone(), CopyAttackVariant::full(), &src, vec![target_src]);
    let run = campaign.train_resilient(&src, |_t| {
        let mut env_platform = template.clone();
        let accounts: Vec<UserId> = pipe
            .pretend_profiles
            .iter()
            .map(|p| env_platform.try_inject_user(p).expect("episode setup"))
            .collect();
        copyattack::core::AttackEnvironment::new(
            env_platform,
            accounts,
            target,
            cfg.attack.config.reward_k,
            cfg.attack.config.budget,
        )
        .with_resilience(ResilienceConfig::default())
        .with_pretend_profiles(pipe.pretend_profiles.clone())
    });
    let curve = match run {
        CampaignRun::Completed { curve } => curve,
        CampaignRun::Interrupted { checkpoint, cause } => panic!(
            "platform stayed down past the retry budget after {} episodes: {cause}",
            checkpoint.episodes_completed()
        ),
    };
    println!(
        "campaign: {} episodes, reward {:.3} -> {:.3}",
        curve.len(),
        curve.first().copied().unwrap_or(0.0),
        curve.last().copied().unwrap_or(0.0)
    );

    // Execute the promotion on the *running* platform: copy the crafted
    // profiles in as tenant accounts and let the retrain loop absorb them.
    let mut landed = 0usize;
    for profile in &pipe.pretend_profiles {
        let mut crafted = profile.clone();
        crafted.push(target);
        if live.try_inject_user(&crafted).is_ok() {
            landed += 1;
        }
    }
    live.advance(200);
    let after = live.owner_hit_rate(target, 20);

    let crashes: u64 = live.shards().iter().map(|s| s.stats().crashes).sum();
    let restarts: u64 = live.shards().iter().map(|s| s.stats().restarts).sum();
    println!(
        "injected {landed}/{} crafted accounts; drift absorbed them over {} retrains",
        pipe.pretend_profiles.len(),
        live.stats().models_built
    );
    println!(
        "supervisor: {crashes} crashes, {restarts} restarts, organic availability {:.4}",
        live.stats().organic_availability()
    );
    println!("owner HR@20: {before:.4} -> {after:.4} (uplift {:+.4})", after - before);
}
