//! Promotion campaign planning: how many copied profiles does a seller
//! need?
//!
//! The scenario from the paper's introduction: a seller on e-commerce
//! platform A wants their (cold) product recommended to more users, and
//! controls accounts that can replay profiles crawled from platform B.
//! This example sweeps the profile budget Δ and reports the promotion
//! metrics per budget — a miniature of the Figure 5 experiment — and then
//! replays the attack against a *flaky* platform (rate limits, timeouts,
//! suspended accounts) to show the resilient loop riding through faults.
//!
//! Run with: `cargo run --release --example promotion_campaign`

use copyattack::core::baselines::target_attack;
use copyattack::core::{
    AttackEnvironment, CopyAttackAgent, CopyAttackVariant, ResilienceConfig, RetryPolicy,
};
use copyattack::par::split_seed;
use copyattack::pipeline::{Pipeline, PipelineConfig};
use copyattack::recsys::FaultConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("== promotion campaign: budget sweep ==");
    let mut cfg = PipelineConfig::tiny(7);
    cfg.n_target_items = 2;
    let pipe = Pipeline::build(&cfg);
    let src = pipe.source_domain();
    let target = pipe.target_items[0];
    println!(
        "promoting {target} (popularity {} in the target domain)",
        pipe.world.target.item_popularity(target)
    );
    println!("{:>8} {:>16} {:>16}", "budget", "TargetAttack70", "CopyAttack");

    for budget in [3usize, 9, 15, 21, 30] {
        // Non-RL baseline at this budget.
        let mut env = AttackEnvironment::new(
            pipe.recommender.clone(),
            pipe.pretend.clone(),
            target,
            cfg.attack.config.reward_k,
            budget,
        );
        let mut rng = StdRng::seed_from_u64(split_seed(cfg.seed, budget as u64));
        let target_src = pipe.world.source_item(target).expect("overlap");
        target_attack(&src, &mut env, target_src, 0.7, &mut rng);
        let eval_seed = split_seed(cfg.seed, 1 + budget as u64);
        let hr_ta = pipe.evaluate_promotion(&env.into_recommender(), target, eval_seed).hr(20);

        // CopyAttack at this budget.
        let mut attack_cfg = cfg.attack.config.clone();
        attack_cfg.budget = budget;
        attack_cfg.query_every = attack_cfg.query_every.min(budget);
        let mut agent =
            CopyAttackAgent::new(attack_cfg.clone(), CopyAttackVariant::full(), &src, target_src);
        agent.train(&src, || {
            AttackEnvironment::new(
                pipe.recommender.clone(),
                pipe.pretend.clone(),
                target,
                attack_cfg.reward_k,
                budget,
            )
        });
        let mut env = AttackEnvironment::new(
            pipe.recommender.clone(),
            pipe.pretend.clone(),
            target,
            attack_cfg.reward_k,
            budget,
        );
        agent.execute(&src, &mut env);
        let hr_ca = pipe.evaluate_promotion(&env.into_recommender(), target, eval_seed).hr(20);

        println!("{budget:>8} {hr_ta:>16.4} {hr_ca:>16.4}");
    }
    println!("(HR@20 of the promoted item over real users; higher = more exposure)");

    // -- the same campaign against an unreliable platform -----------------
    // A real target throttles, times out, and suspends suspicious accounts.
    // The resilient loop retries with capped exponential backoff (logical
    // time), averages rewards over the pretend users that answered, and
    // re-establishes suspended accounts from their stored profiles.
    println!("\n== replaying the attack on a flaky platform ==");
    let target_src = pipe.world.source_item(target).expect("overlap");
    let resilience = ResilienceConfig {
        retry: RetryPolicy {
            max_retries: 5,
            base_delay: 2,
            max_delay: 64,
            jitter: 0.25,
            max_total_wait: 1024,
        },
        ..ResilienceConfig::default()
    };
    let mut agent = CopyAttackAgent::new(
        cfg.attack.config.clone(),
        CopyAttackVariant::full(),
        &src,
        target_src,
    );
    let mut env = pipe.make_faulty_env(target, FaultConfig::chaos(7), resilience);
    let outcome = agent.execute(&src, &mut env);
    println!(
        "reward {:.3} | {} profiles landed, {} injection attempts failed",
        outcome.final_reward, outcome.injections, outcome.failed_injections
    );
    let (queries, failed) = (env.queries(), env.failed_queries());
    let reestablished = env.reestablished();
    let faulty = env.into_recommender();
    println!(
        "platform saw {} calls ({queries} query attempts, {failed} failed); \
         {reestablished} pretend users re-established",
        faulty.calls()
    );
    println!("fault breakdown: {:?}", faulty.stats());
}
