//! Detection evasion: are copied profiles really harder to catch?
//!
//! The paper's motivation (§1) claims generated fake profiles "present very
//! different patterns from real profiles" while copied cross-domain
//! profiles are "naturally real". This example measures that claim with
//! the `ca-detect` z-score detector: it compares the detector's AUC on
//! (a) classical generated fake profiles (target + popular fillers) and
//! (b) the profiles CopyAttack actually injects.
//!
//! Run with: `cargo run --release --example detection_evasion`

use copyattack::core::{CopyAttackAgent, CopyAttackVariant};
use copyattack::detect::features::PopularityIndex;
use copyattack::detect::{
    detection_auc, extract_features, naive_fake_profiles, precision_at_n, ZScoreDetector,
};
use copyattack::par::split_seed;
use copyattack::pipeline::{Pipeline, PipelineConfig};
use copyattack::recsys::{ItemId, UserId};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("== detection evasion: generated vs copied profiles ==");
    let cfg = PipelineConfig::tiny(13);
    let pipe = Pipeline::build(&cfg);
    let src = pipe.source_domain();
    let target = pipe.target_items[0];
    let target_src = pipe.world.source_item(target).expect("overlap");

    // Detector fitted on the genuine target-domain population, with MF item
    // embeddings (trained on clean data) providing the coherence geometry.
    let clean = &pipe.split.train;
    let pop = PopularityIndex::build(clean);
    let item_emb =
        &ca_mf::train(clean, &ca_mf::BprConfig { max_epochs: 10, seed: 5, ..Default::default() })
            .item_emb;
    let genuine_features: Vec<_> = (0..clean.n_users() as u32)
        .map(|u| extract_features(clean.profile(UserId(u)), &pop, item_emb))
        .collect();
    let detector = ZScoreDetector::fit(&genuine_features);
    let genuine_scores: Vec<f32> = genuine_features.iter().map(|f| detector.score(f)).collect();

    // (a) classical generated fakes.
    let mut rng = StdRng::seed_from_u64(split_seed(cfg.seed, 1));
    let naive: Vec<Vec<ItemId>> = naive_fake_profiles(clean, target, 30, 20, &mut rng);
    let naive_scores: Vec<f32> =
        naive.iter().map(|p| detector.score(&extract_features(p, &pop, item_emb))).collect();

    // (b) CopyAttack's injected profiles.
    let mut agent = CopyAttackAgent::new(
        cfg.attack.config.clone(),
        CopyAttackVariant::full(),
        &src,
        target_src,
    );
    agent.train(&src, || pipe.make_env(target));
    let mut env = pipe.make_env(target);
    let outcome = agent.execute(&src, &mut env);
    let polluted = env.into_recommender();
    // The injected accounts are the newest ones.
    let n_total = polluted.data().n_users();
    let copied_scores: Vec<f32> = (n_total - outcome.injections..n_total)
        .map(|u| {
            let profile = polluted.data().profile(UserId(u as u32));
            detector.score(&extract_features(profile, &pop, item_emb))
        })
        .collect();

    let auc_naive = detection_auc(&genuine_scores, &naive_scores);
    let auc_copied = detection_auc(&genuine_scores, &copied_scores);
    println!("detector AUC vs generated fakes: {auc_naive:.3} (1.0 = always caught)");
    println!("detector AUC vs copied profiles: {auc_copied:.3} (0.5 = indistinguishable)");
    println!(
        "precision@{}: generated {:.2} vs copied {:.2}",
        naive_scores.len(),
        precision_at_n(&genuine_scores, &naive_scores, naive_scores.len()),
        precision_at_n(&genuine_scores, &copied_scores, copied_scores.len()),
    );
    if auc_copied < auc_naive {
        println!("=> copied cross-domain profiles evade the detector better, as the paper argues.");
    } else {
        println!("=> detector separates both equally on this tiny world; try a larger preset.");
    }
}
