//! Quickstart: build a miniature cross-domain world, train the black-box
//! target recommender, and promote a cold item with CopyAttack.
//!
//! Run with: `cargo run --release --example quickstart`

use copyattack::pipeline::{Method, Pipeline, PipelineConfig};

fn main() {
    println!("== CopyAttack quickstart ==");
    println!("building tiny cross-domain world + target model ...");
    let cfg = PipelineConfig::tiny(42);
    let pipe = Pipeline::build(&cfg);

    let stats = pipe.world.stats();
    println!(
        "target domain: {} users / {} items / {} interactions",
        stats.target_users, stats.target_items, stats.target_interactions
    );
    println!(
        "source domain: {} users / {} overlapping items / {} interactions",
        stats.source_users, stats.overlap_items, stats.source_interactions
    );
    println!(
        "target model trained: validation HR@10 = {:.3} ({} epochs)",
        pipe.train_report.best_val_hr10, pipe.train_report.epochs_run
    );
    println!(
        "attacking {} cold target items, budget Δ = {} copied profiles",
        3, cfg.attack.config.budget
    );

    let before = pipe.run_method_over_targets(Method::WithoutAttack, 3);
    println!(
        "before attack:  HR@20 = {:.4}  NDCG@20 = {:.4}",
        before.metrics.hr(20),
        before.metrics.ndcg(20)
    );

    let after = pipe.run_method_over_targets(Method::CopyAttack, 3);
    println!(
        "after attack:   HR@20 = {:.4}  NDCG@20 = {:.4}  (avg {:.1} items per copied profile)",
        after.metrics.hr(20),
        after.metrics.ndcg(20),
        after.avg_items_per_profile
    );
    println!(
        "promotion lift: {:.1}x in {:.1}s",
        after.metrics.hr(20) / before.metrics.hr(20).max(1e-4),
        after.attack_seconds
    );
}
