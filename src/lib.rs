//! # copyattack
//!
//! A full Rust reproduction of *"Attacking Black-box Recommendations via
//! Copying Cross-domain User Profiles"* (Fan et al., ICDE 2021): the
//! CopyAttack framework, every substrate it runs on, the paper's baselines
//! and ablations, and a harness regenerating each table and figure.
//!
//! ## Crate map
//!
//! | Re-export | Crate | Contents |
//! |---|---|---|
//! | [`par`] | `ca-par` | deterministic scoped-thread runtime (`CA_THREADS`) |
//! | [`tensor`] | `ca-tensor` | dense linear algebra |
//! | [`nn`] | `ca-nn` | MLP / RNN layers with manual backprop, REINFORCE head |
//! | [`recsys`] | `ca-recsys` | datasets, black-box interface, HR/NDCG evaluation |
//! | [`datagen`] | `ca-datagen` | synthetic cross-domain worlds (Table 1 shapes) |
//! | [`mf`] | `ca-mf` | BPR matrix factorization |
//! | [`train`] | `ca-train` | shared deterministic BPR trainer + telemetry |
//! | [`gnn`] | `ca-gnn` | PinSage-like inductive target recommender |
//! | [`ncf`] | `ca-ncf` | NeuMF-style transductive target recommender (fine-tune cycle) |
//! | [`cluster`] | `ca-cluster` | balanced hierarchical clustering tree + masking |
//! | [`ann`] | `ca-ann` | deterministic IVF approximate retrieval (sublinear Top-k) |
//! | [`core`] | `copyattack-core` | the attack: selection, crafting, env, RL |
//! | [`detect`] | `ca-detect` | shilling-attack detectors (profile realism) |
//! | [`serve`] | `ca-serve` | supervised sharded live platform (degradation, drift) |
//! | [`pipeline`] | this crate | end-to-end experiment pipeline |
//!
//! ## Quickstart
//!
//! ```no_run
//! use copyattack::pipeline::{Method, Pipeline, PipelineConfig};
//!
//! let cfg = PipelineConfig::tiny(42);
//! let pipe = Pipeline::build(&cfg);
//! let row = pipe.run_method_over_targets(Method::CopyAttack, 4);
//! println!("CopyAttack HR@20 = {:.4}", row.metrics.hr(20));
//! ```

#![forbid(unsafe_code)]

pub use ca_ann as ann;
pub use ca_cluster as cluster;
pub use ca_datagen as datagen;
pub use ca_detect as detect;
pub use ca_gnn as gnn;
pub use ca_mf as mf;
pub use ca_ncf as ncf;
pub use ca_nn as nn;
pub use ca_par as par;
pub use ca_recsys as recsys;
pub use ca_serve as serve;
pub use ca_tensor as tensor;
pub use ca_train as train;
pub use copyattack_core as core;

pub mod pipeline;
