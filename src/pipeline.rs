//! End-to-end experiment pipeline: world → target model → attack → metrics.
//!
//! This reproduces the paper's experimental protocol (§5.1):
//!
//! 1. generate a cross-domain world (substituting the licensed datasets);
//! 2. split the target domain 80/10/10; pretrain MF on the target training
//!    split (frozen item features for the GNN) and on the source domain
//!    (the attacker's embeddings);
//! 3. train the PinSage-like target model with early stopping on
//!    validation HR@10; deploy it; let the attacker establish 50 pretend
//!    users;
//! 4. sample cold, attackable target items (< 10 interactions, present in
//!    the source domain);
//! 5. for each method × target item: clone the deployed system, attack it
//!    under budget Δ, and measure HR@K / NDCG@K of the target item over
//!    real users plus the average injected-profile length (Table 2).

use ca_ann::{IvfConfig, IvfRecommender};
use ca_datagen::{generate, CrossDomainConfig, CrossDomainDataset};
use ca_gnn::{train_with_features_observed, GnnConfig, PinSageRecommender, TrainReport};
use ca_mf::{BprConfig, MfModel};
use ca_recsys::eval::RankingEval;
use ca_recsys::metrics::MetricAccumulator;
use ca_recsys::{split_dataset, BlackBoxRecommender, ItemId, RetrievalMode, Split, UserId};
use ca_recsys::{FaultConfig, FaultyRecommender};
use ca_train::{History, StderrProgress, Tee, TrainObserver};
use copyattack_core::env::plan_pretend_profiles;
use copyattack_core::{
    AttackConfig, AttackEnvironment, AttackRegistry, ItemKnowledge, ResilienceConfig, SourceDomain,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Everything needed to run one dataset's worth of experiments.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// World generator settings (one of the Table 1 presets).
    pub world: CrossDomainConfig,
    /// MF pretraining on the source domain (attacker side).
    pub source_mf: BprConfig,
    /// MF pretraining on the target training split (frozen GNN features).
    pub target_mf: BprConfig,
    /// Target-model training.
    pub gnn: GnnConfig,
    /// Which registered attack the configured campaign runs, and its
    /// settings (budget Δ, pretend users, γ, …). Any name in the
    /// pipeline's [`AttackRegistry`] routes through the same
    /// campaign/retry/IVF machinery.
    pub attack: AttackSpec,
    /// Number of cold target items to attack (paper: 50).
    pub n_target_items: usize,
    /// Cold threshold: fewer than this many target-domain interactions
    /// (paper: 10).
    pub max_target_pop: usize,
    /// Minimum number of source-domain carriers per target item.
    pub min_source_pop: usize,
    /// Number of real target-domain users promotion metrics average over.
    pub n_eval_users: usize,
    /// Length of each pretend user's establishing profile.
    pub pretend_profile_len: usize,
    /// How the deployed platform answers the attacker's Top-k queries
    /// during the campaign: `Exact` (the paper's setting) or `Ivf`, where
    /// the reward signal passes through a realistic approximate-retrieval
    /// stage (the cold-item-in-cold-cell ablation). Promotion metrics are
    /// always evaluated on the underlying model.
    pub retrieval: RetrievalMode,
    /// Master seed for everything not covered by the sub-configs.
    pub seed: u64,
}

impl PipelineConfig {
    fn with_world(world: CrossDomainConfig, seed: u64) -> Self {
        Self {
            world,
            source_mf: BprConfig { max_epochs: 15, seed, ..Default::default() },
            target_mf: BprConfig { max_epochs: 15, seed: seed ^ 1, ..Default::default() },
            gnn: GnnConfig { seed: seed ^ 2, ..Default::default() },
            attack: AttackSpec::new(
                "CopyAttack",
                AttackConfig { seed: seed ^ 3, ..Default::default() },
            ),
            n_target_items: 50,
            max_target_pop: 10,
            min_source_pop: 3,
            n_eval_users: 200,
            pretend_profile_len: 15,
            retrieval: RetrievalMode::Exact,
            seed,
        }
    }

    /// Milliseconds-scale preset for tests and the quickstart example.
    pub fn tiny(seed: u64) -> Self {
        let mut cfg = Self::with_world(CrossDomainConfig::tiny(seed), seed);
        cfg.n_target_items = 4;
        cfg.n_eval_users = 60;
        cfg.min_source_pop = 2;
        cfg.pretend_profile_len = 8;
        cfg.attack.config.episodes = 15;
        cfg.attack.config.n_pretend = 10;
        cfg.attack.config.tree_depth = 2;
        cfg.gnn.max_epochs = 20;
        cfg
    }

    /// Seconds-scale preset for examples and smoke experiments.
    pub fn small(seed: u64) -> Self {
        let mut cfg = Self::with_world(CrossDomainConfig::small(seed), seed);
        cfg.n_target_items = 10;
        cfg.n_eval_users = 150;
        cfg.attack.config.episodes = 30;
        cfg.attack.config.n_pretend = 25;
        cfg.attack.config.tree_depth = 3;
        cfg.gnn.max_epochs = 30;
        cfg
    }

    /// The ML10M-Flixster-shaped experiment (§5.1.1, tree depth 3).
    pub fn ml10m_fx(seed: u64) -> Self {
        let mut cfg = Self::with_world(CrossDomainConfig::ml10m_fx_like(seed), seed);
        cfg.attack.config.tree_depth = 3;
        cfg
    }

    /// The ML20M-Netflix-shaped experiment (§5.1.1, tree depth 6).
    pub fn ml20m_nf(seed: u64) -> Self {
        let mut cfg = Self::with_world(CrossDomainConfig::ml20m_nf_like(seed), seed);
        cfg.attack.config.tree_depth = 6;
        cfg
    }
}

/// The attacking methods of Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// No injection at all (the "Without Attack" row).
    WithoutAttack,
    /// Uniformly random source profiles.
    RandomAttack,
    /// Carrier profiles clipped to the given percentage (40/70/100).
    TargetAttack(u8),
    /// Flat policy gradient over all users (no clustering tree).
    PolicyNetwork,
    /// The full framework.
    CopyAttack,
    /// Ablation: no masking mechanism (and no crafting, per the paper).
    CopyAttackNoMasking,
    /// Ablation: no profile crafting.
    CopyAttackNoLength,
}

impl Method {
    /// Table 2 row label.
    pub fn label(&self) -> String {
        match self {
            Method::WithoutAttack => "Without Attack".into(),
            Method::RandomAttack => "RandomAttack".into(),
            Method::TargetAttack(p) => format!("TargetAttack{p}"),
            Method::PolicyNetwork => "PolicyNetwork".into(),
            Method::CopyAttack => "CopyAttack".into(),
            Method::CopyAttackNoMasking => "CopyAttack-Masking".into(),
            Method::CopyAttackNoLength => "CopyAttack-Length".into(),
        }
    }

    /// All rows of Table 2, in the paper's order.
    pub fn table2_rows() -> Vec<Method> {
        vec![
            Method::WithoutAttack,
            Method::RandomAttack,
            Method::TargetAttack(40),
            Method::TargetAttack(70),
            Method::TargetAttack(100),
            Method::PolicyNetwork,
            Method::CopyAttackNoMasking,
            Method::CopyAttackNoLength,
            Method::CopyAttack,
        ]
    }

    /// The [`AttackRegistry`] key this method routes through, or `None`
    /// for the injection-free "Without Attack" row. The key equals
    /// [`Method::label`], which is exactly how the built-in registry names
    /// its entries.
    pub fn registry_key(&self) -> Option<String> {
        match self {
            Method::WithoutAttack => None,
            m => Some(m.label()),
        }
    }
}

/// A registry-routed attack selection: *which* attack to run (any key in
/// the pipeline's [`AttackRegistry`], built-in or custom) and under what
/// configuration. This is what [`PipelineConfig`] carries, so swapping the
/// campaign's attacker is a config edit, not a code path.
#[derive(Clone, Debug)]
pub struct AttackSpec {
    /// Registry key — a Table 2 label ("CopyAttack", "RandomAttack", …) or
    /// a rival entry ("FakeProfile", "KgAttack").
    pub name: String,
    /// Attack hyper-parameters.
    pub config: AttackConfig,
}

impl AttackSpec {
    /// Bundles a registry key with its configuration.
    pub fn new(name: impl Into<String>, config: AttackConfig) -> Self {
        Self { name: name.into(), config }
    }
}

/// An arena row: promotion metrics of one registered attack aggregated
/// over target items (the registry-keyed sibling of [`MethodRow`]).
#[derive(Clone, Debug)]
pub struct AttackRow {
    /// The registry key the row was produced by.
    pub name: String,
    /// HR@K / NDCG@K of the target items over the evaluation users.
    pub metrics: MetricAccumulator,
    /// Mean injected-profile length, averaged over target items.
    pub avg_items_per_profile: f32,
    /// Wall-clock seconds spent attacking (all target items).
    pub attack_seconds: f64,
}

/// A Table 2 row: promotion metrics aggregated over target items.
#[derive(Clone, Debug)]
pub struct MethodRow {
    /// The method.
    pub method: Method,
    /// HR@K / NDCG@K of the target items over the evaluation users.
    pub metrics: MetricAccumulator,
    /// Mean injected-profile length, averaged over target items.
    pub avg_items_per_profile: f32,
    /// Wall-clock seconds spent attacking (all target items).
    pub attack_seconds: f64,
}

/// Per-model training telemetry captured while the pipeline was built:
/// epoch-by-epoch loss, throughput, and validation curves for the three
/// training runs (attacker-side MF, feature MF, target GNN). Set
/// `CA_TRAIN_LOG=1` to additionally stream per-epoch progress to stderr
/// while building.
#[derive(Clone, Debug, Default)]
pub struct TrainTelemetry {
    /// Attacker-side MF on the source domain.
    pub source_mf: History,
    /// Feature MF on the clean target training split.
    pub target_mf: History,
    /// The PinSage-like target model.
    pub gnn: History,
}

/// Runs a training closure against `hist`, teeing per-epoch progress to
/// stderr when `CA_TRAIN_LOG` is set.
fn observed<R>(label: &str, hist: &mut History, f: impl FnOnce(&mut dyn TrainObserver) -> R) -> R {
    if std::env::var_os("CA_TRAIN_LOG").is_some() {
        let mut progress = StderrProgress::new(label);
        let mut tee = Tee(hist, &mut progress);
        f(&mut tee)
    } else {
        f(hist)
    }
}

/// The built pipeline, ready to run attacks.
pub struct Pipeline {
    /// The generated world.
    pub world: CrossDomainDataset,
    /// Target-domain split.
    pub split: Split,
    /// Attacker-side MF on the source domain.
    pub source_mf: MfModel,
    /// The deployed target system *with pretend users already established*.
    pub recommender: PinSageRecommender,
    /// The attacker's pretend-user account ids.
    pub pretend: Vec<UserId>,
    /// The pretend users' establishing profiles (kept so suspended
    /// accounts can be re-established against an unreliable platform).
    pub pretend_profiles: Vec<Vec<ItemId>>,
    /// Real users promotion metrics are averaged over.
    pub eval_users: Vec<UserId>,
    /// The sampled cold target items (target-domain ids).
    pub target_items: Vec<ItemId>,
    /// Item-side knowledge over the target catalog (drives the `KgAttack`
    /// registry entry).
    pub knowledge: Arc<ItemKnowledge>,
    /// Target-model training report.
    pub train_report: TrainReport,
    /// Epoch-level telemetry of the three training runs.
    pub telemetry: TrainTelemetry,
    /// Configuration used.
    pub config: PipelineConfig,
}

impl Pipeline {
    /// Builds the full pipeline (steps 1–4 of the protocol).
    pub fn build(cfg: &PipelineConfig) -> Self {
        let world = generate(&cfg.world);
        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(101));
        let split = split_dataset(&world.target, 0.1, &mut rng);

        // Attacker-side embeddings.
        let mut telemetry = TrainTelemetry::default();
        let (source_mf, _) = observed("source-mf", &mut telemetry.source_mf, |obs| {
            ca_mf::train_observed(&world.source, &cfg.source_mf, obs)
        });
        // Frozen item features for the GNN: MF pretrained on the clean
        // target training split.
        let (target_mf, _) = observed("target-mf", &mut telemetry.target_mf, |obs| {
            ca_mf::train_observed(&split.train, &cfg.target_mf, obs)
        });
        let (mut recommender, train_report) = observed("gnn", &mut telemetry.gnn, |obs| {
            train_with_features_observed(
                target_mf.item_emb.clone(),
                &split.train,
                &split.validation,
                &cfg.gnn,
                obs,
            )
        });

        // The attacker establishes pretend users before the attack (§4.2);
        // the profiles are kept so suspended accounts can be re-established
        // mid-attack on an unreliable platform.
        let mut pretend_rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(202));
        let pretend_profiles = plan_pretend_profiles(
            &split.train,
            cfg.attack.config.n_pretend,
            cfg.pretend_profile_len,
            &mut pretend_rng,
        );
        let pretend: Vec<UserId> =
            pretend_profiles.iter().map(|p| recommender.inject_user(p)).collect();

        // Evaluation users: real accounts only.
        let mut eval_rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(303));
        let mut eval_users: Vec<UserId> = (0..world.target.n_users() as u32).map(UserId).collect();
        eval_users.shuffle(&mut eval_rng);
        eval_users.truncate(cfg.n_eval_users);

        // Cold, attackable target items.
        let mut item_rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(404));
        let target_items = world.sample_attackable_cold_items(
            cfg.n_target_items,
            cfg.max_target_pop,
            cfg.min_source_pop,
            &mut item_rng,
        );
        assert!(
            !target_items.is_empty(),
            "world contains no attackable cold items — increase catalog size"
        );

        // The KGAttack rival's knowledge graph: the generator's ground-truth
        // latent structure over the target catalog.
        let knowledge = Arc::new(ItemKnowledge::new(
            world.truth.item_vecs.clone(),
            world.truth.item_cluster.clone(),
        ));

        Self {
            world,
            knowledge,
            split,
            source_mf,
            recommender,
            pretend,
            pretend_profiles,
            eval_users,
            target_items,
            train_report,
            telemetry,
            config: cfg.clone(),
        }
    }

    /// The attacker's source-domain view.
    pub fn source_domain(&self) -> SourceDomain<'_> {
        SourceDomain {
            data: &self.world.source,
            mf: &self.source_mf,
            to_target: &self.world.source_to_target,
        }
    }

    /// A fresh attack environment on a clone of the deployed system.
    pub fn make_env(&self, target: ItemId) -> AttackEnvironment<PinSageRecommender> {
        AttackEnvironment::new(
            self.recommender.clone(),
            self.pretend.clone(),
            target,
            self.config.attack.config.reward_k,
            self.config.attack.config.budget,
        )
    }

    /// A fresh attack environment on a clone of the deployed system behind
    /// a deterministic fault injector — the §4.5 setting on an *unreliable*
    /// platform. The environment retries per `resilience`, computes
    /// quorum-gated partial rewards, and re-establishes suspended pretend
    /// users from their stored profiles.
    pub fn make_faulty_env(
        &self,
        target: ItemId,
        faults: FaultConfig,
        resilience: ResilienceConfig,
    ) -> AttackEnvironment<FaultyRecommender<PinSageRecommender>> {
        AttackEnvironment::new(
            FaultyRecommender::new(self.recommender.clone(), faults),
            self.pretend.clone(),
            target,
            self.config.attack.config.reward_k,
            self.config.attack.config.budget,
        )
        .with_resilience(resilience)
        .with_pretend_profiles(self.pretend_profiles.clone())
    }

    /// Promotion metrics of `target` on `rec` over the evaluation users
    /// (HR/NDCG @ {20, 10, 5} against 100 sampled negatives).
    pub fn evaluate_promotion(
        &self,
        rec: &PinSageRecommender,
        target: ItemId,
        seed: u64,
    ) -> MetricAccumulator {
        let ev = RankingEval::standard(&self.split.train);
        let mut rng = StdRng::seed_from_u64(seed);
        ev.evaluate_promotion(rec, &self.eval_users, target, &mut rng)
    }

    /// Runs one method against one target item with the pipeline's default
    /// attack configuration. See [`Pipeline::run_method_cfg`].
    pub fn run_method(
        &self,
        method: Method,
        target: ItemId,
        seed: u64,
    ) -> (MetricAccumulator, f32) {
        let attack_cfg = AttackConfig { seed, ..self.config.attack.config.clone() };
        self.run_method_cfg(method, target, &attack_cfg)
    }

    /// Runs one method against one target item under an explicit attack
    /// configuration (the budget/depth sweeps override fields); returns the
    /// promotion metrics of the polluted system and the average
    /// injected-profile length.
    pub fn run_method_cfg(
        &self,
        method: Method,
        target: ItemId,
        attack_cfg: &AttackConfig,
    ) -> (MetricAccumulator, f32) {
        self.run_named(method.registry_key().as_deref(), target, attack_cfg)
    }

    /// Runs one *registered* attack (any [`AttackRegistry`] key) against
    /// one target item — the registry-keyed sibling of
    /// [`Pipeline::run_method_cfg`], sharing the same retrieval routing
    /// and evaluation.
    ///
    /// # Panics
    /// Panics when the name is not registered or the attack cannot be
    /// built for this target (see [`copyattack_core::AttackError`]).
    pub fn run_attack_cfg(
        &self,
        name: &str,
        target: ItemId,
        attack_cfg: &AttackConfig,
    ) -> (MetricAccumulator, f32) {
        self.run_named(Some(name), target, attack_cfg)
    }

    /// Shared core of the method- and registry-keyed entry points:
    /// resolves the target's source id, routes the campaign through the
    /// configured retrieval mode, and evaluates promotion on the unwrapped
    /// model. `None` is the injection-free baseline.
    fn run_named(
        &self,
        name: Option<&str>,
        target: ItemId,
        attack_cfg: &AttackConfig,
    ) -> (MetricAccumulator, f32) {
        let target_src =
            self.world.source_item(target).expect("target items are sampled from the overlap");
        let seed = attack_cfg.seed;

        let (polluted, avg_items) = match self.config.retrieval {
            RetrievalMode::Exact => {
                self.attack_with(name, target, target_src, attack_cfg, &self.recommender)
            }
            mode => {
                // The campaign's reward signal (every Top-k the attacker
                // sees) flows through the IVF index; promotion metrics are
                // still computed on the unwrapped model so the Exact and
                // Ivf arms of the ablation are directly comparable.
                let cfg = IvfConfig::from_mode(mode).expect("non-exact mode has an IVF config");
                let ann = IvfRecommender::deploy(self.recommender.clone(), cfg);
                let (p, a) = self.attack_with(name, target, target_src, attack_cfg, &ann);
                (p.into_inner(), a)
            }
        };
        let metrics = self.evaluate_promotion(&polluted, target, seed ^ 0x5EED);
        (metrics, avg_items)
    }

    /// The pipeline's attack registry over platform type `R`: every
    /// built-in attacker plus `KgAttack` over this world's ground-truth
    /// item knowledge.
    pub fn registry<R: BlackBoxRecommender + Clone + 'static>(&self) -> AttackRegistry<R> {
        let mut reg = AttackRegistry::with_builtins();
        reg.register_kg_attack(self.knowledge.clone());
        reg
    }

    /// Runs the attack phase of one registered attack against `base` — any
    /// clonable black-box deployment of the target platform — and returns
    /// the polluted deployment plus the average injected-profile length.
    /// `None` skips injection entirely (the "Without Attack" row).
    ///
    /// The registry factory constructs the attacker exactly as the old
    /// hard-wired dispatch did (same constructor order, same seeds), then
    /// `prepare` trains it against fresh environments and `run` executes
    /// the evaluation episode on an episode RNG seeded `seed ^ 0xABCD` —
    /// bitwise-identical to the pre-registry pipeline, pinned by the
    /// golden hashes in `tests/arena.rs`.
    fn attack_with<R: BlackBoxRecommender + Clone + 'static>(
        &self,
        name: Option<&str>,
        target: ItemId,
        target_src: ItemId,
        attack_cfg: &AttackConfig,
        base: &R,
    ) -> (R, f32) {
        let Some(name) = name else {
            return (base.clone(), 0.0);
        };
        let src = self.source_domain();
        let seed = attack_cfg.seed;
        let registry = self.registry::<R>();
        let mut attack =
            registry.build(name, attack_cfg, &src, target_src).unwrap_or_else(|e| panic!("{e}"));
        let mut make_env = || {
            AttackEnvironment::new(
                base.clone(),
                self.pretend.clone(),
                target,
                attack_cfg.reward_k,
                attack_cfg.budget,
            )
        };
        attack.prepare(&src, &mut make_env);
        let mut env = make_env();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let o = attack.run(&mut env, &src, target_src, &mut rng);
        (env.into_recommender(), o.avg_items_per_profile)
    }

    /// Runs a method over the first `n_items` sampled target items
    /// (in parallel across items) and aggregates a Table 2 row.
    pub fn run_method_over_targets(&self, method: Method, n_items: usize) -> MethodRow {
        let items: Vec<ItemId> = self.target_items.iter().copied().take(n_items).collect();
        self.run_method_over_items(method, &items, &self.config.attack.config.clone())
    }

    /// Like [`Pipeline::run_method_over_targets`] but with explicit items
    /// and attack configuration (per-item seeds are derived from
    /// `attack_cfg.seed ^ item id`).
    pub fn run_method_over_items(
        &self,
        method: Method,
        items: &[ItemId],
        attack_cfg: &AttackConfig,
    ) -> MethodRow {
        let items: Vec<ItemId> = items.to_vec();
        // ca-audit: allow(wall-clock) — MethodRow.seconds is reporting telemetry, never an input
        let start = std::time::Instant::now();
        // Per-item attacks are seed-isolated (`seed ^ item id`), so the
        // deterministic runtime's ordered map gives the same row at any
        // `CA_THREADS` setting.
        let results: Vec<(MetricAccumulator, f32)> = ca_par::map(&items, |_, &t| {
            let cfg = AttackConfig { seed: attack_cfg.seed ^ t.0 as u64, ..attack_cfg.clone() };
            self.run_method_cfg(method, t, &cfg)
        });
        let mut metrics = MetricAccumulator::new(&[20, 10, 5]);
        let mut avg_items = 0.0;
        for (m, a) in &results {
            metrics.merge(m);
            avg_items += a;
        }
        avg_items /= results.len().max(1) as f32;
        MethodRow {
            method,
            metrics,
            avg_items_per_profile: avg_items,
            attack_seconds: start.elapsed().as_secs_f64(),
        }
    }

    /// Runs the *configured* attack ([`PipelineConfig::attack`]) over the
    /// first `n_items` sampled target items.
    pub fn run_spec_over_targets(&self, n_items: usize) -> AttackRow {
        let items: Vec<ItemId> = self.target_items.iter().copied().take(n_items).collect();
        self.run_spec_over_items(&self.config.attack, &items)
    }

    /// Runs one registry-keyed attack over explicit target items, in
    /// parallel across items with the same seed isolation as
    /// [`Pipeline::run_method_over_items`] (`spec.config.seed ^ item id`).
    pub fn run_spec_over_items(&self, spec: &AttackSpec, items: &[ItemId]) -> AttackRow {
        let items: Vec<ItemId> = items.to_vec();
        // ca-audit: allow(wall-clock) — AttackRow.seconds is reporting telemetry, never an input
        let start = std::time::Instant::now();
        let results: Vec<(MetricAccumulator, f32)> = ca_par::map(&items, |_, &t| {
            let cfg = AttackConfig { seed: spec.config.seed ^ t.0 as u64, ..spec.config.clone() };
            self.run_attack_cfg(&spec.name, t, &cfg)
        });
        let mut metrics = MetricAccumulator::new(&[20, 10, 5]);
        let mut avg_items = 0.0;
        for (m, a) in &results {
            metrics.merge(m);
            avg_items += a;
        }
        avg_items /= results.len().max(1) as f32;
        AttackRow {
            name: spec.name.clone(),
            metrics,
            avg_items_per_profile: avg_items,
            attack_seconds: start.elapsed().as_secs_f64(),
        }
    }
}

/// Samples `n` target items out of a popularity group that are attackable
/// (present in the source domain with at least `min_source_pop` carriers) —
/// used by the Figure 4 experiment.
pub fn attackable_from_group(
    world: &CrossDomainDataset,
    group: &[ItemId],
    n: usize,
    min_source_pop: usize,
    rng: &mut impl Rng,
) -> Vec<ItemId> {
    let mut cands: Vec<ItemId> = group
        .iter()
        .copied()
        .filter(|&t| {
            world
                .source_item(t)
                .map(|s| world.source.item_popularity(s) >= min_source_pop)
                .unwrap_or(false)
        })
        .collect();
    cands.shuffle(rng);
    cands.truncate(n);
    cands
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_pipeline_builds_and_has_sane_parts() {
        let cfg = PipelineConfig::tiny(7);
        let pipe = Pipeline::build(&cfg);
        assert!(!pipe.target_items.is_empty());
        assert_eq!(pipe.pretend.len(), cfg.attack.config.n_pretend);
        assert!(pipe.train_report.best_val_hr10 > 0.1);
        // Pretend users were appended after the real users.
        for &p in &pipe.pretend {
            assert!(p.idx() >= pipe.world.target.n_users());
        }
        // Eval users are real.
        for &u in &pipe.eval_users {
            assert!(u.idx() < pipe.world.target.n_users());
        }
        // Telemetry covers every training run the build performed.
        assert_eq!(pipe.telemetry.source_mf.epochs.len(), cfg.source_mf.max_epochs);
        assert_eq!(pipe.telemetry.target_mf.epochs.len(), cfg.target_mf.max_epochs);
        assert_eq!(pipe.telemetry.gnn.epochs.len(), pipe.train_report.epochs_run);
        assert!(pipe.telemetry.gnn.loss_curve().iter().all(|l| l.is_finite()));
    }

    #[test]
    fn without_attack_leaves_cold_items_cold() {
        let cfg = PipelineConfig::tiny(7);
        let pipe = Pipeline::build(&cfg);
        let row = pipe.run_method_over_targets(Method::WithoutAttack, 3);
        assert!(row.metrics.hr(20) < 0.3, "cold items should rank low: {}", row.metrics.hr(20));
        assert_eq!(row.avg_items_per_profile, 0.0);
    }

    #[test]
    fn ivf_retrieval_runs_the_campaign_and_matches_exact_without_attack() {
        let mut cfg = PipelineConfig::tiny(7);
        let pipe_exact = Pipeline::build(&cfg);
        cfg.retrieval = RetrievalMode::Ivf { nlist: 8, nprobe: 4 };
        let pipe_ivf = Pipeline::build(&cfg);
        // WithoutAttack never queries the black box, and promotion metrics
        // are always evaluated on the unwrapped model, so the two retrieval
        // modes must agree exactly on the no-attack baseline.
        let none_exact = pipe_exact.run_method_over_targets(Method::WithoutAttack, 2);
        let none_ivf = pipe_ivf.run_method_over_targets(Method::WithoutAttack, 2);
        assert_eq!(none_exact.metrics.hr(20), none_ivf.metrics.hr(20));
        // A real campaign runs end-to-end with the reward signal routed
        // through the IVF index and still promotes the target.
        let t70 = pipe_ivf.run_method_over_targets(Method::TargetAttack(70), 2);
        assert!(
            t70.metrics.hr(20) > none_ivf.metrics.hr(20),
            "TargetAttack70 under IVF {} vs none {}",
            t70.metrics.hr(20),
            none_ivf.metrics.hr(20)
        );
    }

    #[test]
    fn target_attack_beats_no_attack_on_tiny_world() {
        let cfg = PipelineConfig::tiny(7);
        let pipe = Pipeline::build(&cfg);
        let none = pipe.run_method_over_targets(Method::WithoutAttack, 3);
        let t70 = pipe.run_method_over_targets(Method::TargetAttack(70), 3);
        assert!(
            t70.metrics.hr(20) > none.metrics.hr(20) + 0.1,
            "TargetAttack70 {} vs none {}",
            t70.metrics.hr(20),
            none.metrics.hr(20)
        );
    }
}
