//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! reimplements the subset of the proptest API the workspace's test suites
//! use: the [`proptest!`] macro, range / tuple / `prop_map` / collection
//! strategies, `prop_assert!`/`prop_assert_eq!`, and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from upstream, by design:
//!
//! - no shrinking — a failing case panics with the inputs' `Debug` output
//!   left to the assertion message;
//! - the case seed is derived deterministically from the test's module path
//!   and name (FNV-1a), so failures reproduce exactly on rerun;
//! - `ProptestConfig::default()` runs 64 cases.

pub mod strategy {
    use crate::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};

    /// A generator of values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.unit_f64() as $t * (self.end - self.start)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + rng.unit_f64() as $t * (hi - lo)
                }
            }
        )*};
    }
    impl_float_range_strategy!(f32, f64);

    impl Strategy for Range<char> {
        type Value = char;
        fn sample(&self, rng: &mut TestRng) -> char {
            let (lo, hi) = (self.start as u32, self.end as u32);
            assert!(lo < hi, "empty range strategy");
            loop {
                let v = lo + (rng.next_u64() % (hi - lo) as u64) as u32;
                if let Some(c) = char::from_u32(v) {
                    return c;
                }
            }
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};

    /// Something usable as the length argument of [`vec`].
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec length range");
            self.start + (rng.next_u64() % (self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty vec length range");
            lo + (rng.next_u64() % (hi - lo + 1) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-test configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// The runner's deterministic PRNG (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator directly.
        pub fn from_seed(seed: u64) -> Self {
            Self { state: seed }
        }

        /// Seeds deterministically from a test's fully qualified name.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            Self { state: h }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Namespace mirror of upstream's `prop::` paths (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__cfg.cases {
                let _ = __case;
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_maps_sample_in_bounds() {
        let mut rng = TestRng::from_seed(5);
        for _ in 0..1000 {
            let v = (1usize..10).sample(&mut rng);
            assert!((1..10).contains(&v));
            let f = (-2.0f32..2.0).sample(&mut rng);
            assert!((-2.0..2.0).contains(&f));
            let doubled = (3u32..7).prop_map(|x| x * 2).sample(&mut rng);
            assert!(doubled % 2 == 0 && (6..14).contains(&doubled));
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = TestRng::from_seed(6);
        for _ in 0..200 {
            let v = crate::collection::vec(0.0f32..1.0, 2..12).sample(&mut rng);
            assert!((2..12).contains(&v.len()));
            let w = crate::collection::vec(0u64..5, 4usize).sample(&mut rng);
            assert_eq!(w.len(), 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_multiple_args(a in 0u32..100, b in 0u32..100) {
            prop_assert!(a < 100 && b < 100);
        }

        #[test]
        fn macro_supports_tuple_patterns((x, y) in (0usize..5, 1.0f64..2.0)) {
            prop_assert!(x < 5);
            prop_assert!((1.0..2.0).contains(&y));
        }
    }
}
