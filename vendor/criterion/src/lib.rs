//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access; this vendored crate keeps
//! the workspace's benches compiling and runnable. It is a *smoke-run*
//! harness, not a statistics engine: every benchmark closure is executed a
//! small fixed number of iterations and timed with `std::time::Instant`,
//! printing one mean-per-iteration line. Swap the real crate back in by
//! deleting the `[patch.crates-io]` entry when a registry is reachable.

use std::fmt::Display;
use std::time::Instant;

const WARMUP_ITERS: u32 = 3;
const MEASURE_ITERS: u32 = 20;

/// Re-export matching upstream's path for `criterion::black_box`.
pub use std::hint::black_box;

/// Batch sizing hint for [`Bencher::iter_batched`] (ignored by the stub).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier for one parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self { label: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { label: parameter.to_string() }
    }
}

/// Runs one benchmark body repeatedly.
pub struct Bencher {
    nanos_per_iter: f64,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            black_box(routine());
        }
        self.nanos_per_iter = start.elapsed().as_nanos() as f64 / MEASURE_ITERS as f64;
    }

    /// Times `routine` on fresh inputs produced by `setup` (setup excluded
    /// from timing).
    pub fn iter_batched<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: F,
        _size: BatchSize,
    ) {
        let mut total_nanos = 0u128;
        for i in 0..(WARMUP_ITERS + MEASURE_ITERS) {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            if i >= WARMUP_ITERS {
                total_nanos += start.elapsed().as_nanos();
            }
        }
        self.nanos_per_iter = total_nanos as f64 / MEASURE_ITERS as f64;
    }
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher { nanos_per_iter: 0.0 };
    f(&mut bencher);
    let per_iter = bencher.nanos_per_iter;
    if per_iter >= 1_000_000.0 {
        println!("{label:<40} {:>12.3} ms/iter", per_iter / 1e6);
    } else if per_iter >= 1_000.0 {
        println!("{label:<40} {:>12.3} µs/iter", per_iter / 1e3);
    } else {
        println!("{label:<40} {:>12.1} ns/iter", per_iter);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Upstream tuning knob; accepted and ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` with an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, &mut |b| f(b, input));
        self
    }

    /// Benchmarks `f` under a plain name.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, name);
        run_one(&label, &mut f);
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _parent: self }
    }

    /// Benchmarks a single function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, &mut f);
        self
    }

    /// Upstream configuration hooks; accepted and ignored.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Runs registered groups (handled by `criterion_main!` in the stub).
    pub fn final_summary(&mut self) {}
}

/// Groups benchmark functions under one name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("f", 3), &3u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::LargeInput)
        });
        group.finish();
    }
}
