//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to a crates.io
//! mirror, so the workspace vendors a minimal, dependency-free
//! reimplementation of the `rand 0.8` API surface it actually uses:
//!
//! - [`Rng`] with `gen`, `gen_range`, `gen_bool`;
//! - [`SeedableRng::seed_from_u64`];
//! - [`rngs::StdRng`] (xoshiro256** seeded via SplitMix64 — *not* the ChaCha
//!   generator of upstream `rand`, but a high-quality deterministic PRNG);
//! - [`rngs::mock::StepRng`];
//! - [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! Everything is deterministic given the seed; nothing reads OS entropy.
//! If the real crate ever becomes fetchable again, deleting the
//! `[patch.crates-io]` entry in the workspace manifest swaps it back in
//! (seeded streams will differ — tests asserting statistics, not exact
//! streams, are unaffected).

/// Low-level source of random 32/64-bit words.
pub trait RngCore {
    /// Next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A random value of `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// A uniform value in `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }

    /// Fills `dest` with random bytes (alias for [`RngCore::fill_bytes`]).
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a single `u64` seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step: returns the next state and output word.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** (Blackman/Vigna),
    /// seeded by SplitMix64 expansion of a `u64`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    pub mod mock {
        use super::super::RngCore;

        /// A mock generator stepping by a fixed increment — for tests that
        /// need a predictable stream.
        #[derive(Clone, Debug)]
        pub struct StepRng {
            v: u64,
            inc: u64,
        }

        impl StepRng {
            /// Starts at `initial`, advancing by `increment` per word.
            pub fn new(initial: u64, increment: u64) -> Self {
                Self { v: initial, inc: increment }
            }
        }

        impl RngCore for StepRng {
            fn next_u32(&mut self) -> u32 {
                (self.next_u64() >> 32) as u32
            }
            fn next_u64(&mut self) -> u64 {
                let r = self.v;
                self.v = self.v.wrapping_add(self.inc);
                r
            }
        }
    }
}

pub mod distributions {
    use super::Rng;

    /// A distribution over values of `T`.
    pub trait Distribution<T> {
        /// Samples one value.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard distribution: uniform over the full domain for integers,
    /// uniform in `[0, 1)` for floats.
    pub struct Standard;

    impl Distribution<f64> for Standard {
        #[inline]
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        #[inline]
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                #[inline]
                fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<bool> for Standard {
        #[inline]
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    pub mod uniform {
        use super::super::Rng;
        use core::ops::{Range, RangeInclusive};

        /// A range that can produce a single uniform sample.
        pub trait SampleRange<T> {
            /// Draws one value from the range.
            ///
            /// # Panics
            /// Panics when the range is empty.
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
        }

        macro_rules! impl_int_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    #[inline]
                    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "empty range in gen_range");
                        let span = (self.end as i128 - self.start as i128) as u128;
                        let v = (rng.next_u64() as u128) % span;
                        (self.start as i128 + v as i128) as $t
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    #[inline]
                    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "empty range in gen_range");
                        let span = (hi as i128 - lo as i128) as u128 + 1;
                        let v = (rng.next_u64() as u128) % span;
                        (lo as i128 + v as i128) as $t
                    }
                }
            )*};
        }
        impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        macro_rules! impl_float_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    #[inline]
                    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "empty range in gen_range");
                        let u: $t = super::Distribution::<$t>::sample(&super::Standard, rng);
                        self.start + u * (self.end - self.start)
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    #[inline]
                    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "empty range in gen_range");
                        let u: $t = super::Distribution::<$t>::sample(&super::Standard, rng);
                        lo + u * (hi - lo)
                    }
                }
            )*};
        }
        impl_float_range!(f32, f64);
    }
}

pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let w = rng.gen_range(5usize..=6);
            assert!(w == 5 || w == 6);
        }
    }

    #[test]
    fn gen_range_covers_the_domain_roughly_uniformly() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "skewed: {counts:?}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle left identity (astronomically unlikely)");
    }
}
