//! Property tests for the batched query path: for every target model,
//! `top_k_batch` must equal per-user `top_k` element-for-element — same
//! items, same order — including tie-heavy score distributions, so the
//! batched reward rounds in the attack loop are observationally identical
//! to sequential querying.

use ca_gnn::{GnnConfig, PinSageModel, PinSageRecommender};
use ca_mf::{MfModel, MfRecommender};
use ca_ncf::{NcfConfig, NcfModel, NcfRecommender};
use ca_recsys::knn::ItemKnnRecommender;
use ca_recsys::{
    BlackBoxRecommender, DatasetBuilder, FallibleBlackBox, FaultConfig, FaultyRecommender, ItemId,
    PopularityRecommender, RateLimit, UserId,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a dataset over `n_items` from raw profiles (ids taken mod the
/// catalog; `DatasetBuilder` dedups).
fn dataset(n_items: usize, profiles: &[Vec<u32>]) -> ca_recsys::Dataset {
    let mut b = DatasetBuilder::new(n_items);
    for p in profiles {
        let items: Vec<ItemId> = p.iter().map(|&v| ItemId(v % n_items as u32)).collect();
        b.user(&items);
    }
    b.build()
}

/// Asserts `top_k_batch` over every user equals the per-user `top_k`.
fn assert_batch_parity<R: BlackBoxRecommender>(rec: &R, n_users: usize, k: usize) {
    let users: Vec<UserId> = (0..n_users as u32).map(UserId).collect();
    let batched = rec.top_k_batch(&users, k);
    prop_assert_eq!(batched.len(), users.len());
    for (i, &u) in users.iter().enumerate() {
        let single = rec.top_k(u, k);
        prop_assert_eq!(&batched[i], &single, "user {} diverges at k={}", u, k);
    }
}

/// Profile strategy biased toward collisions: few distinct items across
/// users → heavy score ties in every model.
fn tie_heavy_profiles() -> impl Strategy<Value = Vec<Vec<u32>>> {
    prop::collection::vec(prop::collection::vec(0u32..4, 1..4), 2..10)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mf_batch_matches_per_user(
        profiles in prop::collection::vec(prop::collection::vec(0u32..25, 1..8), 2..10),
        k in 1usize..12,
        seed in 0u64..50,
    ) {
        let data = dataset(25, &profiles);
        let mut rng = StdRng::seed_from_u64(seed);
        let model = MfModel::new(&mut rng, data.n_users(), data.n_items(), 6);
        let rec = MfRecommender::deploy(model, data);
        assert_batch_parity(&rec, profiles.len(), k);
    }

    #[test]
    fn ncf_batch_matches_per_user(
        profiles in prop::collection::vec(prop::collection::vec(0u32..15, 1..6), 2..6),
        k in 1usize..8,
        seed in 0u64..20,
    ) {
        let data = dataset(15, &profiles);
        let cfg = NcfConfig { seed, ..Default::default() };
        let model = NcfModel::new(data.n_users(), data.n_items(), cfg);
        let rec = NcfRecommender::deploy(model, data, 100, 1);
        assert_batch_parity(&rec, profiles.len(), k);
    }

    #[test]
    fn gnn_batch_matches_per_user(
        profiles in prop::collection::vec(prop::collection::vec(0u32..15, 1..6), 2..8),
        k in 1usize..8,
        seed in 0u64..50,
    ) {
        let data = dataset(15, &profiles);
        let model = PinSageModel::with_random_features(
            15,
            GnnConfig { seed, ..Default::default() },
        );
        let rec = PinSageRecommender::deploy(model, data);
        assert_batch_parity(&rec, profiles.len(), k);
    }

    #[test]
    fn knn_batch_matches_per_user(
        profiles in prop::collection::vec(prop::collection::vec(0u32..12, 1..6), 2..10),
        k in 1usize..10,
    ) {
        let rec = ItemKnnRecommender::deploy(dataset(12, &profiles));
        assert_batch_parity(&rec, profiles.len(), k);
    }

    #[test]
    fn popularity_batch_matches_per_user(
        profiles in prop::collection::vec(prop::collection::vec(0u32..20, 1..5), 2..10),
        k in 1usize..15,
    ) {
        let rec = PopularityRecommender::deploy(dataset(20, &profiles));
        assert_batch_parity(&rec, profiles.len(), k);
    }

    // Tie stress: a handful of distinct items shared by everyone makes most
    // catalog scores identical; parity then hinges on the deterministic
    // tie-break being shared by the single and batched paths.

    #[test]
    fn knn_parity_survives_heavy_ties(
        profiles in tie_heavy_profiles(),
        k in 1usize..12,
    ) {
        let rec = ItemKnnRecommender::deploy(dataset(12, &profiles));
        assert_batch_parity(&rec, profiles.len(), k);
    }

    #[test]
    fn popularity_parity_survives_heavy_ties(
        profiles in tie_heavy_profiles(),
        k in 1usize..20,
    ) {
        let rec = PopularityRecommender::deploy(dataset(20, &profiles));
        assert_batch_parity(&rec, profiles.len(), k);
    }

    // Fault-layer parity: on an unreliable platform, batching must not
    // change *which calls fail and how*. Fault draws are a pure function
    // of (seed, logical clock, account), so any chunking of the same user
    // sequence reproduces the per-user loop outcome-for-outcome — errors,
    // truncations, suspensions, clock, and counters included.

    #[test]
    fn faulty_batch_reproduces_per_user_fault_sequences(
        profiles in prop::collection::vec(prop::collection::vec(0u32..12, 1..6), 4..10),
        k in 1usize..8,
        chunk in 1usize..9,
        seed in 0u64..1_000,
        timeout in 0.0f64..0.25,
        truncate in 0.0f64..0.25,
        suspend in 0.0f64..0.08,
    ) {
        let cfg = FaultConfig {
            seed,
            timeout_prob: timeout,
            unavailable_prob: 0.05,
            truncate_prob: truncate,
            truncate_keep: 0.5,
            suspend_prob: suspend,
            reject_inject_prob: 0.05,
            shadow_ban_prob: 0.05,
            rate_limit: Some(RateLimit { window: 8, max_calls: 6 }),
        };
        prop_assert!(cfg.validate().is_ok());
        let data = dataset(12, &profiles);
        let n_users = data.n_users();
        let users: Vec<UserId> = (0..48u32).map(|i| UserId(i % n_users as u32)).collect();

        let mut batched = FaultyRecommender::new(ItemKnnRecommender::deploy(data.clone()), cfg.clone());
        let mut looped = FaultyRecommender::new(ItemKnnRecommender::deploy(data), cfg);

        let mut from_batches = Vec::with_capacity(users.len());
        for group in users.chunks(chunk) {
            from_batches.extend(batched.try_top_k_batch(group, k));
        }
        let from_loop: Vec<_> = users.iter().map(|&u| looped.try_top_k(u, k)).collect();

        prop_assert_eq!(&from_batches, &from_loop, "chunk size {} changed the fault sequence", chunk);
        prop_assert_eq!(batched.clock(), looped.clock(), "batching must cost the same logical time");
        prop_assert_eq!(batched.stats(), looped.stats());
    }

    #[test]
    fn mf_parity_survives_duplicate_embeddings(
        profiles in tie_heavy_profiles(),
        k in 1usize..10,
        seed in 0u64..20,
    ) {
        // Duplicate every item embedding across the catalog: all items with
        // the same bias tie exactly for every user.
        let data = dataset(10, &profiles);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut model = MfModel::new(&mut rng, data.n_users(), data.n_items(), 4);
        let first = model.item_emb.row(0).to_vec();
        for v in 1..model.n_items() {
            model.item_emb.row_mut(v).copy_from_slice(&first);
        }
        let rec = MfRecommender::deploy(model, data);
        assert_batch_parity(&rec, profiles.len(), k);
    }
}
