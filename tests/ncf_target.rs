//! CopyAttack against the *transductive* NCF target: the attack is defined
//! purely over the `BlackBoxRecommender` trait, so the same agent that
//! attacks the inductive GNN attacks a fine-tune-cycle platform unchanged.

use copyattack::core::baselines::target_attack;
use copyattack::core::env::establish_pretend_users;
use copyattack::core::{AttackEnvironment, CopyAttackAgent, CopyAttackVariant};
use copyattack::datagen::{generate, CrossDomainConfig};
use copyattack::mf::BprConfig;
use copyattack::ncf::{train, NcfConfig, NcfRecommender};
use copyattack::recsys::eval::RankingEval;
use copyattack::recsys::{split_dataset, UserId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

struct NcfWorld {
    world: copyattack::datagen::CrossDomainDataset,
    train_ds: copyattack::recsys::Dataset,
    recommender: NcfRecommender,
    pretend: Vec<UserId>,
    eval_users: Vec<UserId>,
    source_mf: copyattack::mf::MfModel,
}

fn build() -> NcfWorld {
    let world = generate(&CrossDomainConfig::tiny(77));
    let mut rng = StdRng::seed_from_u64(0);
    let split = split_dataset(&world.target, 0.1, &mut rng);
    let cfg = NcfConfig { max_epochs: 15, seed: 1, ..Default::default() };
    let (model, report) = train(&split.train, &split.validation, &cfg);
    assert!(report.best_val_hr10 > 0.15, "NCF target too weak: {report:?}");
    // Refresh after every 3 new accounts ("nightly retrain" compressed).
    let mut recommender = NcfRecommender::deploy(model, split.train.clone(), 3, 2);

    let mut prng = StdRng::seed_from_u64(9);
    let pretend = establish_pretend_users(&mut recommender, &split.train, 10, 8, &mut prng);
    let mut eval_users: Vec<UserId> = (0..world.target.n_users() as u32).map(UserId).collect();
    eval_users.shuffle(&mut prng);
    eval_users.truncate(50);
    let source_mf = copyattack::mf::train(
        &world.source,
        &BprConfig { max_epochs: 10, seed: 2, ..Default::default() },
    );
    NcfWorld { world, train_ds: split.train, recommender, pretend, eval_users, source_mf }
}

fn promotion_hr(w: &NcfWorld, rec: &NcfRecommender, target: copyattack::recsys::ItemId) -> f32 {
    let ev = RankingEval::standard(&w.train_ds);
    let mut rng = StdRng::seed_from_u64(5);
    ev.evaluate_promotion(rec, &w.eval_users, target, &mut rng).hr(20)
}

#[test]
fn target_attack_promotes_through_the_refresh_cycle() {
    let w = build();
    let mut rng = StdRng::seed_from_u64(3);
    let targets = w.world.sample_attackable_cold_items(3, 10, 2, &mut rng);
    let target = targets[0];
    let target_src = w.world.source_item(target).expect("overlap");
    let src = copyattack::core::SourceDomain {
        data: &w.world.source,
        mf: &w.source_mf,
        to_target: &w.world.source_to_target,
    };

    let before = promotion_hr(&w, &w.recommender, target);
    let mut env = AttackEnvironment::new(w.recommender.clone(), w.pretend.clone(), target, 20, 30);
    let mut arng = StdRng::seed_from_u64(4);
    target_attack(&src, &mut env, target_src, 0.7, &mut arng);
    let polluted = env.into_recommender();
    let after = promotion_hr(&w, &polluted, target);

    assert!(after > before, "NCF refresh-cycle promotion failed: {before} -> {after}");
}

#[test]
fn copyattack_agent_runs_unchanged_against_ncf() {
    let w = build();
    let mut rng = StdRng::seed_from_u64(6);
    let targets = w.world.sample_attackable_cold_items(3, 10, 2, &mut rng);
    let target = targets[0];
    let target_src = w.world.source_item(target).expect("overlap");
    let src = copyattack::core::SourceDomain {
        data: &w.world.source,
        mf: &w.source_mf,
        to_target: &w.world.source_to_target,
    };

    let attack_cfg = copyattack::core::AttackConfig {
        episodes: 8,
        tree_depth: 2,
        n_pretend: w.pretend.len(),
        ..Default::default()
    };
    let mut agent = CopyAttackAgent::new(attack_cfg, CopyAttackVariant::full(), &src, target_src);
    agent.train(&src, || {
        AttackEnvironment::new(w.recommender.clone(), w.pretend.clone(), target, 20, 30)
    });
    let mut env = AttackEnvironment::new(w.recommender.clone(), w.pretend.clone(), target, 20, 30);
    let outcome = agent.execute(&src, &mut env);
    assert!(outcome.injections > 0);

    let before = promotion_hr(&w, &w.recommender, target);
    let after = promotion_hr(&w, &env.into_recommender(), target);
    assert!(after > before, "CopyAttack vs NCF did not promote: {before} -> {after}");
}
