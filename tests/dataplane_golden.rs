//! Golden bitwise-parity anchors for the CSR data-plane refactor.
//!
//! These hashes were captured from the *pre-refactor* nested-`Vec` dataset
//! layout (`profiles: Vec<Vec<ItemId>>` + `item_users: Vec<Vec<UserId>>`)
//! on fixed seeds, at both `CA_THREADS=1` and `4`. They pin three things
//! the compact CSR arena must reproduce bit for bit:
//!
//! 1. generated cross-domain worlds (profiles, inverted index, alignment);
//! 2. the 80/10/10 split built on top of them;
//! 3. an end-to-end CopyAttack run's promotion metrics (the attack curve's
//!    endpoint flows through every dataset consumer: datagen, split, MF and
//!    GNN training, env carrier masking, injection, and evaluation).
//!
//! A hash change here means the data-plane refactor altered *behavior*,
//! not just layout.

use copyattack::datagen::{generate, CrossDomainConfig};
use copyattack::par;
use copyattack::pipeline::{Method, Pipeline, PipelineConfig};
use copyattack::recsys::{split_dataset, Dataset};
use rand::rngs::StdRng;
use rand::SeedableRng;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

fn mix(h: &mut u64, x: u64) {
    *h = (*h ^ x).wrapping_mul(FNV_PRIME);
}

/// Order-sensitive hash of every observable facet of a dataset: profile
/// sequences, the inverted item index, popularity, and counts.
fn hash_dataset(ds: &Dataset) -> u64 {
    let mut h = FNV_OFFSET;
    mix(&mut h, ds.n_users() as u64);
    mix(&mut h, ds.n_items() as u64);
    mix(&mut h, ds.n_interactions() as u64);
    for u in ds.users() {
        for &v in ds.profile(u) {
            mix(&mut h, v.0 as u64);
        }
        mix(&mut h, u64::MAX); // profile separator
    }
    for v in ds.items() {
        mix(&mut h, ds.item_popularity(v) as u64);
        for &u in ds.item_profile(v).iter() {
            mix(&mut h, u.0 as u64);
        }
        mix(&mut h, u64::MAX);
    }
    h
}

/// Runs `f` at 1 and 4 worker threads, restoring the ambient setting after.
fn at_thread_counts(f: impl Fn(usize)) {
    for t in [1usize, 4] {
        par::set_threads(Some(t));
        f(t);
    }
    par::set_threads(None);
}

#[test]
fn generated_worlds_match_nested_vec_golden() {
    at_thread_counts(|t| {
        let w = generate(&CrossDomainConfig::tiny(42));
        assert_eq!(
            hash_dataset(&w.target),
            0x0ab63518be3752b9,
            "tiny target diverged at CA_THREADS={t}"
        );
        assert_eq!(
            hash_dataset(&w.source),
            0x92cdabd9221dfb72,
            "tiny source diverged at CA_THREADS={t}"
        );
        let mut h = FNV_OFFSET;
        for &v in &w.source_to_target {
            mix(&mut h, v.0 as u64);
        }
        assert_eq!(h, 0x6ed7bbf8eafc97c8, "tiny alignment diverged at CA_THREADS={t}");

        let w = generate(&CrossDomainConfig::small(7));
        assert_eq!(
            hash_dataset(&w.target),
            0x411c011789d375d0,
            "small target diverged at CA_THREADS={t}"
        );
        assert_eq!(
            hash_dataset(&w.source),
            0xad0d5a5f349c828e,
            "small source diverged at CA_THREADS={t}"
        );
    });
}

#[test]
fn split_on_generated_world_matches_nested_vec_golden() {
    at_thread_counts(|t| {
        let w = generate(&CrossDomainConfig::tiny(42));
        let mut rng = StdRng::seed_from_u64(9);
        let s = split_dataset(&w.target, 0.1, &mut rng);
        let mut h = hash_dataset(&s.train);
        for p in s.validation.iter().chain(s.test.iter()) {
            mix(&mut h, p.user.0 as u64);
            mix(&mut h, p.item.0 as u64);
        }
        assert_eq!(h, 0x66310c1db41ac62d, "split diverged at CA_THREADS={t}");
    });
}

#[test]
fn copyattack_curve_matches_nested_vec_golden() {
    at_thread_counts(|t| {
        let pipe = Pipeline::build(&PipelineConfig::tiny(7));
        let row = pipe.run_method_over_targets(Method::CopyAttack, 2);
        let mut h = FNV_OFFSET;
        mix(&mut h, row.metrics.count() as u64);
        for k in [20usize, 10, 5] {
            mix(&mut h, row.metrics.hr(k).to_bits() as u64);
            mix(&mut h, row.metrics.ndcg(k).to_bits() as u64);
        }
        mix(&mut h, row.avg_items_per_profile.to_bits() as u64);
        assert_eq!(h, 0x3dba54e7f58966e6, "attack curve diverged at CA_THREADS={t}");
    });
}

#[test]
#[ignore = "one-shot golden capture"]
fn capture_goldens() {
    at_thread_counts(|t| {
        let w = generate(&CrossDomainConfig::tiny(42));
        eprintln!("t={t} tiny target  {:#x}", hash_dataset(&w.target));
        eprintln!("t={t} tiny source  {:#x}", hash_dataset(&w.source));
        let mut h = FNV_OFFSET;
        for &v in &w.source_to_target {
            mix(&mut h, v.0 as u64);
        }
        eprintln!("t={t} tiny align   {h:#x}");
        let mut rng = StdRng::seed_from_u64(9);
        let s = split_dataset(&w.target, 0.1, &mut rng);
        let mut h = hash_dataset(&s.train);
        for p in s.validation.iter().chain(s.test.iter()) {
            mix(&mut h, p.user.0 as u64);
            mix(&mut h, p.item.0 as u64);
        }
        eprintln!("t={t} tiny split   {h:#x}");
        let w = generate(&CrossDomainConfig::small(7));
        eprintln!("t={t} small target {:#x}", hash_dataset(&w.target));
        eprintln!("t={t} small source {:#x}", hash_dataset(&w.source));
        let pipe = Pipeline::build(&PipelineConfig::tiny(7));
        let row = pipe.run_method_over_targets(Method::CopyAttack, 2);
        let mut h = FNV_OFFSET;
        mix(&mut h, row.metrics.count() as u64);
        for k in [20usize, 10, 5] {
            mix(&mut h, row.metrics.hr(k).to_bits() as u64);
            mix(&mut h, row.metrics.ndcg(k).to_bits() as u64);
        }
        mix(&mut h, row.avg_items_per_profile.to_bits() as u64);
        eprintln!("t={t} attack curve {h:#x}");
    });
}
