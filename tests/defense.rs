//! Defense-in-the-loop: the full attack against a platform that screens
//! new accounts with the shilling detector — the setting the paper's
//! motivation argues CopyAttack was built for.

use copyattack::core::{AttackEnvironment, CopyAttackAgent, CopyAttackVariant};
use copyattack::detect::features::PopularityIndex;
use copyattack::detect::{
    extract_features, naive_fake_profiles, ScreenedRecommender, ZScoreDetector,
};
use copyattack::pipeline::{Pipeline, PipelineConfig};
use copyattack::recsys::{BlackBoxRecommender, UserId};
use copyattack::tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fit_defense(pipe: &Pipeline) -> (ZScoreDetector, PopularityIndex, Matrix) {
    let clean = &pipe.split.train;
    let pop = PopularityIndex::build(clean);
    let item_emb = copyattack::mf::train(
        clean,
        &copyattack::mf::BprConfig { max_epochs: 10, seed: 5, ..Default::default() },
    )
    .item_emb;
    let feats: Vec<_> = (0..clean.n_users() as u32)
        .map(|u| extract_features(clean.profile(UserId(u)), &pop, &item_emb))
        .collect();
    (ZScoreDetector::fit(&feats), pop, item_emb)
}

/// 99th-percentile threshold on genuine scores: the platform tolerates 1%
/// false positives.
fn threshold(pipe: &Pipeline, det: &ZScoreDetector, pop: &PopularityIndex, emb: &Matrix) -> f32 {
    let clean = &pipe.split.train;
    let scores: Vec<f32> = (0..clean.n_users() as u32)
        .map(|u| det.score(&extract_features(clean.profile(UserId(u)), pop, emb)))
        .collect();
    copyattack::tensor::stats::percentile(&scores, 99.0)
}

#[test]
fn screen_blocks_most_generated_fakes() {
    let cfg = PipelineConfig::tiny(42);
    let pipe = Pipeline::build(&cfg);
    let (det, pop, emb) = fit_defense(&pipe);
    let thr = threshold(&pipe, &det, &pop, &emb);
    let mut screened = ScreenedRecommender::new(pipe.recommender.clone(), det, pop, emb, thr);

    let target = pipe.target_items[0];
    let mut rng = StdRng::seed_from_u64(1);
    // Blatant classical fakes: 31-item profiles in a 3–20-item population.
    let fakes = naive_fake_profiles(&pipe.split.train, target, 30, 30, &mut rng);
    for p in &fakes {
        screened.inject_user(p);
    }
    assert!(
        screened.rejected() > screened.accepted(),
        "screen let through {} of {} generated fakes",
        screened.accepted(),
        fakes.len()
    );
}

#[test]
fn copyattack_survives_the_screen_better_than_generated_fakes() {
    let cfg = PipelineConfig::tiny(42);
    let pipe = Pipeline::build(&cfg);
    let src = pipe.source_domain();
    let target = pipe.target_items[0];
    let target_src = pipe.world.source_item(target).unwrap();
    let (det, pop, emb) = fit_defense(&pipe);
    let thr = threshold(&pipe, &det, &pop, &emb);

    // Run the attack against the *screened* platform. The agent is unaware
    // of the defense; rejected injections simply waste budget.
    let mut agent = CopyAttackAgent::new(
        cfg.attack.config.clone(),
        CopyAttackVariant::full(),
        &src,
        target_src,
    );
    let make_env = || {
        AttackEnvironment::new(
            ScreenedRecommender::new(
                pipe.recommender.clone(),
                det.clone(),
                pop.clone(),
                emb.clone(),
                thr,
            ),
            pipe.pretend.clone(),
            target,
            cfg.attack.config.reward_k,
            cfg.attack.config.budget,
        )
    };
    agent.train(&src, make_env);
    let mut env = make_env();
    let outcome = agent.execute(&src, &mut env);
    let screened = env.into_recommender();

    // Anomaly-score comparison (robust to the threshold choice): the
    // profiles CopyAttack injects look less anomalous on average than
    // classical generated fakes on this matched-statistics world.
    let copied_mean: f32 = {
        let mut acc = 0.0;
        let mut n = 0;
        for &u in &outcome.selected_users {
            let raw = src.data.profile(u);
            let translated = src.translate(raw);
            acc += screened.score_profile(&translated);
            n += 1;
        }
        acc / n.max(1) as f32
    };
    let mut rng = StdRng::seed_from_u64(2);
    let fakes =
        naive_fake_profiles(&pipe.split.train, target, cfg.attack.config.budget, 30, &mut rng);
    let fake_mean: f32 =
        fakes.iter().map(|p| screened.score_profile(p)).sum::<f32>() / fakes.len() as f32;
    assert!(
        copied_mean < fake_mean,
        "copied profiles look more anomalous: {copied_mean} vs generated {fake_mean}"
    );

    // And the surviving copied profiles still promote the item.
    let after = pipe.evaluate_promotion(&screened.into_inner(), target, 11).hr(20);
    let before = pipe.evaluate_promotion(&pipe.recommender, target, 11).hr(20);
    assert!(after > before, "attack through the screen failed: HR@20 {before} -> {after}");
}
