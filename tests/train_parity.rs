//! Golden bitwise-parity tests for the shared `ca-train` epoch driver.
//!
//! The mf/ncf/gnn training loops were folded into one driver; these goldens
//! were captured from the *pre-refactor* per-crate loops on a fixed world
//! and pin the unified path to them bit for bit — same RNG draw order, same
//! apply order, same early-stopping trace — at both `CA_THREADS=1` and `4`.
//! A hash change here means the refactor altered training, not just moved it.

use copyattack::gnn::GnnConfig;
use copyattack::mf::BprConfig;
use copyattack::ncf::NcfConfig;
use copyattack::par;
use copyattack::recsys::{split_dataset, Dataset, DatasetBuilder, ItemId, Split, UserId};
use copyattack::train::{
    fit_seeded, History, LrSchedule, Optimizer, PairwiseModel, Step, StopReason, TrainConfig,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

fn hash_f32s(h: &mut u64, xs: &[f32]) {
    for &x in xs {
        *h = (*h ^ x.to_bits() as u64).wrapping_mul(FNV_PRIME);
    }
}

/// The fixed two-group world the goldens were captured on.
fn golden_world() -> Dataset {
    let mut b = DatasetBuilder::new(30);
    for u in 0..24u32 {
        let base = if u < 12 { 0u32 } else { 15 };
        let profile: Vec<ItemId> = (0..6).map(|i| ItemId(base + (u * 7 + i * 3) % 15)).collect();
        b.user(&profile);
    }
    b.build()
}

fn golden_split() -> Split {
    let mut rng = StdRng::seed_from_u64(42);
    split_dataset(&golden_world(), 0.1, &mut rng)
}

/// Runs `f` at 1 and 4 worker threads, restoring the ambient setting after.
fn at_thread_counts(f: impl Fn(usize)) {
    for t in [1usize, 4] {
        par::set_threads(Some(t));
        f(t);
    }
    par::set_threads(None);
}

#[test]
fn mf_training_matches_pre_refactor_golden() {
    at_thread_counts(|t| {
        let ds = golden_world();
        let cfg = BprConfig { max_epochs: 4, seed: 11, ..Default::default() };
        let m = copyattack::mf::train(&ds, &cfg);
        let mut h = FNV_OFFSET;
        hash_f32s(&mut h, m.user_emb.as_slice());
        hash_f32s(&mut h, m.item_emb.as_slice());
        hash_f32s(&mut h, &m.item_bias);
        assert_eq!(h, 0x6e92577392654f98, "mf golden hash diverged at CA_THREADS={t}");
        assert_eq!(m.user_emb.as_slice()[0].to_bits(), 0.10383288f32.to_bits());
        assert_eq!(m.user_emb.as_slice()[1].to_bits(), (-0.09230649f32).to_bits());
    });
}

#[test]
fn ncf_training_matches_pre_refactor_golden() {
    at_thread_counts(|t| {
        let split = golden_split();
        let cfg = NcfConfig { max_epochs: 4, seed: 12, ..Default::default() };
        let (m, rep) = copyattack::ncf::train(&split.train, &split.validation, &cfg);
        let mut h = FNV_OFFSET;
        hash_f32s(&mut h, m.p.as_slice());
        hash_f32s(&mut h, m.q.as_slice());
        hash_f32s(&mut h, &m.w_gmf);
        for l in m.mlp.layers() {
            hash_f32s(&mut h, l.w.as_slice());
            hash_f32s(&mut h, &l.b);
        }
        assert_eq!(h, 0x2993c89c0f57e710, "ncf golden hash diverged at CA_THREADS={t}");
        assert_eq!(rep.epochs_run, 4);
        assert_eq!(rep.best_val_hr10.to_bits(), 1036831949);
        let hist: Vec<u32> = rep.val_hr10_history.iter().map(|x| x.to_bits()).collect();
        assert_eq!(hist, [1036831949, 1036831949, 1036831949, 1036831949]);
    });
}

#[test]
fn gnn_training_matches_pre_refactor_golden() {
    at_thread_counts(|t| {
        let split = golden_split();
        let cfg = GnnConfig { max_epochs: 4, seed: 13, ..Default::default() };
        let (rec, rep) = copyattack::gnn::train(&split.train, &split.validation, &cfg);
        let mut h = FNV_OFFSET;
        for l in rec.model().user_tower.layers() {
            hash_f32s(&mut h, l.w.as_slice());
            hash_f32s(&mut h, &l.b);
        }
        for l in rec.model().item_tower.layers() {
            hash_f32s(&mut h, l.w.as_slice());
            hash_f32s(&mut h, &l.b);
        }
        assert_eq!(h, 0x9ec5534f7a803734, "gnn golden hash diverged at CA_THREADS={t}");
        assert_eq!(rep.epochs_run, 4);
        assert_eq!(rep.best_val_hr10.to_bits(), 1058642330);
        let hist: Vec<u32> = rep.val_hr10_history.iter().map(|x| x.to_bits()).collect();
        assert_eq!(hist, [1050253722, 1056964608, 1056964608, 1058642330]);
    });
}

#[test]
fn gnn_early_stopping_trace_matches_pre_refactor_golden() {
    at_thread_counts(|t| {
        let split = golden_split();
        let cfg = GnnConfig { max_epochs: 12, patience: 1, seed: 13, ..Default::default() };
        let (rec, rep) = copyattack::gnn::train(&split.train, &split.validation, &cfg);
        let mut h = FNV_OFFSET;
        for l in rec.model().user_tower.layers() {
            hash_f32s(&mut h, l.w.as_slice());
            hash_f32s(&mut h, &l.b);
        }
        assert_eq!(h, 0xdcea45cc110a0efa, "gnn early-stop golden diverged at CA_THREADS={t}");
        assert_eq!(rep.epochs_run, 3, "early stop must fire at the same epoch as before");
        let hist: Vec<u32> = rep.val_hr10_history.iter().map(|x| x.to_bits()).collect();
        assert_eq!(hist, [1050253722, 1056964608, 1056964608]);
    });
}

/// A no-op model whose validation scores follow a fixed script — isolates
/// the driver's early-stopping logic from any real gradient math.
struct Scripted {
    scores: Vec<f32>,
    epoch: usize,
}

impl PairwiseModel for Scripted {
    type Grad = ();

    fn pair_grad(&self, _u: UserId, _pos: ItemId, _neg: ItemId) -> ((), f32) {
        ((), 0.0)
    }

    fn apply(&mut self, _u: UserId, _pos: ItemId, _neg: ItemId, _g: &(), _step: &mut Step<'_>) {}

    fn validate(&mut self) -> Option<f32> {
        let s = self.scores.get(self.epoch).copied().unwrap_or(0.0);
        self.epoch += 1;
        Some(s)
    }
}

fn tiny_ds() -> Dataset {
    let mut b = DatasetBuilder::new(6);
    b.user(&[ItemId(0), ItemId(1)]);
    b.user(&[ItemId(2), ItemId(3)]);
    b.build()
}

fn run_scripted(scores: &[f32], patience: usize, cfg: &TrainConfig) -> (usize, History) {
    let mut model = Scripted { scores: scores.to_vec(), epoch: 0 };
    let mut hist = History::new();
    let cfg = TrainConfig { patience: Some(patience), ..cfg.clone() };
    let outcome = fit_seeded(&mut model, &tiny_ds(), &cfg, &mut hist);
    (outcome.epochs_run, hist)
}

proptest! {
    /// Loosening patience can only train longer, never shorter — for any
    /// validation-score script, `epochs_run` is monotone in `patience`.
    #[test]
    fn early_stop_is_monotone_in_patience(
        raw in proptest::collection::vec(0u32..1000, 3..12),
        patience in 1usize..5,
        seed in 0u64..1000,
    ) {
        let scores: Vec<f32> = raw.iter().map(|&r| r as f32 / 1000.0).collect();
        let cfg = TrainConfig { max_epochs: scores.len(), seed, ..Default::default() };
        let (shorter, _) = run_scripted(&scores, patience, &cfg);
        let (longer, _) = run_scripted(&scores, patience + 1, &cfg);
        prop_assert!(shorter <= longer,
            "patience {} ran {} epochs but patience {} ran {}",
            patience, shorter, patience + 1, longer);
        // And the run never stops before the patience window can even fill.
        prop_assert!(shorter >= (patience + 1).min(scores.len()));
    }

    /// The per-epoch learning rate the driver hands the model is exactly
    /// the schedule's closed form — decoupled from run length, scores, and
    /// seed, and bitwise-reproducible across runs.
    #[test]
    fn lr_schedule_is_deterministic_and_positionally_pure(
        every in 1usize..5,
        factor in 0.1f32..1.0,
        gamma in 0.5f32..1.0,
        base in 0.001f32..0.5,
        seed in 0u64..1000,
    ) {
        for schedule in [
            LrSchedule::Constant,
            LrSchedule::StepDecay { every, factor },
            LrSchedule::Exponential { gamma },
        ] {
            let cfg = TrainConfig {
                lr: base,
                max_epochs: 6,
                schedule,
                seed,
                ..Default::default()
            };
            let (_, hist) = run_scripted(&[1.0; 6], 100, &cfg);
            let (_, again) = run_scripted(&[1.0; 6], 100, &cfg);
            for (epoch, (a, b)) in hist.epochs.iter().zip(&again.epochs).enumerate() {
                prop_assert_eq!(a.lr.to_bits(), b.lr.to_bits(),
                    "lr not reproducible at epoch {}", epoch);
                prop_assert_eq!(a.lr.to_bits(), schedule.lr_at(epoch, base).to_bits(),
                    "driver lr diverged from the closed form at epoch {}", epoch);
            }
            if matches!(schedule, LrSchedule::Constant) {
                // The default schedule must not perturb the base rate at all.
                prop_assert!(hist.epochs.iter().all(|e| e.lr.to_bits() == base.to_bits()));
            }
        }
    }
}

/// The driver's stop decision must read the *post-update* validation score;
/// a scripted improvement at epoch 0 followed by flat scores stops exactly
/// `patience` epochs later.
#[test]
fn early_stop_counts_from_the_post_update_best() {
    let scores = [0.5, 0.5, 0.5, 0.5, 0.5, 0.5];
    let cfg = TrainConfig { max_epochs: scores.len(), ..Default::default() };
    let (epochs, hist) = run_scripted(&scores, 2, &cfg);
    // Epoch 0 sets the best; epochs 1 and 2 fail to improve; stop after 3.
    assert_eq!(epochs, 3);
    assert!(matches!(hist.stop, Some(StopReason::EarlyStop { best_epoch: 0, .. })));
}

/// Momentum is a *pluggable* strategy on the same driver: it must be just
/// as deterministic as plain SGD — bitwise-identical models at any thread
/// count — while actually changing the trajectory (β > 0 smooths updates
/// through per-block velocity state, so the weights must differ from SGD).
#[test]
fn momentum_training_is_thread_count_invariant_and_distinct_from_sgd() {
    let ds = golden_world();
    let sgd_cfg = BprConfig { max_epochs: 4, seed: 11, ..Default::default() };
    let mom_cfg = BprConfig { optimizer: Optimizer::Momentum { beta: 0.9 }, ..sgd_cfg.clone() };

    par::set_threads(Some(1));
    let base = copyattack::mf::train(&ds, &mom_cfg);
    let sgd = copyattack::mf::train(&ds, &sgd_cfg);
    par::set_threads(Some(4));
    let wide = copyattack::mf::train(&ds, &mom_cfg);
    par::set_threads(None);

    assert_eq!(base.user_emb.as_slice(), wide.user_emb.as_slice(), "momentum broke determinism");
    assert_eq!(base.item_emb.as_slice(), wide.item_emb.as_slice(), "momentum broke determinism");
    assert_eq!(base.item_bias, wide.item_bias, "momentum broke determinism");

    // Captured before `Optimizer::Adam` was added: growing the strategy
    // enum (and the Adam state in `OptState`) must leave the momentum
    // trajectory bitwise-inert.
    let mut h = FNV_OFFSET;
    hash_f32s(&mut h, base.user_emb.as_slice());
    hash_f32s(&mut h, base.item_emb.as_slice());
    hash_f32s(&mut h, &base.item_bias);
    assert_eq!(h, 0xb0573ea233e9b521, "momentum mf golden diverged from the pre-Adam capture");
    assert_ne!(
        base.user_emb.as_slice(),
        sgd.user_emb.as_slice(),
        "momentum with beta 0.9 must change the trajectory"
    );
}

/// Adam is the third pluggable strategy: per-block moments and bias
/// correction live in driver-owned `OptState`, updated only in the serial
/// apply phase, so an Adam run must be thread-count-invariant like the
/// other two — while taking a genuinely different trajectory.
#[test]
fn adam_training_is_thread_count_invariant_and_distinct() {
    let ds = golden_world();
    let sgd_cfg = BprConfig { max_epochs: 4, seed: 11, ..Default::default() };
    let adam_cfg = BprConfig { optimizer: Optimizer::adam(), ..sgd_cfg.clone() };
    let mom_cfg = BprConfig { optimizer: Optimizer::Momentum { beta: 0.9 }, ..sgd_cfg.clone() };

    par::set_threads(Some(1));
    let base = copyattack::mf::train(&ds, &adam_cfg);
    let sgd = copyattack::mf::train(&ds, &sgd_cfg);
    let mom = copyattack::mf::train(&ds, &mom_cfg);
    par::set_threads(Some(4));
    let wide = copyattack::mf::train(&ds, &adam_cfg);
    par::set_threads(None);

    assert_eq!(base.user_emb.as_slice(), wide.user_emb.as_slice(), "adam broke determinism");
    assert_eq!(base.item_emb.as_slice(), wide.item_emb.as_slice(), "adam broke determinism");
    assert_eq!(base.item_bias, wide.item_bias, "adam broke determinism");
    assert!(base.user_emb.as_slice().iter().all(|x| x.is_finite()), "adam blew up");
    assert_ne!(base.user_emb.as_slice(), sgd.user_emb.as_slice(), "adam must differ from SGD");
    assert_ne!(base.user_emb.as_slice(), mom.user_emb.as_slice(), "adam must differ from momentum");
}

/// The NCF and GNN trainers route their MLP towers through the same block
/// router; momentum must stay thread-count-invariant there too. Hashes
/// compare bit patterns, so the check is exact even if a hyper-parameter
/// choice ever drives some weights non-finite.
#[test]
fn momentum_tower_training_is_thread_count_invariant() {
    let split = golden_split();
    let ncf_cfg = NcfConfig {
        max_epochs: 3,
        seed: 12,
        optimizer: Optimizer::Momentum { beta: 0.5 },
        ..Default::default()
    };
    let gnn_cfg = GnnConfig {
        max_epochs: 3,
        seed: 13,
        optimizer: Optimizer::Momentum { beta: 0.5 },
        ..Default::default()
    };

    let run = |threads| {
        par::set_threads(Some(threads));
        let (ncf, _) = copyattack::ncf::train(&split.train, &split.validation, &ncf_cfg);
        let (gnn, _) = copyattack::gnn::train(&split.train, &split.validation, &gnn_cfg);
        let mut h = FNV_OFFSET;
        hash_f32s(&mut h, ncf.p.as_slice());
        hash_f32s(&mut h, ncf.q.as_slice());
        hash_f32s(&mut h, &ncf.w_gmf);
        for l in ncf.mlp.layers().iter().chain(gnn.model().user_tower.layers()) {
            hash_f32s(&mut h, l.w.as_slice());
            hash_f32s(&mut h, &l.b);
        }
        let finite = ncf.p.as_slice().iter().all(|x| x.is_finite());
        (h, finite)
    };
    let (base, base_finite) = run(1);
    let (wide, _) = run(4);
    par::set_threads(None);

    assert_eq!(base, wide, "momentum tower training diverged across thread counts");
    // Pre-Adam capture (see the mf golden above): the third strategy must
    // not perturb the momentum tower path either.
    assert_eq!(
        base, 0xaa3ea18451980010,
        "momentum tower golden diverged from the pre-Adam capture"
    );
    assert!(base_finite, "momentum with beta 0.5 must keep NCF embeddings finite");
}
