//! Workspace parity suite for the deterministic parallel runtime: every
//! stage of the offline pipeline that runs on `ca-par` must produce
//! bitwise-identical output at any thread count. These tests pin that
//! contract for k-means, clustering-tree construction, surrogate training,
//! and multi-target campaigns by sweeping `par::set_threads` over
//! {1, 2, 3, 8} — the same knob `CA_THREADS` sets from the environment —
//! and comparing against the single-worker (serial) result.
//!
//! The sweep is safe under the parallel test runner precisely because the
//! property under test holds: outputs are thread-count-invariant, so a
//! concurrent test flipping the global knob cannot change any baseline.

use copyattack::cluster::{kmeans, ClusterTree};
use copyattack::core::{
    AttackConfig, AttackEnvironment, Campaign, CopyAttackVariant, ParallelCampaign, SourceDomain,
};
use copyattack::mf::{self, BprConfig};
use copyattack::par;
use copyattack::recsys::{BlackBoxRecommender, Dataset, DatasetBuilder, ItemId, UserId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const THREAD_SWEEP: [usize; 4] = [1, 2, 3, 8];

/// Runs `f` once per sweep entry and asserts every result equals the
/// single-worker baseline; restores the default thread count after.
fn assert_thread_invariant<T: PartialEq + std::fmt::Debug>(label: &str, mut f: impl FnMut() -> T) {
    par::set_threads(Some(1));
    let base = f();
    for &t in &THREAD_SWEEP[1..] {
        par::set_threads(Some(t));
        let got = f();
        assert_eq!(got, base, "{label} diverges at {t} threads");
    }
    par::set_threads(None);
}

/// Random 4-wide coordinate rows; tests truncate every row to a drawn
/// `dim` so point dimensionality still varies per case.
fn point_grid() -> impl Strategy<Value = Vec<Vec<f32>>> {
    prop::collection::vec(prop::collection::vec(-4.0f32..4.0, 4..=4), 6..40)
}

/// Truncates every row to `dim` coordinates.
fn truncated(points: &[Vec<f32>], dim: usize) -> Vec<Vec<f32>> {
    points.iter().map(|p| p[..dim].to_vec()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn kmeans_is_bitwise_identical_across_thread_counts(
        points in point_grid(),
        dim in 2usize..5,
        k in 1usize..5,
        seed in 0u64..1000,
    ) {
        let points = truncated(&points, dim);
        let k = k.min(points.len());
        let refs: Vec<&[f32]> = points.iter().map(Vec::as_slice).collect();
        par::set_threads(Some(1));
        let base = kmeans(&refs, k, 20, &mut StdRng::seed_from_u64(seed));
        for &t in &THREAD_SWEEP[1..] {
            par::set_threads(Some(t));
            let got = kmeans(&refs, k, 20, &mut StdRng::seed_from_u64(seed));
            prop_assert_eq!(&got.centroids, &base.centroids, "centroids at {} threads", t);
            prop_assert_eq!(&got.assignment, &base.assignment, "assignment at {} threads", t);
            prop_assert_eq!(got.inertia.to_bits(), base.inertia.to_bits(), "inertia at {} threads", t);
        }
        par::set_threads(None);
    }

    #[test]
    fn tree_build_is_identical_across_thread_counts(
        points in point_grid(),
        dim in 2usize..5,
        fanout in 2usize..5,
        seed in 0u64..1000,
    ) {
        let points = truncated(&points, dim);
        par::set_threads(Some(1));
        let base = ClusterTree::build_seeded(&points, fanout, seed);
        for &t in &THREAD_SWEEP[1..] {
            par::set_threads(Some(t));
            let got = ClusterTree::build_seeded(&points, fanout, seed);
            prop_assert!(got == base, "tree diverges at {} threads", t);
        }
        par::set_threads(None);
    }
}

/// Deterministic synthetic dataset shared by the training/campaign tests.
fn world() -> Dataset {
    let mut b = DatasetBuilder::new(60);
    for u in 0..48u32 {
        let profile: Vec<ItemId> = (0..6).map(|j| ItemId((u * 7 + j * 11) % 60)).collect();
        b.user(&profile);
    }
    b.build()
}

#[test]
fn mf_training_is_invariant_to_ca_threads() {
    let ds = world();
    let cfg = BprConfig { max_epochs: 3, seed: 9, ..Default::default() };
    assert_thread_invariant("mf::train", || {
        let m = mf::train(&ds, &cfg);
        (m.user_emb.clone(), m.item_emb.clone(), m.item_bias.clone())
    });
}

#[test]
fn ncf_training_is_invariant_to_ca_threads() {
    use copyattack::ncf::{self, NcfConfig};
    let ds = world();
    let cfg = NcfConfig { max_epochs: 2, seed: 4, ..Default::default() };
    assert_thread_invariant("ncf::train", || {
        let (m, report) = ncf::train(&ds, &[], &cfg);
        // Compare through the scoring surface (the model's attacker-visible
        // behavior) plus the training trajectory length.
        let scores: Vec<u32> = (0..8u32)
            .flat_map(|u| (0..8u32).map(move |v| (UserId(u), ItemId(v))))
            .map(|(u, v)| copyattack::recsys::Scorer::score(&m, u, v).to_bits())
            .collect();
        (scores, report.epochs_run)
    });
}

#[test]
fn gnn_training_is_invariant_to_ca_threads() {
    use copyattack::gnn::{self, GnnConfig};
    let ds = world();
    let cfg = GnnConfig { max_epochs: 2, seed: 7, ..Default::default() };
    assert_thread_invariant("gnn::train", || {
        let (rec, report) = gnn::train(&ds, &[], &cfg);
        let scores: Vec<u32> = (0..8u32)
            .flat_map(|u| (0..8u32).map(move |v| (UserId(u), ItemId(v))))
            .map(|(u, v)| copyattack::recsys::Scorer::score(&rec, u, v).to_bits())
            .collect();
        (scores, report.epochs_run)
    });
}

/// Minimal counting platform for the campaign parity test: promotion
/// succeeds once enough injected profiles carry the bridge item.
struct CountingRec {
    good: usize,
    n_users: usize,
    target: ItemId,
}

impl BlackBoxRecommender for CountingRec {
    fn top_k(&self, _u: UserId, k: usize) -> Vec<ItemId> {
        if self.good >= 2 {
            vec![self.target; k.min(1)]
        } else {
            vec![ItemId(9999); k.min(1)]
        }
    }
    fn inject_user(&mut self, profile: &[ItemId]) -> UserId {
        if profile.contains(&ItemId(777)) {
            self.good += 1;
        }
        let id = UserId(self.n_users as u32);
        self.n_users += 1;
        id
    }
    fn catalog_size(&self) -> usize {
        10_000
    }
}

fn campaign_world() -> (Dataset, Vec<ItemId>) {
    let mut b = DatasetBuilder::new(100);
    for u in 0..40u32 {
        let mut profile = vec![ItemId(u % 30 + 30)];
        if u < 15 {
            profile.push(ItemId(3 + 2 * (u % 3)));
            profile.push(ItemId(77));
        }
        profile.push(ItemId((u * 11) % 25));
        b.user(&profile);
    }
    let map: Vec<ItemId> = (0..100).map(|s| ItemId(s * 10 + 7)).collect();
    (b.build(), map)
}

fn campaign_cfg() -> AttackConfig {
    AttackConfig {
        budget: 6,
        n_pretend: 1,
        query_every: 2,
        episodes: 8,
        tree_depth: 2,
        lr: 0.05,
        seed: 11,
        ..Default::default()
    }
}

fn campaign_env(map: &[ItemId], t: ItemId) -> AttackEnvironment<CountingRec> {
    AttackEnvironment::new(
        CountingRec { good: 0, n_users: 0, target: map[t.idx()] },
        vec![UserId(0)],
        map[t.idx()],
        5,
        6,
    )
}

#[test]
fn parallel_campaign_curves_are_invariant_to_ca_threads() {
    let (ds, map) = campaign_world();
    let surrogate = mf::train(&ds, &BprConfig { max_epochs: 3, ..Default::default() });
    let src = SourceDomain { data: &ds, mf: &surrogate, to_target: &map };
    let targets = vec![ItemId(3), ItemId(5), ItemId(7)];
    assert_thread_invariant("ParallelCampaign::train", || {
        let mut campaign = ParallelCampaign::new(
            campaign_cfg(),
            CopyAttackVariant::no_crafting(),
            &src,
            targets.clone(),
        );
        let curves = campaign.train(&src, |t| campaign_env(&map, t));
        curves.iter().map(|c| c.iter().map(|r| r.to_bits()).collect()).collect::<Vec<Vec<u32>>>()
    });
}

#[test]
fn parallel_campaign_matches_serial_single_target_campaigns() {
    let (ds, map) = campaign_world();
    let surrogate = mf::train(&ds, &BprConfig { max_epochs: 3, ..Default::default() });
    let src = SourceDomain { data: &ds, mf: &surrogate, to_target: &map };
    let targets = vec![ItemId(3), ItemId(5), ItemId(7)];

    let mut many = ParallelCampaign::new(
        campaign_cfg(),
        CopyAttackVariant::no_crafting(),
        &src,
        targets.clone(),
    );
    let curves = many.train(&src, |t| campaign_env(&map, t));

    // Each per-target curve must equal a standalone serial Campaign run at
    // the derived seed — the parallel path adds nothing but concurrency.
    for (i, &target) in targets.iter().enumerate() {
        let mut solo_cfg = campaign_cfg();
        solo_cfg.seed = par::split_seed(campaign_cfg().seed, i as u64);
        let mut solo =
            Campaign::new(solo_cfg, CopyAttackVariant::no_crafting(), &src, vec![target]);
        let solo_curve = solo.train(&src, |t| campaign_env(&map, t));
        assert_eq!(curves[i], solo_curve, "target {target} diverges from its standalone run");
    }
}
