//! Demotion attack (the paper's §4.2 note / §6 future work): the same
//! framework with the Eq. 1 reward flipped pushes a *popular* item out of
//! users' Top-k lists.

use copyattack::core::{AttackConfig, AttackGoal, CopyAttackAgent, CopyAttackVariant};
use copyattack::pipeline::{Pipeline, PipelineConfig};
use copyattack::recsys::popularity::PopularityGroups;
use copyattack::recsys::ItemId;

/// Picks a moderately popular target item that also exists in the source
/// domain and has headroom to fall: HR@20 in (0.3, 0.95). The absolute head
/// of the catalog outranks any sampled negative no matter what the attack
/// does to it, so it cannot show movement under the sampled protocol.
fn popular_overlap_item(pipe: &Pipeline) -> ItemId {
    let groups = PopularityGroups::build(&pipe.world.target, 10);
    for g in 0..10 {
        for &v in groups.group(g) {
            if let Some(s) = pipe.world.source_item(v) {
                if pipe.world.source.item_popularity(s) >= 3 {
                    use copyattack::recsys::BlackBoxRecommender;
                    let hits = pipe
                        .eval_users
                        .iter()
                        .filter(|&&u| pipe.recommender.top_k(u, 20).contains(&v))
                        .count() as f32
                        / pipe.eval_users.len() as f32;
                    if (0.1..0.9).contains(&hits) {
                        return v;
                    }
                }
            }
        }
    }
    panic!("no suitable overlapping item found");
}

#[test]
fn demotion_lowers_target_item_exposure() {
    let cfg = PipelineConfig::tiny(31);
    let pipe = Pipeline::build(&cfg);
    let src = pipe.source_domain();
    let target = popular_overlap_item(&pipe);
    let target_src = pipe.world.source_item(target).expect("overlap");

    // Demotion shows up in the *full-catalog* Top-k lists (competitors are
    // lifted past the target), so measure exposure as the fraction of real
    // users whose Top-20 contains the item.
    let exposure = |rec: &copyattack::gnn::PinSageRecommender| {
        use copyattack::recsys::BlackBoxRecommender;
        let hits = pipe.eval_users.iter().filter(|&&u| rec.top_k(u, 20).contains(&target)).count();
        hits as f32 / pipe.eval_users.len() as f32
    };
    let before = exposure(&pipe.recommender);
    assert!(before > 0.05, "need a visible item to demote, exposure = {before}");

    let attack_cfg = AttackConfig { goal: AttackGoal::Demote, ..cfg.attack.config.clone() };
    let mut agent = CopyAttackAgent::new(attack_cfg, CopyAttackVariant::full(), &src, target_src);
    agent.train(&src, || pipe.make_env(target));
    let mut env = pipe.make_env(target);
    let outcome = agent.execute(&src, &mut env);
    let polluted = env.into_recommender();
    let after = exposure(&polluted);

    // Demotion is structurally much harder than promotion: the attacker can
    // only ADD interactions, so the target item's own aggregates never
    // weaken — only competitors can be lifted past it. At Δ = 30 the effect
    // is small; the invariant we hold is that the demotion agent never
    // *helps* the item (which a carrier-selecting agent provably would).
    assert!(
        after <= before + 0.05,
        "demotion agent promoted the item: exposure {before} -> {after} (reward {})",
        outcome.final_reward
    );

    // The inverted mask must exclude carriers entirely.
    for u in &outcome.selected_users {
        assert!(!src.has_item(*u, target_src), "demote agent selected carrier {u}");
    }
}

#[test]
fn demotion_reward_is_complement_of_promotion_reward() {
    // On the same polluted state, the two goals' rewards must sum to 1.
    let cfg = PipelineConfig::tiny(31);
    let pipe = Pipeline::build(&cfg);
    let target = popular_overlap_item(&pipe);
    let mut env = pipe.make_env(target);
    let hr = env.query_reward();
    assert!((AttackGoal::Promote.reward(hr) + AttackGoal::Demote.reward(hr) - 1.0).abs() < 1e-6);
}
