//! End-to-end integration tests spanning every crate: world generation →
//! target-model training → attack → evaluation.

use copyattack::pipeline::{Method, Pipeline, PipelineConfig};

fn pipeline() -> Pipeline {
    Pipeline::build(&PipelineConfig::tiny(42))
}

#[test]
fn copyattack_promotes_cold_items_end_to_end() {
    let pipe = pipeline();
    let none = pipe.run_method_over_targets(Method::WithoutAttack, 3);
    let full = pipe.run_method_over_targets(Method::CopyAttack, 3);
    assert!(
        full.metrics.hr(20) > none.metrics.hr(20) + 0.1,
        "CopyAttack {} vs no attack {}",
        full.metrics.hr(20),
        none.metrics.hr(20)
    );
    // NDCG must move with HR.
    assert!(full.metrics.ndcg(20) > none.metrics.ndcg(20));
}

#[test]
fn random_attack_changes_little() {
    let pipe = pipeline();
    let none = pipe.run_method_over_targets(Method::WithoutAttack, 3);
    let rand = pipe.run_method_over_targets(Method::RandomAttack, 3);
    assert!(
        (rand.metrics.hr(20) - none.metrics.hr(20)).abs() < 0.15,
        "RandomAttack moved HR@20 from {} to {}",
        none.metrics.hr(20),
        rand.metrics.hr(20)
    );
}

#[test]
fn masking_ablation_hurts() {
    let pipe = pipeline();
    let full = pipe.run_method_over_targets(Method::CopyAttack, 3);
    let nomask = pipe.run_method_over_targets(Method::CopyAttackNoMasking, 3);
    assert!(
        full.metrics.hr(20) > nomask.metrics.hr(20),
        "full {} !> no-masking {}",
        full.metrics.hr(20),
        nomask.metrics.hr(20)
    );
}

#[test]
fn crafting_reduces_item_budget() {
    let pipe = pipeline();
    let full = pipe.run_method_over_targets(Method::CopyAttack, 3);
    let nolen = pipe.run_method_over_targets(Method::CopyAttackNoLength, 3);
    assert!(
        full.avg_items_per_profile < nolen.avg_items_per_profile,
        "crafted {} !< raw {}",
        full.avg_items_per_profile,
        nolen.avg_items_per_profile
    );
}

#[test]
fn table2_rows_all_run() {
    let pipe = pipeline();
    for method in Method::table2_rows() {
        let row = pipe.run_method_over_targets(method, 1);
        assert!(row.metrics.count() > 0, "{} produced no evaluations", method.label());
        assert!(row.metrics.hr(20) >= row.metrics.hr(10));
        assert!(row.metrics.hr(10) >= row.metrics.hr(5));
        assert!(row.metrics.ndcg(20) <= row.metrics.hr(20) + 1e-6);
    }
}

#[test]
fn experiments_are_deterministic() {
    let a = pipeline().run_method_over_targets(Method::TargetAttack(70), 2);
    let b = pipeline().run_method_over_targets(Method::TargetAttack(70), 2);
    assert_eq!(a.metrics.hr(20), b.metrics.hr(20));
    assert_eq!(a.metrics.ndcg(5), b.metrics.ndcg(5));
    assert_eq!(a.avg_items_per_profile, b.avg_items_per_profile);
}

#[test]
fn injected_profiles_only_contain_overlap_items() {
    // The copied profiles must consist of items that exist in both domains
    // (the attacker can only copy what the source domain has).
    let pipe = pipeline();
    let target = pipe.target_items[0];
    let (_, _) = pipe.run_method(Method::CopyAttack, target, 7);
    // Re-run capturing the polluted system.
    let src = pipe.source_domain();
    let target_src = pipe.world.source_item(target).unwrap();
    let mut agent = copyattack::core::CopyAttackAgent::new(
        pipe.config.attack.config.clone(),
        copyattack::core::CopyAttackVariant::full(),
        &src,
        target_src,
    );
    let mut env = pipe.make_env(target);
    let outcome = agent.execute(&src, &mut env);
    let polluted = env.into_recommender();
    let n_real = pipe.recommender.data().n_users();
    for u in n_real..polluted.data().n_users() {
        for &v in polluted.data().profile(copyattack::recsys::UserId(u as u32)) {
            assert!(
                pipe.world.target_to_source[v.idx()].is_some(),
                "injected profile contains non-overlap item {v}"
            );
        }
    }
    assert_eq!(outcome.injections, polluted.data().n_users() - n_real);
}

#[test]
fn budget_is_respected_across_methods() {
    let pipe = pipeline();
    let target = pipe.target_items[0];
    let budget = pipe.config.attack.config.budget;
    for method in [Method::RandomAttack, Method::TargetAttack(70), Method::CopyAttack] {
        let src = pipe.source_domain();
        let target_src = pipe.world.source_item(target).unwrap();
        let mut env = pipe.make_env(target);
        let injections = match method {
            Method::RandomAttack => {
                let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(1);
                copyattack::core::baselines::random_attack(&src, &mut env, &mut rng).injections
            }
            Method::TargetAttack(p) => {
                let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(1);
                copyattack::core::baselines::target_attack(
                    &src,
                    &mut env,
                    target_src,
                    p as f32 / 100.0,
                    &mut rng,
                )
                .injections
            }
            _ => {
                let mut agent = copyattack::core::CopyAttackAgent::new(
                    pipe.config.attack.config.clone(),
                    copyattack::core::CopyAttackVariant::full(),
                    &src,
                    target_src,
                );
                agent.execute(&src, &mut env).injections
            }
        };
        assert!(injections <= budget, "{method:?} exceeded budget: {injections}");
    }
}
