//! Property tests for the IVF retrieval path (`ca-ann`): the exact mode
//! must stay bitwise identical to the historical full-scan path, a full
//! probe must reproduce the exact oracle item-for-item, recall against
//! the oracle must clear a floor on clusterable catalogs, and every
//! result must be invariant to `CA_THREADS`.

use ca_ann::{retrieve_batch_top_k, IvfConfig, IvfIndex, IvfRecommender};
use ca_mf::{MfModel, MfRecommender};
use ca_recsys::{
    auto_batch_top_k, BlackBoxRecommender, DatasetBuilder, EmbeddingEngine, ItemId, RetrievalMode,
    ScoringEngine, UserId,
};
use ca_tensor::{ops, Matrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Planted-mixture engine: items and queries scatter around shared topic
/// centroids, so the catalog is genuinely clusterable and the recall
/// floor is a property of the index, not of luck.
struct PlantedEngine {
    users: Matrix,
    items: Matrix,
}

impl PlantedEngine {
    fn new(n_users: usize, n_items: usize, topics: usize, seed: u64) -> Self {
        let dim = 8;
        let mut rng = StdRng::seed_from_u64(seed);
        let centers = Matrix::from_fn(topics, dim, |_, _| rng.gen_range(-1.0f32..1.0));
        let draw = |n: usize, rng: &mut StdRng| {
            Matrix::from_fn(n, dim, |r, c| centers[(r % topics, c)] + rng.gen_range(-0.15f32..0.15))
        };
        let items = draw(n_items, &mut rng);
        let users = draw(n_users, &mut rng);
        PlantedEngine { users, items }
    }
}

impl ScoringEngine for PlantedEngine {
    fn catalog_len(&self) -> usize {
        self.items.rows()
    }

    fn score_batch(&self, users: &[UserId], out: &mut Matrix) {
        for (i, &u) in users.iter().enumerate() {
            for v in 0..self.items.rows() {
                out[(i, v)] = ops::dot(self.users.row(u.idx()), self.items.row(v));
            }
        }
    }

    fn is_seen(&self, user: UserId, item: ItemId) -> bool {
        item.0 % 13 == user.0 % 13
    }
}

impl EmbeddingEngine for PlantedEngine {
    fn embedding_dim(&self) -> usize {
        self.items.cols()
    }

    fn item_embedding_into(&self, item: ItemId, out: &mut [f32]) {
        out.copy_from_slice(self.items.row(item.idx()));
    }

    fn query_embedding_into(&self, user: UserId, out: &mut [f32]) {
        out.copy_from_slice(self.users.row(user.idx()));
    }

    fn score_items(&self, user: UserId, items: &[ItemId], out: &mut [f32]) {
        for (o, &v) in out.iter_mut().zip(items) {
            *o = ops::dot(self.users.row(user.idx()), self.items.row(v.idx()));
        }
    }
}

/// A trained-free MF recommender over a generated dataset: the real
/// `EmbeddingEngine` implementor the serving stack deploys.
fn mf_recommender(n_items: usize, n_users: usize, seed: u64) -> MfRecommender {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DatasetBuilder::new(n_items);
    for _ in 0..n_users {
        let len = rng.gen_range(2..8);
        let items: Vec<ItemId> =
            (0..len).map(|_| ItemId(rng.gen_range(0..n_items as u32))).collect();
        b.user(&items);
    }
    let data = b.build();
    let model = MfModel::new(&mut rng, data.n_users(), data.n_items(), 6);
    MfRecommender::deploy(model, data)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A full probe (`nprobe == nlist`) scores every non-empty cell, i.e.
    /// the whole catalog — it must reproduce the exact oracle bitwise,
    /// ties and all, on the real MF engine.
    #[test]
    fn full_probe_reproduces_the_exact_oracle(
        seed in 0u64..200,
        nlist in 2usize..12,
        k in 1usize..10,
    ) {
        let rec = mf_recommender(40, 12, seed);
        let index = IvfIndex::build(&rec, &IvfConfig::new(nlist, nlist));
        let users: Vec<UserId> = (0..12u32).map(UserId).collect();
        let exact = auto_batch_top_k(&rec, &users, k);
        let probed = index.batch_top_k(&rec, &users, k, nlist);
        prop_assert_eq!(&exact, &probed);
    }

    /// `RetrievalMode::Exact` (and a missing index under any mode) must
    /// leave the historical full-scan path untouched.
    #[test]
    fn exact_mode_is_bitwise_the_pre_index_path(
        seed in 0u64..200,
        k in 1usize..10,
    ) {
        let rec = mf_recommender(30, 10, seed);
        let index = IvfIndex::build(&rec, &IvfConfig::new(4, 2));
        let users: Vec<UserId> = (0..10u32).map(UserId).collect();
        let oracle = auto_batch_top_k(&rec, &users, k);
        let exact_mode =
            retrieve_batch_top_k(&rec, Some(&index), &users, k, RetrievalMode::Exact);
        let no_index = retrieve_batch_top_k(
            &rec, None, &users, k, RetrievalMode::Ivf { nlist: 4, nprobe: 2 },
        );
        prop_assert_eq!(&oracle, &exact_mode);
        prop_assert_eq!(&oracle, &no_index);
    }

    /// On a clusterable catalog, probing half the cells keeps at least
    /// 90% of the oracle's Top-10 across every seed — the recall floor
    /// the bench sweeps in detail (over 50 seeds the worst case sits at
    /// 0.912; dot-product cell ranking under balanced splitting is the
    /// binding constraint, not luck).
    #[test]
    fn recall_floor_holds_across_seeds(seed in 0u64..50) {
        let engine = PlantedEngine::new(16, 600, 8, seed);
        let index = IvfIndex::build(&engine, &IvfConfig::new(16, 1));
        let k = 10;
        let mut hits = 0usize;
        let mut total = 0usize;
        for u in 0..16u32 {
            let exact = ca_recsys::single_top_k(&engine, UserId(u), k);
            let approx = index.top_k(&engine, UserId(u), k, 8);
            hits += exact.iter().filter(|v| approx.contains(v)).count();
            total += exact.len();
        }
        let recall = hits as f64 / total as f64;
        prop_assert!(recall >= 0.9, "recall@10 {recall:.3} below floor at nprobe 8/16");
    }

    /// The `IvfRecommender` wrapper serves the same black-box surface:
    /// probed results never contain seen items and match the index run
    /// directly against the inner engine.
    #[test]
    fn wrapped_recommender_matches_the_bare_index(
        seed in 0u64..100,
        k in 1usize..8,
    ) {
        let rec = mf_recommender(40, 12, seed);
        let cfg = IvfConfig::new(6, 3);
        let wrapped = IvfRecommender::deploy(rec.clone(), cfg);
        let users: Vec<UserId> = (0..12u32).map(UserId).collect();
        let direct = wrapped.index().batch_top_k(&rec, &users, k, 3);
        prop_assert_eq!(&wrapped.top_k_batch(&users, k), &direct);
        for &u in &users {
            for v in wrapped.top_k(u, k) {
                prop_assert!(!rec.is_seen(u, v), "seen item {v} served to {u}");
            }
        }
    }
}

/// Index build and probed search are bitwise invariant to the thread
/// count — the sweep the CI matrix pins via `CA_THREADS`.
#[test]
fn ivf_results_are_thread_count_invariant() {
    let rec = mf_recommender(300, 64, 0xA11);
    let users: Vec<UserId> = (0..64u32).map(UserId).collect();
    let mut baseline: Option<(IvfIndex, Vec<Vec<ItemId>>)> = None;
    for threads in [1usize, 4] {
        ca_par::set_threads(Some(threads));
        let index = IvfIndex::build(&rec, &IvfConfig::new(8, 3));
        let lists = index.batch_top_k(&rec, &users, 10, 3);
        match &baseline {
            None => baseline = Some((index, lists)),
            Some((idx0, lists0)) => {
                assert_eq!(idx0.centroids(), index.centroids(), "centroids drift at {threads}");
                assert_eq!(lists0, &lists, "search drifts at {threads} threads");
            }
        }
    }
    ca_par::set_threads(None);
}
