//! Golden-replay suite for the `ca-serve` live platform.
//!
//! The service layer promises the same determinism contract as every other
//! parallel construct in the workspace: a fixed `ServeConfig` plus a fixed
//! call sequence replays bit for bit at any `CA_THREADS` setting, and —
//! with fault injection disabled — at any shard count. With fault
//! injection *enabled*, replays stay exact at a fixed shard count, through
//! crashes, checkpoint rollbacks, and restarts.

use copyattack::datagen::{generate, CrossDomainConfig, OrganicSampler};
use copyattack::par;
use copyattack::recsys::{FallibleBlackBox, FaultConfig, FaultyRecommender, ItemId, UserId};
use copyattack::serve::{LivePlatform, ServeConfig};

fn platform(cfg: ServeConfig) -> LivePlatform {
    let dcfg = CrossDomainConfig::tiny(21);
    let world = generate(&dcfg);
    let sampler = OrganicSampler::from_truth(&world.truth, dcfg.affinity_beta);
    LivePlatform::launch(&world.target, sampler, cfg).unwrap()
}

/// A tenant workload mixing queries, injections, and waits.
fn drive(p: &mut LivePlatform, calls: u64) {
    for i in 0..calls {
        let _ = p.try_top_k(UserId((i % 11) as u32), 10);
        if i % 4 == 0 {
            let _ = p.try_inject_user(&[ItemId(1), ItemId(5), ItemId((i % 17) as u32)]);
        }
        if i % 9 == 0 {
            p.wait(5);
        }
    }
}

fn chaos_cfg() -> ServeConfig {
    ServeConfig {
        crash_prob: 0.02,
        stall_prob: 0.01,
        retrain_every: 24,
        retrain_ticks: 6,
        checkpoint_every: 12,
        stall_detect_ticks: 8,
        restart_base: 8,
        restart_max: 64,
        ..Default::default()
    }
}

/// Runs the full workload — world ticks, tenant calls, and the parallel
/// read path — and folds everything observable into one digest.
fn run_digest(cfg: ServeConfig) -> u64 {
    let mut p = platform(cfg);
    p.advance(80);
    drive(&mut p, 160);
    let users: Vec<UserId> = (0..64).map(UserId).collect();
    let mut h = p.replay_digest();
    for r in p.par_serve_queries(&users, 12) {
        let v = match r {
            Ok(list) => {
                list.iter().fold(1u64, |a, i| a.wrapping_mul(0x100_0000_01b3) ^ u64::from(i.0))
            }
            Err(e) => 0x5EED ^ e.to_string().len() as u64,
        };
        h = (h ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
    h
}

#[test]
fn replay_is_identical_across_thread_counts() {
    par::set_threads(Some(1));
    let reference = run_digest(chaos_cfg());
    for t in [2usize, 4, 8] {
        par::set_threads(Some(t));
        assert_eq!(run_digest(chaos_cfg()), reference, "serve replay diverged at CA_THREADS={t}");
    }
    par::set_threads(None);
}

#[test]
fn crash_free_runs_replay_across_shard_counts() {
    let base = ServeConfig {
        retrain_every: 24,
        retrain_ticks: 6,
        checkpoint_every: 12,
        ..Default::default()
    };
    let reference = run_digest(ServeConfig { n_shards: 1, ..base.clone() });
    for n in [2usize, 3, 4, 8] {
        assert_eq!(
            run_digest(ServeConfig { n_shards: n, ..base.clone() }),
            reference,
            "crash-free serve replay diverged at {n} shards"
        );
    }
}

#[test]
fn crashy_runs_replay_exactly_at_a_fixed_shard_count() {
    assert_eq!(run_digest(chaos_cfg()), run_digest(chaos_cfg()));
    // The run being reproduced is genuinely eventful: faults fired and
    // the supervisor recovered from them.
    let mut p = platform(chaos_cfg());
    p.advance(80);
    drive(&mut p, 160);
    let crashes: u64 = p.shards().iter().map(|s| s.stats().crashes).sum();
    let restarts: u64 = p.shards().iter().map(|s| s.stats().restarts).sum();
    assert!(crashes > 0, "chaos config produced no crashes");
    assert!(restarts > 0, "no shard ever restarted");
    assert!(p.stats().organic_availability() < 1.0, "faults must cost availability");
    assert!(p.stats().organic_availability() > 0.5, "platform collapsed entirely");
}

#[test]
fn scripted_crash_and_checkpoint_recovery_replay_exactly() {
    let cfg = ServeConfig {
        scripted_crashes: vec![(40, 0), (90, 1)],
        retrain_every: 32,
        retrain_ticks: 4,
        checkpoint_every: 16,
        restart_base: 10,
        restart_max: 10,
        ..Default::default()
    };
    let run = || {
        let mut p = platform(cfg.clone());
        drive(&mut p, 120);
        p
    };
    let a = run();
    let b = run();
    assert_eq!(a.replay_digest(), b.replay_digest());
    assert_eq!(a.stats(), b.stats());
    // Both scripted crashes fired and both shards came back.
    assert_eq!(a.shards()[0].stats().crashes, 1);
    assert_eq!(a.shards()[1].stats().crashes, 1);
    assert_eq!(a.shards()[0].stats().restarts, 1);
    assert_eq!(a.shards()[1].stats().restarts, 1);
}

#[test]
fn fault_wrapper_stacks_on_the_live_platform_deterministically() {
    // The PR-1 fault layer composes over the service layer: per-call
    // faults in front, shard-level faults behind, one logical clock each.
    let run = || {
        let inner = platform(chaos_cfg());
        let mut f = FaultyRecommender::new(inner, FaultConfig::chaos(0xFEED));
        let mut trace = Vec::new();
        for i in 0..120u64 {
            let sig = match f.try_top_k(UserId((i % 9) as u32), 8) {
                Ok(v) => format!("q:{}", v.len()),
                Err(e) => format!("e:{e}"),
            };
            trace.push(sig);
            if i % 6 == 0 {
                let sig = match f.try_inject_user(&[ItemId(2), ItemId(3)]) {
                    Ok(u) => format!("i:{u}"),
                    Err(e) => format!("x:{e}"),
                };
                trace.push(sig);
            }
        }
        trace.push(format!("clock:{}", f.clock()));
        trace.push(format!("inner:{}", f.inner().replay_digest()));
        trace
    };
    assert_eq!(run(), run());
}
