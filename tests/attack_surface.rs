//! Tests of the black-box boundary: the attacker's observable costs
//! (queries, injections) and the trait-level containment of its access.

use copyattack::core::{AttackEnvironment, CopyAttackAgent, CopyAttackVariant};
use copyattack::pipeline::{Pipeline, PipelineConfig};
use copyattack::recsys::{BlackBoxRecommender, ItemId, UserId};

#[test]
fn query_count_follows_the_cadence() {
    let cfg = PipelineConfig::tiny(42);
    let pipe = Pipeline::build(&cfg);
    let src = pipe.source_domain();
    let target = pipe.target_items[0];
    let target_src = pipe.world.source_item(target).unwrap();

    let mut agent = CopyAttackAgent::new(
        cfg.attack.config.clone(),
        CopyAttackVariant::full(),
        &src,
        target_src,
    );
    let mut env = pipe.make_env(target);
    let outcome = agent.execute(&src, &mut env);

    // One reward query (over n_pretend users) per `query_every` injections,
    // plus the forced terminal query; each reward query costs n_pretend
    // Top-k requests.
    let budget = cfg.attack.config.budget;
    let q = cfg.attack.config.query_every;
    let reward_rounds_upper = budget.div_ceil(q) + 1;
    assert!(outcome.queries as usize <= reward_rounds_upper * cfg.attack.config.n_pretend);
    assert!(outcome.queries as usize >= cfg.attack.config.n_pretend, "at least one reward round");
    assert!(outcome.injections <= budget);
}

/// A recommender wrapper that panics if the attacker somehow asks for
/// recommendations of accounts it does not own — demonstrating that the
/// attack stays within the pretend-user surface.
struct PretendOnly<R> {
    inner: R,
    allowed_from: u32,
}

impl<R: BlackBoxRecommender> BlackBoxRecommender for PretendOnly<R> {
    fn top_k(&self, user: UserId, k: usize) -> Vec<ItemId> {
        assert!(user.0 >= self.allowed_from, "attack queried a non-attacker account {user}");
        self.inner.top_k(user, k)
    }
    fn inject_user(&mut self, profile: &[ItemId]) -> UserId {
        self.inner.inject_user(profile)
    }
    fn catalog_size(&self) -> usize {
        self.inner.catalog_size()
    }
}

#[test]
fn attack_only_queries_attacker_controlled_accounts() {
    let cfg = PipelineConfig::tiny(42);
    let pipe = Pipeline::build(&cfg);
    let src = pipe.source_domain();
    let target = pipe.target_items[0];
    let target_src = pipe.world.source_item(target).unwrap();
    let n_real = pipe.world.target.n_users() as u32;

    let guarded = PretendOnly { inner: pipe.recommender.clone(), allowed_from: n_real };
    let mut env = AttackEnvironment::new(
        guarded,
        pipe.pretend.clone(),
        target,
        cfg.attack.config.reward_k,
        cfg.attack.config.budget,
    );
    let mut agent = CopyAttackAgent::new(
        cfg.attack.config.clone(),
        CopyAttackVariant::full(),
        &src,
        target_src,
    );
    // Must complete without tripping the guard.
    let outcome = agent.execute(&src, &mut env);
    assert!(outcome.injections > 0);
}

#[test]
fn learning_curve_is_recorded_per_episode() {
    let cfg = PipelineConfig::tiny(42);
    let pipe = Pipeline::build(&cfg);
    let src = pipe.source_domain();
    let target = pipe.target_items[0];
    let target_src = pipe.world.source_item(target).unwrap();
    let mut agent = CopyAttackAgent::new(
        cfg.attack.config.clone(),
        CopyAttackVariant::full(),
        &src,
        target_src,
    );
    let curve = agent.train(&src, || pipe.make_env(target));
    assert_eq!(curve.len(), cfg.attack.config.episodes);
    assert_eq!(agent.episode_rewards(), &curve[..]);
    assert!(curve.iter().all(|r| (0.0..=1.0).contains(r)));
}
