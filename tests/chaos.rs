//! Chaos suite: the full CopyAttack loop against a *faulty* deployed
//! platform — rate limits, timeouts, outages, truncated lists, suspended
//! and shadow-banned accounts — at a ≥ 20% combined fault rate.
//!
//! Asserted invariants:
//! 1. the resilient attack loop never panics under chaos;
//! 2. the final reward stays within a fixed tolerance of the fault-free
//!    same-seed run (the attack degrades, it does not derail);
//! 3. every retry is charged to the metered attempt counts — the wrapper
//!    stack cannot hide attacker cost;
//! 4. an identical-seed rerun reproduces the same outcome bit for bit.

use copyattack::core::{
    AttackConfig, AttackEnvironment, Campaign, CampaignRun, CopyAttackAgent, CopyAttackVariant,
    ResilienceConfig, RetryPolicy,
};
use copyattack::datagen::OrganicSampler;
use copyattack::pipeline::{Pipeline, PipelineConfig};
use copyattack::recsys::{BlackBoxRecommender, FallibleBlackBox, RecError};
use copyattack::recsys::{FaultConfig, FaultStats, FaultyRecommender, ItemId, UserId};
use copyattack::serve::{LivePlatform, ServeConfig};
use proptest::prelude::*;

const FAULT_SEED: u64 = 0xC0FFEE;

fn chaos_resilience() -> ResilienceConfig {
    ResilienceConfig {
        retry: RetryPolicy {
            max_retries: 5,
            base_delay: 2,
            max_delay: 128,
            jitter: 0.25,
            max_total_wait: 1024,
        },
        min_quorum: 0.5,
        reestablish: true,
        seed: 99,
    }
}

/// One full-episode chaos run; returns the outcome plus the fault
/// injector's view of the traffic.
fn chaos_run(pipe: &Pipeline, target: ItemId) -> (f32, usize, u64, u64, u64, FaultStats) {
    let src = pipe.source_domain();
    let target_src = pipe.world.source_item(target).unwrap();
    let mut agent = CopyAttackAgent::new(
        pipe.config.attack.config.clone(),
        CopyAttackVariant::full(),
        &src,
        target_src,
    );
    let mut env = pipe.make_faulty_env(target, FaultConfig::chaos(FAULT_SEED), chaos_resilience());
    let outcome = agent.execute(&src, &mut env);

    let queries = env.queries();
    let failed_queries = env.failed_queries();
    let inject_attempts = env.inject_attempts();
    let faulty = env.into_recommender();
    // Invariant 3: every attempt that reached the platform was metered —
    // the fault injector saw exactly as many calls as the meter charged.
    assert_eq!(
        queries + inject_attempts,
        faulty.calls(),
        "metered attempts must equal platform calls (retries included)"
    );
    (
        outcome.final_reward,
        outcome.injections,
        queries,
        failed_queries,
        inject_attempts,
        faulty.stats().clone(),
    )
}

#[test]
fn full_attack_survives_twenty_percent_fault_rate() {
    let cfg = PipelineConfig::tiny(42);
    let pipe = Pipeline::build(&cfg);
    let target = pipe.target_items[0];
    let src = pipe.source_domain();
    let target_src = pipe.world.source_item(target).unwrap();

    // The chaos preset is genuinely hostile: ≥ 20% of calls misbehave.
    let fc = FaultConfig::chaos(FAULT_SEED);
    assert!(
        fc.query_fault_rate() + fc.suspend_prob >= 0.18 && fc.inject_fault_rate() >= 0.18,
        "chaos preset lost its teeth"
    );

    // Fault-free reference with the same agent seed.
    let mut ref_agent = CopyAttackAgent::new(
        pipe.config.attack.config.clone(),
        CopyAttackVariant::full(),
        &src,
        target_src,
    );
    let mut ref_env = pipe.make_env(target);
    let reference = ref_agent.execute(&src, &mut ref_env);

    // Chaos run (invariant 1: completing it is the no-panic assertion).
    let (reward, injections, queries, failed_queries, inject_attempts, stats) =
        chaos_run(&pipe, target);

    // Invariant 2: same-seed chaos reward within a fixed tolerance of the
    // fault-free run.
    assert!(
        (reward - reference.final_reward).abs() <= 0.35,
        "chaos reward {reward} strayed from fault-free {}",
        reference.final_reward
    );

    // The platform really did misbehave, and retries really were charged:
    // more attempts than the fault-free run needed for the same loop.
    assert!(stats.total_errors() > 0, "chaos run saw no faults: {stats:?}");
    assert!(failed_queries > 0, "no failed query attempt was recorded");
    assert!(
        queries >= reference.queries,
        "chaos attempts {queries} below fault-free count {}",
        reference.queries
    );
    // Budget accounting: crafted injections never exceed Δ even though
    // re-establishment and retries add platform calls on top.
    assert!(injections <= pipe.config.attack.config.budget);
    assert!(inject_attempts as usize >= injections);
}

#[test]
fn identical_seeds_reproduce_the_chaos_outcome_exactly() {
    let cfg = PipelineConfig::tiny(42);
    let pipe = Pipeline::build(&cfg);
    let target = pipe.target_items[0];

    let a = chaos_run(&pipe, target);
    let b = chaos_run(&pipe, target);
    assert_eq!(a, b, "same seeds must reproduce the same chaos run");
}

// ---------------------------------------------------------------------------
// Shard-crash chaos: the campaign against the ca-serve live platform.
// ---------------------------------------------------------------------------

/// Deploys the pipeline's target world as a live platform (organic
/// traffic, retrain drift) and establishes the pipeline's pretend
/// accounts on it. Returned platforms are pristine per-episode templates:
/// clone one for each episode so every run replays identically.
fn live_service(pipe: &Pipeline, serve_cfg: ServeConfig) -> (LivePlatform, Vec<UserId>) {
    let sampler = OrganicSampler::from_truth(&pipe.world.truth, pipe.config.world.affinity_beta);
    let mut p = LivePlatform::launch(&pipe.world.target, sampler, serve_cfg).unwrap();
    let pretend: Vec<UserId> = pipe
        .pretend_profiles
        .iter()
        .map(|profile| p.try_inject_user(profile).expect("healthy launch accepts accounts"))
        .collect();
    (p, pretend)
}

fn healthy_serve_cfg() -> ServeConfig {
    ServeConfig {
        n_shards: 1,
        organic_rate: 1.0,
        retrain_every: 16,
        retrain_ticks: 2,
        checkpoint_every: 8,
        ..Default::default()
    }
}

/// Same platform, but a scripted shard crash on the first tick after the
/// pretend accounts are established (establishment costs one tick per
/// account), with a restart backoff far beyond any retry budget: the
/// episode's first call finds the only shard down, and the whole episode
/// degrades to typed failures.
fn doomed_serve_cfg(n_pretend: u64) -> ServeConfig {
    ServeConfig {
        scripted_crashes: vec![(n_pretend + 1, 0)],
        restart_base: 50_000,
        restart_max: 50_000,
        ..healthy_serve_cfg()
    }
}

#[test]
fn shard_crash_interrupts_the_campaign_and_resume_replays_the_curve() {
    let cfg = PipelineConfig::tiny(42);
    let pipe = Pipeline::build(&cfg);
    let target = pipe.target_items[0];
    let target_src = pipe.world.source_item(target).unwrap();
    let src = pipe.source_domain();
    let attack_cfg = AttackConfig { episodes: 8, ..pipe.config.attack.config.clone() };

    let (healthy, pretend) = live_service(&pipe, healthy_serve_cfg());
    let (doomed, doomed_pretend) =
        live_service(&pipe, doomed_serve_cfg(pipe.pretend_profiles.len() as u64));
    let make_episode = |template: &LivePlatform, accounts: &[UserId]| {
        AttackEnvironment::new(
            template.clone(),
            accounts.to_vec(),
            target,
            attack_cfg.reward_k,
            attack_cfg.budget,
        )
        .with_resilience(chaos_resilience())
        .with_pretend_profiles(pipe.pretend_profiles.clone())
    };

    // Reference: every episode served by a healthy platform clone.
    let mut reference =
        Campaign::new(attack_cfg.clone(), CopyAttackVariant::full(), &src, vec![target_src]);
    let CampaignRun::Completed { curve: full_curve } =
        reference.train_resilient(&src, |_| make_episode(&healthy, &pretend))
    else {
        panic!("a healthy platform cannot interrupt the campaign");
    };
    assert_eq!(full_curve.len(), 8);

    // Interrupted run: episode 4 lands on a platform whose only shard
    // crashes on the first tick and stays down past every retry budget.
    let mut campaign =
        Campaign::new(attack_cfg.clone(), CopyAttackVariant::full(), &src, vec![target_src]);
    let mut episode_no = 0usize;
    let run = campaign.train_resilient(&src, |_| {
        let doomed_now = episode_no == 4;
        episode_no += 1;
        if doomed_now {
            make_episode(&doomed, &doomed_pretend)
        } else {
            make_episode(&healthy, &pretend)
        }
    });
    let CampaignRun::Interrupted { checkpoint, cause } = run else {
        panic!("a dead shard must interrupt the campaign");
    };
    assert!(
        matches!(cause, RecError::Degraded { retry_after } if retry_after > 0),
        "the supervisor must fail typed, with a retry hint: got {cause}"
    );
    assert_eq!(checkpoint.episodes_completed(), 4);
    assert_eq!(checkpoint.curve(), &full_curve[..4], "pre-crash prefix must match");

    // The shard comes back (fresh healthy clones): resuming from the
    // checkpoint replays the aborted episode cleanly and the combined
    // curve is bit-identical to the uninterrupted reference.
    let mut resumed = Campaign::resume(*checkpoint);
    let CampaignRun::Completed { curve } =
        resumed.train_resilient(&src, |_| make_episode(&healthy, &pretend))
    else {
        panic!("recovered platform cannot interrupt");
    };
    assert_eq!(curve, full_curve, "resume must reproduce the uninterrupted curve exactly");
}

#[test]
fn mid_campaign_shard_crash_with_recovery_still_completes() {
    // Unlike the doomed config above, here the shard crash heals within
    // the retry budget: the campaign rides through on retries and typed
    // degradation without ever aborting, and the run stays reproducible.
    let cfg = PipelineConfig::tiny(42);
    let pipe = Pipeline::build(&cfg);
    let target = pipe.target_items[0];
    let target_src = pipe.world.source_item(target).unwrap();
    let src = pipe.source_domain();
    let attack_cfg = AttackConfig { episodes: 6, ..pipe.config.attack.config.clone() };

    let crash_at = pipe.pretend_profiles.len() as u64 + 10;
    let serve_cfg = ServeConfig {
        scripted_crashes: vec![(crash_at, 0)],
        restart_base: 12,
        restart_max: 12,
        ..healthy_serve_cfg()
    };
    let run = || {
        let (template, pretend) = live_service(&pipe, serve_cfg.clone());
        let mut campaign =
            Campaign::new(attack_cfg.clone(), CopyAttackVariant::full(), &src, vec![target_src]);
        let outcome = campaign.train_resilient(&src, |_| {
            AttackEnvironment::new(
                template.clone(),
                pretend.clone(),
                target,
                attack_cfg.reward_k,
                attack_cfg.budget,
            )
            .with_resilience(chaos_resilience())
            .with_pretend_profiles(pipe.pretend_profiles.clone())
        });
        match outcome {
            CampaignRun::Completed { curve } => curve,
            CampaignRun::Interrupted { cause, .. } => {
                panic!("a 12-tick outage must be absorbed by retries, got: {cause}")
            }
        }
    };
    let a = run();
    let b = run();
    assert_eq!(a.len(), 6);
    assert_eq!(a, b, "recovered-crash campaign must replay bit for bit");
}

// ---------------------------------------------------------------------------
// Determinism proptests for the fault layer and the retry policy.
// ---------------------------------------------------------------------------

/// Minimal deterministic platform for property tests.
struct Fixed {
    n_items: usize,
    n_users: usize,
}

impl BlackBoxRecommender for Fixed {
    fn top_k(&self, _user: UserId, k: usize) -> Vec<ItemId> {
        (0..self.n_items as u32).take(k).map(ItemId).collect()
    }
    fn inject_user(&mut self, _profile: &[ItemId]) -> UserId {
        let id = UserId(self.n_users as u32);
        self.n_users += 1;
        id
    }
    fn catalog_size(&self) -> usize {
        self.n_items
    }
}

fn fault_trace(cfg: &FaultConfig, calls: usize) -> Vec<String> {
    let mut f = FaultyRecommender::new(Fixed { n_items: 50, n_users: 0 }, cfg.clone());
    let mut trace = Vec::with_capacity(calls * 2);
    for i in 0..calls {
        let sig = match f.try_top_k(UserId((i % 7) as u32), 10) {
            Ok(v) => format!("q:ok:{}", v.len()),
            Err(e) => format!("q:err:{e}"),
        };
        trace.push(sig);
        let sig = match f.try_inject_user(&[ItemId(1), ItemId(2)]) {
            Ok(u) => format!("i:ok:{u}"),
            Err(e) => format!("i:err:{e}"),
        };
        trace.push(sig);
    }
    trace.push(format!("clock:{} stats:{:?}", f.clock(), f.stats()));
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Same seed + same fault probabilities ⇒ the exact same sequence of
    /// outcomes, errors, clock ticks, and counters.
    #[test]
    fn faulty_recommender_is_seed_deterministic(
        seed in 0u64..1_000_000,
        timeout in 0.0f64..0.3,
        unavailable in 0.0f64..0.3,
        truncate in 0.0f64..0.3,
        suspend in 0.0f64..0.1,
    ) {
        let cfg = FaultConfig {
            seed,
            timeout_prob: timeout,
            unavailable_prob: unavailable,
            truncate_prob: truncate,
            truncate_keep: 0.5,
            suspend_prob: suspend,
            reject_inject_prob: 0.05,
            shadow_ban_prob: 0.05,
            rate_limit: Some(copyattack::recsys::RateLimit { window: 16, max_calls: 12 }),
        };
        prop_assert!(cfg.validate().is_ok());
        prop_assert_eq!(fault_trace(&cfg, 60), fault_trace(&cfg, 60));
    }

    /// The backoff schedule is deterministic, monotone until the cap, and
    /// never exceeds it.
    #[test]
    fn retry_backoff_is_capped_and_deterministic(
        base in 1u64..1_000,
        factor in 1u64..1_000,
        attempt in 0u32..128,
    ) {
        let max_delay = base.saturating_mul(factor);
        let p = RetryPolicy { max_retries: 10, base_delay: base, max_delay, jitter: 0.0, ..RetryPolicy::default() };
        let d = p.backoff(attempt);
        prop_assert!(d <= max_delay, "backoff {} above cap {}", d, max_delay);
        prop_assert!(d >= base.min(max_delay));
        prop_assert_eq!(d, p.backoff(attempt), "backoff must be a pure function");
        if attempt > 0 {
            prop_assert!(p.backoff(attempt - 1) <= d, "backoff must be monotone");
        }
    }

    /// Jittered delays are reproducible from the seed and bounded by the
    /// jitter fraction.
    #[test]
    fn retry_jitter_is_seeded_and_bounded(
        seed in 0u64..1_000_000,
        jitter in 0.0f64..1.0,
        attempt in 0u32..32,
    ) {
        let p = RetryPolicy { max_retries: 8, base_delay: 3, max_delay: 1 << 20, jitter, ..RetryPolicy::default() };
        let delay = |s| {
            let mut rng = copyattack::recsys::SplitMix64::new(s);
            p.delay_for(attempt, &copyattack::recsys::RecError::Timeout, &mut rng)
        };
        let base = p.backoff(attempt);
        let d = delay(seed);
        prop_assert_eq!(d, delay(seed), "same seed, same delay");
        prop_assert!(d >= base);
        prop_assert!((d as f64) <= base as f64 * (1.0 + jitter) + 1.0);
    }
}
