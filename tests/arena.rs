//! Golden bitwise-parity tests for the attack arena refactor.
//!
//! Every Table 2 attacker used to be hard-wired into the pipeline's method
//! dispatch; it now routes through the string-keyed [`AttackRegistry`].
//! The hashes below were captured from the *pre-registry* pipeline on
//! `PipelineConfig::tiny(7)` and pin the registry path to it bit for bit —
//! same constructor order, same RNG seeding, same env lifecycle — at both
//! `CA_THREADS=1` and `4`. A hash change here means the registry rerouting
//! altered an attack, not just re-labelled it.

use copyattack::core::AttackConfig;
use copyattack::par;
use copyattack::pipeline::{Method, Pipeline, PipelineConfig};
use proptest::prelude::*;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

fn hash_f32s(h: &mut u64, xs: &[f32]) {
    for &x in xs {
        *h = (*h ^ x.to_bits() as u64).wrapping_mul(FNV_PRIME);
    }
}

/// Runs `f` at 1 and 4 worker threads, restoring the ambient setting after.
fn at_thread_counts(f: impl Fn(usize)) {
    for t in [1usize, 4] {
        par::set_threads(Some(t));
        f(t);
    }
    par::set_threads(None);
}

/// The fixed world the goldens were captured on.
fn golden_pipeline() -> Pipeline {
    Pipeline::build(&PipelineConfig::tiny(7))
}

/// Hashes a Table 2 row exactly as the capture harness did: the six
/// promotion metrics followed by the mean injected-profile length.
fn row_hash(pipe: &Pipeline, method: Method) -> u64 {
    let row = pipe.run_method_over_targets(method, 2);
    let mut h = FNV_OFFSET;
    hash_f32s(
        &mut h,
        &[
            row.metrics.hr(20),
            row.metrics.hr(10),
            row.metrics.hr(5),
            row.metrics.ndcg(20),
            row.metrics.ndcg(10),
            row.metrics.ndcg(5),
            row.avg_items_per_profile,
        ],
    );
    h
}

#[test]
fn heuristic_attacks_match_pre_registry_goldens() {
    at_thread_counts(|t| {
        let pipe = golden_pipeline();
        for (method, golden) in [
            (Method::RandomAttack, 0x71a2af7fe99e1fe2u64),
            (Method::TargetAttack(40), 0x6eac32f8aa0f1e9d),
            (Method::TargetAttack(70), 0x8e2e7ccc13e18564),
            (Method::TargetAttack(100), 0x523311da0c6b2913),
        ] {
            let h = row_hash(&pipe, method);
            assert_eq!(h, golden, "{} golden diverged at CA_THREADS={t}", method.label());
        }
    });
}

#[test]
fn learned_attacks_match_pre_registry_goldens() {
    at_thread_counts(|t| {
        let pipe = golden_pipeline();
        for (method, golden) in [
            (Method::PolicyNetwork, 0x322dc77e9ab156a5u64),
            (Method::CopyAttack, 0xe3375640c36a92a8),
            (Method::CopyAttackNoMasking, 0x20915f7ffc321933),
            (Method::CopyAttackNoLength, 0xffcc07a340a02fed),
        ] {
            let h = row_hash(&pipe, method);
            assert_eq!(h, golden, "{} golden diverged at CA_THREADS={t}", method.label());
        }
    });
}

#[test]
fn every_table2_method_resolves_in_the_registry() {
    let pipe = golden_pipeline();
    let reg = pipe.registry::<copyattack::gnn::PinSageRecommender>();
    assert_eq!(
        reg.names(),
        vec![
            "CopyAttack",
            "CopyAttack-Length",
            "CopyAttack-Masking",
            "FakeProfile",
            "KgAttack",
            "PolicyNetwork",
            "RandomAttack",
            "TargetAttack100",
            "TargetAttack40",
            "TargetAttack70",
        ],
    );
    for method in Method::table2_rows() {
        match method.registry_key() {
            None => assert_eq!(method, Method::WithoutAttack),
            Some(key) => assert!(reg.contains(&key), "{key} missing from the registry"),
        }
    }
}

/// Every registered attack — legacy and rival alike — must run end to end
/// through the pipeline's campaign machinery and produce finite metrics.
#[test]
fn every_registered_attack_runs_through_the_pipeline() {
    par::set_threads(Some(2));
    let pipe = golden_pipeline();
    let target = pipe.target_items[0];
    let names: Vec<String> = pipe
        .registry::<copyattack::gnn::PinSageRecommender>()
        .names()
        .iter()
        .map(|s| s.to_string())
        .collect();
    for name in &names {
        let cfg = AttackConfig { seed: 1234, ..pipe.config.attack.config.clone() };
        let (metrics, avg_items) = pipe.run_attack_cfg(name, target, &cfg);
        assert!(metrics.hr(20).is_finite(), "{name} produced a non-finite HR@20");
        assert!(avg_items > 0.0, "{name} injected no profiles");
    }
    par::set_threads(None);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The rival attacks draw only from the episode RNG the pipeline seeds
    /// from the attack config, so re-running with the same seed must
    /// reproduce the same promotion bits exactly.
    #[test]
    fn rival_attacks_are_seed_deterministic(seed in 0u64..1 << 48) {
        let pipe = golden_pipeline();
        let target = pipe.target_items[1];
        for name in ["FakeProfile", "KgAttack"] {
            let cfg = AttackConfig { seed, ..pipe.config.attack.config.clone() };
            let (m1, a1) = pipe.run_attack_cfg(name, target, &cfg);
            let (m2, a2) = pipe.run_attack_cfg(name, target, &cfg);
            prop_assert_eq!(m1.hr(20).to_bits(), m2.hr(20).to_bits());
            prop_assert_eq!(m1.ndcg(20).to_bits(), m2.ndcg(20).to_bits());
            prop_assert_eq!(a1.to_bits(), a2.to_bits());
        }
    }
}
