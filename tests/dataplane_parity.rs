//! Property parity for the compact CSR data plane: the flat-arena
//! `Dataset` must be observationally identical to the legacy nested-`Vec`
//! data model it replaced — same profile iteration order, same inverted
//! (item → users) order, same popularity counts, same `contains` answers —
//! through both the builder path and post-freeze injection.
//!
//! The legacy model lives in this test as a straight port of the pre-CSR
//! implementation, so the contract stays pinned even though the original
//! code is gone. Every property is checked at CA_THREADS ∈ {1, 4}: the
//! data plane is serial by design, and holding the assertions under the
//! sweep proves the global thread knob cannot leak into it.

use copyattack::par;
use copyattack::recsys::{DatasetBuilder, ItemId, UserId};
use proptest::prelude::*;

const N_ITEMS: usize = 40;

/// Straight port of the pre-CSR `Dataset`: one `Vec` per user profile, one
/// `Vec` per item's users, linear-scan membership, insertion-order
/// inverted index.
struct LegacyModel {
    profiles: Vec<Vec<ItemId>>,
    item_profiles: Vec<Vec<UserId>>,
}

impl LegacyModel {
    fn new() -> Self {
        Self { profiles: Vec::new(), item_profiles: vec![Vec::new(); N_ITEMS] }
    }

    fn add(&mut self, raw: &[u32]) -> UserId {
        let uid = UserId(self.profiles.len() as u32);
        let mut kept: Vec<ItemId> = Vec::new();
        for &v in raw {
            let v = ItemId(v % N_ITEMS as u32);
            if !kept.contains(&v) {
                kept.push(v);
                self.item_profiles[v.idx()].push(uid);
            }
        }
        self.profiles.push(kept);
        uid
    }

    fn contains(&self, u: UserId, v: ItemId) -> bool {
        self.profiles[u.idx()].contains(&v)
    }
}

/// Builds both models from the same raw input — `base` through the
/// builder, `injected` through `add_user` — and asserts every observable
/// facet matches.
fn assert_models_agree(base: &[Vec<u32>], injected: &[Vec<u32>]) {
    let mut legacy = LegacyModel::new();
    let mut b = DatasetBuilder::new(N_ITEMS);
    for p in base {
        legacy.add(p);
        let items: Vec<ItemId> = p.iter().map(|&v| ItemId(v % N_ITEMS as u32)).collect();
        b.user(&items);
    }
    let mut ds = b.build();
    for p in injected {
        let lid = legacy.add(p);
        let items: Vec<ItemId> = p.iter().map(|&v| ItemId(v % N_ITEMS as u32)).collect();
        assert_eq!(ds.add_user(&items), lid, "injection must mint the same user id");
    }

    assert_eq!(ds.n_users(), legacy.profiles.len());
    assert_eq!(
        ds.n_interactions(),
        legacy.profiles.iter().map(Vec::len).sum::<usize>(),
        "interaction totals diverge"
    );
    for u in ds.users() {
        assert_eq!(ds.profile(u), &legacy.profiles[u.idx()][..], "profile order of {u:?}");
        for v in 0..N_ITEMS as u32 {
            let v = ItemId(v);
            assert_eq!(ds.contains(u, v), legacy.contains(u, v), "contains({u:?}, {v:?})");
        }
    }
    for v in ds.items() {
        assert_eq!(
            &*ds.item_profile(v),
            &legacy.item_profiles[v.idx()][..],
            "inverted order of {v:?}"
        );
        assert_eq!(ds.item_popularity(v), legacy.item_profiles[v.idx()].len());
    }
    ds.check_consistency().expect("CSR invariants");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn csr_dataset_matches_the_legacy_nested_vec_model(
        base in prop::collection::vec(prop::collection::vec(0u32..64, 0..12), 1..14),
        injected in prop::collection::vec(prop::collection::vec(0u32..64, 0..12), 0..6),
    ) {
        for threads in [1usize, 4] {
            par::set_threads(Some(threads));
            assert_models_agree(&base, &injected);
        }
        par::set_threads(None);
    }
}
