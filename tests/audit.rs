//! Tier-1 gate: the workspace must be audit-clean.
//!
//! Runs the full `ca-audit` static pass over every Rust source in the
//! repository and fails if any determinism, query-discipline, unsafe, or
//! pragma-hygiene rule fires. New violations either get fixed or carry a
//! `// ca-audit: allow(<rule>) — <reason>` pragma; reasonless pragmas are
//! themselves findings, so this test cannot be silenced without a paper
//! trail.

use std::path::Path;

#[test]
fn workspace_is_audit_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let findings = ca_audit::audit_workspace(root).expect("audit walk must succeed");
    assert!(
        findings.is_empty(),
        "ca-audit found {} violation(s):\n{}",
        findings.len(),
        ca_audit::report::human(&findings)
    );
}
