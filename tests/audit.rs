//! Tier-1 gate: the workspace must be audit-clean.
//!
//! Runs the full `ca-audit` static pass — per-file token rules plus the
//! cross-file symbol-aware families (seed-discipline, iteration-order,
//! unmetered-query) — over every Rust source in the repository, ratcheted
//! through the checked-in `audit.baseline`. The gate fails on any Deny
//! finding and on any stale baseline entry (debt that shrank without the
//! ledger being regenerated). New violations either get fixed, carry a
//! `// ca-audit: allow(<rule>) — <reason>` pragma, or are accepted into
//! the baseline; reasonless pragmas are themselves findings, so this test
//! cannot be silenced without a paper trail.

use std::path::Path;

use ca_audit::{audit_workspace_outcome, report, AuditConfig, Baseline};

#[test]
fn workspace_is_audit_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let baseline_path = root.join("audit.baseline");
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => Baseline::parse(&text).expect("checked-in audit.baseline must parse"),
        Err(_) => Baseline::empty(),
    };
    let outcome = audit_workspace_outcome(root, &AuditConfig::workspace_default(), &baseline, None)
        .expect("audit walk must succeed");
    assert!(
        !outcome.failed(),
        "ca-audit gate failed ({} finding(s), {} stale baseline entr(ies)):\n{}",
        outcome.findings.len(),
        outcome.stale.len(),
        report::human(&outcome)
    );
    assert!(
        outcome.findings.is_empty(),
        "ca-audit found {} warning-level violation(s):\n{}",
        outcome.findings.len(),
        report::human(&outcome)
    );
}
