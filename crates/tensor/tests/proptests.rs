//! Property-based tests for the linear-algebra substrate.

use ca_tensor::ops;
use ca_tensor::Matrix;
use proptest::prelude::*;

fn vec_f32(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-100.0f32..100.0, len)
}

fn small_dim() -> impl Strategy<Value = usize> {
    1usize..12
}

proptest! {
    #[test]
    fn dot_is_commutative(xs in vec_f32(8), ys in vec_f32(8)) {
        let lhs = ops::dot(&xs, &ys);
        let rhs = ops::dot(&ys, &xs);
        prop_assert!((lhs - rhs).abs() <= 1e-3 * (1.0 + lhs.abs()));
    }

    #[test]
    fn softmax_is_a_distribution(xs in prop::collection::vec(-50.0f32..50.0, 1..16)) {
        let p = ops::softmax(&xs);
        let sum: f32 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn softmax_preserves_order(xs in prop::collection::vec(-50.0f32..50.0, 2..16)) {
        let p = ops::softmax(&xs);
        for i in 0..xs.len() {
            for j in 0..xs.len() {
                if xs[i] > xs[j] + 1e-3 {
                    prop_assert!(p[i] >= p[j]);
                }
            }
        }
    }

    #[test]
    fn masked_softmax_restricts_support(
        xs in prop::collection::vec(-20.0f32..20.0, 3..12),
        seed in 0u64..1000,
    ) {
        // Derive a mask with at least one live entry from the seed.
        let n = xs.len();
        let mut mask = vec![false; n];
        let mut s = seed;
        for m in mask.iter_mut() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *m = (s >> 33) & 1 == 1;
        }
        mask[(seed as usize) % n] = true;
        let p = ops::masked_softmax(&xs, &mask);
        let sum: f32 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        for i in 0..n {
            if !mask[i] {
                prop_assert_eq!(p[i], 0.0);
            }
        }
    }

    #[test]
    fn matvec_is_linear(
        rows in small_dim(), cols in small_dim(),
        alpha in -5.0f32..5.0, seed in 0u64..100,
    ) {
        let mk = |s: u64| {
            let mut v = Vec::new();
            let mut x = s.wrapping_add(1);
            for _ in 0..rows * cols {
                x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                v.push(((x >> 40) as f32 / 16777216.0) - 0.5);
            }
            v
        };
        let m = Matrix::from_vec(rows, cols, mk(seed));
        let x: Vec<f32> = (0..cols).map(|i| i as f32 * 0.25 - 1.0).collect();
        let y: Vec<f32> = (0..cols).map(|i| 1.0 - i as f32 * 0.5).collect();
        // m(αx + y) == α·m(x) + m(y)
        let combo: Vec<f32> = x.iter().zip(y.iter()).map(|(a, b)| alpha * a + b).collect();
        let lhs = m.matvec(&combo);
        let mx = m.matvec(&x);
        let my = m.matvec(&y);
        for i in 0..rows {
            let rhs = alpha * mx[i] + my[i];
            prop_assert!((lhs[i] - rhs).abs() < 1e-3 * (1.0 + rhs.abs()));
        }
    }

    #[test]
    fn transpose_is_involution(rows in small_dim(), cols in small_dim()) {
        let m = Matrix::from_fn(rows, cols, |r, c| (r * 31 + c) as f32);
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_agrees_with_matvec(rows in small_dim(), inner in small_dim()) {
        let a = Matrix::from_fn(rows, inner, |r, c| ((r + 1) * (c + 2)) as f32 * 0.1);
        let x: Vec<f32> = (0..inner).map(|i| i as f32 - 1.5).collect();
        let xmat = Matrix::from_vec(inner, 1, x.clone());
        let prod = a.matmul(&xmat);
        let mv = a.matvec(&x);
        for r in 0..rows {
            prop_assert!((prod[(r, 0)] - mv[r]).abs() < 1e-4 * (1.0 + mv[r].abs()));
        }
    }

    #[test]
    fn sigmoid_monotone(a in -30.0f32..30.0, b in -30.0f32..30.0) {
        if a < b {
            prop_assert!(ops::sigmoid(a) <= ops::sigmoid(b));
        }
    }
}
