//! Slice-level vector operations shared across the workspace.
//!
//! These operate on plain `&[f32]` / `&mut [f32]` so callers (embedding
//! tables, RNN states, policy logits) never have to copy into a wrapper type.

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        acc += x * y;
    }
    acc
}

/// `y += alpha * x` (BLAS axpy).
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// `y *= alpha` in place.
#[inline]
pub fn scale(y: &mut [f32], alpha: f32) {
    for yi in y.iter_mut() {
        *yi *= alpha;
    }
}

/// Euclidean (L2) norm.
#[inline]
pub fn l2_norm(x: &[f32]) -> f32 {
    dot(x, x).sqrt()
}

/// Squared Euclidean distance between two points.
#[inline]
pub fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "sq_dist length mismatch");
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// Cosine similarity; returns 0 when either vector is all-zero.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let na = l2_norm(a);
    let nb = l2_norm(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot(a, b) / (na * nb)
}

/// Index of the maximum element (first one on ties).
///
/// # Panics
/// Panics on an empty slice.
pub fn argmax(x: &[f32]) -> usize {
    assert!(!x.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &v) in x.iter().enumerate().skip(1) {
        if v > x[best] {
            best = i;
        }
    }
    best
}

/// Numerically stable softmax, written into `out`.
pub fn softmax_into(logits: &[f32], out: &mut [f32]) {
    assert_eq!(logits.len(), out.len(), "softmax length mismatch");
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for (o, &l) in out.iter_mut().zip(logits.iter()) {
        let e = (l - max).exp();
        *o = e;
        sum += e;
    }
    let inv = 1.0 / sum;
    for o in out.iter_mut() {
        *o *= inv;
    }
}

/// Numerically stable softmax returning a fresh vector.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0; logits.len()];
    softmax_into(logits, &mut out);
    out
}

/// Softmax restricted to positions where `mask[i]` is `true`; masked
/// positions receive probability exactly 0.
///
/// This implements the paper's masking mechanism (§4.3.2): children of a
/// clustering-tree node whose subtrees contain no profile with the target
/// item must never be sampled.
///
/// # Panics
/// Panics if every position is masked (the paper guarantees the target item
/// exists in the source domain, so a fully masked node is a caller bug).
pub fn masked_softmax(logits: &[f32], mask: &[bool]) -> Vec<f32> {
    assert_eq!(logits.len(), mask.len(), "mask length mismatch");
    assert!(mask.iter().any(|&m| m), "masked_softmax: all positions masked");
    let max = logits
        .iter()
        .zip(mask.iter())
        .filter(|(_, &m)| m)
        .map(|(&l, _)| l)
        .fold(f32::NEG_INFINITY, f32::max);
    let mut out = vec![0.0; logits.len()];
    let mut sum = 0.0;
    for i in 0..logits.len() {
        if mask[i] {
            let e = (logits[i] - max).exp();
            out[i] = e;
            sum += e;
        }
    }
    let inv = 1.0 / sum;
    for o in out.iter_mut() {
        *o *= inv;
    }
    out
}

/// Logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        // Avoids overflow of exp(-x) for very negative x.
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Mean of a slice (0 for an empty slice).
pub fn mean(x: &[f32]) -> f32 {
    if x.is_empty() {
        0.0
    } else {
        x.iter().sum::<f32>() / x.len() as f32
    }
}

/// Element-wise mean of several equal-length vectors, written into `out`.
/// Leaves `out` zeroed when `vecs` is empty.
pub fn mean_of_vectors(vecs: &[&[f32]], out: &mut [f32]) {
    out.iter_mut().for_each(|o| *o = 0.0);
    if vecs.is_empty() {
        return;
    }
    for v in vecs {
        axpy(1.0, v, out);
    }
    scale(out, 1.0 / vecs.len() as f32);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_known_value() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_rejects_mismatched_lengths() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn softmax_sums_to_one_and_orders_correctly() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[101.0, 102.0, 103.0]);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_handles_extreme_logits() {
        let p = softmax(&[1000.0, -1000.0]);
        assert!((p[0] - 1.0).abs() < 1e-6);
        assert_eq!(p[1], 0.0);
    }

    #[test]
    fn masked_softmax_zeroes_masked_positions() {
        let p = masked_softmax(&[5.0, 1.0, 1.0], &[false, true, true]);
        assert_eq!(p[0], 0.0);
        assert!((p[1] - 0.5).abs() < 1e-6);
        assert!((p[2] - 0.5).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "all positions masked")]
    fn masked_softmax_rejects_full_mask() {
        let _ = masked_softmax(&[1.0, 2.0], &[false, false]);
    }

    #[test]
    fn sigmoid_is_symmetric_and_bounded() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!((sigmoid(3.0) + sigmoid(-3.0) - 1.0).abs() < 1e-6);
        assert!(sigmoid(100.0) <= 1.0);
        assert!(sigmoid(-100.0) >= 0.0);
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
    }

    #[test]
    fn cosine_of_orthogonal_is_zero() {
        assert!((cosine(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-7);
        assert!((cosine(&[1.0, 1.0], &[2.0, 2.0]) - 1.0).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn mean_of_vectors_averages() {
        let a = [1.0, 2.0];
        let b = [3.0, 4.0];
        let mut out = vec![0.0; 2];
        mean_of_vectors(&[&a, &b], &mut out);
        assert_eq!(out, vec![2.0, 3.0]);
        mean_of_vectors(&[], &mut out);
        assert_eq!(out, vec![0.0, 0.0]);
    }

    #[test]
    fn sq_dist_known_value() {
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }
}
