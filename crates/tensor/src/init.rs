//! Random initialization helpers.
//!
//! The paper initializes all neural-network parameters from a Gaussian with
//! mean 0 and standard deviation 0.1 (§5.1.3). `rand 0.8` alone provides
//! uniform sampling; the Gaussian here is generated with the Box–Muller
//! transform so we avoid pulling in `rand_distr`.

use crate::matrix::Matrix;
use rand::Rng;

/// One sample from `N(mean, std²)` via the Box–Muller transform.
pub fn gaussian(rng: &mut impl Rng, mean: f32, std: f32) -> f32 {
    // u1 in (0, 1] so ln(u1) is finite.
    let u1: f32 = 1.0 - rng.gen::<f32>();
    let u2: f32 = rng.gen();
    let mag = (-2.0 * u1.ln()).sqrt();
    mean + std * mag * (2.0 * std::f32::consts::PI * u2).cos()
}

/// A vector of i.i.d. `N(mean, std²)` samples.
pub fn gaussian_vec(rng: &mut impl Rng, len: usize, mean: f32, std: f32) -> Vec<f32> {
    (0..len).map(|_| gaussian(rng, mean, std)).collect()
}

/// A matrix of i.i.d. `N(mean, std²)` entries.
pub fn gaussian_matrix(
    rng: &mut impl Rng,
    rows: usize,
    cols: usize,
    mean: f32,
    std: f32,
) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| gaussian(rng, mean, std))
}

/// Xavier/Glorot uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. Used for the MLP policy heads, where
/// it keeps early-training logits small enough that the softmax stays
/// explorative.
pub fn xavier_uniform(rng: &mut impl Rng, rows: usize, cols: usize) -> Matrix {
    let a = (6.0 / (rows + cols) as f32).sqrt();
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-a..a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_moments_are_approximately_right() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples = gaussian_vec(&mut rng, n, 1.5, 2.0);
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!((mean - 1.5).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn gaussian_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        assert_eq!(gaussian_vec(&mut a, 16, 0.0, 1.0), gaussian_vec(&mut b, 16, 0.0, 1.0));
    }

    #[test]
    fn xavier_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = xavier_uniform(&mut rng, 10, 20);
        let a = (6.0f32 / 30.0).sqrt();
        assert!(m.as_slice().iter().all(|&x| x > -a && x < a));
    }

    #[test]
    fn gaussian_matrix_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = gaussian_matrix(&mut rng, 4, 5, 0.0, 0.1);
        assert_eq!(m.rows(), 4);
        assert_eq!(m.cols(), 5);
    }
}
