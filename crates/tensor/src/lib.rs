//! Minimal dense linear-algebra substrate for the CopyAttack reproduction.
//!
//! Every higher-level crate (the neural-network layers in `ca-nn`, matrix
//! factorization in `ca-mf`, the GNN recommender in `ca-gnn`, and k-means in
//! `ca-cluster`) is built on the row-major [`Matrix`] type and the slice
//! helpers in [`ops`] defined here.
//!
//! Design notes:
//! - `f32` throughout: the paper's models are tiny (embedding size 8), so
//!   single precision is ample and halves memory traffic.
//! - No SIMD intrinsics; the inner loops are written so LLVM auto-vectorizes
//!   them in release builds (verified via the Criterion benches in
//!   `copyattack-bench`).
//! - All randomness flows through caller-provided [`rand::Rng`] values so
//!   experiments are reproducible bit-for-bit from a single `u64` seed.

#![forbid(unsafe_code)]

pub mod init;
pub mod matrix;
pub mod ops;
pub mod scratch;
pub mod stats;

pub use init::{gaussian, gaussian_vec, xavier_uniform};
pub use matrix::Matrix;
pub use scratch::Scratch;
