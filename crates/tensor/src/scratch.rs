//! Reusable scratch buffers for allocation-free repeated scoring.
//!
//! The attack loop re-scores the whole catalog for a batch of pretend users
//! after every injection step. Each round needs a `users × items` score
//! matrix plus tower activations; allocating them anew per round would put
//! the allocator on the hot path. A [`Scratch`] pool hands out zeroed
//! buffers and takes them back, so steady-state scoring performs no heap
//! allocation once the pool has warmed up.

use crate::Matrix;

/// A pool of `Vec<f32>` buffers recycled across scoring rounds.
///
/// Buffers are returned zero-filled. `take`/`put` (and the matrix-shaped
/// `matrix`/`recycle`) are deliberately explicit rather than guard-based:
/// the engine's scoring loop threads one `Scratch` through several stages,
/// which borrow-splitting RAII guards would make awkward.
///
/// A second, independent pool recycles `Vec<(f32, u32)>` candidate buffers
/// (`take_pairs`/`put_pairs`): the ranking stage of every Top-k query
/// builds a scored-candidate list, and pooling it keeps steady-state
/// ranking allocation-free alongside the score matrices.
#[derive(Debug, Default)]
pub struct Scratch {
    pool: Vec<Vec<f32>>,
    pairs: Vec<Vec<(f32, u32)>>,
}

impl Scratch {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// A zeroed buffer of `len` floats, reusing the pooled allocation with
    /// the largest capacity when one exists (best fit for steady-state
    /// loops mixing large score matrices with small activation buffers).
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        let best = (0..self.pool.len()).max_by_key(|&i| self.pool[i].capacity());
        let mut buf = best.map(|i| self.pool.swap_remove(i)).unwrap_or_default();
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Returns a buffer to the pool.
    pub fn put(&mut self, buf: Vec<f32>) {
        self.pool.push(buf);
    }

    /// A zeroed `rows × cols` matrix backed by a pooled buffer.
    pub fn matrix(&mut self, rows: usize, cols: usize) -> Matrix {
        Matrix::from_vec(rows, cols, self.take(rows * cols))
    }

    /// Returns a matrix's buffer to the pool.
    pub fn recycle(&mut self, m: Matrix) {
        self.put(m.into_vec());
    }

    /// An empty candidate buffer, reusing the pooled allocation with the
    /// largest capacity when one exists. Unlike [`Scratch::take`], the
    /// buffer comes back *empty* (length 0): ranking fills it by pushing
    /// survivors, so pre-zeroing would be wasted work.
    pub fn take_pairs(&mut self) -> Vec<(f32, u32)> {
        let best = (0..self.pairs.len()).max_by_key(|&i| self.pairs[i].capacity());
        let mut buf = best.map(|i| self.pairs.swap_remove(i)).unwrap_or_default();
        buf.clear();
        buf
    }

    /// Returns a candidate buffer to the pool.
    pub fn put_pairs(&mut self, buf: Vec<(f32, u32)>) {
        self.pairs.push(buf);
    }

    /// Number of idle `f32` buffers currently held.
    pub fn idle(&self) -> usize {
        self.pool.len()
    }

    /// Number of idle candidate buffers currently held.
    pub fn idle_pairs(&self) -> usize {
        self.pairs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_zeroed_buffers() {
        let mut s = Scratch::new();
        let mut buf = s.take(4);
        buf.copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        s.put(buf);
        assert_eq!(s.take(4), vec![0.0; 4]);
    }

    #[test]
    fn recycled_allocation_is_reused() {
        let mut s = Scratch::new();
        let buf = s.take(1024);
        let ptr = buf.as_ptr();
        s.put(buf);
        let again = s.take(512);
        assert_eq!(again.as_ptr(), ptr, "shrinking reuse must not reallocate");
        assert!(again.capacity() >= 1024);
    }

    #[test]
    fn best_fit_prefers_the_largest_buffer() {
        let mut s = Scratch::new();
        s.put(Vec::with_capacity(8));
        s.put(Vec::with_capacity(1024));
        s.put(Vec::with_capacity(64));
        let buf = s.take(100);
        assert!(buf.capacity() >= 1024, "should grab the 1024-capacity buffer");
        assert_eq!(s.idle(), 2);
    }

    #[test]
    fn pair_pool_reuses_allocations_and_is_independent() {
        let mut s = Scratch::new();
        let mut buf = s.take_pairs();
        buf.extend((0..512).map(|i| (i as f32, i)));
        let ptr = buf.as_ptr();
        s.put_pairs(buf);
        assert_eq!(s.idle_pairs(), 1);
        let again = s.take_pairs();
        assert!(again.is_empty(), "pair buffers come back empty");
        assert_eq!(again.as_ptr(), ptr, "pooled pair allocation must be reused");
        assert!(again.capacity() >= 512);
        // The float pool is untouched by pair traffic.
        assert_eq!(s.idle(), 0);
        s.put_pairs(again);
    }

    #[test]
    fn matrix_roundtrip_keeps_shape_and_zeroes() {
        let mut s = Scratch::new();
        let mut m = s.matrix(3, 5);
        assert_eq!((m.rows(), m.cols()), (3, 5));
        m.row_mut(1)[2] = 7.0;
        s.recycle(m);
        let m2 = s.matrix(5, 3);
        assert!(m2.as_slice().iter().all(|&x| x == 0.0));
        assert_eq!(s.idle(), 0);
    }
}
