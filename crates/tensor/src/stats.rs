//! Small statistics helpers used by the evaluation harness and the
//! shilling-attack detectors in `ca-detect`.

/// Sample mean (0 for empty input).
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f32>() / xs.len() as f32
    }
}

/// Unbiased sample variance (0 for fewer than two samples).
pub fn variance(xs: &[f32]) -> f32 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f32>() / (xs.len() - 1) as f32
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f32]) -> f32 {
    variance(xs).sqrt()
}

/// `p`-th percentile (0 ≤ p ≤ 100) using nearest-rank on a sorted copy.
///
/// # Panics
/// Panics on empty input or `p` outside `[0, 100]`.
pub fn percentile(xs: &[f32], p: f32) -> f32 {
    assert!(!xs.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    let mut sorted: Vec<f32> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = ((p / 100.0) * (sorted.len() - 1) as f32).round() as usize;
    sorted[rank]
}

/// Welford online mean/variance accumulator.
///
/// Used by the REINFORCE baseline (running mean of episode returns) and by
/// the detector feature standardization.
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed one observation.
    pub fn push(&mut self, x: f32) {
        self.n += 1;
        let delta = x as f64 - self.mean;
        self.mean += delta / self.n as f64;
        let delta2 = x as f64 - self.mean;
        self.m2 += delta * delta2;
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0 before any observation).
    pub fn mean(&self) -> f32 {
        self.mean as f32
    }

    /// Running unbiased variance (0 before two observations).
    pub fn variance(&self) -> f32 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64) as f32
        }
    }

    /// Running standard deviation.
    pub fn std_dev(&self) -> f32 {
        self.variance().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_known_values() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-6);
        // Population variance is 4; unbiased = 4 * 8/7.
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-5);
    }

    #[test]
    fn percentile_endpoints() {
        let xs = [5.0, 1.0, 3.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
    }

    #[test]
    fn running_stats_matches_batch() {
        let xs = [1.0f32, 2.0, 3.5, -1.0, 0.25];
        let mut rs = RunningStats::new();
        for &x in &xs {
            rs.push(x);
        }
        assert_eq!(rs.count(), 5);
        assert!((rs.mean() - mean(&xs)).abs() < 1e-6);
        assert!((rs.variance() - variance(&xs)).abs() < 1e-5);
    }

    #[test]
    fn running_stats_degenerate_cases() {
        let mut rs = RunningStats::new();
        assert_eq!(rs.mean(), 0.0);
        assert_eq!(rs.variance(), 0.0);
        rs.push(3.0);
        assert_eq!(rs.mean(), 3.0);
        assert_eq!(rs.variance(), 0.0);
    }
}
