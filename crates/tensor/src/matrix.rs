//! Row-major dense matrix.

use std::cell::RefCell;
use std::fmt;
use std::ops::{Index, IndexMut};

/// Column-tile width (rows of `other`) for the blocked `A·Bᵀ` kernel: the
/// packed transposed tile (`cols · COL_TILE` floats) stays L2-resident
/// while every row of `self` sweeps it.
const COL_TILE: usize = 512;

thread_local! {
    /// Reused packing buffer for [`Matrix::matmul_nt_into`], so steady-state
    /// batched scoring does not allocate.
    static PACK_BUF: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// A dense, row-major `rows × cols` matrix of `f32`.
///
/// This is deliberately a thin wrapper over `Vec<f32>`: the models in this
/// repository are small, and direct slice access (`row`, `row_mut`,
/// `as_slice`) keeps hot loops allocation-free and auto-vectorizable.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// An all-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Packs equal-length row slices into one contiguous row-major buffer.
    ///
    /// The parallel k-means steps flatten their `&[&[f32]]` point set
    /// through this once, then sweep cache-friendly [`Matrix::row_chunks`]
    /// views instead of chasing per-row pointers.
    ///
    /// # Panics
    /// Panics if `rows` is empty or the rows have unequal lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows needs at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "from_rows width mismatch");
            data.extend_from_slice(r);
        }
        Self { rows: rows.len(), cols, data }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The whole buffer in row-major order.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the whole buffer in row-major order.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Contiguous view of rows `r0..r1` (row-major, `(r1 - r0) * cols`
    /// floats).
    ///
    /// # Panics
    /// Panics if `r0 > r1` or `r1 > rows`.
    #[inline]
    pub fn row_range(&self, r0: usize, r1: usize) -> &[f32] {
        assert!(r0 <= r1 && r1 <= self.rows, "row_range {r0}..{r1} out of {} rows", self.rows);
        &self.data[r0 * self.cols..r1 * self.cols]
    }

    /// Mutable contiguous view of rows `r0..r1` (row-major,
    /// `(r1 - r0) * cols` floats).
    ///
    /// # Panics
    /// Panics if `r0 > r1` or `r1 > rows`.
    #[inline]
    pub fn row_range_mut(&mut self, r0: usize, r1: usize) -> &mut [f32] {
        assert!(r0 <= r1 && r1 <= self.rows, "row_range {r0}..{r1} out of {} rows", self.rows);
        &mut self.data[r0 * self.cols..r1 * self.cols]
    }

    /// Row-aligned chunked views: contiguous blocks of up to `rows_per_chunk`
    /// whole rows, in row order. This is the unit the deterministic
    /// parallel runtime (`ca-par`) hands to workers — the chunk grid
    /// depends only on the matrix shape, never on the thread count.
    ///
    /// # Panics
    /// Panics if `rows_per_chunk == 0`.
    pub fn row_chunks(&self, rows_per_chunk: usize) -> impl Iterator<Item = &[f32]> {
        assert!(rows_per_chunk > 0, "row_chunks needs a positive chunk height");
        self.data.chunks(rows_per_chunk * self.cols.max(1))
    }

    /// Mutable row-aligned chunked views (disjoint, so workers can fill
    /// them concurrently).
    ///
    /// # Panics
    /// Panics if `rows_per_chunk == 0`.
    pub fn row_chunks_mut(&mut self, rows_per_chunk: usize) -> impl Iterator<Item = &mut [f32]> {
        assert!(rows_per_chunk > 0, "row_chunks_mut needs a positive chunk height");
        self.data.chunks_mut(rows_per_chunk * self.cols.max(1))
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// `y = self * x` for a column vector `x` (len = cols); returns len-rows vector.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y);
        y
    }

    /// `y = self * x` written into a caller-provided buffer (no allocation).
    pub fn matvec_into(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        assert_eq!(y.len(), self.rows, "matvec output mismatch");
        for (r, out) in y.iter_mut().enumerate() {
            let row = self.row(r);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x.iter()) {
                acc += a * b;
            }
            *out = acc;
        }
    }

    /// `y = selfᵀ * x` for a column vector `x` (len = rows); returns len-cols vector.
    pub fn matvec_t(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.rows, "matvec_t dimension mismatch");
        let mut y = vec![0.0; self.cols];
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            for (yc, a) in y.iter_mut().zip(self.row(r).iter()) {
                *yc += a * xr;
            }
        }
        y
    }

    /// Dense matrix product `self * other`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// `out = self * other`, written into a caller-provided matrix so hot
    /// loops can reuse one allocation (see [`crate::Scratch`]).
    ///
    /// # Panics
    /// Panics on any dimension mismatch.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        assert_eq!(out.rows, self.rows, "matmul output row mismatch");
        assert_eq!(out.cols, other.cols, "matmul output col mismatch");
        out.fill_zero();
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[r * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(r);
                for (o, b) in out_row.iter_mut().zip(orow.iter()) {
                    *o += a * b;
                }
            }
        }
    }

    /// `out = self * otherᵀ` — both operands row-major with a shared inner
    /// dimension (`self` is `m × d`, `other` is `n × d`, `out` is `m × n`).
    ///
    /// This is the GEMM shape of batched scoring: a block of user vectors
    /// against an item-representation table. The kernel walks `other` in
    /// column tiles of `COL_TILE` rows: each tile is packed transposed
    /// into a thread-local buffer (contiguous per inner index `k`), and the
    /// accumulation runs `k`-outer as an axpy over the tile — a contiguous
    /// `f32` sweep LLVM auto-vectorizes. Every `out` cell still accumulates
    /// `a[k]·b[k]` in ascending-`k` order from `0.0` with separately rounded
    /// multiply and add, i.e. the exact operation sequence of [`crate::ops::dot`],
    /// so batched scores are bitwise identical to the per-row path.
    ///
    /// # Panics
    /// Panics on any dimension mismatch.
    pub fn matmul_nt_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.cols, "matmul_nt inner dimension mismatch");
        assert_eq!(out.rows, self.rows, "matmul_nt output row mismatch");
        assert_eq!(out.cols, other.rows, "matmul_nt output col mismatch");
        let n = other.rows;
        let d = self.cols;
        PACK_BUF.with(|cell| {
            let mut pack = cell.borrow_mut();
            pack.clear();
            pack.resize(d * COL_TILE.min(n.max(1)), 0.0);
            for jt in (0..n).step_by(COL_TILE) {
                let jw = COL_TILE.min(n - jt);
                // Pack the tile transposed: pack[k * jw + jj] = other[jt + jj, k].
                for k in 0..d {
                    let dst = &mut pack[k * jw..(k + 1) * jw];
                    for (jj, slot) in dst.iter_mut().enumerate() {
                        *slot = other.row(jt + jj)[k];
                    }
                }
                for i in 0..self.rows {
                    let a = &self.row(i)[..d];
                    let seg = &mut out.row_mut(i)[jt..jt + jw];
                    seg.fill(0.0);
                    for (k, &ak) in a.iter().enumerate() {
                        let brow = &pack[k * jw..(k + 1) * jw];
                        for (o, &b) in seg.iter_mut().zip(brow) {
                            *o += ak * b;
                        }
                    }
                }
            }
        });
    }

    /// Allocating convenience for [`Matrix::matmul_nt_into`].
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.rows);
        self.matmul_nt_into(other, &mut out);
        out
    }

    /// Batched mat-vec: `out.row(i) = self · xs.row(i)` for every row of
    /// `xs` (`self` is `n × d`, `xs` is `m × d`, `out` is `m × n`).
    ///
    /// Equivalent to `m` [`Matrix::matvec`] calls but dispatched as one
    /// blocked GEMM (`xs · selfᵀ`), which is how the scoring engine turns a
    /// batch of user queries into a single kernel invocation.
    pub fn gemv_batch(&self, xs: &Matrix, out: &mut Matrix) {
        xs.matmul_nt_into(self, out);
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// `self += alpha * other`, element-wise.
    pub fn add_scaled(&mut self, other: &Matrix, alpha: f32) {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Rank-1 update `self += alpha * u vᵀ` (u len = rows, v len = cols).
    ///
    /// This is the workhorse of every hand-written backward pass: the weight
    /// gradient of a linear layer is `grad_out ⊗ input`.
    pub fn add_outer(&mut self, u: &[f32], v: &[f32], alpha: f32) {
        assert_eq!(u.len(), self.rows, "outer product row mismatch");
        assert_eq!(v.len(), self.cols, "outer product col mismatch");
        for (r, &ur) in u.iter().enumerate() {
            let s = alpha * ur;
            if s == 0.0 {
                continue;
            }
            for (a, &vc) in self.row_mut(r).iter_mut().zip(v.iter()) {
                *a += s * vc;
            }
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Appends a row (used by transductive models onboarding new users).
    ///
    /// # Panics
    /// Panics if `row.len() != cols`.
    pub fn push_row(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.cols, "push_row width mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Consumes the matrix, returning its row-major buffer (so scratch pools
    /// can recycle the allocation).
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            writeln!(f, "  {:?}", &self.row(r)[..self.cols.min(8)])?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_expected_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_fn_fills_row_major() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(m[(1, 2)], 12.0);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_rejects_bad_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn matvec_matches_manual_computation() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let y = m.matvec(&[1.0, 0.5, -1.0]);
        assert_eq!(y, vec![1.0 + 1.0 - 3.0, 4.0 + 2.5 - 6.0]);
    }

    #[test]
    fn matvec_t_is_transpose_matvec() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let x = [2.0, -1.0];
        let lhs = m.matvec_t(&x);
        let rhs = m.transpose().matvec(&x);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f32);
        let id = Matrix::from_fn(3, 3, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(m.matmul(&id), m);
        assert_eq!(id.matmul(&m), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn transpose_twice_roundtrips() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn add_outer_matches_explicit_outer_product() {
        let mut m = Matrix::zeros(2, 3);
        m.add_outer(&[1.0, 2.0], &[3.0, 4.0, 5.0], 0.5);
        assert_eq!(m.as_slice(), &[1.5, 2.0, 2.5, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Matrix::from_vec(1, 2, vec![10.0, 20.0]);
        a.add_scaled(&b, 0.1);
        assert_eq!(a.as_slice(), &[2.0, 4.0]);
    }

    #[test]
    fn frobenius_norm_of_unit_axis() {
        let m = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn push_row_grows_the_matrix() {
        let mut m = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        m.push_row(&[3.0, 4.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn push_row_rejects_wrong_width() {
        let mut m = Matrix::zeros(1, 3);
        m.push_row(&[1.0]);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        // 37 rows forces a partial final tile (37 = 2·16 + 5).
        let a = Matrix::from_fn(37, 7, |r, c| ((r * 13 + c * 5) % 11) as f32 - 5.0);
        let b = Matrix::from_fn(23, 7, |r, c| ((r * 3 + c) % 9) as f32 * 0.5 - 2.0);
        let fast = a.matmul_nt(&b);
        let slow = a.matmul(&b.transpose());
        assert_eq!(fast.rows(), 37);
        assert_eq!(fast.cols(), 23);
        for r in 0..37 {
            for c in 0..23 {
                assert!((fast[(r, c)] - slow[(r, c)]).abs() < 1e-4, "({r},{c})");
            }
        }
    }

    #[test]
    fn matmul_nt_is_bitwise_dot_of_rows() {
        let a = Matrix::from_fn(5, 9, |r, c| (r as f32 + 1.0) * 0.37 - c as f32 * 0.11);
        let b = Matrix::from_fn(4, 9, |r, c| (c as f32 - r as f32) * 0.29);
        let out = a.matmul_nt(&b);
        for r in 0..5 {
            for c in 0..4 {
                assert_eq!(out[(r, c)], crate::ops::dot(a.row(r), b.row(c)), "({r},{c})");
            }
        }
    }

    #[test]
    fn matmul_into_overwrites_stale_output() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let mut out = Matrix::from_vec(2, 2, vec![9.0; 4]);
        a.matmul_into(&b, &mut out);
        assert_eq!(out.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn gemv_batch_matches_per_row_matvec() {
        let a = Matrix::from_fn(6, 3, |r, c| (r * 3 + c) as f32 * 0.1);
        let xs = Matrix::from_fn(4, 3, |r, c| (r as f32 - c as f32) * 0.7);
        let mut out = Matrix::zeros(4, 6);
        a.gemv_batch(&xs, &mut out);
        for i in 0..4 {
            assert_eq!(out.row(i), &a.matvec(xs.row(i))[..], "row {i}");
        }
    }

    #[test]
    fn into_vec_roundtrips_the_buffer() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.into_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn from_rows_packs_row_major() {
        let rows: Vec<Vec<f32>> = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        let m = Matrix::from_rows(&refs);
        assert_eq!((m.rows(), m.cols()), (3, 2));
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn row_chunks_cover_the_matrix_in_order() {
        let m = Matrix::from_fn(7, 3, |r, c| (r * 3 + c) as f32);
        let chunks: Vec<&[f32]> = m.row_chunks(2).collect();
        assert_eq!(chunks.len(), 4); // 2 + 2 + 2 + 1 rows
        assert_eq!(chunks[0], m.row_range(0, 2));
        assert_eq!(chunks[3], m.row_range(6, 7));
        let total: usize = chunks.iter().map(|c| c.len()).sum();
        assert_eq!(total, 21);
    }

    #[test]
    fn row_chunks_mut_are_disjoint_and_writable() {
        let mut m = Matrix::zeros(5, 2);
        for (i, chunk) in m.row_chunks_mut(2).enumerate() {
            chunk.fill(i as f32);
        }
        assert_eq!(m.as_slice(), &[0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn matvec_into_reuses_buffer() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let mut y = vec![9.0, 9.0];
        m.matvec_into(&[5.0, 6.0], &mut y);
        assert_eq!(y, vec![5.0, 6.0]);
    }
}
