//! Fully-connected layer `y = W x + b` with manual backward.

use ca_tensor::{xavier_uniform, Matrix};
use rand::Rng;

/// A dense affine layer. `w` is `out_dim × in_dim`.
#[derive(Clone, Debug)]
pub struct Linear {
    /// Weight matrix, `out_dim × in_dim`.
    pub w: Matrix,
    /// Bias vector, length `out_dim`.
    pub b: Vec<f32>,
}

/// Gradient accumulator mirroring a [`Linear`].
#[derive(Clone, Debug)]
pub struct LinearGrad {
    /// `∂L/∂W`.
    pub w: Matrix,
    /// `∂L/∂b`.
    pub b: Vec<f32>,
}

impl Linear {
    /// Xavier-initialized layer.
    pub fn new(rng: &mut impl Rng, in_dim: usize, out_dim: usize) -> Self {
        Self { w: xavier_uniform(rng, out_dim, in_dim), b: vec![0.0; out_dim] }
    }

    /// Gaussian `N(0, std²)` initialization, matching the paper's
    /// `N(0, 0.1²)` recipe for all network parameters.
    pub fn gaussian(rng: &mut impl Rng, in_dim: usize, out_dim: usize, std: f32) -> Self {
        Self {
            w: ca_tensor::init::gaussian_matrix(rng, out_dim, in_dim, 0.0, std),
            b: vec![0.0; out_dim],
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.w.cols()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.w.rows()
    }

    /// `y = W x + b`.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        let mut y = self.w.matvec(x);
        for (yi, bi) in y.iter_mut().zip(self.b.iter()) {
            *yi += bi;
        }
        y
    }

    /// Batched forward: `out.row(i) = W · x.row(i) + b` for every row of
    /// `x`, dispatched as one blocked GEMM (`x · Wᵀ`). Each output row is
    /// bitwise identical to [`Linear::forward`] on the same input row.
    ///
    /// # Panics
    /// Panics if `x` or `out` have the wrong width or disagree on rows.
    pub fn forward_batch_into(&self, x: &Matrix, out: &mut Matrix) {
        assert_eq!(x.cols(), self.in_dim(), "forward_batch input width mismatch");
        x.matmul_nt_into(&self.w, out);
        for r in 0..out.rows() {
            for (yi, bi) in out.row_mut(r).iter_mut().zip(self.b.iter()) {
                *yi += bi;
            }
        }
    }

    /// Allocating convenience for [`Linear::forward_batch_into`].
    pub fn forward_batch(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(x.rows(), self.out_dim());
        self.forward_batch_into(x, &mut out);
        out
    }

    /// Backward pass. Accumulates `∂L/∂W += gy ⊗ x`, `∂L/∂b += gy`, and
    /// returns `∂L/∂x = Wᵀ gy`.
    pub fn backward(&self, x: &[f32], gy: &[f32], grad: &mut LinearGrad) -> Vec<f32> {
        debug_assert_eq!(x.len(), self.in_dim());
        debug_assert_eq!(gy.len(), self.out_dim());
        grad.w.add_outer(gy, x, 1.0);
        ca_tensor::ops::axpy(1.0, gy, &mut grad.b);
        self.w.matvec_t(gy)
    }

    /// A zeroed gradient accumulator of matching shape.
    pub fn zero_grad(&self) -> LinearGrad {
        LinearGrad { w: Matrix::zeros(self.out_dim(), self.in_dim()), b: vec![0.0; self.out_dim()] }
    }

    /// Plain SGD step: `θ -= lr · ∂L/∂θ`.
    pub fn sgd_step(&mut self, grad: &LinearGrad, lr: f32) {
        self.w.add_scaled(&grad.w, -lr);
        ca_tensor::ops::axpy(-lr, &grad.b, &mut self.b);
    }

    /// Total number of scalar parameters.
    pub fn param_count(&self) -> usize {
        self.w.rows() * self.w.cols() + self.b.len()
    }
}

impl LinearGrad {
    /// Resets the accumulator to zero, keeping allocations.
    pub fn zero(&mut self) {
        self.w.fill_zero();
        self.b.iter_mut().for_each(|x| *x = 0.0);
    }

    /// `self += alpha * other` — used when averaging gradients over an
    /// episode before the policy update.
    pub fn add_scaled(&mut self, other: &LinearGrad, alpha: f32) {
        self.w.add_scaled(&other.w, alpha);
        ca_tensor::ops::axpy(alpha, &other.b, &mut self.b);
    }

    /// L2 norm over all entries (used for gradient clipping).
    pub fn norm(&self) -> f32 {
        let wn = self.w.frobenius_norm();
        let bn = ca_tensor::ops::l2_norm(&self.b);
        (wn * wn + bn * bn).sqrt()
    }

    /// Multiplies every entry by `alpha`.
    pub fn scale(&mut self, alpha: f32) {
        ca_tensor::ops::scale(self.w.as_mut_slice(), alpha);
        ca_tensor::ops::scale(&mut self.b, alpha);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn loss(layer: &Linear, x: &[f32]) -> f32 {
        // L = sum(y²)/2 gives gy = y, a convenient test harness.
        layer.forward(x).iter().map(|y| y * y).sum::<f32>() / 2.0
    }

    #[test]
    fn forward_known_values() {
        let l = Linear {
            w: Matrix::from_vec(2, 3, vec![1.0, 0.0, -1.0, 0.5, 0.5, 0.5]),
            b: vec![1.0, -1.0],
        };
        let y = l.forward(&[2.0, 4.0, 6.0]);
        assert_eq!(y, vec![2.0 - 6.0 + 1.0, 6.0 - 1.0]);
    }

    #[test]
    fn gradient_check_weights_bias_and_input() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut layer = Linear::new(&mut rng, 4, 3);
        let x: Vec<f32> = (0..4).map(|i| 0.3 * i as f32 - 0.5).collect();

        let y = layer.forward(&x);
        let mut grad = layer.zero_grad();
        let gx = layer.backward(&x, &y, &mut grad);

        let eps = 1e-2f32;
        // Weight gradient, every entry.
        for r in 0..3 {
            for c in 0..4 {
                let orig = layer.w[(r, c)];
                layer.w[(r, c)] = orig + eps;
                let lp = loss(&layer, &x);
                layer.w[(r, c)] = orig - eps;
                let lm = loss(&layer, &x);
                layer.w[(r, c)] = orig;
                let numeric = (lp - lm) / (2.0 * eps);
                assert!(
                    (grad.w[(r, c)] - numeric).abs() < 1e-2 * (1.0 + numeric.abs()),
                    "w[{r},{c}]: {} vs {}",
                    grad.w[(r, c)],
                    numeric
                );
            }
        }
        // Bias gradient.
        for i in 0..3 {
            let orig = layer.b[i];
            layer.b[i] = orig + eps;
            let lp = loss(&layer, &x);
            layer.b[i] = orig - eps;
            let lm = loss(&layer, &x);
            layer.b[i] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((grad.b[i] - numeric).abs() < 1e-2 * (1.0 + numeric.abs()));
        }
        // Input gradient.
        for i in 0..4 {
            let mut xp = x.clone();
            xp[i] += eps;
            let lp = loss(&layer, &xp);
            xp[i] = x[i] - eps;
            let lm = loss(&layer, &xp);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((gx[i] - numeric).abs() < 1e-2 * (1.0 + numeric.abs()));
        }
    }

    #[test]
    fn forward_batch_matches_per_row_forward() {
        let mut rng = StdRng::seed_from_u64(17);
        let layer = Linear::new(&mut rng, 5, 3);
        let x = Matrix::from_fn(7, 5, |r, c| (r as f32 - c as f32) * 0.31);
        let out = layer.forward_batch(&x);
        for r in 0..7 {
            assert_eq!(out.row(r), &layer.forward(x.row(r))[..], "row {r}");
        }
    }

    #[test]
    fn sgd_step_descends_quadratic_loss() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut layer = Linear::new(&mut rng, 3, 2);
        let x = [1.0, -0.5, 0.25];
        let before = loss(&layer, &x);
        for _ in 0..50 {
            let y = layer.forward(&x);
            let mut grad = layer.zero_grad();
            layer.backward(&x, &y, &mut grad);
            layer.sgd_step(&grad, 0.1);
        }
        let after = loss(&layer, &x);
        assert!(after < before * 0.1, "loss {before} -> {after}");
    }

    #[test]
    fn grad_accumulator_scaling() {
        let mut rng = StdRng::seed_from_u64(5);
        let layer = Linear::new(&mut rng, 2, 2);
        let mut g = layer.zero_grad();
        layer.backward(&[1.0, 2.0], &[1.0, 1.0], &mut g);
        let n = g.norm();
        assert!(n > 0.0);
        g.scale(0.5);
        assert!((g.norm() - 0.5 * n).abs() < 1e-5);
        g.zero();
        assert_eq!(g.norm(), 0.0);
    }
}
