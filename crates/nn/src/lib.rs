//! Neural-network substrate with hand-written backpropagation.
//!
//! The paper builds all of its learnable components out of three small
//! pieces, and this crate provides exactly those:
//!
//! - [`Linear`] / [`Mlp`] — the per-node policy networks of the
//!   hierarchical-structure policy gradient (§4.3.3) and the profile-crafting
//!   policy (§4.4) are MLP heads ending in a (masked) softmax;
//! - [`Rnn`] — the state encoder over already-selected source users
//!   (`x_{v*} = RNN(U^{B→A}_t)`, §4.3.3);
//! - [`optim`] — plain SGD and Adam; the paper trains everything with
//!   learning rate 1e-3.
//!
//! There is no autograd tape. Each layer's `forward` returns a cache of the
//! values its `backward` needs, and `backward` accumulates parameter
//! gradients into a mirror "grad" struct. Finite-difference tests in each
//! module check every gradient path.

#![forbid(unsafe_code)]

pub mod activation;
pub mod categorical;
pub mod encoder;
pub mod gru;
pub mod linear;
pub mod mlp;
pub mod optim;
pub mod rnn;

pub use categorical::Categorical;
pub use encoder::{EncoderKind, SeqCache, SeqEncoder, SeqGrad};
pub use gru::{Gru, GruCache, GruGrad};
pub use linear::{Linear, LinearGrad};
pub use mlp::{Mlp, MlpCache, MlpGrad};
pub use optim::{Adam, GradClip};
pub use rnn::{Rnn, RnnCache, RnnGrad};
