//! GRU cell — a gated alternative to the Elman RNN state encoder.
//!
//! The paper specifies only "an RNN model" for encoding the selected-user
//! sequence (§4.3.3). The Elman cell ([`crate::rnn::Rnn`]) is the minimal
//! reading; the GRU is the common practical choice when sequences carry
//! long-range structure. Both are exposed through
//! [`crate::encoder::SeqEncoder`] so the attack can ablate the choice.
//!
//! ```text
//! z_t = σ(W_z x_t + U_z h_{t−1} + b_z)        (update gate)
//! r_t = σ(W_r x_t + U_r h_{t−1} + b_r)        (reset gate)
//! ĥ_t = tanh(W_h x_t + U_h (r_t ⊙ h_{t−1}) + b_h)
//! h_t = (1 − z_t) ⊙ h_{t−1} + z_t ⊙ ĥ_t
//! ```
//!
//! Backward-through-time is implemented for a gradient arriving at the
//! final hidden state only (the only consumer in CopyAttack).

use ca_tensor::init::gaussian_matrix;
use ca_tensor::{ops, Matrix};
use rand::Rng;

/// Single-layer GRU.
#[derive(Clone, Debug)]
pub struct Gru {
    /// Input weights for the z/r/h paths, each `hidden × input`.
    pub wz: Matrix,
    /// Recurrent weights for z, `hidden × hidden`.
    pub uz: Matrix,
    /// z bias.
    pub bz: Vec<f32>,
    /// Input weights for r.
    pub wr: Matrix,
    /// Recurrent weights for r.
    pub ur: Matrix,
    /// r bias.
    pub br: Vec<f32>,
    /// Input weights for the candidate state.
    pub wh: Matrix,
    /// Recurrent weights for the candidate state.
    pub uh: Matrix,
    /// Candidate bias.
    pub bh: Vec<f32>,
}

/// Per-step values needed by the backward pass.
#[derive(Clone, Debug)]
struct StepCache {
    x: Vec<f32>,
    h_prev: Vec<f32>,
    z: Vec<f32>,
    r: Vec<f32>,
    hhat: Vec<f32>,
}

/// Cache of one forward pass.
#[derive(Clone, Debug)]
pub struct GruCache {
    steps: Vec<StepCache>,
}

/// Gradient accumulator mirroring a [`Gru`].
#[derive(Clone, Debug)]
pub struct GruGrad {
    /// Gradients, same layout as the parameters.
    pub wz: Matrix,
    /// `∂L/∂U_z`.
    pub uz: Matrix,
    /// `∂L/∂b_z`.
    pub bz: Vec<f32>,
    /// `∂L/∂W_r`.
    pub wr: Matrix,
    /// `∂L/∂U_r`.
    pub ur: Matrix,
    /// `∂L/∂b_r`.
    pub br: Vec<f32>,
    /// `∂L/∂W_h`.
    pub wh: Matrix,
    /// `∂L/∂U_h`.
    pub uh: Matrix,
    /// `∂L/∂b_h`.
    pub bh: Vec<f32>,
}

impl Gru {
    /// New GRU with `N(0, std²)` weights.
    pub fn new(rng: &mut impl Rng, input_dim: usize, hidden_dim: usize, std: f32) -> Self {
        let mut g = move |r: usize, c: usize| gaussian_matrix(rng, r, c, 0.0, std);
        Self {
            wz: g(hidden_dim, input_dim),
            uz: g(hidden_dim, hidden_dim),
            bz: vec![0.0; hidden_dim],
            wr: g(hidden_dim, input_dim),
            ur: g(hidden_dim, hidden_dim),
            br: vec![0.0; hidden_dim],
            wh: g(hidden_dim, input_dim),
            uh: g(hidden_dim, hidden_dim),
            bh: vec![0.0; hidden_dim],
        }
    }

    /// Hidden dimensionality.
    pub fn hidden_dim(&self) -> usize {
        self.wz.rows()
    }

    /// Runs the sequence; returns the final hidden state and the cache.
    /// An empty sequence yields the zero state.
    pub fn forward(&self, xs: &[&[f32]]) -> (Vec<f32>, GruCache) {
        let hd = self.hidden_dim();
        let mut h = vec![0.0; hd];
        let mut steps = Vec::with_capacity(xs.len());
        for x in xs {
            let mut z = self.wz.matvec(x);
            ops::axpy(1.0, &self.uz.matvec(&h), &mut z);
            ops::axpy(1.0, &self.bz, &mut z);
            z.iter_mut().for_each(|v| *v = ops::sigmoid(*v));

            let mut r = self.wr.matvec(x);
            ops::axpy(1.0, &self.ur.matvec(&h), &mut r);
            ops::axpy(1.0, &self.br, &mut r);
            r.iter_mut().for_each(|v| *v = ops::sigmoid(*v));

            let rh: Vec<f32> = r.iter().zip(h.iter()).map(|(a, b)| a * b).collect();
            let mut hhat = self.wh.matvec(x);
            ops::axpy(1.0, &self.uh.matvec(&rh), &mut hhat);
            ops::axpy(1.0, &self.bh, &mut hhat);
            hhat.iter_mut().for_each(|v| *v = v.tanh());

            let h_next: Vec<f32> = (0..hd).map(|k| (1.0 - z[k]) * h[k] + z[k] * hhat[k]).collect();
            steps.push(StepCache { x: x.to_vec(), h_prev: h.clone(), z, r, hhat });
            h = h_next;
        }
        (h, GruCache { steps })
    }

    /// Final hidden state only.
    pub fn infer(&self, xs: &[&[f32]]) -> Vec<f32> {
        self.forward(xs).0
    }

    /// Backward-through-time from a gradient on the final hidden state.
    pub fn backward(&self, cache: &GruCache, g_last: &[f32], grad: &mut GruGrad) {
        let hd = self.hidden_dim();
        let mut gh = g_last.to_vec();
        for step in cache.steps.iter().rev() {
            let StepCache { x, h_prev, z, r, hhat } = step;
            // h = (1−z)·h_prev + z·ĥ
            let mut gz = vec![0.0; hd];
            let mut ghhat = vec![0.0; hd];
            let mut gh_prev = vec![0.0; hd];
            for k in 0..hd {
                gz[k] = gh[k] * (hhat[k] - h_prev[k]);
                ghhat[k] = gh[k] * z[k];
                gh_prev[k] = gh[k] * (1.0 - z[k]);
            }
            // Candidate: ĥ = tanh(pre_h)
            let mut gpre_h = ghhat;
            for k in 0..hd {
                gpre_h[k] *= 1.0 - hhat[k] * hhat[k];
            }
            let rh: Vec<f32> = r.iter().zip(h_prev.iter()).map(|(a, b)| a * b).collect();
            grad.wh.add_outer(&gpre_h, x, 1.0);
            grad.uh.add_outer(&gpre_h, &rh, 1.0);
            ops::axpy(1.0, &gpre_h, &mut grad.bh);
            let g_rh = self.uh.matvec_t(&gpre_h);
            let mut gr = vec![0.0; hd];
            for k in 0..hd {
                gr[k] = g_rh[k] * h_prev[k];
                gh_prev[k] += g_rh[k] * r[k];
            }
            // Gates through their sigmoids.
            let mut gpre_z = gz;
            for k in 0..hd {
                gpre_z[k] *= z[k] * (1.0 - z[k]);
            }
            let mut gpre_r = gr;
            for k in 0..hd {
                gpre_r[k] *= r[k] * (1.0 - r[k]);
            }
            grad.wz.add_outer(&gpre_z, x, 1.0);
            grad.uz.add_outer(&gpre_z, h_prev, 1.0);
            ops::axpy(1.0, &gpre_z, &mut grad.bz);
            grad.wr.add_outer(&gpre_r, x, 1.0);
            grad.ur.add_outer(&gpre_r, h_prev, 1.0);
            ops::axpy(1.0, &gpre_r, &mut grad.br);
            ops::axpy(1.0, &self.uz.matvec_t(&gpre_z), &mut gh_prev);
            ops::axpy(1.0, &self.ur.matvec_t(&gpre_r), &mut gh_prev);
            gh = gh_prev;
        }
    }

    /// A zeroed gradient accumulator.
    pub fn zero_grad(&self) -> GruGrad {
        let hd = self.hidden_dim();
        let id = self.wz.cols();
        GruGrad {
            wz: Matrix::zeros(hd, id),
            uz: Matrix::zeros(hd, hd),
            bz: vec![0.0; hd],
            wr: Matrix::zeros(hd, id),
            ur: Matrix::zeros(hd, hd),
            br: vec![0.0; hd],
            wh: Matrix::zeros(hd, id),
            uh: Matrix::zeros(hd, hd),
            bh: vec![0.0; hd],
        }
    }

    /// Plain SGD step.
    pub fn sgd_step(&mut self, grad: &GruGrad, lr: f32) {
        self.wz.add_scaled(&grad.wz, -lr);
        self.uz.add_scaled(&grad.uz, -lr);
        ops::axpy(-lr, &grad.bz, &mut self.bz);
        self.wr.add_scaled(&grad.wr, -lr);
        self.ur.add_scaled(&grad.ur, -lr);
        ops::axpy(-lr, &grad.br, &mut self.br);
        self.wh.add_scaled(&grad.wh, -lr);
        self.uh.add_scaled(&grad.uh, -lr);
        ops::axpy(-lr, &grad.bh, &mut self.bh);
    }

    /// Total number of scalar parameters.
    pub fn param_count(&self) -> usize {
        3 * (self.wz.rows() * self.wz.cols() + self.uz.rows() * self.uz.cols() + self.bz.len())
    }
}

impl GruGrad {
    /// Global L2 norm.
    pub fn norm(&self) -> f32 {
        let mats = [&self.wz, &self.uz, &self.wr, &self.ur, &self.wh, &self.uh];
        let mut acc: f32 = mats.iter().map(|m| m.frobenius_norm().powi(2)).sum();
        for b in [&self.bz, &self.br, &self.bh] {
            acc += ops::dot(b, b);
        }
        acc.sqrt()
    }

    /// Multiplies every entry by `alpha`.
    pub fn scale(&mut self, alpha: f32) {
        for m in
            [&mut self.wz, &mut self.uz, &mut self.wr, &mut self.ur, &mut self.wh, &mut self.uh]
        {
            ops::scale(m.as_mut_slice(), alpha);
        }
        for b in [&mut self.bz, &mut self.br, &mut self.bh] {
            ops::scale(b, alpha);
        }
    }

    /// Resets to zero.
    pub fn zero(&mut self) {
        self.scale(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn loss(gru: &Gru, xs: &[Vec<f32>]) -> f32 {
        let refs: Vec<&[f32]> = xs.iter().map(|x| x.as_slice()).collect();
        gru.infer(&refs).iter().map(|h| h * h).sum::<f32>() / 2.0
    }

    #[test]
    fn empty_sequence_yields_zero_state() {
        let mut rng = StdRng::seed_from_u64(0);
        let gru = Gru::new(&mut rng, 3, 4, 0.3);
        assert_eq!(gru.infer(&[]), vec![0.0; 4]);
    }

    #[test]
    fn state_is_bounded() {
        let mut rng = StdRng::seed_from_u64(1);
        let gru = Gru::new(&mut rng, 2, 3, 4.0);
        let x = [50.0f32, -50.0];
        let h = gru.infer(&[&x, &x, &x, &x]);
        assert!(h.iter().all(|&v| (-1.0..=1.0).contains(&v)), "{h:?}");
    }

    #[test]
    fn order_matters() {
        let mut rng = StdRng::seed_from_u64(2);
        let gru = Gru::new(&mut rng, 2, 4, 0.5);
        let a = [1.0f32, 0.0];
        let b = [0.0f32, 1.0];
        assert_ne!(gru.infer(&[&a, &b]), gru.infer(&[&b, &a]));
    }

    #[test]
    fn bptt_gradient_check() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut gru = Gru::new(&mut rng, 3, 4, 0.4);
        let xs: Vec<Vec<f32>> =
            vec![vec![0.4, -0.1, 0.2], vec![-0.3, 0.6, 0.0], vec![0.1, 0.1, -0.5]];
        let refs: Vec<&[f32]> = xs.iter().map(|x| x.as_slice()).collect();
        let (h, cache) = gru.forward(&refs);
        let mut grad = gru.zero_grad();
        gru.backward(&cache, &h, &mut grad);

        let eps = 1e-2f32;
        // Spot-check entries in every parameter tensor.
        macro_rules! check_mat {
            ($field:ident, $gfield:expr, $pairs:expr) => {
                for (r, c) in $pairs {
                    let orig = gru.$field[(r, c)];
                    gru.$field[(r, c)] = orig + eps;
                    let lp = loss(&gru, &xs);
                    gru.$field[(r, c)] = orig - eps;
                    let lm = loss(&gru, &xs);
                    gru.$field[(r, c)] = orig;
                    let numeric = (lp - lm) / (2.0 * eps);
                    let analytic = $gfield[(r, c)];
                    assert!(
                        (analytic - numeric).abs() < 3e-2 * (1.0 + numeric.abs()),
                        "{}[{r},{c}]: {analytic} vs {numeric}",
                        stringify!($field)
                    );
                }
            };
        }
        check_mat!(wz, grad.wz, [(0usize, 0usize), (2, 1)]);
        check_mat!(uz, grad.uz, [(1usize, 2usize), (3, 0)]);
        check_mat!(wr, grad.wr, [(0usize, 2usize), (3, 1)]);
        check_mat!(ur, grad.ur, [(2usize, 2usize), (0, 3)]);
        check_mat!(wh, grad.wh, [(1usize, 0usize), (2, 2)]);
        check_mat!(uh, grad.uh, [(0usize, 1usize), (3, 3)]);
        for i in 0..4 {
            let orig = gru.bh[i];
            gru.bh[i] = orig + eps;
            let lp = loss(&gru, &xs);
            gru.bh[i] = orig - eps;
            let lm = loss(&gru, &xs);
            gru.bh[i] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (grad.bh[i] - numeric).abs() < 3e-2 * (1.0 + numeric.abs()),
                "bh[{i}]: {} vs {numeric}",
                grad.bh[i]
            );
        }
    }

    #[test]
    fn sgd_descends_quadratic_loss() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut gru = Gru::new(&mut rng, 2, 3, 0.5);
        let xs: Vec<Vec<f32>> = vec![vec![0.7, -0.4], vec![-0.2, 0.9]];
        let before = loss(&gru, &xs);
        for _ in 0..60 {
            let refs: Vec<&[f32]> = xs.iter().map(|x| x.as_slice()).collect();
            let (h, cache) = gru.forward(&refs);
            let mut grad = gru.zero_grad();
            gru.backward(&cache, &h, &mut grad);
            gru.sgd_step(&grad, 0.2);
        }
        let after = loss(&gru, &xs);
        assert!(after < before * 0.5, "loss {before} -> {after}");
    }

    #[test]
    fn grad_norm_and_scale() {
        let mut rng = StdRng::seed_from_u64(10);
        let gru = Gru::new(&mut rng, 2, 3, 0.4);
        let xs = [[0.3f32, 0.2]];
        let refs: Vec<&[f32]> = xs.iter().map(|x| x.as_slice()).collect();
        let (h, cache) = gru.forward(&refs);
        let mut grad = gru.zero_grad();
        gru.backward(&cache, &h, &mut grad);
        let n = grad.norm();
        assert!(n > 0.0);
        grad.scale(2.0);
        assert!((grad.norm() - 2.0 * n).abs() < 1e-4);
        grad.zero();
        assert_eq!(grad.norm(), 0.0);
    }
}
