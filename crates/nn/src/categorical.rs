//! Categorical policy head: masked softmax over logits, sampling, and the
//! REINFORCE logit gradient.
//!
//! For a categorical policy `π(a|s) = softmax(z)_a`, the REINFORCE estimator
//! needs `∇_z [-A · log π(a|s)] = A · (π − onehot(a))`, where `A` is the
//! (baselined, discounted) return. With masking, masked entries have zero
//! probability and receive zero gradient — the identity still holds over the
//! unmasked support.

use ca_tensor::ops::{masked_softmax, softmax};
use rand::Rng;

/// A realized categorical distribution over actions.
#[derive(Clone, Debug)]
pub struct Categorical {
    probs: Vec<f32>,
}

impl Categorical {
    /// From raw logits (no masking).
    pub fn from_logits(logits: &[f32]) -> Self {
        Self { probs: softmax(logits) }
    }

    /// From logits with a feasibility mask (`true` = allowed).
    ///
    /// # Panics
    /// Panics if every action is masked.
    pub fn from_masked_logits(logits: &[f32], mask: &[bool]) -> Self {
        Self { probs: masked_softmax(logits, mask) }
    }

    /// Probability vector.
    pub fn probs(&self) -> &[f32] {
        &self.probs
    }

    /// Number of actions.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// True when there are no actions (never constructible via the public
    /// constructors, kept for clippy's `len_without_is_empty`).
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// Samples an action index by inverse-CDF.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f32 = rng.gen();
        let mut acc = 0.0;
        for (i, &p) in self.probs.iter().enumerate() {
            acc += p;
            if u < acc {
                return i;
            }
        }
        // Floating-point slack: fall back to the last action with nonzero
        // probability.
        self.probs.iter().rposition(|&p| p > 0.0).expect("categorical with all-zero probabilities")
    }

    /// Greedy (argmax) action.
    pub fn greedy(&self) -> usize {
        ca_tensor::ops::argmax(&self.probs)
    }

    /// `log π(action)`.
    pub fn log_prob(&self, action: usize) -> f32 {
        self.probs[action].max(1e-12).ln()
    }

    /// Shannon entropy in nats (useful to monitor policy collapse).
    pub fn entropy(&self) -> f32 {
        -self.probs.iter().filter(|&&p| p > 0.0).map(|&p| p * p.ln()).sum::<f32>()
    }

    /// Gradient of `-coeff · log π(action)` w.r.t. the logits:
    /// `coeff · (π − onehot(action))`.
    ///
    /// Passing the advantage as `coeff` yields the REINFORCE update direction
    /// for gradient *descent* (i.e. feed the result straight into the MLP
    /// backward pass and apply an SGD step).
    pub fn reinforce_logit_grad(&self, action: usize, coeff: f32) -> Vec<f32> {
        let mut g: Vec<f32> = self.probs.iter().map(|&p| coeff * p).collect();
        g[action] -= coeff;
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sampling_frequency_tracks_probabilities() {
        let dist = Categorical::from_logits(&[0.0, (3.0f32).ln(), 0.0]);
        // probs = [0.2, 0.6, 0.2]
        let mut rng = StdRng::seed_from_u64(99);
        let n = 30_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[dist.sample(&mut rng)] += 1;
        }
        let f1 = counts[1] as f32 / n as f32;
        assert!((f1 - 0.6).abs() < 0.02, "freq {f1}");
    }

    #[test]
    fn masked_actions_are_never_sampled() {
        let dist = Categorical::from_masked_logits(&[10.0, 0.0, 0.0], &[false, true, true]);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_ne!(dist.sample(&mut rng), 0);
        }
    }

    #[test]
    fn log_prob_and_entropy_consistency() {
        let dist = Categorical::from_logits(&[0.0, 0.0]);
        assert!((dist.log_prob(0) - (0.5f32).ln()).abs() < 1e-5);
        assert!((dist.entropy() - (2.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn reinforce_grad_sums_to_zero() {
        let dist = Categorical::from_logits(&[1.0, -2.0, 0.5, 0.0]);
        let g = dist.reinforce_logit_grad(2, 1.7);
        let sum: f32 = g.iter().sum();
        assert!(sum.abs() < 1e-5, "grad must sum to 0, got {sum}");
        // The chosen action's logit gradient is negative for positive
        // advantage (we want to *increase* its logit under descent).
        assert!(g[2] < 0.0);
    }

    #[test]
    fn reinforce_grad_matches_finite_difference() {
        // d(-log softmax(z)[a]) / dz_i  ==  p_i - [i == a]
        let logits = vec![0.3f32, -0.8, 1.2];
        let action = 1;
        let dist = Categorical::from_logits(&logits);
        let g = dist.reinforce_logit_grad(action, 1.0);
        let eps = 1e-3f32;
        for i in 0..3 {
            let mut zp = logits.clone();
            zp[i] += eps;
            let lp = -Categorical::from_logits(&zp).log_prob(action);
            zp[i] = logits[i] - eps;
            let lm = -Categorical::from_logits(&zp).log_prob(action);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((g[i] - numeric).abs() < 1e-3, "z[{i}]: {} vs {numeric}", g[i]);
        }
    }

    #[test]
    fn greedy_picks_max_probability() {
        let dist = Categorical::from_logits(&[0.0, 5.0, 1.0]);
        assert_eq!(dist.greedy(), 1);
    }
}
