//! Sequence-encoder abstraction: Elman RNN or GRU behind one interface.
//!
//! The paper says only "we model the selected users … with an RNN model";
//! this enum lets the attack ablate the cell choice without generics
//! leaking into the policy code.

use crate::gru::{Gru, GruCache, GruGrad};
use crate::rnn::{Rnn, RnnCache, RnnGrad};
use rand::Rng;

/// Which recurrent cell to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum EncoderKind {
    /// Elman tanh RNN (the minimal reading of the paper).
    #[default]
    Rnn,
    /// Gated recurrent unit.
    Gru,
}

/// A sequence encoder of either kind. Variants are boxed: a GRU holds 3×
/// the parameter tensors of the Elman cell, and the encoder lives inside
/// long-lived policy structs.
#[derive(Clone, Debug)]
pub enum SeqEncoder {
    /// Elman variant.
    Rnn(Box<Rnn>),
    /// GRU variant.
    Gru(Box<Gru>),
}

/// Forward cache of either kind.
pub enum SeqCache {
    /// Elman cache.
    Rnn(RnnCache),
    /// GRU cache.
    Gru(GruCache),
}

/// Gradient accumulator of either kind.
pub enum SeqGrad {
    /// Elman gradients.
    Rnn(Box<RnnGrad>),
    /// GRU gradients.
    Gru(Box<GruGrad>),
}

impl SeqEncoder {
    /// Builds an encoder of the requested kind with `N(0, std²)` weights.
    pub fn new(
        kind: EncoderKind,
        rng: &mut impl Rng,
        input_dim: usize,
        hidden_dim: usize,
        std: f32,
    ) -> Self {
        match kind {
            EncoderKind::Rnn => {
                SeqEncoder::Rnn(Box::new(Rnn::new(rng, input_dim, hidden_dim, std)))
            }
            EncoderKind::Gru => {
                SeqEncoder::Gru(Box::new(Gru::new(rng, input_dim, hidden_dim, std)))
            }
        }
    }

    /// The encoder's kind.
    pub fn kind(&self) -> EncoderKind {
        match self {
            SeqEncoder::Rnn(_) => EncoderKind::Rnn,
            SeqEncoder::Gru(_) => EncoderKind::Gru,
        }
    }

    /// Runs the sequence; returns the final hidden state and a cache.
    pub fn forward(&self, xs: &[&[f32]]) -> (Vec<f32>, SeqCache) {
        match self {
            SeqEncoder::Rnn(r) => {
                let (h, c) = r.forward(xs);
                (h, SeqCache::Rnn(c))
            }
            SeqEncoder::Gru(g) => {
                let (h, c) = g.forward(xs);
                (h, SeqCache::Gru(c))
            }
        }
    }

    /// Backward-through-time from a gradient on the final state.
    ///
    /// # Panics
    /// Panics if the cache/grad kinds do not match the encoder.
    pub fn backward(&self, cache: &SeqCache, g_last: &[f32], grad: &mut SeqGrad) {
        match (self, cache, grad) {
            (SeqEncoder::Rnn(r), SeqCache::Rnn(c), SeqGrad::Rnn(g)) => r.backward(c, g_last, g),
            (SeqEncoder::Gru(gr), SeqCache::Gru(c), SeqGrad::Gru(g)) => gr.backward(c, g_last, g),
            _ => panic!("encoder/cache/grad kind mismatch"),
        }
    }

    /// A zeroed gradient accumulator of the matching kind.
    pub fn zero_grad(&self) -> SeqGrad {
        match self {
            SeqEncoder::Rnn(r) => SeqGrad::Rnn(Box::new(r.zero_grad())),
            SeqEncoder::Gru(g) => SeqGrad::Gru(Box::new(g.zero_grad())),
        }
    }

    /// Plain SGD step.
    ///
    /// # Panics
    /// Panics on a kind mismatch.
    pub fn sgd_step(&mut self, grad: &SeqGrad, lr: f32) {
        match (self, grad) {
            (SeqEncoder::Rnn(r), SeqGrad::Rnn(g)) => r.sgd_step(g, lr),
            (SeqEncoder::Gru(gr), SeqGrad::Gru(g)) => gr.sgd_step(g, lr),
            _ => panic!("encoder/grad kind mismatch"),
        }
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        match self {
            SeqEncoder::Rnn(r) => r.param_count(),
            SeqEncoder::Gru(g) => g.param_count(),
        }
    }
}

impl SeqGrad {
    /// Global L2 norm.
    pub fn norm(&self) -> f32 {
        match self {
            SeqGrad::Rnn(g) => g.norm(),
            SeqGrad::Gru(g) => g.norm(),
        }
    }

    /// Multiplies every entry by `alpha`.
    pub fn scale(&mut self, alpha: f32) {
        match self {
            SeqGrad::Rnn(g) => g.scale(alpha),
            SeqGrad::Gru(g) => g.scale(alpha),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn both_kinds_roundtrip_forward_backward() {
        for kind in [EncoderKind::Rnn, EncoderKind::Gru] {
            let mut rng = StdRng::seed_from_u64(3);
            let mut enc = SeqEncoder::new(kind, &mut rng, 3, 4, 0.4);
            assert_eq!(enc.kind(), kind);
            let xs: Vec<Vec<f32>> = vec![vec![0.2, -0.1, 0.4], vec![0.0, 0.3, -0.2]];
            let refs: Vec<&[f32]> = xs.iter().map(|x| x.as_slice()).collect();
            let (h, cache) = enc.forward(&refs);
            assert_eq!(h.len(), 4);
            let mut grad = enc.zero_grad();
            enc.backward(&cache, &h, &mut grad);
            assert!(grad.norm() > 0.0, "{kind:?} produced zero gradient");
            enc.sgd_step(&grad, 0.1);
            let (h2, _) = enc.forward(&refs);
            assert_ne!(h, h2, "{kind:?} step had no effect");
        }
    }

    #[test]
    fn gru_has_three_times_rnn_recurrent_parameters() {
        let mut rng = StdRng::seed_from_u64(4);
        let rnn = SeqEncoder::new(EncoderKind::Rnn, &mut rng, 4, 4, 0.3);
        let gru = SeqEncoder::new(EncoderKind::Gru, &mut rng, 4, 4, 0.3);
        assert_eq!(gru.param_count(), 3 * rnn.param_count());
    }

    #[test]
    #[should_panic(expected = "kind mismatch")]
    fn mismatched_cache_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let rnn = SeqEncoder::new(EncoderKind::Rnn, &mut rng, 2, 2, 0.3);
        let gru = SeqEncoder::new(EncoderKind::Gru, &mut rng, 2, 2, 0.3);
        let x = [0.1f32, 0.2];
        let (_, cache) = gru.forward(&[&x]);
        let mut grad = rnn.zero_grad();
        rnn.backward(&cache, &[0.0, 0.0], &mut grad);
    }
}
