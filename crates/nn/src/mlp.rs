//! Multi-layer perceptron with ReLU hidden activations.
//!
//! The paper's policy networks — one per non-leaf clustering-tree node
//! (§4.3.3) and one for profile crafting (§4.4) — are small MLP heads whose
//! output logits feed a (masked) softmax. This module provides the shared
//! forward/backward machinery; the softmax + sampling lives in
//! [`crate::categorical`].

use crate::activation::{relu_backward, relu_inplace};
use crate::linear::{Linear, LinearGrad};
use ca_tensor::{Matrix, Scratch};
use rand::Rng;

/// An MLP: `dims[0] → dims[1] → … → dims.last()`, ReLU between layers,
/// linear (logit) output.
#[derive(Clone, Debug)]
pub struct Mlp {
    layers: Vec<Linear>,
}

/// Forward-pass cache: the input plus each layer's pre- and post-activation.
#[derive(Clone, Debug)]
pub struct MlpCache {
    /// `acts[0]` is the input; `acts[i]` is the post-activation output of
    /// layer `i-1` (for the last layer, the raw logits).
    acts: Vec<Vec<f32>>,
    /// Pre-activation values per hidden layer (needed by ReLU backward).
    pres: Vec<Vec<f32>>,
}

/// Gradient accumulator mirroring an [`Mlp`].
#[derive(Clone, Debug)]
pub struct MlpGrad {
    /// Per-layer gradients.
    pub layers: Vec<LinearGrad>,
}

impl Mlp {
    /// Builds an MLP with the given layer widths (at least two entries),
    /// parameters drawn from `N(0, std²)` per the paper's initialization.
    ///
    /// # Panics
    /// Panics if `dims.len() < 2`.
    pub fn new(rng: &mut impl Rng, dims: &[usize], std: f32) -> Self {
        assert!(dims.len() >= 2, "MLP needs at least input and output dims");
        let layers = dims.windows(2).map(|w| Linear::gaussian(rng, w[0], w[1], std)).collect();
        Self { layers }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output (logit) dimensionality.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// Forward pass returning the logits and the cache for `backward`.
    pub fn forward(&self, x: &[f32]) -> (Vec<f32>, MlpCache) {
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        let mut pres = Vec::with_capacity(self.layers.len().saturating_sub(1));
        acts.push(x.to_vec());
        let mut cur = x.to_vec();
        for (i, layer) in self.layers.iter().enumerate() {
            let mut y = layer.forward(&cur);
            if i + 1 < self.layers.len() {
                pres.push(y.clone());
                relu_inplace(&mut y);
            }
            acts.push(y.clone());
            cur = y;
        }
        let out = acts.last().expect("non-empty").clone();
        (out, MlpCache { acts, pres })
    }

    /// Logits only, skipping the cache (inference / evaluation path).
    pub fn infer(&self, x: &[f32]) -> Vec<f32> {
        let mut cur = x.to_vec();
        for (i, layer) in self.layers.iter().enumerate() {
            let mut y = layer.forward(&cur);
            if i + 1 < self.layers.len() {
                relu_inplace(&mut y);
            }
            cur = y;
        }
        cur
    }

    /// Batched inference: one logits row per input row, all layers run as
    /// matrix-matrix products. Row `i` of the result is bitwise identical to
    /// `infer(x.row(i))`; intermediate activations come from (and return
    /// to) `scratch`, so a warmed pool makes repeated calls allocation-free.
    /// The returned matrix is also pool-backed — recycle it when done.
    pub fn infer_batch(&self, x: &Matrix, scratch: &mut Scratch) -> Matrix {
        assert_eq!(x.cols(), self.in_dim(), "infer_batch input width mismatch");
        let n = x.rows();
        let mut cur: Option<Matrix> = None;
        for (i, layer) in self.layers.iter().enumerate() {
            let mut out = scratch.matrix(n, layer.out_dim());
            layer.forward_batch_into(cur.as_ref().unwrap_or(x), &mut out);
            if i + 1 < self.layers.len() {
                relu_inplace(out.as_mut_slice());
            }
            if let Some(prev) = cur.replace(out) {
                scratch.recycle(prev);
            }
        }
        cur.expect("MLP has at least one layer")
    }

    /// Backward pass from a gradient on the logits. Accumulates into `grad`
    /// and returns the gradient w.r.t. the input.
    pub fn backward(&self, cache: &MlpCache, g_logits: &[f32], grad: &mut MlpGrad) -> Vec<f32> {
        assert_eq!(grad.layers.len(), self.layers.len(), "grad shape mismatch");
        let mut g = g_logits.to_vec();
        for i in (0..self.layers.len()).rev() {
            // Input to layer i is cache.acts[i] (post-activation of layer i-1).
            let x = &cache.acts[i];
            let gx = self.layers[i].backward(x, &g, &mut grad.layers[i]);
            g = gx;
            if i > 0 {
                relu_backward(&cache.pres[i - 1], &mut g);
            }
        }
        g
    }

    /// A zeroed gradient accumulator of matching shape.
    pub fn zero_grad(&self) -> MlpGrad {
        MlpGrad { layers: self.layers.iter().map(Linear::zero_grad).collect() }
    }

    /// Plain SGD step.
    pub fn sgd_step(&mut self, grad: &MlpGrad, lr: f32) {
        for (layer, g) in self.layers.iter_mut().zip(grad.layers.iter()) {
            layer.sgd_step(g, lr);
        }
    }

    /// Total number of scalar parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Linear::param_count).sum()
    }

    /// Read access to the layers (used by the Adam optimizer binding).
    pub fn layers(&self) -> &[Linear] {
        &self.layers
    }

    /// Mutable access to the layers.
    pub fn layers_mut(&mut self) -> &mut [Linear] {
        &mut self.layers
    }
}

impl MlpGrad {
    /// Resets all accumulators to zero.
    pub fn zero(&mut self) {
        self.layers.iter_mut().for_each(LinearGrad::zero);
    }

    /// `self += alpha * other`.
    pub fn add_scaled(&mut self, other: &MlpGrad, alpha: f32) {
        for (a, b) in self.layers.iter_mut().zip(other.layers.iter()) {
            a.add_scaled(b, alpha);
        }
    }

    /// Global L2 norm across every parameter gradient.
    pub fn norm(&self) -> f32 {
        self.layers.iter().map(|g| g.norm().powi(2)).sum::<f32>().sqrt()
    }

    /// Multiplies every entry by `alpha`.
    pub fn scale(&mut self, alpha: f32) {
        self.layers.iter_mut().for_each(|g| g.scale(alpha));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn scalar_loss(mlp: &Mlp, x: &[f32]) -> f32 {
        mlp.infer(x).iter().map(|y| y * y).sum::<f32>() / 2.0
    }

    #[test]
    fn infer_matches_forward() {
        let mut rng = StdRng::seed_from_u64(2);
        let mlp = Mlp::new(&mut rng, &[5, 7, 3], 0.3);
        let x: Vec<f32> = (0..5).map(|i| i as f32 * 0.2 - 0.4).collect();
        let (out, _) = mlp.forward(&x);
        assert_eq!(out, mlp.infer(&x));
    }

    #[test]
    fn infer_batch_matches_per_row_infer() {
        let mut rng = StdRng::seed_from_u64(4);
        let mlp = Mlp::new(&mut rng, &[6, 9, 4], 0.4);
        let x = Matrix::from_fn(19, 6, |r, c| ((r * 7 + c * 3) % 13) as f32 * 0.1 - 0.6);
        let mut scratch = Scratch::new();
        let out = mlp.infer_batch(&x, &mut scratch);
        assert_eq!((out.rows(), out.cols()), (19, 4));
        for r in 0..19 {
            assert_eq!(out.row(r), &mlp.infer(x.row(r))[..], "row {r}");
        }
        scratch.recycle(out);
        // Hidden activation + a previous logits buffer are back in the pool.
        assert!(scratch.idle() >= 2, "intermediates must be recycled");
    }

    #[test]
    fn gradient_check_full_network() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut mlp = Mlp::new(&mut rng, &[4, 6, 3], 0.5);
        let x: Vec<f32> = vec![0.2, -0.7, 1.1, 0.05];

        let (out, cache) = mlp.forward(&x);
        let mut grad = mlp.zero_grad();
        let gx = mlp.backward(&cache, &out, &mut grad);

        let eps = 1e-2f32;
        // Spot-check a handful of weights in each layer.
        for li in 0..2 {
            for (r, c) in [(0, 0), (1, 2), (2, 1)] {
                if r >= mlp.layers()[li].out_dim() || c >= mlp.layers()[li].in_dim() {
                    continue;
                }
                let orig = mlp.layers()[li].w[(r, c)];
                mlp.layers_mut()[li].w[(r, c)] = orig + eps;
                let lp = scalar_loss(&mlp, &x);
                mlp.layers_mut()[li].w[(r, c)] = orig - eps;
                let lm = scalar_loss(&mlp, &x);
                mlp.layers_mut()[li].w[(r, c)] = orig;
                let numeric = (lp - lm) / (2.0 * eps);
                let analytic = grad.layers[li].w[(r, c)];
                assert!(
                    (analytic - numeric).abs() < 2e-2 * (1.0 + numeric.abs()),
                    "layer {li} w[{r},{c}]: {analytic} vs {numeric}"
                );
            }
        }
        // Input gradient.
        for i in 0..4 {
            let mut xp = x.clone();
            xp[i] += eps;
            let lp = scalar_loss(&mlp, &xp);
            xp[i] = x[i] - eps;
            let lm = scalar_loss(&mlp, &xp);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (gx[i] - numeric).abs() < 2e-2 * (1.0 + numeric.abs()),
                "gx[{i}]: {} vs {numeric}",
                gx[i]
            );
        }
    }

    #[test]
    fn deep_mlp_trains_on_toy_regression() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut mlp = Mlp::new(&mut rng, &[2, 8, 8, 1], 0.4);
        // Target: y = x0 - x1.
        let data: Vec<([f32; 2], f32)> =
            vec![([1.0, 0.0], 1.0), ([0.0, 1.0], -1.0), ([1.0, 1.0], 0.0), ([0.5, -0.5], 1.0)];
        let mse = |m: &Mlp| -> f32 {
            data.iter().map(|(x, t)| (m.infer(x)[0] - t).powi(2)).sum::<f32>() / data.len() as f32
        };
        let before = mse(&mlp);
        for _ in 0..400 {
            let mut grad = mlp.zero_grad();
            for (x, t) in &data {
                let (out, cache) = mlp.forward(x);
                let g = vec![2.0 * (out[0] - t) / data.len() as f32];
                mlp.backward(&cache, &g, &mut grad);
            }
            mlp.sgd_step(&grad, 0.05);
        }
        let after = mse(&mlp);
        assert!(after < before * 0.05, "mse {before} -> {after}");
    }

    #[test]
    fn param_count_is_consistent() {
        let mut rng = StdRng::seed_from_u64(1);
        let mlp = Mlp::new(&mut rng, &[4, 6, 3], 0.1);
        assert_eq!(mlp.param_count(), (4 * 6 + 6) + (6 * 3 + 3));
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn rejects_single_dim() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = Mlp::new(&mut rng, &[4], 0.1);
    }
}
