//! Element-wise activations with explicit backward passes.

/// ReLU applied in place.
pub fn relu_inplace(x: &mut [f32]) {
    for v in x.iter_mut() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// Backward of ReLU: zeroes `grad[i]` wherever the *pre-activation* input was
/// non-positive.
pub fn relu_backward(pre: &[f32], grad: &mut [f32]) {
    assert_eq!(pre.len(), grad.len(), "relu_backward length mismatch");
    for (g, &p) in grad.iter_mut().zip(pre.iter()) {
        if p <= 0.0 {
            *g = 0.0;
        }
    }
}

/// tanh applied in place.
pub fn tanh_inplace(x: &mut [f32]) {
    for v in x.iter_mut() {
        *v = v.tanh();
    }
}

/// Backward of tanh given the *post-activation* output `y = tanh(x)`:
/// `dx = dy * (1 - y²)`.
pub fn tanh_backward(post: &[f32], grad: &mut [f32]) {
    assert_eq!(post.len(), grad.len(), "tanh_backward length mismatch");
    for (g, &y) in grad.iter_mut().zip(post.iter()) {
        *g *= 1.0 - y * y;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut x = vec![-1.0, 0.0, 2.5];
        relu_inplace(&mut x);
        assert_eq!(x, vec![0.0, 0.0, 2.5]);
    }

    #[test]
    fn relu_backward_masks_gradient() {
        let pre = [-1.0, 0.0, 2.5];
        let mut g = vec![1.0, 1.0, 1.0];
        relu_backward(&pre, &mut g);
        assert_eq!(g, vec![0.0, 0.0, 1.0]);
    }

    #[test]
    fn tanh_backward_matches_finite_difference() {
        let x = 0.37f32;
        let eps = 1e-3;
        let numeric = ((x + eps).tanh() - (x - eps).tanh()) / (2.0 * eps);
        let y = x.tanh();
        let mut g = vec![1.0];
        tanh_backward(&[y], &mut g);
        assert!((g[0] - numeric).abs() < 1e-4, "{} vs {}", g[0], numeric);
    }

    #[test]
    fn tanh_saturates_gradient() {
        let mut g = vec![1.0];
        tanh_backward(&[0.9999], &mut g);
        assert!(g[0] < 1e-3);
    }
}
