//! Optimizers: gradient clipping and Adam.
//!
//! The layers in this crate implement plain SGD themselves (`sgd_step`);
//! Adam is provided for the recommender-model training in `ca-gnn`/`ca-mf`
//! where adaptive step sizes noticeably speed up convergence of the
//! embedding tables.

/// Global-norm gradient clipping.
///
/// REINFORCE gradients through a deep clustering tree can spike when a rare
/// action's probability is tiny; clipping keeps the policy update bounded.
#[derive(Clone, Copy, Debug)]
pub struct GradClip {
    /// Maximum allowed global L2 norm.
    pub max_norm: f32,
}

impl GradClip {
    /// Returns the scale factor (≤ 1) that brings a gradient of norm
    /// `total_norm` inside the clip radius.
    pub fn scale_for(&self, total_norm: f32) -> f32 {
        if total_norm > self.max_norm && total_norm > 0.0 {
            self.max_norm / total_norm
        } else {
            1.0
        }
    }
}

/// Adam optimizer state for one flat parameter tensor.
///
/// Callers create one `Adam` per parameter buffer (a weight matrix's backing
/// slice, a bias vector, an embedding row block) and call [`Adam::step`]
/// with matching param/grad slices.
#[derive(Clone, Debug)]
pub struct Adam {
    m: Vec<f32>,
    v: Vec<f32>,
    t: u32,
    beta1: f32,
    beta2: f32,
    eps: f32,
}

impl Adam {
    /// Adam with the standard (0.9, 0.999, 1e-8) hyper-parameters.
    pub fn new(param_len: usize) -> Self {
        Self {
            m: vec![0.0; param_len],
            v: vec![0.0; param_len],
            t: 0,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }

    /// One update: `param -= lr * m̂ / (sqrt(v̂) + eps)`.
    ///
    /// # Panics
    /// Panics if `param`/`grad` length differs from the state length.
    pub fn step(&mut self, param: &mut [f32], grad: &[f32], lr: f32) {
        assert_eq!(param.len(), self.m.len(), "Adam param length mismatch");
        assert_eq!(grad.len(), self.m.len(), "Adam grad length mismatch");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..param.len() {
            let g = grad[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let mhat = self.m[i] / b1t;
            let vhat = self.v[i] / b2t;
            param[i] -= lr * mhat / (vhat.sqrt() + self.eps);
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u32 {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clip_is_identity_inside_radius() {
        let clip = GradClip { max_norm: 5.0 };
        assert_eq!(clip.scale_for(3.0), 1.0);
        assert_eq!(clip.scale_for(0.0), 1.0);
    }

    #[test]
    fn clip_rescales_outside_radius() {
        let clip = GradClip { max_norm: 5.0 };
        let s = clip.scale_for(10.0);
        assert!((s - 0.5).abs() < 1e-6);
    }

    #[test]
    fn adam_minimizes_quadratic() {
        // f(x) = (x - 3)², gradient 2(x - 3).
        let mut x = vec![0.0f32];
        let mut adam = Adam::new(1);
        for _ in 0..500 {
            let g = vec![2.0 * (x[0] - 3.0)];
            adam.step(&mut x, &g, 0.05);
        }
        assert!((x[0] - 3.0).abs() < 1e-2, "converged to {}", x[0]);
    }

    #[test]
    fn adam_beats_sgd_on_ill_conditioned_quadratic() {
        // f(x, y) = 100 x² + y²; SGD with a stable lr crawls on y.
        let grad = |p: &[f32]| vec![200.0 * p[0], 2.0 * p[1]];
        let f = |p: &[f32]| 100.0 * p[0] * p[0] + p[1] * p[1];

        let mut sgd = vec![1.0f32, 1.0];
        for _ in 0..100 {
            let g = grad(&sgd);
            for (p, gi) in sgd.iter_mut().zip(g.iter()) {
                *p -= 0.004 * gi; // ~ largest stable lr for the x curvature
            }
        }
        let mut ad = vec![1.0f32, 1.0];
        let mut adam = Adam::new(2);
        for _ in 0..100 {
            let g = grad(&ad);
            adam.step(&mut ad, &g, 0.05);
        }
        assert!(f(&ad) < f(&sgd), "adam {} vs sgd {}", f(&ad), f(&sgd));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn adam_rejects_shape_mismatch() {
        let mut adam = Adam::new(2);
        let mut p = vec![0.0; 3];
        adam.step(&mut p, &[0.0, 0.0, 0.0], 0.1);
    }
}
