//! Elman recurrent network used as the selection-state encoder.
//!
//! The policy state in §4.3.3 is `x_{v*} = RNN(U^{B→A}_t)`: the embeddings of
//! the source users already copied this episode are folded into a fixed-size
//! vector. A single-layer tanh RNN is sufficient at the paper's scale
//! (sequence length ≤ budget Δ = 30, hidden size = embedding size 8).
//!
//! `h_t = tanh(Wx x_t + Wh h_{t-1} + b)`, `h_0 = 0`.
//!
//! Backward-through-time is implemented for a gradient arriving at the
//! *final* hidden state only — that is the only consumer in CopyAttack (the
//! final state is concatenated with the target-item embedding and fed to the
//! per-node policy MLPs).

use crate::activation::tanh_backward;
use ca_tensor::init::gaussian_matrix;
use ca_tensor::{ops, Matrix};
use rand::Rng;

/// Single-layer Elman RNN.
#[derive(Clone, Debug)]
pub struct Rnn {
    /// Input-to-hidden weights, `hidden × input`.
    pub wx: Matrix,
    /// Hidden-to-hidden weights, `hidden × hidden`.
    pub wh: Matrix,
    /// Hidden bias.
    pub b: Vec<f32>,
}

/// Cache of a forward pass over one sequence.
#[derive(Clone, Debug)]
pub struct RnnCache {
    /// The input sequence (owned copies).
    xs: Vec<Vec<f32>>,
    /// Hidden states `h_1 … h_T` (post-tanh). `h_0` is implicit zero.
    hs: Vec<Vec<f32>>,
}

/// Gradient accumulator mirroring an [`Rnn`].
#[derive(Clone, Debug)]
pub struct RnnGrad {
    /// `∂L/∂Wx`.
    pub wx: Matrix,
    /// `∂L/∂Wh`.
    pub wh: Matrix,
    /// `∂L/∂b`.
    pub b: Vec<f32>,
}

impl Rnn {
    /// New RNN with `N(0, std²)` weights.
    pub fn new(rng: &mut impl Rng, input_dim: usize, hidden_dim: usize, std: f32) -> Self {
        Self {
            wx: gaussian_matrix(rng, hidden_dim, input_dim, 0.0, std),
            wh: gaussian_matrix(rng, hidden_dim, hidden_dim, 0.0, std),
            b: vec![0.0; hidden_dim],
        }
    }

    /// Hidden dimensionality.
    pub fn hidden_dim(&self) -> usize {
        self.wx.rows()
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.wx.cols()
    }

    /// Runs the sequence; returns the final hidden state and the cache.
    /// An empty sequence yields the all-zero state (the paper seeds the first
    /// selection randomly because the RNN has nothing to encode yet).
    pub fn forward(&self, xs: &[&[f32]]) -> (Vec<f32>, RnnCache) {
        let h_dim = self.hidden_dim();
        let mut hs: Vec<Vec<f32>> = Vec::with_capacity(xs.len());
        let mut h_prev = vec![0.0; h_dim];
        for x in xs {
            let mut h = self.wx.matvec(x);
            let hh = self.wh.matvec(&h_prev);
            ops::axpy(1.0, &hh, &mut h);
            ops::axpy(1.0, &self.b, &mut h);
            for v in h.iter_mut() {
                *v = v.tanh();
            }
            hs.push(h.clone());
            h_prev = h;
        }
        let last = hs.last().cloned().unwrap_or_else(|| vec![0.0; h_dim]);
        (last, RnnCache { xs: xs.iter().map(|x| x.to_vec()).collect(), hs })
    }

    /// Final hidden state only (inference path).
    pub fn infer(&self, xs: &[&[f32]]) -> Vec<f32> {
        self.forward(xs).0
    }

    /// Backward-through-time from a gradient on the final hidden state.
    /// Accumulates parameter gradients into `grad`. Gradients w.r.t. the
    /// inputs are not returned (the inputs are frozen MF embeddings).
    pub fn backward(&self, cache: &RnnCache, g_last: &[f32], grad: &mut RnnGrad) {
        let t_max = cache.hs.len();
        if t_max == 0 {
            return; // Empty sequence: output was a constant zero state.
        }
        let mut gh = g_last.to_vec();
        for t in (0..t_max).rev() {
            // Backward through tanh at step t.
            let mut g_pre = gh.clone();
            tanh_backward(&cache.hs[t], &mut g_pre);
            // Parameter gradients.
            grad.wx.add_outer(&g_pre, &cache.xs[t], 1.0);
            if t > 0 {
                grad.wh.add_outer(&g_pre, &cache.hs[t - 1], 1.0);
            }
            ops::axpy(1.0, &g_pre, &mut grad.b);
            // Propagate to h_{t-1}.
            gh = self.wh.matvec_t(&g_pre);
        }
    }

    /// A zeroed gradient accumulator of matching shape.
    pub fn zero_grad(&self) -> RnnGrad {
        RnnGrad {
            wx: Matrix::zeros(self.wx.rows(), self.wx.cols()),
            wh: Matrix::zeros(self.wh.rows(), self.wh.cols()),
            b: vec![0.0; self.b.len()],
        }
    }

    /// Plain SGD step.
    pub fn sgd_step(&mut self, grad: &RnnGrad, lr: f32) {
        self.wx.add_scaled(&grad.wx, -lr);
        self.wh.add_scaled(&grad.wh, -lr);
        ops::axpy(-lr, &grad.b, &mut self.b);
    }

    /// Total number of scalar parameters.
    pub fn param_count(&self) -> usize {
        self.wx.rows() * self.wx.cols() + self.wh.rows() * self.wh.cols() + self.b.len()
    }
}

impl RnnGrad {
    /// Resets the accumulator to zero.
    pub fn zero(&mut self) {
        self.wx.fill_zero();
        self.wh.fill_zero();
        self.b.iter_mut().for_each(|x| *x = 0.0);
    }

    /// `self += alpha * other`.
    pub fn add_scaled(&mut self, other: &RnnGrad, alpha: f32) {
        self.wx.add_scaled(&other.wx, alpha);
        self.wh.add_scaled(&other.wh, alpha);
        ops::axpy(alpha, &other.b, &mut self.b);
    }

    /// Global L2 norm.
    pub fn norm(&self) -> f32 {
        let a = self.wx.frobenius_norm();
        let b = self.wh.frobenius_norm();
        let c = ops::l2_norm(&self.b);
        (a * a + b * b + c * c).sqrt()
    }

    /// Multiplies every entry by `alpha`.
    pub fn scale(&mut self, alpha: f32) {
        ops::scale(self.wx.as_mut_slice(), alpha);
        ops::scale(self.wh.as_mut_slice(), alpha);
        ops::scale(&mut self.b, alpha);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn seq(vals: &[&[f32]]) -> Vec<Vec<f32>> {
        vals.iter().map(|v| v.to_vec()).collect()
    }

    fn loss(rnn: &Rnn, xs: &[Vec<f32>]) -> f32 {
        let refs: Vec<&[f32]> = xs.iter().map(|x| x.as_slice()).collect();
        rnn.infer(&refs).iter().map(|h| h * h).sum::<f32>() / 2.0
    }

    #[test]
    fn empty_sequence_yields_zero_state() {
        let mut rng = StdRng::seed_from_u64(0);
        let rnn = Rnn::new(&mut rng, 3, 4, 0.2);
        let (h, _) = rnn.forward(&[]);
        assert_eq!(h, vec![0.0; 4]);
    }

    #[test]
    fn state_is_bounded_by_tanh() {
        let mut rng = StdRng::seed_from_u64(1);
        let rnn = Rnn::new(&mut rng, 2, 3, 5.0); // Large weights on purpose.
        let x = [100.0f32, -100.0];
        let (h, _) = rnn.forward(&[&x, &x, &x]);
        assert!(h.iter().all(|&v| (-1.0..=1.0).contains(&v)));
    }

    #[test]
    fn order_matters() {
        let mut rng = StdRng::seed_from_u64(2);
        let rnn = Rnn::new(&mut rng, 2, 4, 0.5);
        let a = [1.0f32, 0.0];
        let b = [0.0f32, 1.0];
        let (h_ab, _) = rnn.forward(&[&a, &b]);
        let (h_ba, _) = rnn.forward(&[&b, &a]);
        assert_ne!(h_ab, h_ba, "RNN must be sequence-order sensitive");
    }

    #[test]
    fn bptt_gradient_check() {
        let mut rng = StdRng::seed_from_u64(33);
        let mut rnn = Rnn::new(&mut rng, 3, 4, 0.4);
        let xs = seq(&[&[0.5, -0.2, 0.1], &[-0.3, 0.8, 0.0], &[0.2, 0.2, -0.6]]);
        let refs: Vec<&[f32]> = xs.iter().map(|x| x.as_slice()).collect();

        let (h, cache) = rnn.forward(&refs);
        let mut grad = rnn.zero_grad();
        rnn.backward(&cache, &h, &mut grad);

        let eps = 1e-2f32;
        // Check a sample of Wx, Wh and b entries.
        for (r, c) in [(0usize, 0usize), (1, 2), (3, 1)] {
            let orig = rnn.wx[(r, c)];
            rnn.wx[(r, c)] = orig + eps;
            let lp = loss(&rnn, &xs);
            rnn.wx[(r, c)] = orig - eps;
            let lm = loss(&rnn, &xs);
            rnn.wx[(r, c)] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (grad.wx[(r, c)] - numeric).abs() < 3e-2 * (1.0 + numeric.abs()),
                "wx[{r},{c}]: {} vs {numeric}",
                grad.wx[(r, c)]
            );
        }
        for (r, c) in [(0usize, 1usize), (2, 2), (3, 0)] {
            let orig = rnn.wh[(r, c)];
            rnn.wh[(r, c)] = orig + eps;
            let lp = loss(&rnn, &xs);
            rnn.wh[(r, c)] = orig - eps;
            let lm = loss(&rnn, &xs);
            rnn.wh[(r, c)] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (grad.wh[(r, c)] - numeric).abs() < 3e-2 * (1.0 + numeric.abs()),
                "wh[{r},{c}]: {} vs {numeric}",
                grad.wh[(r, c)]
            );
        }
        for i in 0..4 {
            let orig = rnn.b[i];
            rnn.b[i] = orig + eps;
            let lp = loss(&rnn, &xs);
            rnn.b[i] = orig - eps;
            let lm = loss(&rnn, &xs);
            rnn.b[i] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (grad.b[i] - numeric).abs() < 3e-2 * (1.0 + numeric.abs()),
                "b[{i}]: {} vs {numeric}",
                grad.b[i]
            );
        }
    }

    #[test]
    fn backward_on_empty_cache_is_noop() {
        let mut rng = StdRng::seed_from_u64(4);
        let rnn = Rnn::new(&mut rng, 2, 3, 0.2);
        let (_, cache) = rnn.forward(&[]);
        let mut grad = rnn.zero_grad();
        rnn.backward(&cache, &[1.0, 1.0, 1.0], &mut grad);
        assert_eq!(grad.norm(), 0.0);
    }
}
