//! Property-based tests for the neural-network substrate.

use ca_nn::{Categorical, Mlp};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn reinforce_grad_always_sums_to_zero(
        logits in prop::collection::vec(-10.0f32..10.0, 2..12),
        coeff in -5.0f32..5.0,
        action_seed in 0usize..100,
    ) {
        let dist = Categorical::from_logits(&logits);
        let action = action_seed % logits.len();
        let g = dist.reinforce_logit_grad(action, coeff);
        let sum: f32 = g.iter().sum();
        prop_assert!(sum.abs() < 1e-4 * (1.0 + coeff.abs()), "sum {sum}");
    }

    #[test]
    fn categorical_samples_stay_in_support(
        logits in prop::collection::vec(-30.0f32..30.0, 2..10),
        seed in 0u64..1000,
    ) {
        let dist = Categorical::from_logits(&logits);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let a = dist.sample(&mut rng);
            prop_assert!(a < logits.len());
            prop_assert!(dist.probs()[a] > 0.0);
        }
    }

    #[test]
    fn masked_categorical_never_selects_masked(
        logits in prop::collection::vec(-10.0f32..10.0, 3..10),
        seed in 0u64..500,
    ) {
        let n = logits.len();
        // Mask everything except two positions derived from the seed.
        let mut mask = vec![false; n];
        mask[(seed as usize) % n] = true;
        mask[(seed as usize / 7 + 1) % n] = true;
        let dist = Categorical::from_masked_logits(&logits, &mask);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..30 {
            let a = dist.sample(&mut rng);
            prop_assert!(mask[a], "sampled masked action {a}");
        }
    }

    #[test]
    fn entropy_is_bounded_by_log_n(
        logits in prop::collection::vec(-20.0f32..20.0, 1..16),
    ) {
        let dist = Categorical::from_logits(&logits);
        let h = dist.entropy();
        prop_assert!(h >= -1e-5);
        prop_assert!(h <= (logits.len() as f32).ln() + 1e-4);
    }

    #[test]
    fn mlp_forward_and_infer_agree(
        seed in 0u64..200,
        in_dim in 1usize..6,
        hidden in 1usize..8,
        out_dim in 1usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mlp = Mlp::new(&mut rng, &[in_dim, hidden, out_dim], 0.4);
        let x: Vec<f32> = (0..in_dim).map(|i| (i as f32 * 0.713).sin()).collect();
        let (fwd, _) = mlp.forward(&x);
        prop_assert_eq!(fwd, mlp.infer(&x));
    }

    #[test]
    fn sgd_with_zero_grad_is_identity(seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mlp = Mlp::new(&mut rng, &[3, 4, 2], 0.3);
        let before = mlp.infer(&[0.1, 0.2, 0.3]);
        let grad = mlp.zero_grad();
        mlp.sgd_step(&grad, 0.5);
        prop_assert_eq!(before, mlp.infer(&[0.1, 0.2, 0.3]));
    }
}
