//! Property-based tests for the detector substrate.

use ca_detect::detector::{detection_auc, precision_at_n, ZScoreDetector};
use ca_detect::features::ProfileFeatures;
use proptest::prelude::*;

fn feats(len: f32, pop: f32, tail: f32, coh: f32) -> ProfileFeatures {
    ProfileFeatures { len, mean_pop_pct: pop, tail_fraction: tail, coherence: coh }
}

proptest! {
    #[test]
    fn auc_is_bounded(
        genuine in prop::collection::vec(0.0f32..10.0, 1..30),
        fake in prop::collection::vec(0.0f32..10.0, 1..30),
    ) {
        let auc = detection_auc(&genuine, &fake);
        prop_assert!((0.0..=1.0).contains(&auc));
        // Complementarity: swapping the classes mirrors around 0.5.
        let swapped = detection_auc(&fake, &genuine);
        prop_assert!((auc + swapped - 1.0).abs() < 1e-4);
    }

    #[test]
    fn precision_is_bounded_and_monotone_total(
        genuine in prop::collection::vec(0.0f32..10.0, 1..20),
        fake in prop::collection::vec(0.0f32..10.0, 1..20),
        n in 1usize..40,
    ) {
        let p = precision_at_n(&genuine, &fake, n);
        prop_assert!((0.0..=1.0).contains(&p));
        // Flagging everything yields exactly the fake base rate.
        let all = genuine.len() + fake.len();
        let p_all = precision_at_n(&genuine, &fake, all);
        let base = fake.len() as f32 / all as f32;
        prop_assert!((p_all - base).abs() < 1e-5);
    }

    #[test]
    fn detector_scores_are_finite_and_nonnegative(
        pop_feats in prop::collection::vec(
            (1.0f32..100.0, 0.0f32..1.0, 0.0f32..1.0, -1.0f32..1.0),
            2..40,
        ),
        probe in (1.0f32..100.0, 0.0f32..1.0, 0.0f32..1.0, -1.0f32..1.0),
    ) {
        let population: Vec<ProfileFeatures> =
            pop_feats.iter().map(|&(a, b, c, d)| feats(a, b, c, d)).collect();
        let det = ZScoreDetector::fit(&population);
        for f in &population {
            let s = det.score(f);
            prop_assert!(s.is_finite() && s >= 0.0);
        }
        let s = det.score(&feats(probe.0, probe.1, probe.2, probe.3));
        prop_assert!(s.is_finite() && s >= 0.0);
    }

    #[test]
    fn farther_outliers_score_higher(
        scale in 1.5f32..10.0,
    ) {
        // Population with genuine variance in every feature (a constant
        // feature would make any deviation on it dominate the score).
        let population: Vec<ProfileFeatures> = (0..20)
            .map(|i| {
                let t = i as f32 / 20.0;
                feats(10.0 + 2.0 * t, 0.4 + 0.2 * t, 0.05 + 0.1 * t, 0.2 + 0.2 * t)
            })
            .collect();
        let det = ZScoreDetector::fit(&population);
        let near = det.score(&feats(12.0, 0.5, 0.1, 0.3));
        let far = det.score(&feats(12.0 * scale, 0.5, 0.1, 0.3));
        prop_assert!(far > near, "near {near} far {far}");
    }
}
