//! Per-profile detection features.

use ca_recsys::{Dataset, ItemId};
use ca_tensor::{ops, Matrix};

/// Implicit-feedback profile statistics used by the detector.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProfileFeatures {
    /// Number of interactions.
    pub len: f32,
    /// Mean popularity percentile of the profile's items (0 = coldest,
    /// 1 = most popular).
    pub mean_pop_pct: f32,
    /// Fraction of the profile in the bottom popularity decile.
    pub tail_fraction: f32,
    /// Mean pairwise cosine similarity of the profile's item embeddings.
    pub coherence: f32,
}

impl ProfileFeatures {
    /// The features as a fixed-order vector (for the z-score detector).
    pub fn as_vec(&self) -> [f32; 4] {
        [self.len, self.mean_pop_pct, self.tail_fraction, self.coherence]
    }
}

/// Precomputed popularity percentiles for a catalog.
#[derive(Clone, Debug)]
pub struct PopularityIndex {
    pct: Vec<f32>,
}

impl PopularityIndex {
    /// Ranks items by interaction count in `ds`; `pct[v] = rank / (n-1)`.
    pub fn build(ds: &Dataset) -> Self {
        let n = ds.n_items();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&v| ds.item_popularity(ItemId(v as u32)));
        let mut pct = vec![0.0; n];
        for (rank, &v) in order.iter().enumerate() {
            pct[v] = if n > 1 { rank as f32 / (n - 1) as f32 } else { 0.0 };
        }
        Self { pct }
    }

    /// Popularity percentile of an item.
    pub fn percentile(&self, v: ItemId) -> f32 {
        self.pct[v.idx()]
    }
}

/// Extracts features for one profile. `item_emb` provides the coherence
/// geometry (e.g. MF item embeddings trained on the clean data);
/// `pop` the popularity percentiles.
///
/// For pairwise coherence, profiles longer than 30 items use a stride so
/// the cost stays O(30²).
pub fn extract_features(
    profile: &[ItemId],
    pop: &PopularityIndex,
    item_emb: &Matrix,
) -> ProfileFeatures {
    let len = profile.len() as f32;
    if profile.is_empty() {
        return ProfileFeatures { len: 0.0, mean_pop_pct: 0.0, tail_fraction: 0.0, coherence: 0.0 };
    }
    let mean_pop_pct = profile.iter().map(|&v| pop.percentile(v)).sum::<f32>() / len;
    let tail_fraction = profile.iter().filter(|&&v| pop.percentile(v) < 0.1).count() as f32 / len;

    // Subsample long profiles for the quadratic coherence term.
    let stride = profile.len().div_ceil(30);
    let sample: Vec<ItemId> = profile.iter().copied().step_by(stride).collect();
    let mut coh = 0.0;
    let mut pairs = 0usize;
    for i in 0..sample.len() {
        for j in (i + 1)..sample.len() {
            coh += ops::cosine(item_emb.row(sample[i].idx()), item_emb.row(sample[j].idx()));
            pairs += 1;
        }
    }
    let coherence = if pairs > 0 { coh / pairs as f32 } else { 1.0 };
    ProfileFeatures { len, mean_pop_pct, tail_fraction, coherence }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_recsys::DatasetBuilder;

    fn graded_ds() -> Dataset {
        // Item v has v interactions.
        let mut b = DatasetBuilder::new(10);
        for u in 0..9u32 {
            let profile: Vec<ItemId> = ((u + 1)..10).map(ItemId).collect();
            b.user(&profile);
        }
        b.build()
    }

    fn identity_emb(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    #[test]
    fn popularity_percentiles_are_ordered() {
        let ds = graded_ds();
        let pop = PopularityIndex::build(&ds);
        assert!(pop.percentile(ItemId(9)) > pop.percentile(ItemId(5)));
        assert!(pop.percentile(ItemId(5)) > pop.percentile(ItemId(0)));
        assert_eq!(pop.percentile(ItemId(9)), 1.0);
        assert_eq!(pop.percentile(ItemId(0)), 0.0);
    }

    #[test]
    fn popular_profile_scores_high_popularity() {
        let ds = graded_ds();
        let pop = PopularityIndex::build(&ds);
        let emb = identity_emb(10);
        let popular = extract_features(&[ItemId(9), ItemId(8)], &pop, &emb);
        let cold = extract_features(&[ItemId(0), ItemId(1)], &pop, &emb);
        assert!(popular.mean_pop_pct > cold.mean_pop_pct);
        assert!(cold.tail_fraction > popular.tail_fraction);
    }

    #[test]
    fn orthogonal_items_have_zero_coherence() {
        let ds = graded_ds();
        let pop = PopularityIndex::build(&ds);
        let emb = identity_emb(10);
        let f = extract_features(&[ItemId(1), ItemId(2), ItemId(3)], &pop, &emb);
        assert!(f.coherence.abs() < 1e-6);
    }

    #[test]
    fn identical_direction_items_have_unit_coherence() {
        let ds = graded_ds();
        let pop = PopularityIndex::build(&ds);
        // All items share one embedding direction.
        let emb = Matrix::from_fn(10, 4, |_, c| if c == 0 { 1.0 } else { 0.0 });
        let f = extract_features(&[ItemId(1), ItemId(5), ItemId(9)], &pop, &emb);
        assert!((f.coherence - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_profile_is_all_zero() {
        let ds = graded_ds();
        let pop = PopularityIndex::build(&ds);
        let emb = identity_emb(10);
        let f = extract_features(&[], &pop, &emb);
        assert_eq!(f.len, 0.0);
        assert_eq!(f.as_vec(), [0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn long_profiles_are_subsampled_not_skipped() {
        let ds = graded_ds();
        let pop = PopularityIndex::build(&ds);
        let emb = Matrix::from_fn(10, 4, |_, c| if c == 0 { 1.0 } else { 0.0 });
        let long: Vec<ItemId> = (0..10u32).cycle().take(100).map(ItemId).collect();
        // Dedup happens at dataset level, but features accept raw slices.
        let f = extract_features(&long, &pop, &emb);
        assert_eq!(f.len, 100.0);
        assert!((f.coherence - 1.0).abs() < 1e-5);
    }
}
