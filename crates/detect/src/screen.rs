//! Detector-in-the-loop defense: screen new accounts before they reach the
//! recommender.
//!
//! The defense strategies the paper's motivation cites ([2, 5, 22, 26]) sit
//! between account creation and model ingestion. This wrapper reproduces
//! that loop: every injected profile is scored by the fitted detector and
//! rejected above a threshold, while Top-k queries pass through — giving a
//! measurable trade-off between the platform's false-positive budget and
//! the attack's surviving strength (the attacker still spends budget on
//! rejected accounts).

use crate::detector::ZScoreDetector;
use crate::features::{extract_features, PopularityIndex};
use ca_recsys::{BlackBoxRecommender, ItemId, UserId};
use ca_tensor::Matrix;

/// A platform that screens new accounts with an anomaly detector.
#[derive(Clone)]
pub struct ScreenedRecommender<R> {
    inner: R,
    detector: ZScoreDetector,
    pop: PopularityIndex,
    item_emb: Matrix,
    threshold: f32,
    accepted: usize,
    rejected: usize,
    scores: Vec<f32>,
}

impl<R: BlackBoxRecommender> ScreenedRecommender<R> {
    /// Wraps `inner`. `threshold` is the anomaly score above which new
    /// profiles are rejected; `pop`/`item_emb` provide the feature
    /// geometry (fitted on clean data, like the detector).
    pub fn new(
        inner: R,
        detector: ZScoreDetector,
        pop: PopularityIndex,
        item_emb: Matrix,
        threshold: f32,
    ) -> Self {
        Self {
            inner,
            detector,
            pop,
            item_emb,
            threshold,
            accepted: 0,
            rejected: 0,
            scores: Vec::new(),
        }
    }

    /// Profiles that passed screening.
    pub fn accepted(&self) -> usize {
        self.accepted
    }

    /// Profiles the screen rejected.
    pub fn rejected(&self) -> usize {
        self.rejected
    }

    /// Anomaly scores of every profile that hit the screen, in injection
    /// order (accepted and rejected alike) — the raw material for
    /// detector precision/recall at any threshold.
    pub fn screened_scores(&self) -> &[f32] {
        &self.scores
    }

    /// Unwraps the platform.
    pub fn into_inner(self) -> R {
        self.inner
    }

    /// The anomaly score the screen would assign to a profile.
    pub fn score_profile(&self, profile: &[ItemId]) -> f32 {
        self.detector.score(&extract_features(profile, &self.pop, &self.item_emb))
    }
}

impl<R: BlackBoxRecommender> BlackBoxRecommender for ScreenedRecommender<R> {
    fn top_k(&self, user: UserId, k: usize) -> Vec<ItemId> {
        self.inner.top_k(user, k)
    }

    /// Screens the profile. Rejected profiles never reach the model; the
    /// returned id is a dead account (the platform "shadow-bans" it), so
    /// the attacker's budget is still spent.
    fn inject_user(&mut self, profile: &[ItemId]) -> UserId {
        let score = self.score_profile(profile);
        self.scores.push(score);
        if score > self.threshold {
            self.rejected += 1;
            // Shadow account: visible to the attacker, invisible to the model.
            UserId(u32::MAX - self.rejected as u32)
        } else {
            self.accepted += 1;
            self.inner.inject_user(profile)
        }
    }

    fn catalog_size(&self) -> usize {
        self.inner.catalog_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_recsys::{Dataset, DatasetBuilder};

    struct NullRec {
        n_users: usize,
        injected: Vec<Vec<ItemId>>,
    }
    impl BlackBoxRecommender for NullRec {
        fn top_k(&self, _u: UserId, k: usize) -> Vec<ItemId> {
            (0..k as u32).map(ItemId).collect()
        }
        fn inject_user(&mut self, p: &[ItemId]) -> UserId {
            self.injected.push(p.to_vec());
            let id = UserId(self.n_users as u32);
            self.n_users += 1;
            id
        }
        fn catalog_size(&self) -> usize {
            20
        }
    }

    fn clean_world() -> (Dataset, PopularityIndex, Matrix, ZScoreDetector) {
        let mut b = DatasetBuilder::new(20);
        for u in 0..30u32 {
            // Genuine users: 4-6 coherent items.
            let len = 4 + (u % 3) as usize;
            let profile: Vec<ItemId> = (0..len as u32).map(|i| ItemId((u + i) % 20)).collect();
            b.user(&profile);
        }
        let ds = b.build();
        let pop = PopularityIndex::build(&ds);
        let emb = Matrix::from_fn(20, 4, |r, c| ((r * 7 + c) as f32 * 0.37).sin());
        let feats: Vec<_> =
            (0..30u32).map(|u| extract_features(ds.profile(UserId(u)), &pop, &emb)).collect();
        let det = ZScoreDetector::fit(&feats);
        (ds, pop, emb, det)
    }

    #[test]
    fn genuine_looking_profiles_pass() {
        let (ds, pop, emb, det) = clean_world();
        let mut screened =
            ScreenedRecommender::new(NullRec { n_users: 0, injected: vec![] }, det, pop, emb, 3.0);
        // Replay a genuine profile: population-typical, must pass.
        screened.inject_user(ds.profile(UserId(0)));
        assert_eq!(screened.accepted(), 1);
        assert_eq!(screened.rejected(), 0);
    }

    #[test]
    fn blatant_fakes_are_rejected() {
        let (_, pop, emb, det) = clean_world();
        let mut screened =
            ScreenedRecommender::new(NullRec { n_users: 0, injected: vec![] }, det, pop, emb, 3.0);
        // A 15-item profile in a 4-6-item population is a massive outlier.
        let fake: Vec<ItemId> = (0..15u32).map(ItemId).collect();
        let id = screened.inject_user(&fake);
        assert_eq!(screened.rejected(), 1);
        assert!(id.0 > 1_000_000, "rejected profile must get a shadow id");
        assert!(screened.into_inner().injected.is_empty(), "fake reached the model");
    }

    #[test]
    fn threshold_trades_off_acceptance() {
        let (ds, pop, emb, det) = clean_world();
        let strict = ScreenedRecommender::new(
            NullRec { n_users: 0, injected: vec![] },
            det.clone(),
            pop.clone(),
            emb.clone(),
            0.1,
        );
        let mut strict = strict;
        let mut lax = ScreenedRecommender::new(
            NullRec { n_users: 0, injected: vec![] },
            det,
            pop,
            emb,
            100.0,
        );
        for u in 0..10u32 {
            strict.inject_user(ds.profile(UserId(u)));
            lax.inject_user(ds.profile(UserId(u)));
        }
        assert_eq!(lax.accepted(), 10, "lax threshold must accept everything");
        assert!(strict.rejected() > 0, "near-zero threshold must reject genuine profiles too");
    }

    #[test]
    fn queries_pass_through_unscreened() {
        let (_, pop, emb, det) = clean_world();
        let screened =
            ScreenedRecommender::new(NullRec { n_users: 0, injected: vec![] }, det, pop, emb, 3.0);
        assert_eq!(screened.top_k(UserId(0), 3).len(), 3);
        assert_eq!(screened.catalog_size(), 20);
    }
}
