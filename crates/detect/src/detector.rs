//! Unsupervised z-score outlier detector over profile features.

use crate::features::ProfileFeatures;

/// Detector fitted on the population's feature distribution. Profiles far
/// from the population mean (in standardized feature space) are flagged.
#[derive(Clone, Debug)]
pub struct ZScoreDetector {
    means: [f32; 4],
    stds: [f32; 4],
}

impl ZScoreDetector {
    /// Fits the feature means/stds on the (assumed mostly-genuine)
    /// population.
    ///
    /// # Panics
    /// Panics on an empty population.
    pub fn fit(population: &[ProfileFeatures]) -> Self {
        assert!(!population.is_empty(), "cannot fit a detector on zero profiles");
        let n = population.len() as f32;
        let mut means = [0.0f32; 4];
        for f in population {
            for (m, x) in means.iter_mut().zip(f.as_vec()) {
                *m += x;
            }
        }
        for m in means.iter_mut() {
            *m /= n;
        }
        let mut vars = [0.0f32; 4];
        for f in population {
            for k in 0..4 {
                let d = f.as_vec()[k] - means[k];
                vars[k] += d * d;
            }
        }
        let stds = std::array::from_fn(|k| (vars[k] / n).sqrt().max(1e-6));
        Self { means, stds }
    }

    /// Anomaly score: L2 norm of the standardized feature vector. Higher =
    /// more suspicious.
    pub fn score(&self, f: &ProfileFeatures) -> f32 {
        let v = f.as_vec();
        let mut acc = 0.0;
        for ((x, m), s) in v.iter().zip(&self.means).zip(&self.stds) {
            let z = (x - m) / s;
            acc += z * z;
        }
        acc.sqrt()
    }
}

/// AUC of separating fake from genuine profiles by anomaly score (1.0 =
/// detector always ranks fakes above genuine; 0.5 = chance — perfect
/// evasion).
pub fn detection_auc(genuine_scores: &[f32], fake_scores: &[f32]) -> f32 {
    assert!(!genuine_scores.is_empty() && !fake_scores.is_empty());
    let mut wins = 0.0f64;
    for &f in fake_scores {
        for &g in genuine_scores {
            if f > g {
                wins += 1.0;
            } else if (f - g).abs() < 1e-12 {
                wins += 0.5;
            }
        }
    }
    (wins / (genuine_scores.len() as f64 * fake_scores.len() as f64)) as f32
}

/// Precision of the top-`n` most suspicious profiles: the fraction of
/// flagged profiles that are actually fake.
pub fn precision_at_n(genuine_scores: &[f32], fake_scores: &[f32], n: usize) -> f32 {
    let mut all: Vec<(f32, bool)> = genuine_scores
        .iter()
        .map(|&s| (s, false))
        .chain(fake_scores.iter().map(|&s| (s, true)))
        .collect();
    all.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("no NaN scores"));
    let n = n.min(all.len());
    if n == 0 {
        return 0.0;
    }
    all[..n].iter().filter(|(_, fake)| *fake).count() as f32 / n as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(len: f32, pop: f32, tail: f32, coh: f32) -> ProfileFeatures {
        ProfileFeatures { len, mean_pop_pct: pop, tail_fraction: tail, coherence: coh }
    }

    fn population() -> Vec<ProfileFeatures> {
        (0..50)
            .map(|i| {
                let t = i as f32 / 50.0;
                f(10.0 + t * 5.0, 0.5 + 0.1 * (t - 0.5), 0.05, 0.4 + 0.1 * t)
            })
            .collect()
    }

    #[test]
    fn population_members_score_low() {
        let pop = population();
        let det = ZScoreDetector::fit(&pop);
        let typical = det.score(&pop[25]);
        let outlier = det.score(&f(100.0, 0.99, 0.9, 0.0));
        assert!(outlier > typical * 5.0, "outlier {outlier} vs typical {typical}");
    }

    #[test]
    fn auc_is_one_for_separable_scores() {
        assert_eq!(detection_auc(&[1.0, 2.0], &[3.0, 4.0]), 1.0);
    }

    #[test]
    fn auc_is_half_for_identical_scores() {
        let auc = detection_auc(&[1.0, 1.0, 1.0], &[1.0, 1.0]);
        assert!((auc - 0.5).abs() < 1e-6);
    }

    #[test]
    fn auc_is_zero_when_fakes_score_lower() {
        assert_eq!(detection_auc(&[5.0, 6.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn precision_at_n_flags_the_top() {
        let genuine = vec![0.1, 0.2, 0.3];
        let fake = vec![10.0, 11.0];
        assert_eq!(precision_at_n(&genuine, &fake, 2), 1.0);
        assert!((precision_at_n(&genuine, &fake, 4) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn constant_feature_does_not_divide_by_zero() {
        let pop: Vec<ProfileFeatures> = (0..10).map(|_| f(5.0, 0.5, 0.0, 0.3)).collect();
        let det = ZScoreDetector::fit(&pop);
        let s = det.score(&f(5.0, 0.5, 0.0, 0.3));
        assert!(s.is_finite());
    }
}
