//! Shilling-attack detection substrate.
//!
//! The paper's motivation (§1) is that classical data-poisoning profiles
//! "present very different patterns from real profiles" and are caught by
//! detectors [2, 5, 22, 26]. This crate implements an unsupervised detector
//! in that family, adapted to implicit feedback, so the repository can
//! *measure* the claim that copied cross-domain profiles are harder to
//! detect than generated ones (see `examples/detection_evasion.rs` and the
//! `detect_evasion` experiment binary).
//!
//! Features per user profile (implicit-feedback analogues of RDMA/WDMA-
//! style statistics):
//!
//! - **length** — fake profiles are often uniformly sized;
//! - **mean popularity percentile** — "average attack" profiles stuff
//!   popular filler items;
//! - **tail fraction** — fraction of interactions on bottom-decile items
//!   (promotion targets are usually obscure);
//! - **coherence** — mean pairwise cosine similarity of the profile's item
//!   embeddings: random filler is less coherent than genuine taste.
//!
//! The detector standardizes features over the population and scores each
//! profile by the L2 norm of its z-vector.

#![forbid(unsafe_code)]

pub mod detector;
pub mod features;
pub mod screen;
pub mod synthetic;

pub use detector::{detection_auc, precision_at_n, ZScoreDetector};
pub use features::{extract_features, ProfileFeatures};
pub use screen::ScreenedRecommender;
pub use synthetic::naive_fake_profiles;
