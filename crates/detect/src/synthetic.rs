//! Classical generated fake profiles, for comparison against copied ones.
//!
//! The "average/random attack" family \[15\] builds each fake profile from
//! the promotion target plus popular filler items — precisely the pattern
//! detectors catch. CopyAttack's pitch is that *copied* profiles do not
//! look like this.

use ca_recsys::{Dataset, ItemId};
use rand::Rng;

/// Generates `n` classical fake promotion profiles: the target item plus
/// `filler_len` fillers sampled proportionally to popularity.
pub fn naive_fake_profiles(
    visible: &Dataset,
    target: ItemId,
    n: usize,
    filler_len: usize,
    rng: &mut impl Rng,
) -> Vec<Vec<ItemId>> {
    let n_items = visible.n_items();
    assert!(filler_len < n_items, "filler longer than catalog");
    let mut cdf = Vec::with_capacity(n_items);
    let mut acc = 0.0f64;
    for v in 0..n_items {
        acc += 1.0 + visible.item_popularity(ItemId(v as u32)) as f64;
        cdf.push(acc);
    }
    let total = acc;
    (0..n)
        .map(|_| {
            let mut profile = vec![target];
            let mut guard = 0u32;
            while profile.len() < filler_len + 1 {
                let u: f64 = rng.gen::<f64>() * total;
                let pos = cdf.partition_point(|&c| c < u).min(n_items - 1);
                let item = ItemId(pos as u32);
                if !profile.contains(&item) {
                    profile.push(item);
                }
                guard += 1;
                if guard > 100_000 {
                    break;
                }
            }
            profile
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_recsys::DatasetBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn visible() -> Dataset {
        let mut b = DatasetBuilder::new(30);
        for u in 0..20u32 {
            b.user(&[ItemId(u % 5)]); // items 0..5 popular
        }
        b.build()
    }

    #[test]
    fn profiles_contain_target_and_requested_length() {
        let ds = visible();
        let mut rng = StdRng::seed_from_u64(1);
        let fakes = naive_fake_profiles(&ds, ItemId(25), 8, 6, &mut rng);
        assert_eq!(fakes.len(), 8);
        for p in &fakes {
            assert_eq!(p[0], ItemId(25));
            assert_eq!(p.len(), 7);
            let mut q = p.clone();
            q.sort();
            q.dedup();
            assert_eq!(q.len(), 7, "duplicates in fake profile");
        }
    }

    #[test]
    fn fillers_skew_popular() {
        let ds = visible();
        let mut rng = StdRng::seed_from_u64(2);
        let fakes = naive_fake_profiles(&ds, ItemId(25), 50, 4, &mut rng);
        let mut popular = 0usize;
        let mut total = 0usize;
        for p in &fakes {
            for &v in &p[1..] {
                if v.0 < 5 {
                    popular += 1;
                }
                total += 1;
            }
        }
        // Items 0..5 hold 20 of the 50 smoothed mass units; expect well
        // above the uniform 5/30 share.
        assert!(popular as f32 / total as f32 > 0.3, "{popular}/{total}");
    }
}
