//! Deterministic parallel runtime for the offline pipeline.
//!
//! Every parallel construct in this workspace routes through this crate,
//! and every one of them obeys a single contract: **the result is bitwise
//! identical at any thread count**. That holds because nothing here lets
//! scheduling order leak into results:
//!
//! - [`map`] / [`map_mut`] return outputs in input order — each slot is the
//!   pure function of its input, so which worker computed it is invisible;
//! - [`map_reduce`] folds *fixed-size* chunks whose boundaries depend only
//!   on the input length and the caller's `grain` (never on the thread
//!   count), and combines the per-chunk partials **serially, in ascending
//!   chunk order** on the calling thread. Floating-point reductions are
//!   therefore reproducible: the rounding schedule is pinned by the chunk
//!   grid, not by whichever worker finished first;
//! - [`SeedSplit`] derives statistically independent RNG seeds from a
//!   parent seed and a *stable task index* (SplitMix64-style mixing), so a
//!   task's random stream is a function of its position in the work tree,
//!   not of the thread that ran it.
//!
//! Thread count comes from one process-wide knob: the `CA_THREADS`
//! environment variable (read once), defaulting to
//! `std::thread::available_parallelism()`, overridable at runtime with
//! [`set_threads`] (used by benches and parity tests to sweep thread counts
//! inside one process). Workers are plain `std::thread::scope` threads —
//! no pools, no external dependencies, no unsafe.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Runtime override set by [`set_threads`]; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// `CA_THREADS` (or `available_parallelism`) — resolved once per process.
static ENV_THREADS: OnceLock<usize> = OnceLock::new();

/// The process-wide worker count used by every construct in this crate.
///
/// Resolution order: the [`set_threads`] override if one is active, else
/// the `CA_THREADS` environment variable (parsed once, first use wins),
/// else `std::thread::available_parallelism()`. Always at least 1.
pub fn threads() -> usize {
    let over = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if over > 0 {
        return over;
    }
    *ENV_THREADS.get_or_init(|| {
        std::env::var("CA_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
    })
}

/// Overrides the process-wide thread count (`Some(n)`) or restores the
/// `CA_THREADS`/`available_parallelism` default (`None`).
///
/// Safe to flip at any time: every construct in this crate produces
/// bitwise-identical results at any thread count, so a concurrent override
/// can change *wall-clock*, never *values*.
pub fn set_threads(n: Option<usize>) {
    THREAD_OVERRIDE.store(n.unwrap_or(0), Ordering::Relaxed);
}

/// Derives per-task RNG seeds from a parent seed and a stable task index.
///
/// The derivation is two rounds of the SplitMix64 finalizer over
/// `parent ⊕ (index + 1) · φ64`, which decorrelates sibling streams even
/// for adjacent indices and never collides a child with its parent
/// (index + 1 keeps child 0 distinct). Because the index names the task's
/// *position* (child number, minibatch slot, target number) rather than an
/// execution order, the same work tree yields the same seeds at any thread
/// count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeedSplit {
    seed: u64,
}

impl SeedSplit {
    /// Wraps a parent seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// This node's own seed (feed to `StdRng::seed_from_u64`).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The splitter for stable child task `index`.
    pub fn child(&self, index: u64) -> SeedSplit {
        SeedSplit { seed: split_seed(self.seed, index) }
    }
}

/// Functional form of [`SeedSplit::child`]: the derived seed for stable
/// task `index` under `parent`.
pub fn split_seed(parent: u64, index: u64) -> u64 {
    let mut z = parent ^ (index.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    // Two SplitMix64 finalizer rounds.
    for _ in 0..2 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
    }
    z
}

/// The fixed chunk grid for "split `n` slots into `parts` contiguous
/// chunks": exactly `min(parts, n)` non-empty ranges whose sizes differ by
/// at most one, covering `0..n` in order.
///
/// This is the blessed grid for callers that hand one chunk to each worker
/// (e.g. the scoring engine's user-batch split): a naive
/// `chunks(n.div_ceil(parts))` split can produce *fewer* chunks than
/// requested (9 users at 4 threads → ⌈9/4⌉ = 3 chunks of 3), silently
/// idling workers. Because the grid depends only on `n` and `parts` —
/// never on scheduling — it is also safe ground for the determinism
/// contract.
pub fn even_chunks(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.max(1).min(n);
    (0..parts).map(|p| (p * n / parts)..((p + 1) * n / parts)).collect()
}

/// Deterministic parallel map: `out[i] = f(i, &items[i])`, in input order.
///
/// Work is handed out as contiguous chunks through an atomic cursor (cheap
/// dynamic load balancing for uneven tasks like sibling-subtree builds);
/// since each output slot depends only on its own input, scheduling cannot
/// affect the result. Runs inline on the calling thread when one worker
/// suffices.
pub fn map<T: Sync, R: Send>(items: &[T], f: impl Fn(usize, &T) -> R + Sync) -> Vec<R> {
    let n = items.len();
    let t = threads().min(n);
    if t <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    // Chunk grain: enough chunks for balancing, few enough to keep the
    // cursor cold. Purely a scheduling choice — results are order-blind.
    let grain = n.div_ceil(t * 4).max(1);
    let n_chunks = n.div_ceil(grain);
    let cursor = AtomicUsize::new(0);
    let parts: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::with_capacity(n_chunks));
    std::thread::scope(|scope| {
        for _ in 0..t {
            scope.spawn(|| loop {
                let c = cursor.fetch_add(1, Ordering::Relaxed);
                if c >= n_chunks {
                    break;
                }
                let start = c * grain;
                let end = (start + grain).min(n);
                let out: Vec<R> =
                    items[start..end].iter().enumerate().map(|(j, x)| f(start + j, x)).collect();
                parts.lock().expect("ca-par worker poisoned the part list").push((start, out));
            });
        }
    });
    let mut parts = parts.into_inner().expect("ca-par worker poisoned the part list");
    parts.sort_unstable_by_key(|&(start, _)| start);
    debug_assert_eq!(parts.iter().map(|(_, p)| p.len()).sum::<usize>(), n);
    parts.into_iter().flat_map(|(_, p)| p).collect()
}

/// Like [`map`], but stays inline below `min_items` items.
///
/// For fine-grained workloads (per-pair SGD gradients, small minibatches)
/// the tens-of-microseconds cost of spawning scoped workers dwarfs the
/// work itself; callers that know their per-item cost pass the break-even
/// batch size here. Purely a scheduling decision — [`map`] returns the
/// same bits either way.
pub fn map_min<T: Sync, R: Send>(
    items: &[T],
    min_items: usize,
    f: impl Fn(usize, &T) -> R + Sync,
) -> Vec<R> {
    if items.len() < min_items {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    map(items, f)
}

/// Deterministic parallel map over mutable slots: `out[i] = f(i, &mut
/// items[i])`. Each item is visited exactly once by exactly one worker
/// (contiguous chunk split), so `f` may mutate its item freely; outputs
/// come back in input order.
pub fn map_mut<T: Send, R: Send>(items: &mut [T], f: impl Fn(usize, &mut T) -> R + Sync) -> Vec<R> {
    let n = items.len();
    let t = threads().min(n);
    if t <= 1 {
        return items.iter_mut().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let chunk = n.div_ceil(t);
    let mut out: Vec<Vec<R>> = Vec::with_capacity(t);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks_mut(chunk)
            .enumerate()
            .map(|(c, slice)| {
                let f = &f;
                scope.spawn(move || {
                    slice
                        .iter_mut()
                        .enumerate()
                        .map(|(j, x)| f(c * chunk + j, x))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        out.extend(handles.into_iter().map(|h| h.join().expect("ca-par map_mut worker panicked")));
    });
    out.into_iter().flatten().collect()
}

/// Deterministic parallel fold: the input is cut into fixed `grain`-sized
/// chunks (boundaries depend only on `items.len()` and `grain`), each
/// chunk is folded by `fold_chunk`, and the per-chunk partials are combined
/// **serially in ascending chunk order** on the calling thread.
///
/// Because both the chunk grid and the combine order are independent of the
/// worker count, floating-point accumulations through this function are
/// bitwise identical at any thread count — the rounding schedule is a
/// function of the data alone. Returns `None` for an empty input.
pub fn map_reduce<T: Sync, A: Send>(
    items: &[T],
    grain: usize,
    fold_chunk: impl Fn(usize, &[T]) -> A + Sync,
    mut combine: impl FnMut(A, A) -> A,
) -> Option<A> {
    let n = items.len();
    if n == 0 {
        return None;
    }
    let grain = grain.max(1);
    let chunks: Vec<(usize, &[T])> = items.chunks(grain).enumerate().collect();
    let partials = map(&chunks, |_, &(c, slice)| fold_chunk(c, slice));
    partials.into_iter().reduce(&mut combine)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs `f` at several worker counts and asserts all results agree.
    fn at_thread_counts<R: PartialEq + std::fmt::Debug>(f: impl Fn() -> R) -> R {
        set_threads(Some(1));
        let base = f();
        for t in [2, 3, 8] {
            set_threads(Some(t));
            assert_eq!(f(), base, "thread count {t} changed the result");
        }
        set_threads(None);
        base
    }

    #[test]
    fn threads_is_at_least_one() {
        set_threads(None);
        assert!(threads() >= 1);
        set_threads(Some(6));
        assert_eq!(threads(), 6);
        set_threads(None);
    }

    #[test]
    fn even_chunks_yields_exactly_min_parts_n_balanced_ranges() {
        // The regression shape: 9 slots at 4 parts must give 4 chunks
        // (the old ⌈n/t⌉ split gave 3), sizes within one of each other.
        for (n, parts) in [(9usize, 4usize), (5, 8), (16, 4), (7, 3), (1, 5), (100, 7)] {
            let grid = even_chunks(n, parts);
            assert_eq!(grid.len(), parts.min(n), "n={n} parts={parts}");
            let sizes: Vec<usize> = grid.iter().map(std::ops::Range::len).collect();
            assert!(sizes.iter().all(|&s| s > 0), "empty chunk at n={n} parts={parts}");
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "unbalanced {sizes:?}");
            assert_eq!(grid.first().unwrap().start, 0);
            assert_eq!(grid.last().unwrap().end, n);
            for w in grid.windows(2) {
                assert_eq!(w[0].end, w[1].start, "grid must tile 0..n");
            }
        }
        assert!(even_chunks(0, 4).is_empty());
    }

    #[test]
    fn map_preserves_order_at_any_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let out = at_thread_counts(|| map(&items, |i, &x| x * 2 + i as u64));
        assert_eq!(out.len(), 257);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u64 * 3));
    }

    #[test]
    fn map_handles_empty_and_singleton() {
        let empty: Vec<u32> = Vec::new();
        assert!(map(&empty, |_, &x| x).is_empty());
        assert_eq!(map(&[7u32], |i, &x| x + i as u32), vec![7]);
    }

    #[test]
    fn map_min_matches_map_on_both_sides_of_the_threshold() {
        let small: Vec<u32> = (0..10).collect();
        let large: Vec<u32> = (0..500).collect();
        let f = |i: usize, x: &u32| *x as u64 + i as u64;
        let out = at_thread_counts(|| (map_min(&small, 64, f), map_min(&large, 64, f)));
        assert_eq!(out.0, map(&small, f));
        assert_eq!(out.1, map(&large, f));
    }

    #[test]
    fn map_mut_touches_every_slot_once() {
        let out = at_thread_counts(|| {
            let mut items: Vec<u32> = (0..100).collect();
            let r = map_mut(&mut items, |i, x| {
                *x += 1;
                *x as usize + i
            });
            (items, r)
        });
        assert_eq!(out.0, (1..=100).collect::<Vec<u32>>());
        assert!(out.1.iter().enumerate().all(|(i, &v)| v == 2 * i + 1));
    }

    #[test]
    fn map_reduce_float_sum_is_bitwise_stable() {
        // A sum that *does* depend on association order in f32 — the fixed
        // chunk grid must pin one order regardless of worker count.
        let items: Vec<f32> = (0..10_000).map(|i| (i as f32 * 0.731).sin() * 1e3).collect();
        let sum = at_thread_counts(|| {
            map_reduce(&items, 64, |_, chunk| chunk.iter().sum::<f32>(), |a, b| a + b)
                .unwrap()
                .to_bits()
        });
        // And the chunked sum equals the serial chunk-order fold.
        let serial = items.chunks(64).map(|c| c.iter().sum::<f32>()).fold(None, |acc, p| {
            Some(match acc {
                None => p,
                Some(a) => a + p,
            })
        });
        assert_eq!(sum, serial.unwrap().to_bits());
    }

    #[test]
    fn map_reduce_empty_is_none() {
        let empty: Vec<f32> = Vec::new();
        assert!(map_reduce(&empty, 8, |_, c| c.len(), |a, b| a + b).is_none());
    }

    #[test]
    fn seed_split_is_stable_and_decorrelated() {
        let root = SeedSplit::new(42);
        assert_eq!(root.child(3).seed(), root.child(3).seed());
        assert_eq!(root.child(3).seed(), split_seed(42, 3));
        // Siblings and parent/child must not collide.
        // ca-audit: allow(hash-collections) — membership-only set in a test; never iterated
        let mut seen = std::collections::HashSet::new();
        seen.insert(root.seed());
        for i in 0..1000 {
            assert!(seen.insert(root.child(i).seed()), "seed collision at child {i}");
        }
        // Nested derivation differs from flat derivation.
        assert_ne!(root.child(0).child(0).seed(), root.child(0).seed());
    }

    #[test]
    fn uneven_work_is_still_ordered() {
        // Heavier tasks at the front so dynamic scheduling actually
        // reorders execution; output order must be unaffected.
        let items: Vec<usize> = (0..64).collect();
        let out = at_thread_counts(|| {
            map(&items, |_, &x| {
                let spin = if x < 8 { 20_000 } else { 10 };
                let mut acc = x as u64;
                for i in 0..spin {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
                }
                (x, acc)
            })
        });
        assert!(out.iter().enumerate().all(|(i, &(x, _))| x == i));
    }
}
