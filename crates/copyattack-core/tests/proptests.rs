//! Property-based tests for crafting and REINFORCE invariants.

use ca_recsys::ItemId;
use copyattack_core::crafting::clip_around_target;
use copyattack_core::reinforce::discounted_returns;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn clipping_invariants_hold(
        len in 1usize..60,
        target_pos in 0usize..60,
        level in 1usize..=10,
    ) {
        let target_pos = target_pos % len;
        let profile: Vec<ItemId> = (0..len as u32).map(ItemId).collect();
        let target = profile[target_pos];
        let fraction = level as f32 / 10.0;
        let clipped = clip_around_target(&profile, target, fraction);

        // 1. The target item always survives.
        prop_assert!(clipped.contains(&target));
        // 2. Window length is round(fraction * len), clamped to [1, len].
        let expected = ((fraction * len as f32).round() as usize).clamp(1, len);
        prop_assert_eq!(clipped.len(), expected);
        // 3. The window is a contiguous subsequence (order preserved).
        let start = clipped[0].0 as usize;
        for (i, &v) in clipped.iter().enumerate() {
            prop_assert_eq!(v.0 as usize, start + i, "window not contiguous");
        }
        // 4. Full fraction is the identity.
        if level == 10 {
            prop_assert_eq!(clipped, profile);
        }
    }

    #[test]
    fn clipping_is_centered_away_from_edges(
        len in 10usize..50,
        level in 2usize..9,
    ) {
        // With the target in the middle, the window straddles it.
        let profile: Vec<ItemId> = (0..len as u32).map(ItemId).collect();
        let mid = len / 2;
        let target = profile[mid];
        let clipped = clip_around_target(&profile, target, level as f32 / 10.0);
        let pos_in_window = clipped.iter().position(|&v| v == target).unwrap();
        // Not pinned to either end unless the window is tiny.
        if clipped.len() >= 3 {
            prop_assert!(pos_in_window > 0, "target at left edge of centered window");
            prop_assert!(
                pos_in_window < clipped.len() - 1,
                "target at right edge of centered window"
            );
        }
    }

    #[test]
    fn discounted_returns_are_bounded(
        rewards in prop::collection::vec(0.0f32..1.0, 1..40),
        gamma in 0.0f32..1.0,
    ) {
        let g = discounted_returns(&rewards, gamma);
        prop_assert_eq!(g.len(), rewards.len());
        let bound = 1.0 / (1.0 - gamma.min(0.999)) + 1e-3;
        for (t, &gt) in g.iter().enumerate() {
            prop_assert!(gt >= rewards[t] - 1e-6, "G_t below immediate reward");
            prop_assert!(gt <= bound, "G_t {gt} above geometric bound {bound}");
        }
    }

    #[test]
    fn discounted_returns_satisfy_bellman(
        rewards in prop::collection::vec(-2.0f32..2.0, 2..30),
        gamma in 0.0f32..1.0,
    ) {
        let g = discounted_returns(&rewards, gamma);
        for t in 0..rewards.len() - 1 {
            let rhs = rewards[t] + gamma * g[t + 1];
            prop_assert!((g[t] - rhs).abs() < 1e-4, "Bellman violated at {t}");
        }
        prop_assert!((g[rewards.len() - 1] - rewards[rewards.len() - 1]).abs() < 1e-6);
    }
}
