//! Multi-target attack campaigns (extension).
//!
//! The paper's problem statement promotes "a carefully chosen subset of
//! items", and CopyAttack's state deliberately contains the target item's
//! embedding `q_{v*}` — which means one set of policy networks can be
//! trained across *several* target items and, because selection conditions
//! on the item embedding, generalize to target items it never queried
//! about (zero-shot transfer within the overlap catalog).
//!
//! A campaign trains round-robin over its target set, sharing the
//! clustering tree, the per-node policies, the RNN, the crafting policy,
//! and the REINFORCE baseline; per-item masks are rebuilt on each switch.

use crate::attack::{AttackOutcome, CopyAttackAgent, CopyAttackVariant};
use crate::config::AttackConfig;
use crate::env::AttackEnvironment;
use crate::source::SourceDomain;
use ca_recsys::{BlackBoxRecommender, ItemId};

/// A multi-target attack campaign sharing one agent across items.
pub struct Campaign {
    agent: CopyAttackAgent,
    targets: Vec<ItemId>,
}

impl Campaign {
    /// Builds the shared agent over `targets` (source-domain ids).
    ///
    /// # Panics
    /// Panics if `targets` is empty or any target has no source carrier.
    pub fn new(
        cfg: AttackConfig,
        variant: CopyAttackVariant,
        src: &SourceDomain<'_>,
        targets: Vec<ItemId>,
    ) -> Self {
        assert!(!targets.is_empty(), "a campaign needs at least one target");
        let agent = CopyAttackAgent::new(cfg, variant, src, targets[0]);
        let mut campaign = Self { agent, targets };
        // Validate every target's mask up front (retarget panics on an
        // uncarried item, which we want at construction, not mid-training).
        let all = campaign.targets.clone();
        for &t in &all {
            campaign.agent.retarget(src, t);
        }
        campaign.agent.retarget(src, all[0]);
        campaign
    }

    /// The campaign's target set.
    pub fn targets(&self) -> &[ItemId] {
        &self.targets
    }

    /// Read access to the shared agent.
    pub fn agent(&self) -> &CopyAttackAgent {
        &self.agent
    }

    /// Trains for `cfg.episodes` episodes, rotating through the target set
    /// round-robin. `make_env` receives the *source-domain* target id of
    /// the episode and must produce an environment attacking that item.
    /// Returns the learning curve (final reward per episode).
    pub fn train<R: BlackBoxRecommender>(
        &mut self,
        src: &SourceDomain<'_>,
        mut make_env: impl FnMut(ItemId) -> AttackEnvironment<R>,
    ) -> Vec<f32> {
        let episodes = self.agent.config().episodes;
        let mut curve = Vec::with_capacity(episodes);
        for e in 0..episodes {
            let t = self.targets[e % self.targets.len()];
            self.agent.retarget(src, t);
            let mut env = make_env(t);
            let outcome = self.agent.train_one_episode(src, &mut env);
            curve.push(outcome.final_reward);
        }
        curve
    }

    /// Executes one attack on `target` — which may be an item the campaign
    /// never trained on (zero-shot transfer) — without learning.
    pub fn execute_on<R: BlackBoxRecommender>(
        &mut self,
        src: &SourceDomain<'_>,
        target_src: ItemId,
        env: &mut AttackEnvironment<R>,
    ) -> AttackOutcome {
        self.agent.retarget(src, target_src);
        self.agent.execute(src, env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_mf::BprConfig;
    use ca_recsys::{Dataset, DatasetBuilder, UserId};

    /// Counting fake platform (same flavor as the attack.rs tests): reward
    /// fires once enough injected profiles carried the marker item.
    struct CountingRec {
        good: usize,
        n_users: usize,
        target: ItemId,
        threshold: usize,
    }
    impl BlackBoxRecommender for CountingRec {
        fn top_k(&self, _u: UserId, k: usize) -> Vec<ItemId> {
            if self.good >= self.threshold {
                vec![self.target; k.min(1)]
            } else {
                vec![ItemId(9999); k.min(1)]
            }
        }
        fn inject_user(&mut self, profile: &[ItemId]) -> UserId {
            if profile.contains(&ItemId(777)) {
                self.good += 1;
            }
            let id = UserId(self.n_users as u32);
            self.n_users += 1;
            id
        }
        fn catalog_size(&self) -> usize {
            10_000
        }
    }

    /// 40 source users; items 3, 5, 9 each carried by a distinct third of
    /// the "good" users (who also carry marker 77).
    fn world() -> (Dataset, Vec<ItemId>) {
        let mut b = DatasetBuilder::new(100);
        for u in 0..40u32 {
            let mut profile = vec![ItemId(u % 30 + 30)];
            if u < 15 {
                profile.push(ItemId(3 + 2 * (u % 3))); // one of {3, 5, 7}
                profile.push(ItemId(77));
            }
            profile.push(ItemId((u * 11) % 25));
            b.user(&profile);
        }
        let map: Vec<ItemId> = (0..100).map(|s| ItemId(s * 10 + 7)).collect();
        (b.build(), map)
    }

    fn cfg() -> AttackConfig {
        AttackConfig {
            budget: 6,
            n_pretend: 1,
            query_every: 2,
            episodes: 30,
            tree_depth: 2,
            lr: 0.05,
            seed: 3,
            ..Default::default()
        }
    }

    #[test]
    fn campaign_trains_across_targets_and_masks_correctly() {
        let (ds, map) = world();
        let mf = ca_mf::train(&ds, &BprConfig { epochs: 3, ..Default::default() });
        let src = SourceDomain { data: &ds, mf: &mf, to_target: &map };
        let targets = vec![ItemId(3), ItemId(5)];
        let mut campaign =
            Campaign::new(cfg(), CopyAttackVariant::no_crafting(), &src, targets);
        let curve = campaign.train(&src, |t| {
            AttackEnvironment::new(
                CountingRec { good: 0, n_users: 0, target: map[t.idx()], threshold: 2 },
                vec![UserId(0)],
                map[t.idx()],
                5,
                6,
            )
        });
        assert_eq!(curve.len(), 30);
        // Every executed selection must respect the *current* target's mask.
        for &t in &[ItemId(3), ItemId(5)] {
            let mut env = AttackEnvironment::new(
                CountingRec { good: 0, n_users: 0, target: map[t.idx()], threshold: 2 },
                vec![UserId(0)],
                map[t.idx()],
                5,
                6,
            );
            let o = campaign.execute_on(&src, t, &mut env);
            for u in &o.selected_users {
                assert!(src.has_item(*u, t), "campaign selected non-carrier {u} for {t}");
            }
        }
    }

    #[test]
    fn zero_shot_target_respects_its_own_mask() {
        let (ds, map) = world();
        let mf = ca_mf::train(&ds, &BprConfig { epochs: 3, ..Default::default() });
        let src = SourceDomain { data: &ds, mf: &mf, to_target: &map };
        // Train on {3, 5}; execute on 7 which the campaign never saw.
        let mut campaign = Campaign::new(
            cfg(),
            CopyAttackVariant::no_crafting(),
            &src,
            vec![ItemId(3), ItemId(5)],
        );
        campaign.train(&src, |t| {
            AttackEnvironment::new(
                CountingRec { good: 0, n_users: 0, target: map[t.idx()], threshold: 2 },
                vec![UserId(0)],
                map[t.idx()],
                5,
                6,
            )
        });
        let unseen = ItemId(7);
        let mut env = AttackEnvironment::new(
            CountingRec { good: 0, n_users: 0, target: map[unseen.idx()], threshold: 2 },
            vec![UserId(0)],
            map[unseen.idx()],
            5,
            6,
        );
        let o = campaign.execute_on(&src, unseen, &mut env);
        assert!(!o.selected_users.is_empty());
        for u in &o.selected_users {
            assert!(src.has_item(*u, unseen), "zero-shot mask violated by {u}");
        }
        // All carriers are marker users, so the bandit reward fires.
        assert_eq!(o.final_reward, 1.0);
    }

    #[test]
    #[should_panic(expected = "no selectable source user")]
    fn campaign_rejects_uncarried_target_up_front() {
        let (ds, map) = world();
        let mf = ca_mf::train(&ds, &BprConfig { epochs: 2, ..Default::default() });
        let src = SourceDomain { data: &ds, mf: &mf, to_target: &map };
        let _ = Campaign::new(
            cfg(),
            CopyAttackVariant::full(),
            &src,
            vec![ItemId(3), ItemId(99)],
        );
    }
}
