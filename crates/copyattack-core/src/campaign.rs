//! Multi-target attack campaigns (extension).
//!
//! The paper's problem statement promotes "a carefully chosen subset of
//! items", and CopyAttack's state deliberately contains the target item's
//! embedding `q_{v*}` — which means one set of policy networks can be
//! trained across *several* target items and, because selection conditions
//! on the item embedding, generalize to target items it never queried
//! about (zero-shot transfer within the overlap catalog).
//!
//! A campaign trains round-robin over its target set, sharing the
//! clustering tree, the per-node policies, the RNN, the crafting policy,
//! and the REINFORCE baseline; per-item masks are rebuilt on each switch.
//!
//! Against an *unreliable* platform, [`Campaign::train_resilient`] rides
//! through per-call faults (the environment retries and computes partial
//! rewards) and, when the platform defeats an entire episode, stops with a
//! [`CampaignCheckpoint`] — a structural snapshot of the full agent state
//! from which [`Campaign::resume`] continues the campaign later as if it
//! had never been interrupted.
//!
//! Every reward round a campaign triggers — through
//! [`AttackEnvironment::try_query_reward`] — issues its first attempts as
//! one batched `try_top_k_batch` over all pretend users, served by the
//! target's shared scoring engine in a single pass; metering still charges
//! one query per user, so campaign-level query budgets are unaffected.

use crate::arena::AttackError;
use crate::attack::{AttackOutcome, CopyAttackAgent, CopyAttackVariant};
use crate::config::AttackConfig;
use crate::env::AttackEnvironment;
use crate::source::SourceDomain;
use ca_recsys::{FallibleBlackBox, ItemId, RecError};

/// A multi-target attack campaign sharing one agent across items.
#[derive(Clone)]
pub struct Campaign {
    agent: CopyAttackAgent,
    targets: Vec<ItemId>,
    completed_episodes: usize,
    curve: Vec<f32>,
}

/// A snapshot of a campaign mid-training: the complete agent state (policy
/// networks, RNN, crafting policy, baseline, RNG position), the target
/// set, and the learning-curve prefix. Resuming from a checkpoint on a
/// healthy platform reproduces the exact trajectory an uninterrupted run
/// would have taken, because every source of randomness is part of the
/// snapshot.
#[derive(Clone)]
pub struct CampaignCheckpoint {
    agent: CopyAttackAgent,
    targets: Vec<ItemId>,
    completed_episodes: usize,
    curve: Vec<f32>,
}

impl CampaignCheckpoint {
    /// Training episodes completed before the snapshot.
    pub fn episodes_completed(&self) -> usize {
        self.completed_episodes
    }

    /// Final rewards of the completed episodes.
    pub fn curve(&self) -> &[f32] {
        &self.curve
    }

    /// The campaign's target set.
    pub fn targets(&self) -> &[ItemId] {
        &self.targets
    }
}

/// How a resilient training run ended.
pub enum CampaignRun {
    /// All configured episodes ran; the full learning curve.
    Completed {
        /// Final reward per episode.
        curve: Vec<f32>,
    },
    /// The platform defeated an entire episode (no injection landed).
    /// The checkpoint was taken *before* the failed episode, so resuming
    /// retries it from a clean agent state.
    Interrupted {
        /// Snapshot to hand to [`Campaign::resume`] later (boxed — it
        /// carries a full agent clone).
        checkpoint: Box<CampaignCheckpoint>,
        /// The platform error that ended the last attempted episode.
        cause: RecError,
    },
}

impl Campaign {
    /// Builds the shared agent over `targets` (source-domain ids), failing
    /// if `targets` is empty or any target has no source carrier. Every
    /// target's mask is validated up front — a broken target should fail
    /// construction, not episode 37.
    pub fn try_new(
        cfg: AttackConfig,
        variant: CopyAttackVariant,
        src: &SourceDomain<'_>,
        targets: Vec<ItemId>,
    ) -> Result<Self, AttackError> {
        if targets.is_empty() {
            return Err(AttackError::EmptyTargets);
        }
        let agent = CopyAttackAgent::try_new(cfg, variant, src, targets[0])?;
        let mut campaign = Self { agent, targets, completed_episodes: 0, curve: Vec::new() };
        let all = campaign.targets.clone();
        for &t in &all {
            campaign.agent.try_retarget(src, t)?;
        }
        campaign.agent.try_retarget(src, all[0])?;
        Ok(campaign)
    }

    /// Panicking wrapper over [`Campaign::try_new`].
    ///
    /// # Panics
    /// Panics if `targets` is empty or any target has no source carrier.
    pub fn new(
        cfg: AttackConfig,
        variant: CopyAttackVariant,
        src: &SourceDomain<'_>,
        targets: Vec<ItemId>,
    ) -> Self {
        Self::try_new(cfg, variant, src, targets).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The campaign's target set.
    pub fn targets(&self) -> &[ItemId] {
        &self.targets
    }

    /// Read access to the shared agent.
    pub fn agent(&self) -> &CopyAttackAgent {
        &self.agent
    }

    /// Training episodes completed so far (across resumptions).
    pub fn episodes_completed(&self) -> usize {
        self.completed_episodes
    }

    /// Final rewards of the completed episodes (across resumptions).
    pub fn curve(&self) -> &[f32] {
        &self.curve
    }

    /// Snapshots the campaign for later [`Campaign::resume`].
    pub fn checkpoint(&self) -> CampaignCheckpoint {
        CampaignCheckpoint {
            agent: self.agent.clone(),
            targets: self.targets.clone(),
            completed_episodes: self.completed_episodes,
            curve: self.curve.clone(),
        }
    }

    /// Reconstructs a campaign from a checkpoint. Continue with
    /// [`Campaign::train_resilient`]; remaining episodes pick up exactly
    /// where the snapshot left off.
    pub fn resume(checkpoint: CampaignCheckpoint) -> Self {
        Self {
            agent: checkpoint.agent,
            targets: checkpoint.targets,
            completed_episodes: checkpoint.completed_episodes,
            curve: checkpoint.curve,
        }
    }

    /// Trains for `cfg.episodes` episodes, rotating through the target set
    /// round-robin. `make_env` receives the *source-domain* target id of
    /// the episode and must produce an environment attacking that item.
    /// Returns the learning curve (final reward per episode).
    ///
    /// This is the reliable-platform entry point: it always starts from
    /// episode 0 and runs to completion. Use
    /// [`Campaign::train_resilient`] against a platform that can fail.
    pub fn train<R: FallibleBlackBox>(
        &mut self,
        src: &SourceDomain<'_>,
        mut make_env: impl FnMut(ItemId) -> AttackEnvironment<R>,
    ) -> Vec<f32> {
        let episodes = self.agent.config().episodes;
        let mut curve = Vec::with_capacity(episodes);
        for e in 0..episodes {
            let t = self.targets[e % self.targets.len()];
            self.agent.retarget(src, t);
            let mut env = make_env(t);
            let outcome = self.agent.train_one_episode(src, &mut env);
            curve.push(outcome.final_reward);
        }
        self.completed_episodes = episodes;
        self.curve = curve.clone();
        curve
    }

    /// Trains the remaining episodes (from [`Campaign::episodes_completed`]
    /// up to `cfg.episodes`) against a possibly-failing platform.
    ///
    /// Per-call faults are absorbed inside each episode (retries, partial
    /// rewards, account re-establishment — see
    /// [`AttackEnvironment`]). When an *entire* episode fails — not one
    /// injection landed — the campaign rolls the aborted episode back and
    /// returns [`CampaignRun::Interrupted`] with a checkpoint taken before
    /// it, so a later [`Campaign::resume`] retries that episode with clean
    /// state.
    pub fn train_resilient<R: FallibleBlackBox>(
        &mut self,
        src: &SourceDomain<'_>,
        mut make_env: impl FnMut(ItemId) -> AttackEnvironment<R>,
    ) -> CampaignRun {
        let episodes = self.agent.config().episodes;
        while self.completed_episodes < episodes {
            let e = self.completed_episodes;
            let t = self.targets[e % self.targets.len()];
            self.agent.retarget(src, t);
            let pre = self.checkpoint();
            let mut env = make_env(t);
            let outcome = self.agent.train_one_episode(src, &mut env);
            if let Some(cause) = outcome.aborted {
                // Undo the aborted episode's policy update: the rewards it
                // saw were all platform noise, not signal.
                *self = Campaign::resume(pre.clone());
                return CampaignRun::Interrupted { checkpoint: Box::new(pre), cause };
            }
            self.curve.push(outcome.final_reward);
            self.completed_episodes += 1;
        }
        CampaignRun::Completed { curve: self.curve.clone() }
    }

    /// Executes one attack on `target` — which may be an item the campaign
    /// never trained on (zero-shot transfer) — without learning.
    pub fn execute_on<R: FallibleBlackBox>(
        &mut self,
        src: &SourceDomain<'_>,
        target_src: ItemId,
        env: &mut AttackEnvironment<R>,
    ) -> AttackOutcome {
        self.agent.retarget(src, target_src);
        self.agent.execute(src, env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_mf::BprConfig;
    use ca_recsys::{BlackBoxRecommender, Dataset, DatasetBuilder, UserId};

    /// Counting fake platform (same flavor as the attack.rs tests): reward
    /// fires once enough injected profiles carried the marker item.
    struct CountingRec {
        good: usize,
        n_users: usize,
        target: ItemId,
        threshold: usize,
    }
    impl BlackBoxRecommender for CountingRec {
        fn top_k(&self, _u: UserId, k: usize) -> Vec<ItemId> {
            if self.good >= self.threshold {
                vec![self.target; k.min(1)]
            } else {
                vec![ItemId(9999); k.min(1)]
            }
        }
        fn inject_user(&mut self, profile: &[ItemId]) -> UserId {
            if profile.contains(&ItemId(777)) {
                self.good += 1;
            }
            let id = UserId(self.n_users as u32);
            self.n_users += 1;
            id
        }
        fn catalog_size(&self) -> usize {
            10_000
        }
    }

    /// 40 source users; items 3, 5, 9 each carried by a distinct third of
    /// the "good" users (who also carry marker 77).
    fn world() -> (Dataset, Vec<ItemId>) {
        let mut b = DatasetBuilder::new(100);
        for u in 0..40u32 {
            let mut profile = vec![ItemId(u % 30 + 30)];
            if u < 15 {
                profile.push(ItemId(3 + 2 * (u % 3))); // one of {3, 5, 7}
                profile.push(ItemId(77));
            }
            profile.push(ItemId((u * 11) % 25));
            b.user(&profile);
        }
        let map: Vec<ItemId> = (0..100).map(|s| ItemId(s * 10 + 7)).collect();
        (b.build(), map)
    }

    fn cfg() -> AttackConfig {
        AttackConfig {
            budget: 6,
            n_pretend: 1,
            query_every: 2,
            episodes: 30,
            tree_depth: 2,
            lr: 0.05,
            seed: 3,
            ..Default::default()
        }
    }

    fn bandit_env(map: &[ItemId], t: ItemId) -> AttackEnvironment<CountingRec> {
        AttackEnvironment::new(
            CountingRec { good: 0, n_users: 0, target: map[t.idx()], threshold: 2 },
            vec![UserId(0)],
            map[t.idx()],
            5,
            6,
        )
    }

    #[test]
    fn campaign_trains_across_targets_and_masks_correctly() {
        let (ds, map) = world();
        let mf = ca_mf::train(&ds, &BprConfig { max_epochs: 3, ..Default::default() });
        let src = SourceDomain { data: &ds, mf: &mf, to_target: &map };
        let targets = vec![ItemId(3), ItemId(5)];
        let mut campaign = Campaign::new(cfg(), CopyAttackVariant::no_crafting(), &src, targets);
        let curve = campaign.train(&src, |t| bandit_env(&map, t));
        assert_eq!(curve.len(), 30);
        // Every executed selection must respect the *current* target's mask.
        for &t in &[ItemId(3), ItemId(5)] {
            let mut env = bandit_env(&map, t);
            let o = campaign.execute_on(&src, t, &mut env);
            for u in &o.selected_users {
                assert!(src.has_item(*u, t), "campaign selected non-carrier {u} for {t}");
            }
        }
    }

    #[test]
    fn zero_shot_target_respects_its_own_mask() {
        let (ds, map) = world();
        let mf = ca_mf::train(&ds, &BprConfig { max_epochs: 3, ..Default::default() });
        let src = SourceDomain { data: &ds, mf: &mf, to_target: &map };
        // Train on {3, 5}; execute on 7 which the campaign never saw.
        let mut campaign = Campaign::new(
            cfg(),
            CopyAttackVariant::no_crafting(),
            &src,
            vec![ItemId(3), ItemId(5)],
        );
        campaign.train(&src, |t| bandit_env(&map, t));
        let unseen = ItemId(7);
        let mut env = bandit_env(&map, unseen);
        let o = campaign.execute_on(&src, unseen, &mut env);
        assert!(!o.selected_users.is_empty());
        for u in &o.selected_users {
            assert!(src.has_item(*u, unseen), "zero-shot mask violated by {u}");
        }
        // All carriers are marker users, so the bandit reward fires.
        assert_eq!(o.final_reward, 1.0);
    }

    #[test]
    #[should_panic(expected = "no selectable source user")]
    fn campaign_rejects_uncarried_target_up_front() {
        let (ds, map) = world();
        let mf = ca_mf::train(&ds, &BprConfig { max_epochs: 2, ..Default::default() });
        let src = SourceDomain { data: &ds, mf: &mf, to_target: &map };
        let _ = Campaign::new(cfg(), CopyAttackVariant::full(), &src, vec![ItemId(3), ItemId(99)]);
    }

    #[test]
    fn try_new_surfaces_errors_instead_of_panicking() {
        let (ds, map) = world();
        let mf = ca_mf::train(&ds, &BprConfig { max_epochs: 2, ..Default::default() });
        let src = SourceDomain { data: &ds, mf: &mf, to_target: &map };
        let err = Campaign::try_new(cfg(), CopyAttackVariant::full(), &src, vec![])
            .err()
            .expect("empty target set");
        assert_eq!(err, crate::arena::AttackError::EmptyTargets);
        let err = Campaign::try_new(cfg(), CopyAttackVariant::full(), &src, vec![ItemId(99)])
            .err()
            .expect("uncarried target");
        assert!(err.to_string().contains("no selectable source user"), "{err}");
        let bad_cfg = AttackConfig { budget: 0, ..cfg() };
        let err = Campaign::try_new(bad_cfg, CopyAttackVariant::full(), &src, vec![ItemId(3)])
            .err()
            .expect("invalid config");
        assert!(err.to_string().contains("invalid attack config"), "{err}");
    }

    #[test]
    fn checkpoint_resume_reproduces_the_uninterrupted_curve() {
        let (ds, map) = world();
        let mf = ca_mf::train(&ds, &BprConfig { max_epochs: 3, ..Default::default() });
        let src = SourceDomain { data: &ds, mf: &mf, to_target: &map };
        let targets = vec![ItemId(3), ItemId(5)];

        // Reference: one uninterrupted resilient run of all 30 episodes.
        let mut reference =
            Campaign::new(cfg(), CopyAttackVariant::no_crafting(), &src, targets.clone());
        let CampaignRun::Completed { curve: full_curve } =
            reference.train_resilient(&src, |t| bandit_env(&map, t))
        else {
            panic!("reliable platform cannot interrupt");
        };
        assert_eq!(full_curve.len(), 30);

        // Interrupted run: the platform dies at the 12th episode (index 11).
        let mut interrupted = Campaign::new(cfg(), CopyAttackVariant::no_crafting(), &src, targets);
        let mut episode_no = 0usize;
        let run = interrupted.train_resilient(&src, |t| {
            let dead = episode_no == 11;
            episode_no += 1;
            AttackEnvironment::new(
                DownThenUp {
                    inner: CountingRec { good: 0, n_users: 0, target: map[t.idx()], threshold: 2 },
                    refusals_left: if dead { usize::MAX } else { 0 },
                },
                vec![UserId(0)],
                map[t.idx()],
                5,
                6,
            )
        });
        let CampaignRun::Interrupted { checkpoint, cause } = run else {
            panic!("episode 12's dead platform must interrupt");
        };
        assert_eq!(cause, RecError::AccountSuspended);
        assert_eq!(checkpoint.episodes_completed(), 11);
        assert_eq!(checkpoint.curve(), &full_curve[..11], "prefix must match the reference");

        // Later: resume from the snapshot on a healthy platform. The
        // aborted episode was rolled back, so the resumed run replays it
        // cleanly and the combined curve is bit-identical to the reference.
        let mut resumed = Campaign::resume(*checkpoint);
        let CampaignRun::Completed { curve: resumed_curve } =
            resumed.train_resilient(&src, |t| bandit_env(&map, t))
        else {
            panic!("healthy platform cannot interrupt");
        };
        assert_eq!(
            resumed_curve, full_curve,
            "resumed run must reproduce the uninterrupted curve exactly"
        );
    }

    /// A platform that refuses every injection until `heal_after` accounts
    /// have been attempted, then behaves like the counting bandit.
    struct DownThenUp {
        inner: CountingRec,
        refusals_left: usize,
    }
    impl ca_recsys::FallibleBlackBox for DownThenUp {
        fn try_top_k(&mut self, u: UserId, k: usize) -> Result<Vec<ItemId>, RecError> {
            Ok(self.inner.top_k(u, k))
        }
        fn try_inject_user(&mut self, p: &[ItemId]) -> Result<UserId, RecError> {
            if self.refusals_left > 0 {
                self.refusals_left -= 1;
                return Err(RecError::AccountSuspended);
            }
            // ca-audit: allow(env-injection) — test fake forwarding to its inner in-memory platform
            Ok(self.inner.inject_user(p))
        }
        fn catalog_size(&self) -> usize {
            BlackBoxRecommender::catalog_size(&self.inner)
        }
    }

    #[test]
    fn total_outage_interrupts_with_a_resumable_checkpoint() {
        let (ds, map) = world();
        let mf = ca_mf::train(&ds, &BprConfig { max_epochs: 3, ..Default::default() });
        let src = SourceDomain { data: &ds, mf: &mf, to_target: &map };
        let mut campaign = Campaign::new(
            cfg(),
            CopyAttackVariant::no_crafting(),
            &src,
            vec![ItemId(3), ItemId(5)],
        );
        // The platform refuses every account forever: the very first
        // episode aborts.
        let run = campaign.train_resilient(&src, |t| {
            AttackEnvironment::new(
                DownThenUp {
                    inner: CountingRec { good: 0, n_users: 0, target: map[t.idx()], threshold: 2 },
                    refusals_left: usize::MAX,
                },
                vec![UserId(0)],
                map[t.idx()],
                5,
                6,
            )
        });
        let CampaignRun::Interrupted { checkpoint, cause } = run else {
            panic!("a dead platform must interrupt the campaign");
        };
        assert_eq!(cause, RecError::AccountSuspended);
        assert_eq!(checkpoint.episodes_completed(), 0);

        // Later, the platform is back: resume and finish all episodes.
        let mut resumed = Campaign::resume(*checkpoint);
        let run = resumed.train_resilient(&src, |t| {
            AttackEnvironment::new(
                DownThenUp {
                    inner: CountingRec { good: 0, n_users: 0, target: map[t.idx()], threshold: 2 },
                    refusals_left: 0,
                },
                vec![UserId(0)],
                map[t.idx()],
                5,
                6,
            )
        });
        let CampaignRun::Completed { curve } = run else {
            panic!("healed platform must complete");
        };
        assert_eq!(curve.len(), 30);
    }
}
