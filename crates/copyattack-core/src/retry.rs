//! Retrying platform calls against an unreliable target.
//!
//! The attacker's cost model (§4.5: "a limited number of queries (or
//! interactions)") does not pause for a flaky platform: every attempt —
//! including retries of failed calls — spends metered budget, and backoff
//! delays are spent in *logical time* through
//! [`FallibleBlackBox::wait`], so a
//! seeded run is exactly reproducible.

use ca_recsys::{FallibleBlackBox, RecError, SplitMix64};

/// Capped exponential backoff with seeded jitter.
///
/// Attempt `i` (0-based) waits `min(base_delay · 2^i, max_delay)` logical
/// ticks, stretched by up to `jitter` (a fraction, e.g. `0.25` = up to 25%
/// extra) drawn from the caller's [`SplitMix64`]. A
/// [`RecError::RateLimited`] (or [`RecError::Degraded`]) overrides the
/// computed delay with the platform's own `retry_after` hint when that hint
/// is longer.
///
/// On top of the per-attempt schedule, `max_total_wait` caps the
/// *cumulative* logical ticks one [`RetryPolicy::run`] invocation may spend
/// waiting. A dead or flapping shard that keeps handing out large
/// `retry_after` hints would otherwise stall a campaign unboundedly; once
/// the budget is exhausted the call degrades to the typed failure that
/// triggered the final give-up.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = fail fast).
    pub max_retries: u32,
    /// Backoff before the first retry, in logical ticks.
    pub base_delay: u64,
    /// Ceiling on any single backoff wait.
    pub max_delay: u64,
    /// Jitter fraction in `[0, 1]`: each wait is stretched by
    /// `delay · jitter · U[0,1)`.
    pub jitter: f64,
    /// Cumulative wait budget (logical ticks) per `run`/`run_after`
    /// invocation. A wait that would push the running total past this cap
    /// is not taken; the triggering error is returned instead.
    pub max_total_wait: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { max_retries: 4, base_delay: 2, max_delay: 64, jitter: 0.25, max_total_wait: 1024 }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        Self { max_retries: 0, base_delay: 0, max_delay: 0, jitter: 0.0, max_total_wait: 0 }
    }

    /// Sanity-checks the policy.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_retries > 0 && self.max_delay < self.base_delay {
            return Err(format!(
                "max_delay {} below base_delay {}",
                self.max_delay, self.base_delay
            ));
        }
        if !(0.0..=1.0).contains(&self.jitter) {
            return Err(format!("jitter {} outside [0, 1]", self.jitter));
        }
        if self.max_retries > 0 && self.max_total_wait < self.base_delay {
            return Err(format!(
                "max_total_wait {} cannot fund even one base_delay {} wait",
                self.max_total_wait, self.base_delay
            ));
        }
        Ok(())
    }

    /// The deterministic pre-jitter backoff for 0-based retry `attempt`:
    /// `min(base_delay · 2^attempt, max_delay)`.
    pub fn backoff(&self, attempt: u32) -> u64 {
        let exp = self.base_delay.saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX));
        exp.min(self.max_delay)
    }

    /// The logical-tick wait before retry `attempt` after `err`, with
    /// jitter drawn from `rng`. Honors a rate limiter's `retry_after` hint
    /// when it exceeds the computed backoff.
    pub fn delay_for(&self, attempt: u32, err: &RecError, rng: &mut SplitMix64) -> u64 {
        let base = self.backoff(attempt);
        let jittered = base + (base as f64 * self.jitter * rng.unit_f64()) as u64;
        match err {
            RecError::RateLimited { retry_after } | RecError::Degraded { retry_after } => {
                jittered.max(*retry_after)
            }
            _ => jittered,
        }
    }

    /// Runs `call` against `platform`, retrying retryable errors up to
    /// `max_retries` times with backoff spent via
    /// [`FallibleBlackBox::wait`], subject to the cumulative
    /// `max_total_wait` budget. Non-retryable errors (suspensions,
    /// truncations — which carry data the caller should use) return
    /// immediately. Every attempt goes through `platform`, so metering
    /// wrappers charge retries to the attacker's budget.
    pub fn run<B: FallibleBlackBox, T>(
        &self,
        platform: &mut B,
        rng: &mut SplitMix64,
        mut call: impl FnMut(&mut B) -> Result<T, RecError>,
    ) -> Result<T, RecError> {
        let mut attempt = 0u32;
        let mut waited = 0u64;
        loop {
            match call(platform) {
                Ok(v) => return Ok(v),
                Err(e) if e.is_retryable() && attempt < self.max_retries => {
                    let delay = self.delay_for(attempt, &e, rng);
                    match waited.checked_add(delay).filter(|&w| w <= self.max_total_wait) {
                        // Budget exhausted: degrade to the typed failure
                        // instead of waiting out a dead shard.
                        None => return Err(e),
                        Some(w) => waited = w,
                    }
                    platform.wait(delay);
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Continues the retry schedule after a first attempt that already
    /// happened elsewhere and failed with `err` — the batched-query case,
    /// where the initial attempt for every user went out in one
    /// `try_top_k_batch` and only the failed entries fall back to per-user
    /// retries. Waits, calls, and metered attempts are identical to
    /// [`RetryPolicy::run`] observing the same first failure.
    pub fn run_after<B: FallibleBlackBox, T>(
        &self,
        first_err: RecError,
        platform: &mut B,
        rng: &mut SplitMix64,
        mut call: impl FnMut(&mut B) -> Result<T, RecError>,
    ) -> Result<T, RecError> {
        let mut err = first_err;
        let mut attempt = 0u32;
        let mut waited = 0u64;
        loop {
            if !err.is_retryable() || attempt >= self.max_retries {
                return Err(err);
            }
            let delay = self.delay_for(attempt, &err, rng);
            match waited.checked_add(delay).filter(|&w| w <= self.max_total_wait) {
                None => return Err(err),
                Some(w) => waited = w,
            }
            platform.wait(delay);
            attempt += 1;
            match call(platform) {
                Ok(v) => return Ok(v),
                Err(e) => err = e,
            }
        }
    }
}

/// How the attack loop behaves when the platform misbehaves.
#[derive(Clone, Copy, Debug)]
pub struct ResilienceConfig {
    /// Retry schedule for individual platform calls.
    pub retry: RetryPolicy,
    /// Minimum fraction of pretend users that must answer a reward query
    /// for the round to count. Below this quorum, the sample is *skipped*
    /// (treated like a non-query step) instead of biasing the reward
    /// toward the accounts that happened to get through.
    pub min_quorum: f64,
    /// Re-establish suspended pretend users from their stored profiles
    /// (costs platform calls, charged to the attacker's metered budget).
    pub reestablish: bool,
    /// Seed for retry jitter (independent of the agent's policy seed).
    pub seed: u64,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self { retry: RetryPolicy::default(), min_quorum: 0.5, reestablish: true, seed: 0x5EED }
    }
}

impl ResilienceConfig {
    /// Sanity-checks the configuration.
    pub fn validate(&self) -> Result<(), String> {
        self.retry.validate()?;
        if !(0.0..=1.0).contains(&self.min_quorum) {
            return Err(format!("min_quorum {} outside [0, 1]", self.min_quorum));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_recsys::{FaultConfig, FaultyRecommender, ItemId, UserId};

    /// A platform that fails the first `fail_first` calls, then succeeds.
    struct EventuallyUp {
        fail_first: u32,
        calls: u32,
        err: RecError,
    }

    impl FallibleBlackBox for EventuallyUp {
        fn try_top_k(&mut self, _u: UserId, k: usize) -> Result<Vec<ItemId>, RecError> {
            self.calls += 1;
            if self.calls <= self.fail_first {
                Err(self.err.clone())
            } else {
                Ok(vec![ItemId(1); k])
            }
        }
        fn try_inject_user(&mut self, _p: &[ItemId]) -> Result<UserId, RecError> {
            Ok(UserId(0))
        }
        fn catalog_size(&self) -> usize {
            10
        }
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let p = RetryPolicy {
            max_retries: 10,
            base_delay: 2,
            max_delay: 20,
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff(0), 2);
        assert_eq!(p.backoff(1), 4);
        assert_eq!(p.backoff(2), 8);
        assert_eq!(p.backoff(3), 16);
        assert_eq!(p.backoff(4), 20, "capped at max_delay");
        assert_eq!(p.backoff(63), 20);
        assert_eq!(p.backoff(200), 20, "shift overflow saturates at the cap");
    }

    #[test]
    fn delay_honors_retry_after() {
        let p = RetryPolicy {
            max_retries: 3,
            base_delay: 1,
            max_delay: 4,
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let mut rng = SplitMix64::new(7);
        let d = p.delay_for(0, &RecError::RateLimited { retry_after: 50 }, &mut rng);
        assert_eq!(d, 50, "platform hint beats the computed backoff");
        let d = p.delay_for(0, &RecError::Timeout, &mut rng);
        assert_eq!(d, 1);
    }

    #[test]
    fn run_retries_until_success_and_waits_in_logical_time() {
        let p = RetryPolicy {
            max_retries: 3,
            base_delay: 2,
            max_delay: 16,
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let inner = EventuallyUp { fail_first: 2, calls: 0, err: RecError::Timeout };
        // FaultyRecommender with a transparent config is used purely as a
        // logical clock so the waits are observable.
        let mut platform = FaultyRecommender::new(inner, FaultConfig::default());
        let mut rng = SplitMix64::new(1);
        let list = p.run(&mut platform, &mut rng, |pf| pf.try_top_k(UserId(0), 3)).unwrap();
        assert_eq!(list.len(), 3);
        // 3 call ticks + backoffs 2 and 4 after the two failures.
        assert_eq!(platform.clock(), 3 + 2 + 4);
    }

    #[test]
    fn run_after_continues_the_schedule_like_run() {
        // Handing run_after the failure of an externally-made first attempt
        // must reproduce run()'s waits and attempt counts exactly.
        let p = RetryPolicy {
            max_retries: 3,
            base_delay: 2,
            max_delay: 16,
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let inner = EventuallyUp { fail_first: 2, calls: 0, err: RecError::Timeout };
        let mut platform = FaultyRecommender::new(inner, FaultConfig::default());
        let mut rng = SplitMix64::new(1);
        let first = platform.try_top_k(UserId(0), 3).unwrap_err();
        let list =
            p.run_after(first, &mut platform, &mut rng, |pf| pf.try_top_k(UserId(0), 3)).unwrap();
        assert_eq!(list.len(), 3);
        assert_eq!(platform.clock(), 3 + 2 + 4, "same logical ticks as the run() path");
    }

    #[test]
    fn run_after_fails_fast_on_non_retryable_first_error() {
        let p = RetryPolicy::default();
        let mut platform = EventuallyUp { fail_first: 0, calls: 0, err: RecError::Timeout };
        let mut rng = SplitMix64::new(1);
        let r = p.run_after(RecError::AccountSuspended, &mut platform, &mut rng, |pf| {
            pf.try_top_k(UserId(0), 3)
        });
        assert_eq!(r, Err(RecError::AccountSuspended));
        assert_eq!(platform.calls, 0, "no retry calls issued");
    }

    #[test]
    fn run_after_gives_up_after_max_retries() {
        let p = RetryPolicy {
            max_retries: 2,
            base_delay: 1,
            max_delay: 4,
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let mut platform = EventuallyUp { fail_first: 100, calls: 0, err: RecError::Timeout };
        let mut rng = SplitMix64::new(1);
        let r = p
            .run_after(RecError::Timeout, &mut platform, &mut rng, |pf| pf.try_top_k(UserId(0), 3));
        assert_eq!(r, Err(RecError::Timeout));
        assert_eq!(platform.calls, 2, "2 retries after the external first attempt");
    }

    #[test]
    fn run_gives_up_after_max_retries() {
        let p = RetryPolicy {
            max_retries: 2,
            base_delay: 1,
            max_delay: 4,
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let mut platform = EventuallyUp { fail_first: 100, calls: 0, err: RecError::Timeout };
        let mut rng = SplitMix64::new(1);
        let r = p.run(&mut platform, &mut rng, |pf| pf.try_top_k(UserId(0), 3));
        assert_eq!(r, Err(RecError::Timeout));
        assert_eq!(platform.calls, 3, "1 attempt + 2 retries");
    }

    #[test]
    fn non_retryable_errors_fail_fast() {
        let p = RetryPolicy::default();
        let mut platform =
            EventuallyUp { fail_first: 100, calls: 0, err: RecError::AccountSuspended };
        let mut rng = SplitMix64::new(1);
        let r = p.run(&mut platform, &mut rng, |pf| pf.try_top_k(UserId(0), 3));
        assert_eq!(r, Err(RecError::AccountSuspended));
        assert_eq!(platform.calls, 1, "suspension is not retried");
    }

    #[test]
    fn cumulative_wait_budget_degrades_to_typed_failure() {
        // A flapping shard keeps handing out a huge retry_after hint; the
        // cumulative budget caps the stall and surfaces the typed error
        // well before max_retries is exhausted.
        let p = RetryPolicy {
            max_retries: 10,
            base_delay: 1,
            max_delay: 4,
            jitter: 0.0,
            max_total_wait: 100,
        };
        let inner =
            EventuallyUp { fail_first: 100, calls: 0, err: RecError::Degraded { retry_after: 60 } };
        let mut platform = FaultyRecommender::new(inner, FaultConfig::default());
        let mut rng = SplitMix64::new(3);
        let r = p.run(&mut platform, &mut rng, |pf| pf.try_top_k(UserId(0), 3));
        assert_eq!(r, Err(RecError::Degraded { retry_after: 60 }));
        // One 60-tick wait fits the budget; the second (120 total) does
        // not, so the loop stops after two calls and one wait.
        assert_eq!(platform.clock(), 2 + 60);
    }

    #[test]
    fn wait_budget_applies_to_run_after_too() {
        let p = RetryPolicy {
            max_retries: 10,
            base_delay: 1,
            max_delay: 4,
            jitter: 0.0,
            max_total_wait: 50,
        };
        let mut platform =
            EventuallyUp { fail_first: 100, calls: 0, err: RecError::Degraded { retry_after: 60 } };
        let mut rng = SplitMix64::new(3);
        let first = RecError::Degraded { retry_after: 60 };
        let r =
            p.run_after(first.clone(), &mut platform, &mut rng, |pf| pf.try_top_k(UserId(0), 3));
        assert_eq!(r, Err(first));
        assert_eq!(platform.calls, 0, "a wait the budget cannot fund is never taken");
    }

    #[test]
    fn same_seed_same_jitter_sequence() {
        let p = RetryPolicy {
            max_retries: 8,
            base_delay: 3,
            max_delay: 100,
            jitter: 0.5,
            ..RetryPolicy::default()
        };
        let delays = |seed| {
            let mut rng = SplitMix64::new(seed);
            (0..8).map(|a| p.delay_for(a, &RecError::Timeout, &mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(delays(9), delays(9));
        assert_ne!(delays(9), delays(10), "different seeds should jitter differently");
    }

    #[test]
    fn invalid_policies_rejected() {
        assert!(RetryPolicy {
            max_retries: 1,
            base_delay: 10,
            max_delay: 5,
            jitter: 0.0,
            ..RetryPolicy::default()
        }
        .validate()
        .is_err());
        assert!(RetryPolicy { jitter: 1.5, ..RetryPolicy::default() }.validate().is_err());
        assert!(RetryPolicy { max_total_wait: 0, ..RetryPolicy::default() }.validate().is_err());
        assert!(RetryPolicy::none().validate().is_ok());
        assert!(ResilienceConfig { min_quorum: -0.1, ..Default::default() }.validate().is_err());
        assert!(ResilienceConfig::default().validate().is_ok());
    }
}
