//! The black-box attacking environment (§4.2, §4.5).
//!
//! Wraps the target recommender behind the query/inject interface, owns the
//! attacker's pretend users, and computes the Eq. 1 reward:
//!
//! ```text
//! r(s_t, a_t) = (1/|U^A*|) Σ_i HR(u^A_{i*}, v*, k)
//! ```

use ca_recsys::blackbox::MeteredRecommender;
use ca_recsys::{BlackBoxRecommender, Dataset, ItemId, UserId};
use rand::Rng;

/// The attacker's handle on the target platform for one attack run.
pub struct AttackEnvironment<R: BlackBoxRecommender> {
    rec: MeteredRecommender<R>,
    pretend: Vec<UserId>,
    target: ItemId,
    reward_k: usize,
    injected: usize,
    budget: usize,
}

impl<R: BlackBoxRecommender> AttackEnvironment<R> {
    /// Wraps a recommender for an attack on `target`. `pretend` are the
    /// attacker-controlled accounts established beforehand (see
    /// [`establish_pretend_users`]).
    pub fn new(
        rec: R,
        pretend: Vec<UserId>,
        target: ItemId,
        reward_k: usize,
        budget: usize,
    ) -> Self {
        assert!(!pretend.is_empty(), "need at least one pretend user");
        Self { rec: MeteredRecommender::new(rec), pretend, target, reward_k, injected: 0, budget }
    }

    /// The item under promotion.
    pub fn target(&self) -> ItemId {
        self.target
    }

    /// Remaining injection budget.
    pub fn remaining_budget(&self) -> usize {
        self.budget - self.injected
    }

    /// Whether the budget is exhausted.
    pub fn exhausted(&self) -> bool {
        self.injected >= self.budget
    }

    /// Profiles injected so far in this run.
    pub fn injections(&self) -> usize {
        self.injected
    }

    /// Top-k queries issued so far in this run.
    pub fn queries(&self) -> u64 {
        self.rec.queries()
    }

    /// Injects one crafted profile.
    ///
    /// # Panics
    /// Panics if the budget is exhausted (the caller must check the
    /// terminal condition).
    pub fn inject(&mut self, profile: &[ItemId]) -> UserId {
        assert!(!self.exhausted(), "injection budget exhausted");
        self.injected += 1;
        self.rec.inject_user(profile)
    }

    /// Queries the pretend users' Top-k lists and returns the Eq. 1 reward:
    /// the fraction whose list contains the target item.
    pub fn query_reward(&mut self) -> f32 {
        let mut hits = 0usize;
        for i in 0..self.pretend.len() {
            let u = self.pretend[i];
            let list = self.rec.top_k_counted(u, self.reward_k);
            if list.contains(&self.target) {
                hits += 1;
            }
        }
        hits as f32 / self.pretend.len() as f32
    }

    /// Consumes the environment, returning the (polluted) recommender for
    /// owner-side evaluation.
    pub fn into_recommender(self) -> R {
        self.rec.into_inner()
    }

    /// Owner-side view of the recommender (not part of the attacker
    /// surface; used by the experiment harness for final metrics).
    pub fn recommender(&self) -> &R {
        self.rec.inner()
    }
}

/// Creates `n` pretend users on the platform before the attack starts.
///
/// The paper assumes "a set of pretend users that the attacker had already
/// established in the target domain". We give each a plausible mainstream
/// profile: `profile_len` items sampled by popularity from the public
/// catalog (an attacker can see what is popular by browsing), ordered
/// arbitrarily. Returns their account ids.
pub fn establish_pretend_users<R: BlackBoxRecommender>(
    rec: &mut R,
    visible_popularity: &Dataset,
    n: usize,
    profile_len: usize,
    rng: &mut impl Rng,
) -> Vec<UserId> {
    let n_items = visible_popularity.n_items();
    assert!(profile_len <= n_items, "pretend profile longer than catalog");
    // Popularity-proportional sampling with add-one smoothing.
    let mut cdf = Vec::with_capacity(n_items);
    let mut acc = 0.0f64;
    for v in 0..n_items {
        acc += 1.0 + visible_popularity.item_popularity(ItemId(v as u32)) as f64;
        cdf.push(acc);
    }
    let total = acc;
    let mut ids = Vec::with_capacity(n);
    for _ in 0..n {
        let mut profile: Vec<ItemId> = Vec::with_capacity(profile_len);
        let mut guard = 0u32;
        while profile.len() < profile_len {
            let u: f64 = rng.gen::<f64>() * total;
            let pos = cdf.partition_point(|&c| c < u).min(n_items - 1);
            let item = ItemId(pos as u32);
            if !profile.contains(&item) {
                profile.push(item);
            }
            guard += 1;
            if guard > 100_000 {
                break;
            }
        }
        ids.push(rec.inject_user(&profile));
    }
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_recsys::DatasetBuilder;

    /// Fake recommender: recommends items in descending popularity, where
    /// popularity is the number of injected users containing the item.
    struct PopRec {
        n_items: usize,
        counts: Vec<usize>,
        n_users: usize,
    }

    impl PopRec {
        fn new(n_items: usize) -> Self {
            Self { n_items, counts: vec![0; n_items], n_users: 0 }
        }
    }

    impl BlackBoxRecommender for PopRec {
        fn top_k(&self, _user: UserId, k: usize) -> Vec<ItemId> {
            let mut idx: Vec<usize> = (0..self.n_items).collect();
            idx.sort_by_key(|&v| std::cmp::Reverse(self.counts[v]));
            idx.into_iter().take(k).map(|v| ItemId(v as u32)).collect()
        }
        fn inject_user(&mut self, profile: &[ItemId]) -> UserId {
            for &v in profile {
                self.counts[v.idx()] += 1;
            }
            let id = UserId(self.n_users as u32);
            self.n_users += 1;
            id
        }
        fn catalog_size(&self) -> usize {
            self.n_items
        }
    }

    #[test]
    fn reward_tracks_promotion() {
        let mut rec = PopRec::new(50);
        // Make items 0..5 popular baseline.
        for v in 0..5u32 {
            for _ in 0..10 {
                rec.inject_user(&[ItemId(v)]);
            }
        }
        let pretend = vec![UserId(0), UserId(1)];
        let target = ItemId(40);
        let mut env = AttackEnvironment::new(rec, pretend, target, 3, 30);
        assert_eq!(env.query_reward(), 0.0);
        // Push the target into the top 3 by injecting it repeatedly.
        for _ in 0..20 {
            env.inject(&[target]);
        }
        assert_eq!(env.query_reward(), 1.0);
        assert_eq!(env.injections(), 20);
        assert!(env.queries() >= 2);
    }

    #[test]
    #[should_panic(expected = "budget exhausted")]
    fn budget_is_enforced() {
        let rec = PopRec::new(10);
        let mut env = AttackEnvironment::new(rec, vec![UserId(0)], ItemId(0), 3, 2);
        env.inject(&[ItemId(1)]);
        env.inject(&[ItemId(1)]);
        assert!(env.exhausted());
        env.inject(&[ItemId(1)]);
    }

    #[test]
    fn pretend_users_have_requested_profiles() {
        let mut b = DatasetBuilder::new(20);
        for u in 0..10u32 {
            b.user(&[ItemId(u % 3)]); // items 0..3 popular
        }
        let visible = b.build();
        let mut rec = PopRec::new(20);
        let mut rng = rand::rngs::mock::StepRng::new(42, 0x9E3779B97F4A7C15);
        let ids = establish_pretend_users(&mut rec, &visible, 5, 4, &mut rng);
        assert_eq!(ids.len(), 5);
        assert_eq!(rec.n_users, 5);
        // Each pretend user contributed 4 interactions.
        let total: usize = rec.counts.iter().sum();
        assert_eq!(total, 20);
    }

    #[test]
    fn remaining_budget_counts_down() {
        let rec = PopRec::new(10);
        let mut env = AttackEnvironment::new(rec, vec![UserId(0)], ItemId(0), 3, 5);
        assert_eq!(env.remaining_budget(), 5);
        env.inject(&[ItemId(2)]);
        assert_eq!(env.remaining_budget(), 4);
        assert!(!env.exhausted());
    }
}
