//! The black-box attacking environment (§4.2, §4.5).
//!
//! Wraps the target recommender behind the query/inject interface, owns the
//! attacker's pretend users, and computes the Eq. 1 reward:
//!
//! ```text
//! r(s_t, a_t) = (1/|U^A*|) Σ_i HR(u^A_{i*}, v*, k)
//! ```
//!
//! The environment speaks the *fallible* platform surface
//! ([`FallibleBlackBox`]): calls can be rate-limited, time out, come back
//! truncated, or cost the attacker an account. Resilience is configured via
//! [`ResilienceConfig`] — per-call retries in logical time, a minimum
//! quorum for partial rewards, and automatic re-establishment of suspended
//! pretend users. Reliable simulation targets (any
//! [`BlackBoxRecommender`](ca_recsys::BlackBoxRecommender)) fit through the
//! blanket impl and behave exactly as in the original infallible API.

use crate::retry::ResilienceConfig;
use ca_recsys::blackbox::MeteredFallible;
use ca_recsys::{Dataset, FallibleBlackBox, ItemId, RecError, SplitMix64, UserId};
use rand::Rng;

/// One reward measurement against a possibly-failing platform.
#[derive(Clone, Debug, PartialEq)]
pub enum RewardSample {
    /// Enough pretend users answered; Eq. 1 averaged over the answered
    /// subset.
    Observed {
        /// Hit ratio over the answered pretend users.
        reward: f32,
        /// Pretend users whose query (or retry) succeeded this round.
        answered: usize,
        /// Total pretend users.
        total: usize,
    },
    /// Fewer than the configured quorum answered. The sample carries no
    /// reward — using the few answers that got through would bias Eq. 1
    /// toward whichever accounts the platform happened to serve.
    Skipped {
        /// Pretend users that answered (below quorum).
        answered: usize,
        /// Total pretend users.
        total: usize,
    },
}

impl RewardSample {
    /// The observed reward, if the round met quorum.
    pub fn reward(&self) -> Option<f32> {
        match self {
            RewardSample::Observed { reward, .. } => Some(*reward),
            RewardSample::Skipped { .. } => None,
        }
    }
}

/// The attacker's handle on the target platform for one attack run.
pub struct AttackEnvironment<R: FallibleBlackBox> {
    rec: MeteredFallible<R>,
    pretend: Vec<UserId>,
    /// Stored pretend profiles, when known — the raw material for
    /// re-establishing a suspended account. `None` for accounts the
    /// environment was only handed ids for.
    pretend_profiles: Vec<Option<Vec<ItemId>>>,
    target: ItemId,
    reward_k: usize,
    injected: usize,
    budget: usize,
    resilience: ResilienceConfig,
    rng: SplitMix64,
    reestablished: u64,
    skipped_rewards: usize,
}

impl<R: FallibleBlackBox> AttackEnvironment<R> {
    /// Wraps a recommender for an attack on `target`. `pretend` are the
    /// attacker-controlled accounts established beforehand (see
    /// [`establish_pretend_users`]).
    pub fn new(
        rec: R,
        pretend: Vec<UserId>,
        target: ItemId,
        reward_k: usize,
        budget: usize,
    ) -> Self {
        assert!(!pretend.is_empty(), "need at least one pretend user");
        let resilience = ResilienceConfig::default();
        let rng = SplitMix64::new(resilience.seed);
        let n = pretend.len();
        Self {
            rec: MeteredFallible::new(rec),
            pretend,
            pretend_profiles: vec![None; n],
            target,
            reward_k,
            injected: 0,
            budget,
            resilience,
            rng,
            reestablished: 0,
            skipped_rewards: 0,
        }
    }

    /// Sets the resilience behavior (retries, quorum, re-establishment).
    ///
    /// # Panics
    /// Panics on an invalid [`ResilienceConfig`].
    pub fn with_resilience(mut self, cfg: ResilienceConfig) -> Self {
        cfg.validate().unwrap_or_else(|e| panic!("invalid resilience config: {e}"));
        self.rng = SplitMix64::new(cfg.seed);
        self.resilience = cfg;
        self
    }

    /// Records the pretend users' profiles so suspended accounts can be
    /// re-established. `profiles[i]` must be the profile of `pretend[i]`.
    pub fn with_pretend_profiles(mut self, profiles: Vec<Vec<ItemId>>) -> Self {
        assert_eq!(profiles.len(), self.pretend.len(), "one stored profile per pretend user");
        self.pretend_profiles = profiles.into_iter().map(Some).collect();
        self
    }

    /// The item under promotion.
    pub fn target(&self) -> ItemId {
        self.target
    }

    /// Remaining injection budget (0 when exhausted; never underflows even
    /// if the environment was constructed mid-campaign with
    /// `injected > budget`).
    pub fn remaining_budget(&self) -> usize {
        self.budget.saturating_sub(self.injected)
    }

    /// Whether the budget is exhausted.
    pub fn exhausted(&self) -> bool {
        self.injected >= self.budget
    }

    /// Profiles injected so far in this run (successful crafted-profile
    /// injections; account re-establishment is not budget, see
    /// [`AttackEnvironment::reestablished`]).
    pub fn injections(&self) -> usize {
        self.injected
    }

    /// Top-k query *attempts* issued so far — every retry is charged, as a
    /// real platform would charge it.
    pub fn queries(&self) -> u64 {
        self.rec.queries()
    }

    /// Query attempts that came back as errors.
    pub fn failed_queries(&self) -> u64 {
        self.rec.failed_queries()
    }

    /// Injection attempts (successful + failed), including pretend-user
    /// re-establishment.
    pub fn inject_attempts(&self) -> u64 {
        self.rec.inject_attempts()
    }

    /// Suspended pretend users re-established so far.
    pub fn reestablished(&self) -> u64 {
        self.reestablished
    }

    /// Reward rounds skipped for lack of quorum so far.
    pub fn skipped_rewards(&self) -> usize {
        self.skipped_rewards
    }

    /// Injects one crafted profile, retrying retryable platform errors per
    /// the resilience config (each retry spends logical time via
    /// [`FallibleBlackBox::wait`] and is charged to the metered attempt
    /// count). The budget is consumed only by a *successful* injection.
    ///
    /// # Panics
    /// Panics if the budget is exhausted (the caller must check the
    /// terminal condition).
    pub fn try_inject(&mut self, profile: &[ItemId]) -> Result<UserId, RecError> {
        assert!(!self.exhausted(), "injection budget exhausted");
        let retry = self.resilience.retry;
        let r = retry.run(&mut self.rec, &mut self.rng, |p| p.try_inject_user(profile));
        if r.is_ok() {
            self.injected += 1;
        }
        r
    }

    /// Infallible injection, for reliable simulation targets (the original
    /// paper setting).
    ///
    /// # Panics
    /// Panics if the budget is exhausted, or if the platform actually fails
    /// (use [`AttackEnvironment::try_inject`] against an unreliable one).
    pub fn inject(&mut self, profile: &[ItemId]) -> UserId {
        self.try_inject(profile).unwrap_or_else(|e| {
            panic!("platform error on infallible inject path: {e} (use try_inject)")
        })
    }

    /// Queries the pretend users' Top-k lists and returns the Eq. 1 reward
    /// over the *answered* subset — or [`RewardSample::Skipped`] when fewer
    /// than the quorum answered.
    ///
    /// The round's first attempts go out as **one batched query**
    /// ([`FallibleBlackBox::try_top_k_batch`]) — an engine-backed target
    /// serves all pretend users from a single scoring pass, while metering
    /// still charges one query attempt per user, so the attacker's §4.5
    /// cost accounting is unchanged. Per entry of the batch: retryable
    /// errors fall back to per-user retries continuing the same backoff
    /// schedule ([`RetryPolicy::run_after`](crate::retry::RetryPolicy));
    /// a truncated list is treated as answered (the visible prefix is
    /// genuine data — if the target was cut off, that is indistinguishable
    /// from a miss at this `k`, and scored as one); a suspension marks the
    /// account lost and, when enabled and the profile is stored,
    /// re-establishes it (the fresh account answers from the next round
    /// on).
    pub fn try_query_reward(&mut self) -> RewardSample {
        let total = self.pretend.len();
        let mut hits = 0usize;
        let mut answered = 0usize;
        let retry = self.resilience.retry;
        let k = self.reward_k;
        let users = self.pretend.clone();
        let first = self.rec.try_top_k_batch(&users, k);
        for (i, outcome) in first.into_iter().enumerate() {
            let resolved = match outcome {
                Err(e) if e.is_retryable() => {
                    let u = self.pretend[i];
                    retry.run_after(e, &mut self.rec, &mut self.rng, |p| p.try_top_k(u, k))
                }
                r => r,
            };
            match resolved {
                Ok(list) => {
                    answered += 1;
                    if list.contains(&self.target) {
                        hits += 1;
                    }
                }
                Err(RecError::TruncatedList { items }) => {
                    answered += 1;
                    if items.contains(&self.target) {
                        hits += 1;
                    }
                }
                Err(RecError::AccountSuspended) => self.reestablish_pretend(i),
                Err(_) => {} // unanswered after retries
            }
        }
        let quorum = ((self.resilience.min_quorum * total as f64).ceil() as usize).max(1);
        if answered >= quorum {
            RewardSample::Observed { reward: hits as f32 / answered as f32, answered, total }
        } else {
            self.skipped_rewards += 1;
            RewardSample::Skipped { answered, total }
        }
    }

    /// Infallible reward query, for reliable simulation targets.
    ///
    /// # Panics
    /// Panics if the round misses quorum (impossible on a reliable
    /// platform; use [`AttackEnvironment::try_query_reward`] otherwise).
    pub fn query_reward(&mut self) -> f32 {
        match self.try_query_reward() {
            RewardSample::Observed { reward, .. } => reward,
            RewardSample::Skipped { answered, total } => panic!(
                "reward round missed quorum ({answered}/{total} answered) on the infallible \
                 path (use try_query_reward)"
            ),
        }
    }

    /// Replaces a suspended pretend user with a fresh account carrying the
    /// same stored profile. Costs metered injection attempts but not the
    /// crafted-profile budget Δ. No-op when re-establishment is disabled or
    /// the profile is unknown.
    fn reestablish_pretend(&mut self, i: usize) {
        if !self.resilience.reestablish {
            return;
        }
        let Some(profile) = self.pretend_profiles[i].clone() else { return };
        let retry = self.resilience.retry;
        if let Ok(id) = retry.run(&mut self.rec, &mut self.rng, |p| p.try_inject_user(&profile)) {
            self.pretend[i] = id;
            self.reestablished += 1;
        }
    }

    /// Consumes the environment, returning the (polluted) recommender for
    /// owner-side evaluation.
    pub fn into_recommender(self) -> R {
        self.rec.into_inner()
    }

    /// Owner-side view of the recommender (not part of the attacker
    /// surface; used by the experiment harness for final metrics).
    pub fn recommender(&self) -> &R {
        self.rec.inner()
    }
}

/// Plans `n` plausible mainstream pretend profiles without touching the
/// platform: `profile_len` items sampled by popularity from the public
/// catalog (an attacker can see what is popular by browsing), ordered
/// arbitrarily.
pub fn plan_pretend_profiles(
    visible_popularity: &Dataset,
    n: usize,
    profile_len: usize,
    rng: &mut impl Rng,
) -> Vec<Vec<ItemId>> {
    let n_items = visible_popularity.n_items();
    assert!(profile_len <= n_items, "pretend profile longer than catalog");
    // Popularity-proportional sampling with add-one smoothing.
    let mut cdf = Vec::with_capacity(n_items);
    let mut acc = 0.0f64;
    for v in 0..n_items {
        acc += 1.0 + visible_popularity.item_popularity(ItemId(v as u32)) as f64;
        cdf.push(acc);
    }
    let total = acc;
    let mut profiles = Vec::with_capacity(n);
    for _ in 0..n {
        let mut profile: Vec<ItemId> = Vec::with_capacity(profile_len);
        let mut guard = 0u32;
        while profile.len() < profile_len {
            let u: f64 = rng.gen::<f64>() * total;
            let pos = cdf.partition_point(|&c| c < u).min(n_items - 1);
            let item = ItemId(pos as u32);
            if !profile.contains(&item) {
                profile.push(item);
            }
            guard += 1;
            if guard > 100_000 {
                break;
            }
        }
        profiles.push(profile);
    }
    profiles
}

/// Creates `n` pretend users on the platform before the attack starts.
///
/// The paper assumes "a set of pretend users that the attacker had already
/// established in the target domain". Profiles come from
/// [`plan_pretend_profiles`]. Returns their account ids.
pub fn establish_pretend_users<R: ca_recsys::BlackBoxRecommender>(
    rec: &mut R,
    visible_popularity: &Dataset,
    n: usize,
    profile_len: usize,
    rng: &mut impl Rng,
) -> Vec<UserId> {
    plan_pretend_profiles(visible_popularity, n, profile_len, rng)
        .iter()
        .map(|p| rec.inject_user(p))
        .collect()
}

/// Fallible pretend-user establishment against an unreliable platform:
/// each account creation is retried per `resilience`; an account that
/// still cannot be created fails the whole establishment (the attack
/// cannot start without its observation posts).
pub fn try_establish_pretend_users<B: FallibleBlackBox>(
    rec: &mut B,
    profiles: &[Vec<ItemId>],
    resilience: &ResilienceConfig,
    rng: &mut SplitMix64,
) -> Result<Vec<UserId>, RecError> {
    let mut ids = Vec::with_capacity(profiles.len());
    for p in profiles {
        ids.push(resilience.retry.run(rec, rng, |r| r.try_inject_user(p))?);
    }
    Ok(ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::retry::RetryPolicy;
    use ca_recsys::{
        BlackBoxRecommender, DatasetBuilder, FaultConfig, FaultyRecommender, RateLimit,
    };

    /// Fake recommender: recommends items in descending popularity, where
    /// popularity is the number of injected users containing the item.
    struct PopRec {
        n_items: usize,
        counts: Vec<usize>,
        n_users: usize,
    }

    impl PopRec {
        fn new(n_items: usize) -> Self {
            Self { n_items, counts: vec![0; n_items], n_users: 0 }
        }
    }

    impl BlackBoxRecommender for PopRec {
        fn top_k(&self, _user: UserId, k: usize) -> Vec<ItemId> {
            let mut idx: Vec<usize> = (0..self.n_items).collect();
            idx.sort_by_key(|&v| std::cmp::Reverse(self.counts[v]));
            idx.into_iter().take(k).map(|v| ItemId(v as u32)).collect()
        }
        fn inject_user(&mut self, profile: &[ItemId]) -> UserId {
            for &v in profile {
                self.counts[v.idx()] += 1;
            }
            let id = UserId(self.n_users as u32);
            self.n_users += 1;
            id
        }
        fn catalog_size(&self) -> usize {
            self.n_items
        }
    }

    #[test]
    fn reward_tracks_promotion() {
        let mut rec = PopRec::new(50);
        // Make items 0..5 popular baseline.
        for v in 0..5u32 {
            for _ in 0..10 {
                rec.inject_user(&[ItemId(v)]);
            }
        }
        let pretend = vec![UserId(0), UserId(1)];
        let target = ItemId(40);
        let mut env = AttackEnvironment::new(rec, pretend, target, 3, 30);
        assert_eq!(env.query_reward(), 0.0);
        // Push the target into the top 3 by injecting it repeatedly.
        for _ in 0..20 {
            env.inject(&[target]);
        }
        assert_eq!(env.query_reward(), 1.0);
        assert_eq!(env.injections(), 20);
        assert!(env.queries() >= 2);
    }

    #[test]
    #[should_panic(expected = "budget exhausted")]
    fn budget_is_enforced() {
        let rec = PopRec::new(10);
        let mut env = AttackEnvironment::new(rec, vec![UserId(0)], ItemId(0), 3, 2);
        env.inject(&[ItemId(1)]);
        env.inject(&[ItemId(1)]);
        assert!(env.exhausted());
        env.inject(&[ItemId(1)]);
    }

    #[test]
    fn pretend_users_have_requested_profiles() {
        let mut b = DatasetBuilder::new(20);
        for u in 0..10u32 {
            b.user(&[ItemId(u % 3)]); // items 0..3 popular
        }
        let visible = b.build();
        let mut rec = PopRec::new(20);
        let mut rng = rand::rngs::mock::StepRng::new(42, 0x9E3779B97F4A7C15);
        let ids = establish_pretend_users(&mut rec, &visible, 5, 4, &mut rng);
        assert_eq!(ids.len(), 5);
        assert_eq!(rec.n_users, 5);
        // Each pretend user contributed 4 interactions.
        let total: usize = rec.counts.iter().sum();
        assert_eq!(total, 20);
    }

    #[test]
    fn remaining_budget_counts_down() {
        let rec = PopRec::new(10);
        let mut env = AttackEnvironment::new(rec, vec![UserId(0)], ItemId(0), 3, 5);
        assert_eq!(env.remaining_budget(), 5);
        env.inject(&[ItemId(2)]);
        assert_eq!(env.remaining_budget(), 4);
        assert!(!env.exhausted());
    }

    /// Regression test: `remaining_budget` used to compute
    /// `budget - injected` with a plain subtraction, which underflows when
    /// an environment is reconstructed mid-campaign with more injections on
    /// record than its (reduced) budget.
    #[test]
    fn remaining_budget_saturates_when_over_budget() {
        let rec = PopRec::new(10);
        let mut env = AttackEnvironment::new(rec, vec![UserId(0)], ItemId(0), 3, 2);
        env.injected = 7; // resumed from a checkpoint taken under a larger budget
        assert_eq!(env.remaining_budget(), 0);
        assert!(env.exhausted());
    }

    #[test]
    fn partial_reward_averages_over_answered_subset() {
        // Platform: pretend user 0's queries always time out; users 1 and 2
        // answer. Target is in everyone's list, so reward over the answered
        // subset is 1.0 (not 2/3).
        struct OneUserDown;
        impl FallibleBlackBox for OneUserDown {
            fn try_top_k(&mut self, u: UserId, k: usize) -> Result<Vec<ItemId>, RecError> {
                if u == UserId(0) {
                    Err(RecError::Timeout)
                } else {
                    Ok(vec![ItemId(4); k])
                }
            }
            fn try_inject_user(&mut self, _p: &[ItemId]) -> Result<UserId, RecError> {
                Ok(UserId(9))
            }
            fn catalog_size(&self) -> usize {
                10
            }
        }
        let resilience = ResilienceConfig {
            retry: RetryPolicy {
                max_retries: 1,
                base_delay: 1,
                max_delay: 2,
                jitter: 0.0,
                max_total_wait: 64,
            },
            min_quorum: 0.5,
            reestablish: false,
            seed: 1,
        };
        let mut env = AttackEnvironment::new(
            OneUserDown,
            vec![UserId(0), UserId(1), UserId(2)],
            ItemId(4),
            3,
            10,
        )
        .with_resilience(resilience);
        let sample = env.try_query_reward();
        assert_eq!(sample, RewardSample::Observed { reward: 1.0, answered: 2, total: 3 });
        // User 0 was retried once: 2 attempts for it + 1 each for the rest.
        assert_eq!(env.queries(), 4);
        assert_eq!(env.failed_queries(), 2);
    }

    #[test]
    fn below_quorum_rounds_are_skipped_not_biased() {
        struct AllDown;
        impl FallibleBlackBox for AllDown {
            fn try_top_k(&mut self, _u: UserId, _k: usize) -> Result<Vec<ItemId>, RecError> {
                Err(RecError::ServiceUnavailable)
            }
            fn try_inject_user(&mut self, _p: &[ItemId]) -> Result<UserId, RecError> {
                Err(RecError::ServiceUnavailable)
            }
            fn catalog_size(&self) -> usize {
                10
            }
        }
        let resilience = ResilienceConfig {
            retry: RetryPolicy::none(),
            min_quorum: 0.5,
            reestablish: false,
            seed: 1,
        };
        let mut env = AttackEnvironment::new(AllDown, vec![UserId(0), UserId(1)], ItemId(4), 3, 10)
            .with_resilience(resilience);
        let sample = env.try_query_reward();
        assert_eq!(sample, RewardSample::Skipped { answered: 0, total: 2 });
        assert_eq!(sample.reward(), None);
        assert_eq!(env.skipped_rewards(), 1);
    }

    #[test]
    fn truncated_lists_still_count_as_answers() {
        let faulty = FaultyRecommender::new(
            PopRec::new(30),
            FaultConfig { truncate_prob: 1.0, truncate_keep: 0.4, ..FaultConfig::default() },
        );
        let mut env =
            AttackEnvironment::new(faulty, vec![UserId(0)], ItemId(2), 10, 10).with_resilience(
                ResilienceConfig { retry: RetryPolicy::none(), ..ResilienceConfig::default() },
            );
        // Target item 2 is within the kept prefix (popularity order 0,1,2…
        // with no injections → ties broken by index; keep = 4 of 10).
        let sample = env.try_query_reward();
        assert_eq!(sample, RewardSample::Observed { reward: 1.0, answered: 1, total: 1 });
    }

    #[test]
    fn suspended_pretend_users_are_reestablished_from_stored_profiles() {
        // Suspend on the first query round (prob 1), then never again.
        struct SuspendOnce {
            inner: PopRec,
            suspended: Vec<UserId>,
            armed: bool,
        }
        impl FallibleBlackBox for SuspendOnce {
            fn try_top_k(&mut self, u: UserId, k: usize) -> Result<Vec<ItemId>, RecError> {
                if self.suspended.contains(&u) {
                    return Err(RecError::AccountSuspended);
                }
                if self.armed {
                    self.armed = false;
                    self.suspended.push(u);
                    return Err(RecError::AccountSuspended);
                }
                Ok(self.inner.top_k(u, k))
            }
            fn try_inject_user(&mut self, p: &[ItemId]) -> Result<UserId, RecError> {
                Ok(self.inner.inject_user(p))
            }
            fn catalog_size(&self) -> usize {
                BlackBoxRecommender::catalog_size(&self.inner)
            }
        }
        let mut inner = PopRec::new(10);
        let u0 = inner.inject_user(&[ItemId(1), ItemId(2)]);
        let platform = SuspendOnce { inner, suspended: vec![], armed: true };
        let mut env = AttackEnvironment::new(platform, vec![u0], ItemId(1), 5, 10)
            .with_pretend_profiles(vec![vec![ItemId(1), ItemId(2)]]);

        // Round 1: the only pretend user gets suspended → below quorum,
        // but a replacement account with the same profile is created.
        let s1 = env.try_query_reward();
        assert_eq!(s1, RewardSample::Skipped { answered: 0, total: 1 });
        assert_eq!(env.reestablished(), 1);

        // Round 2: the replacement answers; its profile keeps item 1 and 2
        // popular, so the target is in its Top-5.
        let s2 = env.try_query_reward();
        assert_eq!(s2, RewardSample::Observed { reward: 1.0, answered: 1, total: 1 });
        // Re-establishment was metered but did not consume attack budget.
        assert_eq!(env.inject_attempts(), 1);
        assert_eq!(env.injections(), 0);
        assert_eq!(env.remaining_budget(), 10);
    }

    #[test]
    fn retries_ride_the_rate_limiter_via_logical_waits() {
        // 2 calls per 8-tick window: querying 3 pretend users trips the
        // limiter, and the retry policy's backoff waits into the next
        // window where the query succeeds.
        let faulty = FaultyRecommender::new(
            PopRec::new(10),
            FaultConfig {
                rate_limit: Some(RateLimit { window: 8, max_calls: 2 }),
                ..FaultConfig::default()
            },
        );
        let resilience = ResilienceConfig {
            retry: RetryPolicy {
                max_retries: 3,
                base_delay: 1,
                max_delay: 16,
                jitter: 0.0,
                max_total_wait: 256,
            },
            min_quorum: 1.0,
            reestablish: false,
            seed: 5,
        };
        let mut env =
            AttackEnvironment::new(faulty, vec![UserId(0), UserId(1), UserId(2)], ItemId(0), 3, 10)
                .with_resilience(resilience);
        let sample = env.try_query_reward();
        assert_eq!(sample, RewardSample::Observed { reward: 1.0, answered: 3, total: 3 });
        assert!(env.failed_queries() >= 1, "the limiter must have fired");
        assert_eq!(env.queries() - env.failed_queries(), 3, "all three eventually answered");
    }
}
