//! The CopyAttack agent: selection + crafting + injection/query loop with
//! REINFORCE training (§4), including the CopyAttack−Masking and
//! CopyAttack−Length ablations.

use crate::arena::AttackError;
use crate::config::AttackConfig;
use crate::crafting::{clip_around_target, CraftingPolicy, CraftingSample};
use crate::env::AttackEnvironment;
use crate::env::RewardSample;
use crate::reinforce::{discounted_returns, Baseline};
use crate::selection::{HierarchicalPolicy, SelectionSample};
use crate::source::SourceDomain;
use ca_cluster::{ClusterTree, TreeMask};
use ca_nn::GradClip;
use ca_recsys::{FallibleBlackBox, ItemId, RecError, UserId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which CopyAttack components are enabled (for the paper's ablations).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CopyAttackVariant {
    /// Use the per-target-item masking mechanism (§4.3.2).
    pub masking: bool,
    /// Use the profile-crafting policy (§4.4).
    pub crafting: bool,
}

impl CopyAttackVariant {
    /// The full framework.
    pub fn full() -> Self {
        Self { masking: true, crafting: true }
    }

    /// CopyAttack−Masking: any source user may be selected. The paper also
    /// removes crafting here "since the attack has larger probability to
    /// select the user profile without the target items".
    pub fn no_masking() -> Self {
        Self { masking: false, crafting: false }
    }

    /// CopyAttack−Length: masking on, crafting removed (raw profiles are
    /// injected).
    pub fn no_crafting() -> Self {
        Self { masking: true, crafting: false }
    }
}

/// Result of one attack episode (training or final execution).
#[derive(Clone, Debug)]
pub struct AttackOutcome {
    /// The Eq. 1 reward after the last query (fraction of pretend users
    /// with the target item in their Top-k list). On an unreliable
    /// platform this is the last *observed* (quorum-meeting) reward.
    pub final_reward: f32,
    /// Profiles injected.
    pub injections: usize,
    /// Top-k queries issued (attempts — failed calls and retries included).
    pub queries: u64,
    /// Mean length of the injected (crafted) profiles — Table 2's
    /// "# Average Items per User Profile".
    pub avg_items_per_profile: f32,
    /// The source users that were copied.
    pub selected_users: Vec<UserId>,
    /// Injection attempts in this episode that failed even after retries
    /// (the timestep is spent, the budget is not).
    pub failed_injections: usize,
    /// Reward rounds in this episode skipped for lack of quorum.
    pub skipped_rewards: usize,
    /// Set when the platform defeated the *whole* episode: at least one
    /// injection was attempted and none succeeded. Carries the last
    /// platform error; campaigns use it to checkpoint and stop.
    pub aborted: Option<RecError>,
}

/// Builds the selection mask for `target_src`.
///
/// Masking is goal-dependent: promotion needs profiles *containing* the
/// target item (they are the only ones that can move its aggregates);
/// demotion inverts the predicate — injecting carriers would raise the
/// item's interaction count and promote it, so the agent selects among
/// non-carriers and learns which of them lift competing items past the
/// target.
fn build_mask(
    variant: CopyAttackVariant,
    goal: crate::config::AttackGoal,
    tree: &ClusterTree,
    src: &SourceDomain<'_>,
    target_src: ItemId,
) -> Result<TreeMask, AttackError> {
    let mask = if variant.masking {
        match goal {
            crate::config::AttackGoal::Promote => {
                TreeMask::for_predicate(tree, |u| src.has_item(u, target_src))
            }
            crate::config::AttackGoal::Demote => {
                TreeMask::for_predicate(tree, |u| !src.has_item(u, target_src))
            }
        }
    } else {
        TreeMask::allow_all(tree)
    };
    if !mask.any_allowed() {
        return Err(AttackError::NoSelectableUser { target_src, goal });
    }
    Ok(mask)
}

/// The CopyAttack agent for one target item.
///
/// `Clone` snapshots the complete mutable state — policy networks, RNN,
/// crafting policy, baseline, mask, and RNG — which is what campaign
/// checkpointing is built on: a cloned agent resumed later produces the
/// exact same trajectory as the original would have.
#[derive(Clone)]
pub struct CopyAttackAgent {
    cfg: AttackConfig,
    variant: CopyAttackVariant,
    policy: HierarchicalPolicy,
    crafting: CraftingPolicy,
    baseline: Baseline,
    mask: TreeMask,
    target_src: ItemId,
    rng: StdRng,
    episode_rewards: Vec<f32>,
}

impl CopyAttackAgent {
    /// Builds the agent: clustering tree over source-user MF embeddings,
    /// per-node policy networks, crafting policy, and the target-item mask.
    ///
    /// Fails on an invalid config or when masking leaves no selectable
    /// user (the target item must exist in the source domain).
    pub fn try_new(
        cfg: AttackConfig,
        variant: CopyAttackVariant,
        src: &SourceDomain<'_>,
        target_src: ItemId,
    ) -> Result<Self, AttackError> {
        cfg.validate().map_err(AttackError::InvalidConfig)?;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let tree = ClusterTree::build_with_depth(&src.user_embeddings(), cfg.tree_depth, &mut rng);
        let policy =
            HierarchicalPolicy::with_encoder(&mut rng, tree, src.dim(), cfg.hidden, cfg.encoder);
        let crafting = CraftingPolicy::new(&mut rng, src.dim(), cfg.hidden, cfg.clip_fractions());
        let mask = build_mask(variant, cfg.goal, policy.tree(), src, target_src)?;
        let baseline = Baseline::new(cfg.budget);
        Ok(Self {
            baseline,
            mask,
            target_src,
            rng,
            episode_rewards: Vec::new(),
            policy,
            crafting,
            cfg,
            variant,
        })
    }

    /// Panicking wrapper over [`CopyAttackAgent::try_new`] for contexts
    /// where an invalid setup is a programming error.
    ///
    /// # Panics
    /// Panics on an invalid config or when masking leaves no selectable
    /// user (the target item must exist in the source domain).
    pub fn new(
        cfg: AttackConfig,
        variant: CopyAttackVariant,
        src: &SourceDomain<'_>,
        target_src: ItemId,
    ) -> Self {
        Self::try_new(cfg, variant, src, target_src).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The clustering tree (for inspection).
    pub fn tree(&self) -> &ClusterTree {
        self.policy.tree()
    }

    /// The source-domain id of the item currently under attack.
    pub fn target(&self) -> ItemId {
        self.target_src
    }

    /// Switches the agent to a new target item, rebuilding the mask while
    /// *keeping* the trained policy networks, RNN, crafting policy, and
    /// baseline. Because the state contains the target item's embedding
    /// `q_{v*}`, a policy trained on several targets can generalize to
    /// items it never attacked — see [`crate::campaign`].
    ///
    /// Fails (leaving the agent on its previous target) when the new
    /// target has no selectable user under the mask.
    pub fn try_retarget(
        &mut self,
        src: &SourceDomain<'_>,
        target_src: ItemId,
    ) -> Result<(), AttackError> {
        let mask = build_mask(self.variant, self.cfg.goal, self.policy.tree(), src, target_src)?;
        self.mask = mask;
        self.target_src = target_src;
        Ok(())
    }

    /// Panicking wrapper over [`CopyAttackAgent::try_retarget`].
    ///
    /// # Panics
    /// Panics when the new target has no selectable user under the mask.
    pub fn retarget(&mut self, src: &SourceDomain<'_>, target_src: ItemId) {
        self.try_retarget(src, target_src).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Final rewards of every training episode so far.
    pub fn episode_rewards(&self) -> &[f32] {
        &self.episode_rewards
    }

    /// The agent's configuration.
    pub fn config(&self) -> &AttackConfig {
        &self.cfg
    }

    /// Runs a single *learning* episode against `env` (used by
    /// [`crate::campaign::Campaign`] to interleave targets).
    pub fn train_one_episode<R: FallibleBlackBox>(
        &mut self,
        src: &SourceDomain<'_>,
        env: &mut AttackEnvironment<R>,
    ) -> AttackOutcome {
        let outcome = self.episode(src, env, true);
        self.episode_rewards.push(outcome.final_reward);
        outcome
    }

    /// Trains for `cfg.episodes` episodes, each against a fresh environment
    /// produced by `make_env` (a clone of the clean target system). Returns
    /// the per-episode final rewards (the learning curve).
    pub fn train<R: FallibleBlackBox>(
        &mut self,
        src: &SourceDomain<'_>,
        mut make_env: impl FnMut() -> AttackEnvironment<R>,
    ) -> Vec<f32> {
        let episodes = self.cfg.episodes;
        let mut curve = Vec::with_capacity(episodes);
        for _ in 0..episodes {
            let mut env = make_env();
            let outcome = self.episode(src, &mut env, true);
            curve.push(outcome.final_reward);
            self.episode_rewards.push(outcome.final_reward);
        }
        curve
    }

    /// Runs one attack episode with the current policy, updating nothing.
    /// Use after [`CopyAttackAgent::train`] for the evaluation run whose
    /// polluted system is measured.
    pub fn execute<R: FallibleBlackBox>(
        &mut self,
        src: &SourceDomain<'_>,
        env: &mut AttackEnvironment<R>,
    ) -> AttackOutcome {
        self.episode(src, env, false)
    }

    /// One episode of the MDP: select → craft → inject → (periodically)
    /// query.
    ///
    /// Resilient against a flaky platform: an injection that still fails
    /// after the environment's retries spends the timestep (reward 0) but
    /// not the budget; a reward round that misses quorum is treated like a
    /// non-query step instead of feeding a biased sample to REINFORCE. On a
    /// reliable platform none of these paths trigger and the episode is
    /// byte-identical to the original infallible loop.
    fn episode<R: FallibleBlackBox>(
        &mut self,
        src: &SourceDomain<'_>,
        env: &mut AttackEnvironment<R>,
        learn: bool,
    ) -> AttackOutcome {
        let budget = self.cfg.budget;
        let q_target: Vec<f32> = src.item_embedding(self.target_src).to_vec();
        let mut selected: Vec<UserId> = Vec::with_capacity(budget);
        let mut sel_samples: Vec<Option<SelectionSample>> = Vec::with_capacity(budget);
        let mut craft_samples: Vec<Option<CraftingSample>> = Vec::with_capacity(budget);
        let mut rewards: Vec<f32> = Vec::with_capacity(budget);
        let mut total_items = 0usize;
        let mut last_reward = 0.0f32;
        let mut failed_injections = 0usize;
        let mut landed_injections = 0usize;
        let mut skipped_rewards = 0usize;
        let mut last_error: Option<RecError> = None;

        for t in 0..budget {
            if env.exhausted() {
                break;
            }
            // --- selection -------------------------------------------------
            let (user, sample) = if t == 0 {
                // The first action is seeded at random (§4.3.3): the RNN has
                // nothing to encode yet.
                (self.policy.random_allowed_user(&self.mask, &mut self.rng), None)
            } else {
                let prev: Vec<&[f32]> = selected.iter().map(|&u| src.user_embedding(u)).collect();
                let s = self.policy.select(&q_target, &prev, &self.mask, &mut self.rng);
                (s.user, Some(s))
            };
            selected.push(user);
            sel_samples.push(sample);

            // --- crafting --------------------------------------------------
            let raw_profile = src.data.profile(user);
            let (crafted_src, craft_sample) =
                if self.variant.crafting && src.has_item(user, self.target_src) {
                    let (fraction, cs) =
                        self.crafting.sample(src.user_embedding(user), &q_target, &mut self.rng);
                    (clip_around_target(raw_profile, self.target_src, fraction), Some(cs))
                } else {
                    (raw_profile.to_vec(), None)
                };
            craft_samples.push(craft_sample);

            // --- injection & query ----------------------------------------
            let profile_tgt = src.translate(&crafted_src);
            match env.try_inject(&profile_tgt) {
                Ok(_) => {
                    total_items += profile_tgt.len();
                    landed_injections += 1;
                }
                Err(e) => {
                    failed_injections += 1;
                    last_error = Some(e);
                    rewards.push(0.0);
                    continue;
                }
            }
            let reward = if (t + 1) % self.cfg.query_every == 0 || t + 1 == budget {
                match env.try_query_reward() {
                    RewardSample::Observed { reward: hr, .. } => {
                        let r = self.cfg.goal.reward(hr);
                        last_reward = r;
                        r
                    }
                    RewardSample::Skipped { .. } => {
                        skipped_rewards += 1;
                        0.0
                    }
                }
            } else {
                0.0
            };
            rewards.push(reward);
            // Terminal: "in the case when fewer user profiles are enough to
            // successfully satisfy the promotion task, the process stops."
            if reward >= 1.0 {
                break;
            }
        }

        if learn {
            self.update(&sel_samples, &craft_samples, &rewards);
        }

        AttackOutcome {
            final_reward: last_reward,
            injections: env.injections(),
            queries: env.queries(),
            avg_items_per_profile: if landed_injections == 0 {
                0.0
            } else {
                total_items as f32 / landed_injections as f32
            },
            selected_users: selected,
            failed_injections,
            skipped_rewards,
            aborted: if landed_injections == 0 && failed_injections > 0 {
                last_error
            } else {
                None
            },
        }
    }

    /// REINFORCE update over one episode with the per-step baseline and
    /// global-norm clipping.
    fn update(
        &mut self,
        sel_samples: &[Option<SelectionSample>],
        craft_samples: &[Option<CraftingSample>],
        rewards: &[f32],
    ) {
        let returns = discounted_returns(rewards, self.cfg.discount);
        let mut policy_grads = self.policy.zero_grads();
        let mut craft_grads = self.crafting.zero_grad();
        let mut any_craft = false;
        for (t, &g) in returns.iter().enumerate() {
            let adv = self.baseline.advantage(t, g);
            self.baseline.update(t, g);
            if let Some(s) = &sel_samples[t] {
                self.policy.accumulate(s, adv, &mut policy_grads);
            }
            if let Some(c) = &craft_samples[t] {
                self.crafting.accumulate(c, adv, &mut craft_grads);
                any_craft = true;
            }
        }
        let clip = GradClip { max_norm: self.cfg.grad_clip };
        policy_grads.scale(clip.scale_for(policy_grads.norm()));
        self.policy.apply(&policy_grads, self.cfg.lr);
        if any_craft {
            craft_grads.scale(clip.scale_for(craft_grads.norm()));
            self.crafting.apply(&craft_grads, self.cfg.lr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_mf::BprConfig;
    use ca_recsys::{BlackBoxRecommender, Dataset, DatasetBuilder};

    /// A contrived target platform where the reward is fully determined by
    /// *which* users are copied: the item enters the pretend users' Top-k
    /// once at least 3 injected profiles came from "good" source users
    /// (ids 0..10). This isolates the RL loop from the recommender.
    struct CountingRec {
        good_injections: usize,
        n_users: usize,
        target: ItemId,
        threshold: usize,
        goodness: Vec<bool>, // per injected profile, decided by its length marker
    }

    impl BlackBoxRecommender for CountingRec {
        fn top_k(&self, _user: UserId, k: usize) -> Vec<ItemId> {
            if self.good_injections >= self.threshold {
                vec![self.target; k.min(1)]
            } else {
                vec![ItemId(9999); k.min(1)]
            }
        }
        fn inject_user(&mut self, profile: &[ItemId]) -> UserId {
            // Profiles from good users carry the marker item 777.
            if profile.contains(&ItemId(777)) {
                self.good_injections += 1;
            }
            self.goodness.push(profile.contains(&ItemId(777)));
            let id = UserId(self.n_users as u32);
            self.n_users += 1;
            id
        }
        fn catalog_size(&self) -> usize {
            10_000
        }
    }

    /// Source domain: 30 users; users 0..10 ("good") have profiles
    /// containing the target item 5 and the marker 77; the rest only have
    /// filler items.
    fn source_world() -> (Dataset, Vec<ItemId>) {
        let mut b = DatasetBuilder::new(100);
        for u in 0..30u32 {
            let mut profile = vec![ItemId(u % 50 + 20)];
            if u < 10 {
                profile.push(ItemId(5)); // target (source id)
                profile.push(ItemId(77)); // marker
            }
            profile.push(ItemId((u * 7) % 20));
            b.user(&profile);
        }
        // Source item s maps to target item s*10 + 7 (marker 77 → 777).
        let map: Vec<ItemId> = (0..100).map(|s| ItemId(s * 10 + 7)).collect();
        (b.build(), map)
    }

    fn quick_cfg() -> AttackConfig {
        AttackConfig {
            budget: 6,
            n_pretend: 1,
            query_every: 2,
            episodes: 40,
            tree_depth: 2,
            lr: 0.05,
            seed: 3,
            ..Default::default()
        }
    }

    #[test]
    fn masking_restricts_selection_to_carriers() {
        let (ds, map) = source_world();
        let mf = ca_mf::train(&ds, &BprConfig { max_epochs: 3, ..Default::default() });
        let src = SourceDomain { data: &ds, mf: &mf, to_target: &map };
        let mut agent =
            CopyAttackAgent::new(quick_cfg(), CopyAttackVariant::full(), &src, ItemId(5));
        let mut env = AttackEnvironment::new(
            CountingRec {
                good_injections: 0,
                n_users: 0,
                target: ItemId(57),
                threshold: 3,
                goodness: vec![],
            },
            vec![UserId(0)],
            ItemId(57),
            5,
            6,
        );
        let outcome = agent.execute(&src, &mut env);
        // The masking property: every selected user's profile contains the
        // target item. (Note u15 also carries item 5 through its filler
        // item `(15·7) mod 20`, so "good" marker users are a strict subset
        // of the carriers.)
        for u in &outcome.selected_users {
            assert!(src.has_item(*u, ItemId(5)), "masked agent selected non-carrier {u}");
        }
    }

    #[test]
    fn unmasked_variant_can_select_anyone_and_skips_crafting() {
        let (ds, map) = source_world();
        let mf = ca_mf::train(&ds, &BprConfig { max_epochs: 3, ..Default::default() });
        let src = SourceDomain { data: &ds, mf: &mf, to_target: &map };
        let mut agent =
            CopyAttackAgent::new(quick_cfg(), CopyAttackVariant::no_masking(), &src, ItemId(5));
        let rec = CountingRec {
            good_injections: 0,
            n_users: 0,
            target: ItemId(57),
            threshold: 3,
            goodness: vec![],
        };
        let mut env = AttackEnvironment::new(rec, vec![UserId(0)], ItemId(57), 5, 6);
        let outcome = agent.execute(&src, &mut env);
        assert_eq!(outcome.injections, outcome.selected_users.len());
    }

    #[test]
    fn training_improves_reward_on_the_contrived_bandit() {
        let (ds, map) = source_world();
        let mf = ca_mf::train(&ds, &BprConfig { max_epochs: 3, ..Default::default() });
        let src = SourceDomain { data: &ds, mf: &mf, to_target: &map };
        // Without masking the agent must *learn* to pick good users.
        let cfg = AttackConfig { episodes: 300, lr: 0.1, ..quick_cfg() };
        let mut agent = CopyAttackAgent::new(
            cfg,
            CopyAttackVariant { masking: false, crafting: false },
            &src,
            ItemId(5),
        );
        let curve = agent.train(&src, || {
            AttackEnvironment::new(
                CountingRec {
                    good_injections: 0,
                    n_users: 0,
                    target: ItemId(57),
                    threshold: 3,
                    goodness: vec![],
                },
                vec![UserId(0)],
                ItemId(57),
                5,
                6,
            )
        });
        let early: f32 = curve[..50].iter().sum::<f32>() / 50.0;
        let late: f32 = curve[curve.len() - 50..].iter().sum::<f32>() / 50.0;
        assert!(
            late > early + 0.1,
            "no learning: early {early:.3} late {late:.3} (curve {curve:?})"
        );
    }

    #[test]
    fn masked_full_variant_succeeds_immediately_on_the_bandit() {
        // With masking, every selectable user is good, so the attack should
        // reach reward 1 within the first episodes and stop early.
        let (ds, map) = source_world();
        let mf = ca_mf::train(&ds, &BprConfig { max_epochs: 3, ..Default::default() });
        let src = SourceDomain { data: &ds, mf: &mf, to_target: &map };
        let mut agent =
            CopyAttackAgent::new(quick_cfg(), CopyAttackVariant::no_crafting(), &src, ItemId(5));
        let mut env = AttackEnvironment::new(
            CountingRec {
                good_injections: 0,
                n_users: 0,
                target: ItemId(57),
                threshold: 3,
                goodness: vec![],
            },
            vec![UserId(0)],
            ItemId(57),
            5,
            6,
        );
        let outcome = agent.execute(&src, &mut env);
        assert_eq!(outcome.final_reward, 1.0);
        // Early termination: 3 good injections, queries every 2 → stops at 4.
        assert!(outcome.injections <= 4, "no early stop: {}", outcome.injections);
    }

    #[test]
    fn crafted_profiles_are_shorter_on_average() {
        let (ds, map) = source_world();
        let mf = ca_mf::train(&ds, &BprConfig { max_epochs: 3, ..Default::default() });
        let src = SourceDomain { data: &ds, mf: &mf, to_target: &map };
        let run = |variant: CopyAttackVariant, seed: u64| {
            let cfg = AttackConfig { seed, ..quick_cfg() };
            let mut agent = CopyAttackAgent::new(cfg, variant, &src, ItemId(5));
            let mut env = AttackEnvironment::new(
                CountingRec {
                    good_injections: 0,
                    n_users: 0,
                    target: ItemId(57),
                    threshold: 999,
                    goodness: vec![],
                },
                vec![UserId(0)],
                ItemId(57),
                5,
                6,
            );
            agent.execute(&src, &mut env).avg_items_per_profile
        };
        // Average over seeds to avoid one-off sampling flukes.
        let crafted: f32 = (0..5).map(|s| run(CopyAttackVariant::full(), s)).sum::<f32>() / 5.0;
        let raw: f32 = (0..5).map(|s| run(CopyAttackVariant::no_crafting(), s)).sum::<f32>() / 5.0;
        assert!(crafted < raw, "crafted {crafted} !< raw {raw}");
    }

    #[test]
    #[should_panic(expected = "no selectable source user")]
    fn rejects_target_absent_from_source() {
        let (ds, map) = source_world();
        let mf = ca_mf::train(&ds, &BprConfig { max_epochs: 2, ..Default::default() });
        let src = SourceDomain { data: &ds, mf: &mf, to_target: &map };
        let _ = CopyAttackAgent::new(quick_cfg(), CopyAttackVariant::full(), &src, ItemId(99));
    }
}
