//! Multi-target campaigns across worker threads (tentpole of the parallel
//! offline pipeline).
//!
//! A [`ParallelCampaign`] attacks `n` target items with `n` *independent*
//! agents — one per target, each seeded from the campaign seed and its
//! target's position via [`ca_par::split_seed`] — instead of the shared
//! round-robin agent of [`Campaign`]. Because the per-target agents share
//! no state and no RNG, they train concurrently on the `ca-par` runtime,
//! and the full set of learning curves is bitwise identical at any
//! `CA_THREADS` setting (each agent's trajectory is a pure function of its
//! derived seed).
//!
//! Per-target query metering is preserved: every target gets its own
//! [`AttackEnvironment`] from the caller's factory, so its query/injection
//! counters are exactly those of a standalone single-target run.
//!
//! Checkpoint/resume mirror the serial campaign: a
//! [`ParallelCampaignCheckpoint`] is the vector of per-target
//! [`CampaignCheckpoint`]s, and [`ParallelCampaign::resume`] continues each
//! target from its own snapshot (already-completed targets are no-ops).

use crate::arena::AttackError;
use crate::attack::{AttackOutcome, CopyAttackVariant};
use crate::campaign::{Campaign, CampaignCheckpoint, CampaignRun};
use crate::config::AttackConfig;
use crate::env::AttackEnvironment;
use crate::source::SourceDomain;
use ca_par as par;
use ca_recsys::{FallibleBlackBox, ItemId, RecError};

/// A multi-target campaign with one independent agent per target.
#[derive(Clone)]
pub struct ParallelCampaign {
    campaigns: Vec<Campaign>,
}

/// Snapshot of a parallel campaign: one serial-campaign checkpoint per
/// target, in target order.
#[derive(Clone)]
pub struct ParallelCampaignCheckpoint {
    checkpoints: Vec<CampaignCheckpoint>,
}

impl ParallelCampaignCheckpoint {
    /// Episodes completed per target at snapshot time.
    pub fn episodes_completed(&self) -> Vec<usize> {
        self.checkpoints.iter().map(CampaignCheckpoint::episodes_completed).collect()
    }

    /// The targets, in campaign order.
    pub fn targets(&self) -> Vec<ItemId> {
        self.checkpoints.iter().map(|c| c.targets()[0]).collect()
    }
}

/// How a resilient parallel run ended.
pub enum ParallelCampaignRun {
    /// Every target ran all its episodes; curves in target order.
    Completed {
        /// Final reward per episode, one curve per target.
        curves: Vec<Vec<f32>>,
    },
    /// At least one target's platform defeated an entire episode. Targets
    /// that completed stay completed inside the checkpoint; interrupted
    /// targets were rolled back to the episode boundary before the failure.
    Interrupted {
        /// Snapshot to hand to [`ParallelCampaign::resume`] later.
        checkpoint: Box<ParallelCampaignCheckpoint>,
        /// The platform error per interrupted target.
        causes: Vec<(ItemId, RecError)>,
    },
}

impl ParallelCampaign {
    /// Builds one agent per target. Agent `i` uses the seed
    /// `split_seed(cfg.seed, i)`, so the campaign seed fans out into
    /// decorrelated per-target streams and adding a target never perturbs
    /// the others. Fails if `targets` is empty or any target has no source
    /// carrier.
    pub fn try_new(
        cfg: AttackConfig,
        variant: CopyAttackVariant,
        src: &SourceDomain<'_>,
        targets: Vec<ItemId>,
    ) -> Result<Self, AttackError> {
        if targets.is_empty() {
            return Err(AttackError::EmptyTargets);
        }
        let campaigns = targets
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                let mut c = cfg.clone();
                c.seed = par::split_seed(cfg.seed, i as u64);
                Campaign::try_new(c, variant, src, vec![t])
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { campaigns })
    }

    /// Panicking wrapper over [`ParallelCampaign::try_new`].
    ///
    /// # Panics
    /// Panics if `targets` is empty or any target has no source carrier.
    pub fn new(
        cfg: AttackConfig,
        variant: CopyAttackVariant,
        src: &SourceDomain<'_>,
        targets: Vec<ItemId>,
    ) -> Self {
        Self::try_new(cfg, variant, src, targets).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The targets, in campaign order.
    pub fn targets(&self) -> Vec<ItemId> {
        self.campaigns.iter().map(|c| c.targets()[0]).collect()
    }

    /// The per-target campaigns, in target order.
    pub fn per_target(&self) -> &[Campaign] {
        &self.campaigns
    }

    /// Episodes completed per target (across resumptions).
    pub fn episodes_completed(&self) -> Vec<usize> {
        self.campaigns.iter().map(Campaign::episodes_completed).collect()
    }

    /// Learning curves per target (across resumptions).
    pub fn curves(&self) -> Vec<Vec<f32>> {
        self.campaigns.iter().map(|c| c.curve().to_vec()).collect()
    }

    /// Snapshots every per-target campaign for later
    /// [`ParallelCampaign::resume`].
    pub fn checkpoint(&self) -> ParallelCampaignCheckpoint {
        ParallelCampaignCheckpoint {
            checkpoints: self.campaigns.iter().map(Campaign::checkpoint).collect(),
        }
    }

    /// Reconstructs a parallel campaign from a checkpoint.
    pub fn resume(checkpoint: ParallelCampaignCheckpoint) -> Self {
        Self { campaigns: checkpoint.checkpoints.into_iter().map(Campaign::resume).collect() }
    }

    /// Trains every target for `cfg.episodes` episodes, one worker per
    /// target. `make_env` receives the *source-domain* target id and must
    /// produce a fresh environment attacking that item; it is called from
    /// worker threads, so it must be `Sync` (e.g. capture shared data by
    /// reference and build the platform inside).
    ///
    /// Returns the learning curves in target order — independent of thread
    /// count and identical to running each target alone.
    pub fn train<R: FallibleBlackBox>(
        &mut self,
        src: &SourceDomain<'_>,
        make_env: impl Fn(ItemId) -> AttackEnvironment<R> + Sync,
    ) -> Vec<Vec<f32>> {
        par::map_mut(&mut self.campaigns, |_, campaign| campaign.train(src, &make_env))
    }

    /// Trains every target against a possibly-failing platform. Targets
    /// that complete keep their full curves; targets whose platform defeats
    /// an entire episode are rolled back to the preceding episode boundary.
    /// If any target was interrupted, returns
    /// [`ParallelCampaignRun::Interrupted`] with a checkpoint covering all
    /// targets and the per-target causes.
    pub fn train_resilient<R: FallibleBlackBox>(
        &mut self,
        src: &SourceDomain<'_>,
        make_env: impl Fn(ItemId) -> AttackEnvironment<R> + Sync,
    ) -> ParallelCampaignRun {
        let runs = par::map_mut(&mut self.campaigns, |_, campaign| {
            let target = campaign.targets()[0];
            let run = campaign.train_resilient(src, &make_env);
            match run {
                CampaignRun::Completed { .. } => None,
                CampaignRun::Interrupted { cause, .. } => Some((target, cause)),
            }
        });
        let causes: Vec<(ItemId, RecError)> = runs.into_iter().flatten().collect();
        if causes.is_empty() {
            ParallelCampaignRun::Completed { curves: self.curves() }
        } else {
            ParallelCampaignRun::Interrupted { checkpoint: Box::new(self.checkpoint()), causes }
        }
    }

    /// Executes one attack on `target_src` without learning, using the
    /// agent trained on that target when there is one and the first agent
    /// otherwise (zero-shot transfer).
    pub fn execute_on<R: FallibleBlackBox>(
        &mut self,
        src: &SourceDomain<'_>,
        target_src: ItemId,
        env: &mut AttackEnvironment<R>,
    ) -> AttackOutcome {
        let i = self.campaigns.iter().position(|c| c.targets()[0] == target_src).unwrap_or(0);
        self.campaigns[i].execute_on(src, target_src, env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AttackConfig;
    use ca_mf::BprConfig;
    use ca_recsys::{BlackBoxRecommender, Dataset, DatasetBuilder, UserId};

    /// Counting fake platform, same flavor as the campaign tests.
    struct CountingRec {
        good: usize,
        n_users: usize,
        target: ItemId,
        threshold: usize,
    }
    impl BlackBoxRecommender for CountingRec {
        fn top_k(&self, _u: UserId, k: usize) -> Vec<ItemId> {
            if self.good >= self.threshold {
                vec![self.target; k.min(1)]
            } else {
                vec![ItemId(9999); k.min(1)]
            }
        }
        fn inject_user(&mut self, profile: &[ItemId]) -> UserId {
            if profile.contains(&ItemId(777)) {
                self.good += 1;
            }
            let id = UserId(self.n_users as u32);
            self.n_users += 1;
            id
        }
        fn catalog_size(&self) -> usize {
            10_000
        }
    }

    fn world() -> (Dataset, Vec<ItemId>) {
        let mut b = DatasetBuilder::new(100);
        for u in 0..40u32 {
            let mut profile = vec![ItemId(u % 30 + 30)];
            if u < 15 {
                profile.push(ItemId(3 + 2 * (u % 3))); // one of {3, 5, 7}
                profile.push(ItemId(77));
            }
            profile.push(ItemId((u * 11) % 25));
            b.user(&profile);
        }
        let map: Vec<ItemId> = (0..100).map(|s| ItemId(s * 10 + 7)).collect();
        (b.build(), map)
    }

    fn cfg() -> AttackConfig {
        AttackConfig {
            budget: 6,
            n_pretend: 1,
            query_every: 2,
            episodes: 10,
            tree_depth: 2,
            lr: 0.05,
            seed: 3,
            ..Default::default()
        }
    }

    fn bandit_env(map: &[ItemId], t: ItemId) -> AttackEnvironment<CountingRec> {
        AttackEnvironment::new(
            CountingRec { good: 0, n_users: 0, target: map[t.idx()], threshold: 2 },
            vec![UserId(0)],
            map[t.idx()],
            5,
            6,
        )
    }

    #[test]
    fn curves_are_identical_across_thread_counts() {
        let (ds, map) = world();
        let mf = ca_mf::train(&ds, &BprConfig { max_epochs: 3, ..Default::default() });
        let src = SourceDomain { data: &ds, mf: &mf, to_target: &map };
        let targets = vec![ItemId(3), ItemId(5), ItemId(7)];
        let run = |threads| {
            par::set_threads(Some(threads));
            let mut campaign = ParallelCampaign::new(
                cfg(),
                CopyAttackVariant::no_crafting(),
                &src,
                targets.clone(),
            );
            campaign.train(&src, |t| bandit_env(&map, t))
        };
        let base = run(1);
        assert_eq!(base.len(), 3);
        assert!(base.iter().all(|c| c.len() == 10));
        for t in [2, 3, 8] {
            let curves = run(t);
            assert_eq!(curves, base, "threads {t}");
        }
        par::set_threads(None);
    }

    #[test]
    fn per_target_curve_matches_a_standalone_single_target_run() {
        let (ds, map) = world();
        let mf = ca_mf::train(&ds, &BprConfig { max_epochs: 3, ..Default::default() });
        let src = SourceDomain { data: &ds, mf: &mf, to_target: &map };

        let mut many = ParallelCampaign::new(
            cfg(),
            CopyAttackVariant::no_crafting(),
            &src,
            vec![ItemId(3), ItemId(5)],
        );
        let curves = many.train(&src, |t| bandit_env(&map, t));

        // Target 5 alone, at its derived seed, must reproduce curve 1.
        let mut solo_cfg = cfg();
        solo_cfg.seed = par::split_seed(cfg().seed, 1);
        let mut solo =
            Campaign::new(solo_cfg, CopyAttackVariant::no_crafting(), &src, vec![ItemId(5)]);
        let solo_curve = solo.train(&src, |t| bandit_env(&map, t));
        assert_eq!(curves[1], solo_curve);
    }

    #[test]
    fn interruption_checkpoints_all_targets_and_resumes() {
        let (ds, map) = world();
        let mf = ca_mf::train(&ds, &BprConfig { max_epochs: 3, ..Default::default() });
        let src = SourceDomain { data: &ds, mf: &mf, to_target: &map };
        let targets = vec![ItemId(3), ItemId(5)];

        // Reference: healthy run.
        let mut reference =
            ParallelCampaign::new(cfg(), CopyAttackVariant::no_crafting(), &src, targets.clone());
        let reference_curves = reference.train(&src, |t| bandit_env(&map, t));

        // Target 5's platform refuses every injection; target 3's is fine.
        let mut halting =
            ParallelCampaign::new(cfg(), CopyAttackVariant::no_crafting(), &src, targets);
        let run = halting.train_resilient(&src, |t| {
            AttackEnvironment::new(
                DownThenUp {
                    inner: CountingRec { good: 0, n_users: 0, target: map[t.idx()], threshold: 2 },
                    refusals_left: if t == ItemId(5) { usize::MAX } else { 0 },
                },
                vec![UserId(0)],
                map[t.idx()],
                5,
                6,
            )
        });
        let ParallelCampaignRun::Interrupted { checkpoint, causes } = run else {
            panic!("target 5's dead platform must interrupt");
        };
        assert_eq!(causes, vec![(ItemId(5), RecError::AccountSuspended)]);
        assert_eq!(checkpoint.episodes_completed(), vec![10, 0]);

        // Resume on a healthy platform: the combined curves must equal the
        // reference (completed target untouched, dead target replayed).
        let mut resumed = ParallelCampaign::resume(*checkpoint);
        let ParallelCampaignRun::Completed { curves } =
            resumed.train_resilient(&src, |t| bandit_env(&map, t))
        else {
            panic!("healthy platform must complete");
        };
        assert_eq!(curves, reference_curves);
    }

    #[test]
    fn metering_matches_standalone_runs() {
        let (ds, map) = world();
        let mf = ca_mf::train(&ds, &BprConfig { max_epochs: 3, ..Default::default() });
        let src = SourceDomain { data: &ds, mf: &mf, to_target: &map };
        let mut campaign = ParallelCampaign::new(
            cfg(),
            CopyAttackVariant::no_crafting(),
            &src,
            vec![ItemId(3), ItemId(5)],
        );
        campaign.train(&src, |t| bandit_env(&map, t));
        // Execute once per target on fresh metered envs: each env's meters
        // reflect only its own target's traffic.
        for &t in &[ItemId(3), ItemId(5)] {
            let mut env = bandit_env(&map, t);
            let _ = campaign.execute_on(&src, t, &mut env);
            assert!(env.injections() > 0, "target {t} injected nothing");
            assert!(env.queries() > 0, "target {t} queried nothing");
        }
    }

    /// Platform that refuses injections until `refusals_left` runs out.
    struct DownThenUp {
        inner: CountingRec,
        refusals_left: usize,
    }
    impl ca_recsys::FallibleBlackBox for DownThenUp {
        fn try_top_k(&mut self, u: UserId, k: usize) -> Result<Vec<ItemId>, RecError> {
            Ok(self.inner.top_k(u, k))
        }
        fn try_inject_user(&mut self, p: &[ItemId]) -> Result<UserId, RecError> {
            if self.refusals_left > 0 {
                self.refusals_left -= 1;
                return Err(RecError::AccountSuspended);
            }
            // ca-audit: allow(env-injection) — test fake forwarding to its inner in-memory platform
            Ok(self.inner.inject_user(p))
        }
        fn catalog_size(&self) -> usize {
            BlackBoxRecommender::catalog_size(&self.inner)
        }
    }
}
