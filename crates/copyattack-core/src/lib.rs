//! CopyAttack: reinforcement-learning black-box attack on recommender
//! systems via copying cross-domain user profiles (Fan et al., ICDE 2021).
//!
//! The attack promotes a target item `v*` in a black-box target recommender
//! by copying *real* user profiles from a source domain that shares items
//! with the target domain. Three components (Figure 2 of the paper):
//!
//! 1. **User-profile selection** ([`selection`]) — a hierarchical-structure
//!    policy gradient over a balanced clustering tree of source users, with
//!    per-target-item masking;
//! 2. **User-profile crafting** ([`crafting`]) — a policy network choosing a
//!    clipping window `w ∈ {10%, …, 100%}` applied around the target item;
//! 3. **Injection & queries** ([`mod@env`]) — crafted profiles are injected
//!    through the black-box interface; the reward is the target item's hit
//!    ratio in the Top-k lists of the attacker's pretend users (Eq. 1).
//!
//! [`attack::CopyAttackAgent`] ties the pieces together with REINFORCE
//! training ([`reinforce`]); [`baselines`] provides the paper's comparison
//! methods (RandomAttack, TargetAttack-40/70/100, the flat PolicyNetwork,
//! and the CopyAttack−Masking / CopyAttack−Length ablations).

#![forbid(unsafe_code)]

//!
//! Deployed platforms are not reliable: [`retry`] adds capped-backoff retry
//! policies in logical time, [`mod@env`] computes partial (quorum-gated)
//! rewards and re-establishes suspended pretend users, and [`campaign`]
//! checkpoints/resumes training across platform outages.

pub mod arena;
pub mod attack;
pub mod baselines;
pub mod campaign;
pub mod config;
pub mod crafting;
pub mod env;
pub mod parallel;
pub mod reinforce;
pub mod retry;
pub mod selection;
pub mod source;

pub use arena::{Attack, AttackError, AttackRegistry, FakeProfileAttack, ItemKnowledge, KgAttack};
pub use attack::{AttackOutcome, CopyAttackAgent, CopyAttackVariant};
pub use campaign::{Campaign, CampaignCheckpoint, CampaignRun};
pub use config::{AttackConfig, AttackGoal};
pub use env::{AttackEnvironment, RewardSample};
pub use parallel::{ParallelCampaign, ParallelCampaignCheckpoint, ParallelCampaignRun};
pub use retry::{ResilienceConfig, RetryPolicy};
pub use source::SourceDomain;
