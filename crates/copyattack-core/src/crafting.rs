//! User-profile crafting (§4.4): clip the selected profile to a window
//! around the target item.
//!
//! "the raw user profile is clipped around the target item with the window
//! size w. As such, we can consider the forward and backward related
//! items." Random subsets would lose temporal relations; similarity-based
//! selection would look fake — the window is the paper's chosen mechanism.

use ca_nn::{Categorical, Mlp, MlpCache, MlpGrad};
use ca_recsys::ItemId;
use rand::Rng;

/// Clips `profile` to approximately `fraction` of its length, centered on
/// the first occurrence of `target`. The target item is always retained.
///
/// The window length is `max(1, round(fraction · len))`; when the target
/// sits near an edge the window shifts inward so the full length is kept.
///
/// # Panics
/// Panics if `target` is not in `profile` or `fraction` is outside (0, 1].
pub fn clip_around_target(profile: &[ItemId], target: ItemId, fraction: f32) -> Vec<ItemId> {
    assert!(fraction > 0.0 && fraction <= 1.0, "fraction {fraction} outside (0, 1]");
    let pos = profile
        .iter()
        .position(|&v| v == target)
        .expect("target item must be present in the profile");
    let len = profile.len();
    let w = ((fraction * len as f32).round() as usize).clamp(1, len);
    // Center the window on the target, shifting inward at the edges.
    let half_before = (w - 1) / 2;
    let lo = pos.saturating_sub(half_before).min(len - w);
    profile[lo..lo + w].to_vec()
}

/// The profile-crafting policy: a single MLP over `[p_u ⊕ q_{v*}]` emitting
/// a distribution over the discrete window levels `W`.
#[derive(Clone)]
pub struct CraftingPolicy {
    net: Mlp,
    fractions: Vec<f32>,
}

/// One sampled crafting decision, kept for the REINFORCE update.
pub struct CraftingSample {
    /// Chosen level index into the fraction set.
    pub level: usize,
    /// The distribution the level was drawn from.
    pub dist: Categorical,
    /// Forward cache of the policy MLP.
    pub cache: MlpCache,
    /// The state the decision was made in.
    pub state: Vec<f32>,
}

impl CraftingPolicy {
    /// New policy over `fractions` (e.g. `{0.1, …, 1.0}`); state dimension
    /// is `2e` (user ⊕ item embedding).
    pub fn new(rng: &mut impl Rng, embed_dim: usize, hidden: usize, fractions: Vec<f32>) -> Self {
        assert!(!fractions.is_empty());
        let net = Mlp::new(rng, &[2 * embed_dim, hidden, fractions.len()], 0.3);
        Self { net, fractions }
    }

    /// The window fractions.
    pub fn fractions(&self) -> &[f32] {
        &self.fractions
    }

    /// Samples a window level for the `(user, target)` pair described by
    /// the concatenated embeddings.
    pub fn sample(
        &self,
        p_u: &[f32],
        q_target: &[f32],
        rng: &mut impl Rng,
    ) -> (f32, CraftingSample) {
        let mut state = Vec::with_capacity(p_u.len() + q_target.len());
        state.extend_from_slice(p_u);
        state.extend_from_slice(q_target);
        let (logits, cache) = self.net.forward(&state);
        let dist = Categorical::from_logits(&logits);
        let level = dist.sample(rng);
        (self.fractions[level], CraftingSample { level, dist, cache, state })
    }

    /// Accumulates the REINFORCE gradient for one decision into `grad`.
    pub fn accumulate(&self, sample: &CraftingSample, advantage: f32, grad: &mut MlpGrad) {
        let g_logits = sample.dist.reinforce_logit_grad(sample.level, advantage);
        self.net.backward(&sample.cache, &g_logits, grad);
    }

    /// Fresh gradient accumulator.
    pub fn zero_grad(&self) -> MlpGrad {
        self.net.zero_grad()
    }

    /// Applies an accumulated gradient with learning rate `lr`.
    pub fn apply(&mut self, grad: &MlpGrad, lr: f32) {
        self.net.sgd_step(grad, lr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn items(v: &[u32]) -> Vec<ItemId> {
        v.iter().map(|&x| ItemId(x)).collect()
    }

    #[test]
    fn paper_example_clip() {
        // §4.4: 10 items, target at index 4 (v5), w = 50% → {v3, v4, v5*, v6, v7}.
        let profile = items(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        let clipped = clip_around_target(&profile, ItemId(5), 0.5);
        assert_eq!(clipped, items(&[3, 4, 5, 6, 7]));
    }

    #[test]
    fn full_fraction_is_identity() {
        let profile = items(&[4, 9, 2, 7]);
        assert_eq!(clip_around_target(&profile, ItemId(2), 1.0), profile);
    }

    #[test]
    fn target_always_survives_any_fraction() {
        let profile = items(&[0, 1, 2, 3, 4, 5, 6, 7]);
        for t in 0..8u32 {
            for lvl in 1..=10 {
                let frac = lvl as f32 / 10.0;
                let clipped = clip_around_target(&profile, ItemId(t), frac);
                assert!(clipped.contains(&ItemId(t)), "target {t} lost at {frac}");
                let expected = ((frac * 8.0).round() as usize).clamp(1, 8);
                assert_eq!(clipped.len(), expected, "t={t} frac={frac}");
            }
        }
    }

    #[test]
    fn clip_keeps_contiguity_and_order() {
        let profile = items(&[10, 20, 30, 40, 50]);
        let clipped = clip_around_target(&profile, ItemId(40), 0.6);
        // Window of 3 around index 3 shifts inward: {30, 40, 50}.
        assert_eq!(clipped, items(&[30, 40, 50]));
    }

    #[test]
    fn edge_target_shifts_window_inward() {
        let profile = items(&[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let clipped = clip_around_target(&profile, ItemId(0), 0.5);
        assert_eq!(clipped, items(&[0, 1, 2, 3, 4]));
        let clipped = clip_around_target(&profile, ItemId(9), 0.5);
        assert_eq!(clipped, items(&[5, 6, 7, 8, 9]));
    }

    #[test]
    #[should_panic(expected = "must be present")]
    fn clip_rejects_missing_target() {
        let profile = items(&[1, 2, 3]);
        let _ = clip_around_target(&profile, ItemId(9), 0.5);
    }

    #[test]
    fn policy_learns_to_prefer_rewarded_level() {
        // Bandit sanity check: level 2 gets reward 1, others 0. REINFORCE
        // with a mean baseline must concentrate probability on level 2.
        let mut rng = StdRng::seed_from_u64(4);
        let mut policy = CraftingPolicy::new(&mut rng, 4, 8, vec![0.25, 0.5, 0.75, 1.0]);
        let p_u = vec![0.3, -0.2, 0.1, 0.5];
        let q_v = vec![-0.1, 0.4, 0.0, 0.2];
        let mut baseline = 0.0f32;
        for _ in 0..400 {
            let (_, sample) = policy.sample(&p_u, &q_v, &mut rng);
            let reward = if sample.level == 2 { 1.0 } else { 0.0 };
            let advantage = reward - baseline;
            baseline = 0.9 * baseline + 0.1 * reward;
            let mut grad = policy.zero_grad();
            // `accumulate` expects the *advantage* multiplying −log π.
            policy.accumulate(&sample, advantage, &mut grad);
            policy.apply(&grad, 0.05);
        }
        let (_, sample) = policy.sample(&p_u, &q_v, &mut rng);
        assert!(
            sample.dist.probs()[2] > 0.8,
            "policy failed to concentrate: {:?}",
            sample.dist.probs()
        );
    }

    #[test]
    fn sample_uses_state_and_is_seeded() {
        let mut rng = StdRng::seed_from_u64(5);
        let policy = CraftingPolicy::new(&mut rng, 3, 8, vec![0.5, 1.0]);
        let mut r1 = StdRng::seed_from_u64(6);
        let mut r2 = StdRng::seed_from_u64(6);
        let (f1, s1) = policy.sample(&[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0], &mut r1);
        let (f2, s2) = policy.sample(&[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0], &mut r2);
        assert_eq!(f1, f2);
        assert_eq!(s1.level, s2.level);
        assert_eq!(s1.state.len(), 6);
    }
}
