//! REINFORCE machinery: discounted returns and a per-timestep baseline.
//!
//! The paper optimizes the policy networks with policy gradient \[21\] and a
//! discount factor γ = 0.6 (§5.1.3). Rewards arrive only at query steps
//! (every 3 injections); other steps observe 0 and rely on the discounted
//! return to propagate credit backwards.

use ca_tensor::stats::RunningStats;

/// Discounted returns `G_t = r_t + γ G_{t+1}` (backwards recursion).
pub fn discounted_returns(rewards: &[f32], gamma: f32) -> Vec<f32> {
    let mut returns = vec![0.0f32; rewards.len()];
    let mut acc = 0.0f32;
    for t in (0..rewards.len()).rev() {
        acc = rewards[t] + gamma * acc;
        returns[t] = acc;
    }
    returns
}

/// Per-timestep running-mean baseline: `A_t = G_t − b_t` with `b_t` the
/// running mean of returns observed at step `t` across episodes. A
/// per-step baseline matters here because early steps see systematically
/// larger discounted returns than late steps.
#[derive(Clone, Debug)]
pub struct Baseline {
    stats: Vec<RunningStats>,
}

impl Baseline {
    /// Baseline for episodes of at most `horizon` steps.
    pub fn new(horizon: usize) -> Self {
        Self { stats: vec![RunningStats::new(); horizon] }
    }

    /// The advantage of return `g` at step `t`, *without* updating the
    /// baseline. Returns `g` itself before any observation at `t`.
    pub fn advantage(&self, t: usize, g: f32) -> f32 {
        let s = &self.stats[t];
        if s.count() == 0 {
            g
        } else {
            g - s.mean()
        }
    }

    /// Records the observed return at step `t`.
    pub fn update(&mut self, t: usize, g: f32) {
        self.stats[t].push(g);
    }

    /// The current baseline value at step `t`.
    pub fn value(&self, t: usize) -> f32 {
        self.stats[t].mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn returns_backwards_recursion() {
        let g = discounted_returns(&[0.0, 0.0, 1.0], 0.5);
        assert_eq!(g, vec![0.25, 0.5, 1.0]);
    }

    #[test]
    fn zero_gamma_keeps_immediate_rewards() {
        let g = discounted_returns(&[1.0, 2.0, 3.0], 0.0);
        assert_eq!(g, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn unit_gamma_gives_suffix_sums() {
        let g = discounted_returns(&[1.0, 2.0, 3.0], 1.0);
        assert_eq!(g, vec![6.0, 5.0, 3.0]);
    }

    #[test]
    fn empty_rewards_give_empty_returns() {
        assert!(discounted_returns(&[], 0.6).is_empty());
    }

    #[test]
    fn returns_are_monotone_before_a_single_terminal_reward() {
        // With one terminal reward, earlier steps see geometrically smaller
        // returns.
        let mut rewards = vec![0.0; 10];
        rewards[9] = 1.0;
        let g = discounted_returns(&rewards, 0.6);
        for t in 0..9 {
            assert!(g[t] < g[t + 1]);
        }
    }

    #[test]
    fn baseline_converges_to_mean() {
        let mut b = Baseline::new(3);
        assert_eq!(b.advantage(0, 2.0), 2.0, "no data yet → raw return");
        for _ in 0..100 {
            b.update(1, 4.0);
        }
        assert!((b.value(1) - 4.0).abs() < 1e-5);
        assert!((b.advantage(1, 5.0) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn baseline_is_per_timestep() {
        let mut b = Baseline::new(2);
        b.update(0, 10.0);
        b.update(1, 1.0);
        assert!((b.advantage(0, 10.0)).abs() < 1e-6);
        assert!((b.advantage(1, 2.0) - 1.0).abs() < 1e-6);
    }
}
