//! The paper's baseline attacks (§5.1.4): RandomAttack, the
//! TargetAttack-{40,70,100} family, and the flat PolicyNetwork agent.

use crate::arena::AttackError;
use crate::attack::AttackOutcome;
use crate::config::AttackConfig;
use crate::crafting::{clip_around_target, CraftingPolicy, CraftingSample};
use crate::env::AttackEnvironment;
use crate::reinforce::{discounted_returns, Baseline};
use crate::selection::{FlatPolicy, FlatSample};
use crate::source::SourceDomain;
use ca_nn::GradClip;
use ca_recsys::{FallibleBlackBox, ItemId, UserId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// RandomAttack: copies uniformly random source-domain user profiles, no
/// constraint, no crafting. "Randomly sample cross-domain user profiles to
/// attack the target recommender systems."
pub fn random_attack<R: FallibleBlackBox>(
    src: &SourceDomain<'_>,
    env: &mut AttackEnvironment<R>,
    rng: &mut impl Rng,
) -> AttackOutcome {
    let mut selected = Vec::new();
    let mut total_items = 0usize;
    while !env.exhausted() {
        let u = UserId(rng.gen_range(0..src.n_users() as u32));
        let profile = src.translate(src.data.profile(u));
        total_items += profile.len();
        env.inject(&profile);
        selected.push(u);
    }
    finish(env, selected, total_items)
}

/// TargetAttack-⌊100·fraction⌋: samples source users whose profiles contain
/// the target item and clips each profile to `fraction` of its length
/// around the target (fraction 1.0 = TargetAttack100, no crafting).
///
/// Users are drawn without replacement until the carrier pool is exhausted,
/// then with replacement.
///
/// Panicking wrapper over [`try_target_attack`].
///
/// # Panics
/// Panics when the target item has no carrier in the source domain.
pub fn target_attack<R: FallibleBlackBox>(
    src: &SourceDomain<'_>,
    env: &mut AttackEnvironment<R>,
    target_src: ItemId,
    fraction: f32,
    rng: &mut impl Rng,
) -> AttackOutcome {
    try_target_attack(src, env, target_src, fraction, rng).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`target_attack`]: returns [`AttackError::NoCarriers`] instead
/// of panicking when no source profile contains the target item.
pub fn try_target_attack<R: FallibleBlackBox>(
    src: &SourceDomain<'_>,
    env: &mut AttackEnvironment<R>,
    target_src: ItemId,
    fraction: f32,
    rng: &mut impl Rng,
) -> Result<AttackOutcome, AttackError> {
    let mut pool = src.users_with_item(target_src);
    if pool.is_empty() {
        return Err(AttackError::NoCarriers { target_src });
    }
    pool.shuffle(rng);
    let mut selected = Vec::new();
    let mut total_items = 0usize;
    let mut i = 0usize;
    while !env.exhausted() {
        let u = if i < pool.len() { pool[i] } else { pool[rng.gen_range(0..pool.len())] };
        i += 1;
        let raw = src.data.profile(u);
        let crafted = clip_around_target(raw, target_src, fraction);
        let profile = src.translate(&crafted);
        total_items += profile.len();
        env.inject(&profile);
        selected.push(u);
    }
    Ok(finish(env, selected, total_items))
}

fn finish<R: FallibleBlackBox>(
    env: &mut AttackEnvironment<R>,
    selected: Vec<UserId>,
    total_items: usize,
) -> AttackOutcome {
    let final_reward = env.query_reward();
    AttackOutcome {
        final_reward,
        injections: env.injections(),
        queries: env.queries(),
        avg_items_per_profile: if selected.is_empty() {
            0.0
        } else {
            total_items as f32 / selected.len() as f32
        },
        selected_users: selected,
        failed_injections: 0,
        skipped_rewards: 0,
        aborted: None,
    }
}

/// The PolicyNetwork baseline: the same RL loop as CopyAttack but with one
/// flat softmax over all source users instead of the clustering tree
/// (crafting retained). Per-decision cost is O(|U^B|), which is the
/// baseline the paper could not finish within 48 hours on Netflix.
pub struct FlatPolicyAgent {
    cfg: AttackConfig,
    policy: FlatPolicy,
    crafting: CraftingPolicy,
    baseline: Baseline,
    user_mask: Vec<bool>,
    target_src: ItemId,
    rng: StdRng,
}

impl FlatPolicyAgent {
    /// Builds the agent with the target-item user mask, failing on an
    /// invalid config or a carrierless target item.
    pub fn try_new(
        cfg: AttackConfig,
        src: &SourceDomain<'_>,
        target_src: ItemId,
    ) -> Result<Self, AttackError> {
        cfg.validate().map_err(AttackError::InvalidConfig)?;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let policy = FlatPolicy::new(&mut rng, src.n_users(), src.dim(), cfg.hidden);
        let crafting = CraftingPolicy::new(&mut rng, src.dim(), cfg.hidden, cfg.clip_fractions());
        let user_mask: Vec<bool> = (0..src.n_users())
            .map(|u| {
                let has = src.has_item(UserId(u as u32), target_src);
                match cfg.goal {
                    crate::config::AttackGoal::Promote => has,
                    crate::config::AttackGoal::Demote => !has,
                }
            })
            .collect();
        if !user_mask.iter().any(|&m| m) {
            return Err(AttackError::NoCarriers { target_src });
        }
        let baseline = Baseline::new(cfg.budget);
        Ok(Self { baseline, user_mask, target_src, rng, policy, crafting, cfg })
    }

    /// Panicking wrapper over [`FlatPolicyAgent::try_new`].
    ///
    /// # Panics
    /// Panics on an invalid config or a carrierless target item.
    pub fn new(cfg: AttackConfig, src: &SourceDomain<'_>, target_src: ItemId) -> Self {
        Self::try_new(cfg, src, target_src).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Trains for `cfg.episodes` episodes (see
    /// [`crate::attack::CopyAttackAgent::train`]).
    pub fn train<R: FallibleBlackBox>(
        &mut self,
        src: &SourceDomain<'_>,
        mut make_env: impl FnMut() -> AttackEnvironment<R>,
    ) -> Vec<f32> {
        let mut curve = Vec::with_capacity(self.cfg.episodes);
        for _ in 0..self.cfg.episodes {
            let mut env = make_env();
            let o = self.episode(src, &mut env, true);
            curve.push(o.final_reward);
        }
        curve
    }

    /// One evaluation episode without learning.
    pub fn execute<R: FallibleBlackBox>(
        &mut self,
        src: &SourceDomain<'_>,
        env: &mut AttackEnvironment<R>,
    ) -> AttackOutcome {
        self.episode(src, env, false)
    }

    fn episode<R: FallibleBlackBox>(
        &mut self,
        src: &SourceDomain<'_>,
        env: &mut AttackEnvironment<R>,
        learn: bool,
    ) -> AttackOutcome {
        let budget = self.cfg.budget;
        let q_target: Vec<f32> = src.item_embedding(self.target_src).to_vec();
        let mut selected: Vec<UserId> = Vec::new();
        let mut sel_samples: Vec<Option<FlatSample>> = Vec::new();
        let mut craft_samples: Vec<Option<CraftingSample>> = Vec::new();
        let mut rewards = Vec::new();
        let mut total_items = 0usize;
        let mut last_reward = 0.0;

        for t in 0..budget {
            let (user, sample) = if t == 0 {
                let allowed: Vec<u32> = self
                    .user_mask
                    .iter()
                    .enumerate()
                    .filter(|(_, &m)| m)
                    .map(|(i, _)| i as u32)
                    .collect();
                (UserId(allowed[self.rng.gen_range(0..allowed.len())]), None)
            } else {
                let prev: Vec<&[f32]> = selected.iter().map(|&u| src.user_embedding(u)).collect();
                let s = self.policy.select(&q_target, &prev, &self.user_mask, &mut self.rng);
                (s.user, Some(s))
            };
            selected.push(user);
            sel_samples.push(sample);

            let raw = src.data.profile(user);
            let (crafted, cs) = if src.has_item(user, self.target_src) {
                let (fraction, cs) =
                    self.crafting.sample(src.user_embedding(user), &q_target, &mut self.rng);
                (clip_around_target(raw, self.target_src, fraction), Some(cs))
            } else {
                (raw.to_vec(), None)
            };
            craft_samples.push(cs);

            let profile = src.translate(&crafted);
            total_items += profile.len();
            env.inject(&profile);
            let r = if (t + 1).is_multiple_of(self.cfg.query_every) || t + 1 == budget {
                let r = self.cfg.goal.reward(env.query_reward());
                last_reward = r;
                r
            } else {
                0.0
            };
            rewards.push(r);
            if r >= 1.0 {
                break;
            }
        }

        if learn {
            let returns = discounted_returns(&rewards, self.cfg.discount);
            let mut grads = self.policy.zero_grads();
            let mut craft_grads = self.crafting.zero_grad();
            let mut any_craft = false;
            for (t, &g) in returns.iter().enumerate() {
                let adv = self.baseline.advantage(t, g);
                self.baseline.update(t, g);
                if let Some(s) = &sel_samples[t] {
                    self.policy.accumulate(s, adv, &mut grads);
                }
                if let Some(c) = &craft_samples[t] {
                    self.crafting.accumulate(c, adv, &mut craft_grads);
                    any_craft = true;
                }
            }
            let clip = GradClip { max_norm: self.cfg.grad_clip };
            self.policy.apply(&grads, self.cfg.lr);
            if any_craft {
                craft_grads.scale(clip.scale_for(craft_grads.norm()));
                self.crafting.apply(&craft_grads, self.cfg.lr);
            }
        }

        AttackOutcome {
            final_reward: last_reward,
            injections: env.injections(),
            queries: env.queries(),
            avg_items_per_profile: if selected.is_empty() {
                0.0
            } else {
                total_items as f32 / selected.len() as f32
            },
            selected_users: selected,
            failed_injections: 0,
            skipped_rewards: 0,
            aborted: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_mf::BprConfig;
    use ca_recsys::{BlackBoxRecommender, Dataset, DatasetBuilder};

    /// Trivial platform: top-1 list is always item 0; reward only meaningful
    /// through the metering (these tests target selection/crafting logic).
    struct NullRec {
        n_users: usize,
    }
    impl BlackBoxRecommender for NullRec {
        fn top_k(&self, _u: UserId, k: usize) -> Vec<ItemId> {
            (0..k as u32).map(ItemId).collect()
        }
        fn inject_user(&mut self, _p: &[ItemId]) -> UserId {
            let id = UserId(self.n_users as u32);
            self.n_users += 1;
            id
        }
        fn catalog_size(&self) -> usize {
            1000
        }
    }

    fn world() -> (Dataset, Vec<ItemId>) {
        let mut b = DatasetBuilder::new(50);
        for u in 0..40u32 {
            let mut profile: Vec<ItemId> = (0..6).map(|i| ItemId((u + i * 5) % 45 + 5)).collect();
            if u.is_multiple_of(4) {
                profile.insert(3, ItemId(2)); // carrier users
            }
            b.user(&profile);
        }
        let map: Vec<ItemId> = (0..50).map(ItemId).collect();
        (b.build(), map)
    }

    #[test]
    fn random_attack_spends_exactly_the_budget() {
        let (ds, map) = world();
        let mf = ca_mf::train(&ds, &BprConfig { max_epochs: 2, ..Default::default() });
        let src = SourceDomain { data: &ds, mf: &mf, to_target: &map };
        let mut env =
            AttackEnvironment::new(NullRec { n_users: 0 }, vec![UserId(0)], ItemId(2), 5, 12);
        let mut rng = StdRng::seed_from_u64(1);
        let o = random_attack(&src, &mut env, &mut rng);
        assert_eq!(o.injections, 12);
        assert_eq!(o.selected_users.len(), 12);
        assert!(o.avg_items_per_profile > 0.0);
    }

    #[test]
    fn target_attack_selects_only_carriers() {
        let (ds, map) = world();
        let mf = ca_mf::train(&ds, &BprConfig { max_epochs: 2, ..Default::default() });
        let src = SourceDomain { data: &ds, mf: &mf, to_target: &map };
        let mut env =
            AttackEnvironment::new(NullRec { n_users: 0 }, vec![UserId(0)], ItemId(2), 5, 15);
        let mut rng = StdRng::seed_from_u64(2);
        let o = target_attack(&src, &mut env, ItemId(2), 0.7, &mut rng);
        for u in &o.selected_users {
            assert!(src.has_item(*u, ItemId(2)), "non-carrier {u} selected");
        }
        // 10 carriers, budget 15 → replacement kicks in.
        assert_eq!(o.injections, 15);
    }

    #[test]
    fn clipping_fraction_controls_profile_length() {
        let (ds, map) = world();
        let mf = ca_mf::train(&ds, &BprConfig { max_epochs: 2, ..Default::default() });
        let src = SourceDomain { data: &ds, mf: &mf, to_target: &map };
        let run = |fraction: f32| {
            let mut env =
                AttackEnvironment::new(NullRec { n_users: 0 }, vec![UserId(0)], ItemId(2), 5, 10);
            let mut rng = StdRng::seed_from_u64(3);
            target_attack(&src, &mut env, ItemId(2), fraction, &mut rng).avg_items_per_profile
        };
        let l40 = run(0.4);
        let l70 = run(0.7);
        let l100 = run(1.0);
        assert!(l40 < l70 && l70 < l100, "{l40} {l70} {l100}");
        // Carrier profiles have 7 items.
        assert!((l100 - 7.0).abs() < 1e-4);
    }

    #[test]
    fn flat_agent_masks_non_carriers() {
        let (ds, map) = world();
        let mf = ca_mf::train(&ds, &BprConfig { max_epochs: 2, ..Default::default() });
        let src = SourceDomain { data: &ds, mf: &mf, to_target: &map };
        let cfg = AttackConfig {
            budget: 8,
            query_every: 4,
            episodes: 2,
            tree_depth: 2,
            seed: 4,
            ..Default::default()
        };
        let mut agent = FlatPolicyAgent::new(cfg, &src, ItemId(2));
        let mut env =
            AttackEnvironment::new(NullRec { n_users: 0 }, vec![UserId(0)], ItemId(2), 5, 8);
        let o = agent.execute(&src, &mut env);
        for u in &o.selected_users {
            assert!(src.has_item(*u, ItemId(2)), "flat agent picked non-carrier {u}");
        }
    }

    #[test]
    #[should_panic(expected = "no carrier")]
    fn target_attack_rejects_absent_item() {
        let (ds, map) = world();
        let mf = ca_mf::train(&ds, &BprConfig { max_epochs: 2, ..Default::default() });
        let src = SourceDomain { data: &ds, mf: &mf, to_target: &map };
        let mut env =
            AttackEnvironment::new(NullRec { n_users: 0 }, vec![UserId(0)], ItemId(3), 5, 5);
        let mut rng = StdRng::seed_from_u64(5);
        let _ = target_attack(&src, &mut env, ItemId(3), 0.5, &mut rng);
    }
}
