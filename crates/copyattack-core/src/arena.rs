//! The attack arena: a uniform [`Attack`] trait and a string-keyed
//! [`AttackRegistry`] so every attacker — the paper's CopyAttack family,
//! its baselines, and rivals from the wider shilling literature — runs
//! head-to-head through the same [`AttackEnvironment`] (metering, retries,
//! faults, quorum rewards) against any deployed platform.
//!
//! Built-in entries (Table 2 labels):
//!
//! | key                  | attacker                                      |
//! |----------------------|-----------------------------------------------|
//! | `RandomAttack`       | [`crate::baselines::random_attack`]           |
//! | `TargetAttack{40,70,100}` | [`crate::baselines::target_attack`]      |
//! | `PolicyNetwork`      | [`crate::baselines::FlatPolicyAgent`]         |
//! | `CopyAttack`         | [`CopyAttackAgent`], full framework           |
//! | `CopyAttack-Masking` | ablation without masking (or crafting)        |
//! | `CopyAttack-Length`  | ablation without crafting                     |
//! | `FakeProfile`        | [`FakeProfileAttack`] (Huang et al., arXiv:2101.02644) |
//!
//! plus `KgAttack` ([`KgAttack`], arXiv:2207.10307), registered through
//! [`AttackRegistry::register_kg_attack`] because it needs an
//! [`ItemKnowledge`] graph over the *target* catalog.
//!
//! The legacy entries are thin shims over the pre-existing attackers: the
//! registry draws no RNG of its own and constructs each agent exactly as
//! the pipeline used to, so a registry-routed campaign is bitwise
//! identical to the hard-wired dispatch it replaced (pinned by golden
//! hashes in `tests/arena.rs`).

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::attack::{AttackOutcome, CopyAttackAgent, CopyAttackVariant};
use crate::baselines::{random_attack, target_attack, FlatPolicyAgent};
use crate::config::{AttackConfig, AttackGoal};
use crate::env::{AttackEnvironment, RewardSample};
use crate::source::SourceDomain;
use ca_recsys::{FallibleBlackBox, ItemId, RecError, UserId};
use ca_tensor::init::gaussian_vec;
use ca_tensor::{ops, Matrix};
use rand::rngs::StdRng;
use rand::Rng;

/// Typed failure for attack construction and configuration. `Display`
/// preserves the exact messages the pre-refactor `String` errors (and the
/// panics they replaced) carried, so `should_panic(expected = …)` pins and
/// checkpoint-recovery matching keep working.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AttackError {
    /// The attack configuration failed [`AttackConfig::validate`].
    InvalidConfig(String),
    /// Masking left no selectable source user for the target item.
    NoSelectableUser {
        /// Source-domain id of the target item.
        target_src: ItemId,
        /// The goal whose mask predicate failed.
        goal: AttackGoal,
    },
    /// The target item has no carrier profile in the source domain.
    NoCarriers {
        /// Source-domain id of the target item.
        target_src: ItemId,
    },
    /// The registry has no factory under this name.
    UnknownAttack {
        /// The key that failed to resolve.
        name: String,
    },
    /// A campaign was constructed with an empty target set.
    EmptyTargets,
    /// The knowledge graph does not cover the target item.
    MissingKnowledge {
        /// Target-domain id of the item outside the graph.
        target: ItemId,
        /// Number of items the graph covers.
        n_items: usize,
    },
}

impl std::fmt::Display for AttackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttackError::InvalidConfig(e) => write!(f, "invalid attack config: {e}"),
            AttackError::NoSelectableUser { target_src, goal } => write!(
                f,
                "no selectable source user for target item {target_src} under goal {goal:?}"
            ),
            AttackError::NoCarriers { target_src } => {
                write!(f, "target item {target_src} has no carrier in the source domain")
            }
            AttackError::UnknownAttack { name } => {
                write!(f, "no attack registered under {name:?}")
            }
            AttackError::EmptyTargets => write!(f, "a campaign needs at least one target"),
            AttackError::MissingKnowledge { target, n_items } => write!(
                f,
                "item knowledge covers {n_items} items but target item {target} is out of range"
            ),
        }
    }
}

impl std::error::Error for AttackError {}

/// A profile-injection attack against one target item, runnable through
/// the shared [`AttackEnvironment`].
///
/// The contract mirrors how the pipeline always drove its attackers:
///
/// 1. the factory ([`AttackRegistry::build`]) constructs the attack —
///    structural state (policy nets, masks, neighbor pools) is fixed here,
///    and any agent-internal RNG is seeded from `AttackConfig::seed`;
/// 2. [`Attack::prepare`] runs optional training episodes, each against a
///    fresh environment from `make_env` (RL agents learn here; stateless
///    attacks keep the no-op default);
/// 3. [`Attack::run`] executes one evaluation episode against `env`. The
///    caller-provided `rng` is the *episode* stream (seeded
///    `seed ^ 0xABCD` by the pipeline) used by attacks without internal
///    state; trained agents keep drawing from their own stream.
pub trait Attack<R: FallibleBlackBox> {
    /// The registry key / report label of this attack.
    fn name(&self) -> &str;

    /// Re-validates (and, where the attack supports it, applies) a new
    /// runtime configuration. Structural hyper-parameters baked in by the
    /// factory (tree depth, hidden widths, masks) are *not* rebuilt; use
    /// [`AttackRegistry::build`] for that.
    fn configure(&mut self, cfg: &AttackConfig) -> Result<(), AttackError> {
        cfg.validate().map_err(AttackError::InvalidConfig)
    }

    /// Optional training phase: episodes against fresh environments.
    fn prepare(
        &mut self,
        src: &SourceDomain<'_>,
        make_env: &mut dyn FnMut() -> AttackEnvironment<R>,
    ) {
        let _ = (src, make_env);
    }

    /// One evaluation episode: inject under the environment's budget,
    /// query on the attack's cadence, return the outcome. The polluted
    /// platform stays inside `env` for the caller to extract.
    fn run(
        &mut self,
        env: &mut AttackEnvironment<R>,
        src: &SourceDomain<'_>,
        target_src: ItemId,
        rng: &mut StdRng,
    ) -> AttackOutcome;
}

/// Factory signature stored in the registry: builds a boxed attack for one
/// (config, source domain, target item) triple. Factories must not draw
/// RNG — construction determinism is part of the bitwise-parity contract.
pub type AttackFactory<R> = Box<
    dyn Fn(&AttackConfig, &SourceDomain<'_>, ItemId) -> Result<Box<dyn Attack<R>>, AttackError>,
>;

/// String-keyed registry of attack factories over one platform type `R`.
///
/// Keys are ordered (`BTreeMap`), so [`AttackRegistry::names`] — and any
/// arena sweep iterating it — enumerates deterministically.
pub struct AttackRegistry<R: FallibleBlackBox> {
    factories: BTreeMap<String, AttackFactory<R>>,
}

impl<R: FallibleBlackBox + 'static> Default for AttackRegistry<R> {
    fn default() -> Self {
        Self::with_builtins()
    }
}

impl<R: FallibleBlackBox + 'static> AttackRegistry<R> {
    /// An empty registry.
    pub fn new() -> Self {
        Self { factories: BTreeMap::new() }
    }

    /// A registry with every built-in attacker registered under its
    /// Table 2 label (see the module docs for the list).
    pub fn with_builtins() -> Self {
        let mut reg = Self::new();
        reg.register("RandomAttack", |_, _, _| Ok(Box::new(RandomCopy)));
        for pct in [40u8, 70, 100] {
            reg.register(format!("TargetAttack{pct}"), move |_, src, target_src| {
                if src.users_with_item(target_src).is_empty() {
                    return Err(AttackError::NoCarriers { target_src });
                }
                Ok(Box::new(TargetCopy {
                    label: format!("TargetAttack{pct}"),
                    fraction: pct as f32 / 100.0,
                }))
            });
        }
        reg.register("PolicyNetwork", |cfg, src, target_src| {
            Ok(Box::new(FlatEntry {
                agent: FlatPolicyAgent::try_new(cfg.clone(), src, target_src)?,
            }))
        });
        for (label, variant) in [
            ("CopyAttack", CopyAttackVariant::full()),
            ("CopyAttack-Masking", CopyAttackVariant::no_masking()),
            ("CopyAttack-Length", CopyAttackVariant::no_crafting()),
        ] {
            reg.register(label, move |cfg, src, target_src| {
                Ok(Box::new(CopyAttackEntry {
                    agent: CopyAttackAgent::try_new(cfg.clone(), variant, src, target_src)?,
                    label,
                }))
            });
        }
        reg.register("FakeProfile", |cfg, src, target_src| {
            Ok(Box::new(FakeProfileAttack::new(cfg.clone(), src, target_src)))
        });
        reg
    }

    /// Registers (or replaces — latest wins) a factory under `name`.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        factory: impl Fn(&AttackConfig, &SourceDomain<'_>, ItemId) -> Result<Box<dyn Attack<R>>, AttackError>
            + 'static,
    ) {
        self.factories.insert(name.into(), Box::new(factory));
    }

    /// Registers `KgAttack` over the given knowledge graph. Separate from
    /// [`AttackRegistry::with_builtins`] because the graph is worldly
    /// state the registry cannot conjure.
    pub fn register_kg_attack(&mut self, knowledge: Arc<ItemKnowledge>) {
        self.register("KgAttack", move |cfg, src, target_src| {
            Ok(Box::new(KgAttack::try_new(cfg.clone(), knowledge.clone(), src, target_src)?))
        });
    }

    /// The registered attack names, in deterministic (sorted) order.
    pub fn names(&self) -> Vec<&str> {
        self.factories.keys().map(String::as_str).collect()
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.factories.contains_key(name)
    }

    /// Validates `cfg` and builds the named attack for `target_src`.
    pub fn build(
        &self,
        name: &str,
        cfg: &AttackConfig,
        src: &SourceDomain<'_>,
        target_src: ItemId,
    ) -> Result<Box<dyn Attack<R>>, AttackError> {
        cfg.validate().map_err(AttackError::InvalidConfig)?;
        let factory = self
            .factories
            .get(name)
            .ok_or_else(|| AttackError::UnknownAttack { name: name.into() })?;
        factory(cfg, src, target_src)
    }
}

// --- legacy shims ---------------------------------------------------------

/// Registry shim over [`random_attack`].
struct RandomCopy;

impl<R: FallibleBlackBox> Attack<R> for RandomCopy {
    fn name(&self) -> &str {
        "RandomAttack"
    }

    fn run(
        &mut self,
        env: &mut AttackEnvironment<R>,
        src: &SourceDomain<'_>,
        _target_src: ItemId,
        rng: &mut StdRng,
    ) -> AttackOutcome {
        random_attack(src, env, rng)
    }
}

/// Registry shim over [`target_attack`] at one clipping fraction.
struct TargetCopy {
    label: String,
    fraction: f32,
}

impl<R: FallibleBlackBox> Attack<R> for TargetCopy {
    fn name(&self) -> &str {
        &self.label
    }

    fn run(
        &mut self,
        env: &mut AttackEnvironment<R>,
        src: &SourceDomain<'_>,
        target_src: ItemId,
        rng: &mut StdRng,
    ) -> AttackOutcome {
        target_attack(src, env, target_src, self.fraction, rng)
    }
}

/// Registry shim over the flat [`FlatPolicyAgent`] baseline.
struct FlatEntry {
    agent: FlatPolicyAgent,
}

impl<R: FallibleBlackBox> Attack<R> for FlatEntry {
    fn name(&self) -> &str {
        "PolicyNetwork"
    }

    fn prepare(
        &mut self,
        src: &SourceDomain<'_>,
        make_env: &mut dyn FnMut() -> AttackEnvironment<R>,
    ) {
        self.agent.train(src, make_env);
    }

    fn run(
        &mut self,
        env: &mut AttackEnvironment<R>,
        src: &SourceDomain<'_>,
        _target_src: ItemId,
        _rng: &mut StdRng,
    ) -> AttackOutcome {
        self.agent.execute(src, env)
    }
}

/// Registry shim over [`CopyAttackAgent`] (one variant per entry).
struct CopyAttackEntry {
    agent: CopyAttackAgent,
    label: &'static str,
}

impl<R: FallibleBlackBox> Attack<R> for CopyAttackEntry {
    fn name(&self) -> &str {
        self.label
    }

    fn prepare(
        &mut self,
        src: &SourceDomain<'_>,
        make_env: &mut dyn FnMut() -> AttackEnvironment<R>,
    ) {
        self.agent.train(src, make_env);
    }

    fn run(
        &mut self,
        env: &mut AttackEnvironment<R>,
        src: &SourceDomain<'_>,
        _target_src: ItemId,
        _rng: &mut StdRng,
    ) -> AttackOutcome {
        self.agent.execute(src, env)
    }
}

// --- FakeProfile (Huang et al., arXiv:2101.02644) -------------------------

/// Optimization-based fake-profile poisoning in the spirit of Huang et
/// al.: instead of copying real cross-domain profiles, the attacker
/// *synthesizes* each fake user against its surrogate of the platform —
/// here the source-domain MF model the CopyAttack threat model already
/// grants it. Per injection it optimizes a synthetic user vector toward
/// the target item's embedding (gradient ascent on `u·q* − λ‖u‖²/2` from
/// a noisy start), then fills the profile with the items that user would
/// most plausibly have consumed (top filler items by `u·q_v`), placing
/// the target item among them. Profiles go through the same
/// [`AttackEnvironment`], so metering, retries, faults, and the detector
/// screen all apply.
pub struct FakeProfileAttack {
    cfg: AttackConfig,
    target_src: ItemId,
    /// Fillers per profile: the mean genuine source profile length, so the
    /// fakes are length-camouflaged against the profile-length feature.
    profile_len: usize,
    /// Gradient-ascent steps on the synthetic user vector.
    opt_steps: usize,
    /// Step size of the ascent.
    opt_lr: f32,
    /// L2 pull `λ` keeping the synthetic vector on-manifold.
    reg: f32,
    /// Std-dev of the per-profile initialization noise (the source of
    /// profile diversity).
    noise: f32,
}

impl FakeProfileAttack {
    /// Builds the attack; the surrogate is `src`'s MF model.
    pub fn new(cfg: AttackConfig, src: &SourceDomain<'_>, target_src: ItemId) -> Self {
        let n_users = src.n_users().max(1);
        let total: usize = (0..n_users).map(|u| src.data.profile(UserId(u as u32)).len()).sum();
        let profile_len = (total / n_users).max(2);
        Self { cfg, target_src, profile_len, opt_steps: 5, opt_lr: 0.1, reg: 0.1, noise: 0.25 }
    }
}

impl<R: FallibleBlackBox> Attack<R> for FakeProfileAttack {
    fn name(&self) -> &str {
        "FakeProfile"
    }

    fn configure(&mut self, cfg: &AttackConfig) -> Result<(), AttackError> {
        cfg.validate().map_err(AttackError::InvalidConfig)?;
        self.cfg = cfg.clone();
        Ok(())
    }

    fn run(
        &mut self,
        env: &mut AttackEnvironment<R>,
        src: &SourceDomain<'_>,
        _target_src: ItemId,
        rng: &mut StdRng,
    ) -> AttackOutcome {
        let budget = self.cfg.budget;
        let q_target: Vec<f32> = src.item_embedding(self.target_src).to_vec();
        let n_items = src.mf.n_items();
        let mut total_items = 0usize;
        let mut landed = 0usize;
        let mut failed = 0usize;
        let mut skipped = 0usize;
        let mut last_reward = 0.0f32;
        let mut last_error: Option<RecError> = None;

        for t in 0..budget {
            if env.exhausted() {
                break;
            }
            // Synthesize this profile's user vector: noisy start near q*,
            // then ascend u·q* − λ‖u‖²/2 toward the regularized optimum.
            let mut u = q_target.clone();
            let jitter = gaussian_vec(rng, u.len(), 0.0, self.noise);
            ops::axpy(1.0, &jitter, &mut u);
            for _ in 0..self.opt_steps {
                for (ui, qi) in u.iter_mut().zip(&q_target) {
                    *ui += self.opt_lr * (qi - self.reg * *ui);
                }
            }
            // Fillers: the items this synthetic user scores highest — its
            // most plausible consumption history under the surrogate.
            let mut scored: Vec<(f32, u32)> = (0..n_items as u32)
                .filter(|&v| ItemId(v) != self.target_src)
                .map(|v| (ops::dot(&u, src.item_embedding(ItemId(v))), v))
                .collect();
            scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
            let fillers = self.profile_len.saturating_sub(1).min(scored.len());
            let mut profile_src: Vec<ItemId> =
                scored[..fillers].iter().map(|&(_, v)| ItemId(v)).collect();
            profile_src.insert(profile_src.len() / 2, self.target_src);
            let profile_tgt = src.translate(&profile_src);

            match env.try_inject(&profile_tgt) {
                Ok(_) => {
                    total_items += profile_tgt.len();
                    landed += 1;
                }
                Err(e) => {
                    failed += 1;
                    last_error = Some(e);
                    continue;
                }
            }
            if (t + 1) % self.cfg.query_every == 0 || t + 1 == budget {
                match env.try_query_reward() {
                    RewardSample::Observed { reward: hr, .. } => {
                        last_reward = self.cfg.goal.reward(hr);
                    }
                    RewardSample::Skipped { .. } => skipped += 1,
                }
                if last_reward >= 1.0 {
                    break;
                }
            }
        }

        AttackOutcome {
            final_reward: last_reward,
            injections: env.injections(),
            queries: env.queries(),
            avg_items_per_profile: if landed == 0 {
                0.0
            } else {
                total_items as f32 / landed as f32
            },
            selected_users: Vec::new(),
            failed_injections: failed,
            skipped_rewards: skipped,
            aborted: if landed == 0 && failed > 0 { last_error } else { None },
        }
    }
}

// --- KgAttack (arXiv:2207.10307) ------------------------------------------

/// Item-side knowledge the KGAttack-style rival navigates: latent vectors
/// and cluster assignments over the *target* catalog. The synthetic
/// world's [`ca_datagen`-style] ground truth provides exactly this (the
/// cluster graph plays the role of the knowledge graph's entity
/// neighborhoods), but any item embedding + partition works.
///
/// [`ca_datagen`-style]: https://arxiv.org/abs/2207.10307
#[derive(Clone, Debug)]
pub struct ItemKnowledge {
    item_vecs: Matrix,
    item_cluster: Vec<usize>,
}

impl ItemKnowledge {
    /// Bundles item latent vectors (row per target item) with a cluster
    /// assignment of the same length.
    ///
    /// # Panics
    /// Panics when the row count and assignment length disagree.
    pub fn new(item_vecs: Matrix, item_cluster: Vec<usize>) -> Self {
        assert_eq!(
            item_vecs.rows(),
            item_cluster.len(),
            "item vectors and cluster assignment must cover the same catalog"
        );
        Self { item_vecs, item_cluster }
    }

    /// Number of items the knowledge covers.
    pub fn n_items(&self) -> usize {
        self.item_cluster.len()
    }

    /// The latent vector of one target item.
    pub fn item_vec(&self, v: ItemId) -> &[f32] {
        self.item_vecs.row(v.idx())
    }

    /// The cluster of one target item.
    pub fn cluster(&self, v: ItemId) -> usize {
        self.item_cluster[v.idx()]
    }

    /// The knowledge neighborhood of `v`: items sharing its cluster,
    /// ranked by latent affinity (dot product) to `v`, capped at `cap`.
    /// Falls back to the affinity ranking over the whole catalog when the
    /// cluster is a singleton. `v` itself is excluded. Ties break on item
    /// id, so the pool is deterministic.
    pub fn neighbors(&self, v: ItemId, cap: usize) -> Vec<ItemId> {
        let qv = self.item_vec(v);
        let same: Vec<u32> = (0..self.n_items() as u32)
            .filter(|&o| ItemId(o) != v && self.item_cluster[o as usize] == self.cluster(v))
            .collect();
        let pool = if same.is_empty() {
            (0..self.n_items() as u32).filter(|&o| ItemId(o) != v).collect()
        } else {
            same
        };
        let mut scored: Vec<(f32, u32)> =
            pool.into_iter().map(|o| (ops::dot(qv, self.item_vecs.row(o as usize)), o)).collect();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        scored.truncate(cap);
        scored.into_iter().map(|(_, o)| ItemId(o)).collect()
    }
}

/// Size of the knowledge-neighbor pool KgAttack samples fillers from.
const KG_POOL: usize = 64;

/// Knowledge-enhanced profile injection in the spirit of KGAttack: each
/// fake profile anchors the target item `v*` and pads it with items drawn
/// from `v*`'s knowledge neighborhood (same latent cluster, ranked by
/// affinity), head-biased so closer neighbors are likelier. Profile
/// lengths are sampled from real source users, camouflaging the fakes
/// against length-based detection. Unlike the copy-based attacks it
/// builds profiles directly in target-domain ids — the knowledge graph
/// lives over the target catalog — and needs no carrier users at all.
pub struct KgAttack {
    cfg: AttackConfig,
    /// Target-domain id of the item under attack.
    target_tgt: ItemId,
    /// Precomputed knowledge-neighbor pool of the target, affinity-ranked.
    pool: Vec<ItemId>,
}

impl KgAttack {
    /// Builds the attack: resolves `target_src` through the alignment map
    /// and precomputes the knowledge-neighbor pool. Fails when the
    /// knowledge graph does not cover the target item.
    pub fn try_new(
        cfg: AttackConfig,
        knowledge: Arc<ItemKnowledge>,
        src: &SourceDomain<'_>,
        target_src: ItemId,
    ) -> Result<Self, AttackError> {
        let target_tgt = src.to_target[target_src.idx()];
        if target_tgt.idx() >= knowledge.n_items() {
            return Err(AttackError::MissingKnowledge {
                target: target_tgt,
                n_items: knowledge.n_items(),
            });
        }
        let pool = knowledge.neighbors(target_tgt, KG_POOL);
        Ok(Self { cfg, target_tgt, pool })
    }
}

impl<R: FallibleBlackBox> Attack<R> for KgAttack {
    fn name(&self) -> &str {
        "KgAttack"
    }

    fn configure(&mut self, cfg: &AttackConfig) -> Result<(), AttackError> {
        cfg.validate().map_err(AttackError::InvalidConfig)?;
        self.cfg = cfg.clone();
        Ok(())
    }

    fn run(
        &mut self,
        env: &mut AttackEnvironment<R>,
        src: &SourceDomain<'_>,
        _target_src: ItemId,
        rng: &mut StdRng,
    ) -> AttackOutcome {
        let budget = self.cfg.budget;
        let mut total_items = 0usize;
        let mut landed = 0usize;
        let mut failed = 0usize;
        let mut skipped = 0usize;
        let mut last_reward = 0.0f32;
        let mut last_error: Option<RecError> = None;

        for t in 0..budget {
            if env.exhausted() {
                break;
            }
            // Length camouflage: copy the length of a random real profile.
            let u = UserId(rng.gen_range(0..src.n_users() as u32));
            let len = src.data.profile(u).len().max(2);
            let mut profile = vec![self.target_tgt];
            if !self.pool.is_empty() {
                let mut misses = 0usize;
                while profile.len() < len && misses < 4 * len {
                    // Quadratic head bias: nearer knowledge neighbors are
                    // likelier fillers.
                    let r = rng.gen::<f32>() * rng.gen::<f32>();
                    let idx = ((r * self.pool.len() as f32) as usize).min(self.pool.len() - 1);
                    let v = self.pool[idx];
                    if profile.contains(&v) {
                        misses += 1;
                    } else {
                        profile.push(v);
                    }
                }
            }

            match env.try_inject(&profile) {
                Ok(_) => {
                    total_items += profile.len();
                    landed += 1;
                }
                Err(e) => {
                    failed += 1;
                    last_error = Some(e);
                    continue;
                }
            }
            if (t + 1) % self.cfg.query_every == 0 || t + 1 == budget {
                match env.try_query_reward() {
                    RewardSample::Observed { reward: hr, .. } => {
                        last_reward = self.cfg.goal.reward(hr);
                    }
                    RewardSample::Skipped { .. } => skipped += 1,
                }
                if last_reward >= 1.0 {
                    break;
                }
            }
        }

        AttackOutcome {
            final_reward: last_reward,
            injections: env.injections(),
            queries: env.queries(),
            avg_items_per_profile: if landed == 0 {
                0.0
            } else {
                total_items as f32 / landed as f32
            },
            selected_users: Vec::new(),
            failed_injections: failed,
            skipped_rewards: skipped,
            aborted: if landed == 0 && failed > 0 { last_error } else { None },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_mf::BprConfig;
    use ca_recsys::{BlackBoxRecommender, Dataset, DatasetBuilder};
    use rand::SeedableRng;

    struct NullRec {
        n_users: usize,
        catalog: usize,
    }
    impl BlackBoxRecommender for NullRec {
        fn top_k(&self, _u: UserId, k: usize) -> Vec<ItemId> {
            (0..k as u32).map(ItemId).collect()
        }
        fn inject_user(&mut self, _p: &[ItemId]) -> UserId {
            let id = UserId(self.n_users as u32);
            self.n_users += 1;
            id
        }
        fn catalog_size(&self) -> usize {
            self.catalog
        }
    }

    fn world() -> (Dataset, Vec<ItemId>) {
        let mut b = DatasetBuilder::new(50);
        for u in 0..40u32 {
            let mut profile: Vec<ItemId> = (0..6).map(|i| ItemId((u + i * 5) % 45 + 5)).collect();
            if u % 4 == 0 {
                profile.insert(3, ItemId(2));
            }
            b.user(&profile);
        }
        let map: Vec<ItemId> = (0..50).map(ItemId).collect();
        (b.build(), map)
    }

    fn knowledge() -> Arc<ItemKnowledge> {
        let mut rng = StdRng::seed_from_u64(9);
        let vecs = Matrix::from_fn(50, 4, |_, _| gaussian_vec(&mut rng, 1, 0.0, 1.0)[0]);
        let clusters: Vec<usize> = (0..50).map(|v| v % 3).collect();
        Arc::new(ItemKnowledge::new(vecs, clusters))
    }

    /// The reward target is item 900 — never in NullRec's Top-k — so no
    /// attack early-stops and the full budget is spent.
    fn env(budget: usize) -> AttackEnvironment<NullRec> {
        AttackEnvironment::new(
            NullRec { n_users: 0, catalog: 1000 },
            vec![UserId(0)],
            ItemId(900),
            5,
            budget,
        )
    }

    #[test]
    fn builtin_names_are_sorted_and_complete() {
        let reg: AttackRegistry<NullRec> = AttackRegistry::with_builtins();
        let names = reg.names();
        for expect in [
            "CopyAttack",
            "CopyAttack-Length",
            "CopyAttack-Masking",
            "FakeProfile",
            "PolicyNetwork",
            "RandomAttack",
            "TargetAttack100",
            "TargetAttack40",
            "TargetAttack70",
        ] {
            assert!(names.contains(&expect), "missing {expect} in {names:?}");
        }
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "BTreeMap order must be sorted");
    }

    #[test]
    fn unknown_name_is_a_typed_error() {
        let (ds, map) = world();
        let mf = ca_mf::train(&ds, &BprConfig { max_epochs: 2, ..Default::default() });
        let src = SourceDomain { data: &ds, mf: &mf, to_target: &map };
        let reg: AttackRegistry<NullRec> = AttackRegistry::with_builtins();
        let err = reg
            .build("GhostAttack", &AttackConfig::default(), &src, ItemId(2))
            .err()
            .expect("must fail");
        assert_eq!(err, AttackError::UnknownAttack { name: "GhostAttack".into() });
    }

    #[test]
    fn carrierless_target_fails_with_typed_errors() {
        let (ds, map) = world();
        let mf = ca_mf::train(&ds, &BprConfig { max_epochs: 2, ..Default::default() });
        let src = SourceDomain { data: &ds, mf: &mf, to_target: &map };
        let reg: AttackRegistry<NullRec> = AttackRegistry::with_builtins();
        // Item 3 exists in the catalog but no profile carries it.
        let err = reg
            .build("TargetAttack70", &AttackConfig::default(), &src, ItemId(3))
            .err()
            .expect("must fail");
        assert_eq!(err, AttackError::NoCarriers { target_src: ItemId(3) });
        let err = reg
            .build("PolicyNetwork", &AttackConfig::default(), &src, ItemId(3))
            .err()
            .expect("must fail");
        assert!(err.to_string().contains("no carrier"), "{err}");
        let err = reg
            .build("CopyAttack", &AttackConfig::default(), &src, ItemId(3))
            .err()
            .expect("must fail");
        assert!(err.to_string().contains("no selectable source user"), "{err}");
    }

    #[test]
    fn invalid_config_is_rejected_before_the_factory_runs() {
        let (ds, map) = world();
        let mf = ca_mf::train(&ds, &BprConfig { max_epochs: 2, ..Default::default() });
        let src = SourceDomain { data: &ds, mf: &mf, to_target: &map };
        let reg: AttackRegistry<NullRec> = AttackRegistry::with_builtins();
        let bad = AttackConfig { budget: 0, ..Default::default() };
        let err = reg.build("RandomAttack", &bad, &src, ItemId(2)).err().expect("must fail");
        assert!(matches!(err, AttackError::InvalidConfig(_)), "{err:?}");
        assert!(err.to_string().contains("invalid attack config"), "{err}");
    }

    #[test]
    fn fake_profile_places_the_target_and_meters_queries() {
        let (ds, map) = world();
        let mf = ca_mf::train(&ds, &BprConfig { max_epochs: 2, ..Default::default() });
        let src = SourceDomain { data: &ds, mf: &mf, to_target: &map };
        let reg: AttackRegistry<NullRec> = AttackRegistry::with_builtins();
        let cfg = AttackConfig { budget: 9, query_every: 3, ..Default::default() };
        let mut attack = reg.build("FakeProfile", &cfg, &src, ItemId(2)).unwrap();
        let mut e = env(9);
        let mut rng = StdRng::seed_from_u64(1);
        let o = attack.run(&mut e, &src, ItemId(2), &mut rng);
        assert_eq!(o.injections, 9);
        assert!(o.queries > 0, "cadenced reward queries must be metered");
        assert!(o.avg_items_per_profile >= 2.0);
    }

    #[test]
    fn kg_attack_crafts_from_the_target_cluster() {
        let (ds, map) = world();
        let mf = ca_mf::train(&ds, &BprConfig { max_epochs: 2, ..Default::default() });
        let src = SourceDomain { data: &ds, mf: &mf, to_target: &map };
        let kg = knowledge();
        let cfg = AttackConfig { budget: 6, query_every: 3, ..Default::default() };
        let mut attack = KgAttack::try_new(cfg, kg.clone(), &src, ItemId(2)).unwrap();
        // The identity map means target-domain id 2; its pool is cluster 2.
        for v in &attack.pool {
            assert_eq!(kg.cluster(*v), kg.cluster(ItemId(2)), "{v} outside the target cluster");
        }
        let mut e = env(6);
        let mut rng = StdRng::seed_from_u64(2);
        let o = Attack::<NullRec>::run(&mut attack, &mut e, &src, ItemId(2), &mut rng);
        assert_eq!(o.injections, 6);
        assert!(o.avg_items_per_profile >= 2.0);
    }

    #[test]
    fn kg_attack_rejects_uncovered_targets() {
        let (ds, _) = world();
        let mf = ca_mf::train(&ds, &BprConfig { max_epochs: 2, ..Default::default() });
        // A map sending everything past the knowledge range.
        let map: Vec<ItemId> = (0..50).map(|s| ItemId(s + 100)).collect();
        let src = SourceDomain { data: &ds, mf: &mf, to_target: &map };
        let err = KgAttack::try_new(AttackConfig::default(), knowledge(), &src, ItemId(2))
            .err()
            .expect("must fail");
        assert!(matches!(err, AttackError::MissingKnowledge { .. }), "{err:?}");
    }

    #[test]
    fn rivals_are_seed_reproducible() {
        let (ds, map) = world();
        let mf = ca_mf::train(&ds, &BprConfig { max_epochs: 2, ..Default::default() });
        let src = SourceDomain { data: &ds, mf: &mf, to_target: &map };
        let reg: AttackRegistry<NullRec> = AttackRegistry::with_builtins();
        let cfg = AttackConfig { budget: 8, query_every: 4, ..Default::default() };
        for name in ["FakeProfile", "RandomAttack"] {
            let run = |seed: u64| {
                let mut attack = reg.build(name, &cfg, &src, ItemId(2)).unwrap();
                let mut e = env(8);
                let mut rng = StdRng::seed_from_u64(seed);
                let o = attack.run(&mut e, &src, ItemId(2), &mut rng);
                (o.selected_users.clone(), o.avg_items_per_profile.to_bits(), o.queries)
            };
            assert_eq!(run(7), run(7), "{name} not reproducible");
        }
    }

    #[test]
    fn latest_registration_wins() {
        let mut reg: AttackRegistry<NullRec> = AttackRegistry::with_builtins();
        reg.register("RandomAttack", |_, _, _| {
            Err(AttackError::UnknownAttack { name: "shadowed".into() })
        });
        let (ds, map) = world();
        let mf = ca_mf::train(&ds, &BprConfig { max_epochs: 2, ..Default::default() });
        let src = SourceDomain { data: &ds, mf: &mf, to_target: &map };
        let err = reg
            .build("RandomAttack", &AttackConfig::default(), &src, ItemId(2))
            .err()
            .expect("must fail");
        assert_eq!(err, AttackError::UnknownAttack { name: "shadowed".into() });
    }
}
