//! Attack hyper-parameters (§5.1.3).

pub use ca_nn::EncoderKind;

/// Attack objective. The paper evaluates promotion and names demotion as
/// future work ("this type of reward function based on ranking evaluation
/// … could be used for either a promotion or demotion attack", §4.2); both
/// share the Eq. 1 machinery with the reward flipped.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum AttackGoal {
    /// Push the target item *into* users' Top-k lists.
    #[default]
    Promote,
    /// Push the target item *out of* users' Top-k lists.
    Demote,
}

impl AttackGoal {
    /// Transforms the raw hit ratio into the goal's reward.
    pub fn reward(&self, hit_ratio: f32) -> f32 {
        match self {
            AttackGoal::Promote => hit_ratio,
            AttackGoal::Demote => 1.0 - hit_ratio,
        }
    }
}

/// Configuration shared by CopyAttack and its RL baselines/ablations.
#[derive(Clone, Debug)]
pub struct AttackConfig {
    /// Budget Δ: maximum number of copied profiles (paper: 30).
    pub budget: usize,
    /// Number of pretend users the attacker controls (paper: 50).
    pub n_pretend: usize,
    /// Query the target system after every this many injections (paper: 3).
    pub query_every: usize,
    /// Top-k cutoff used in the reward's hit ratio.
    pub reward_k: usize,
    /// Discount factor γ (paper: 0.6).
    pub discount: f32,
    /// Learning rate for all policy networks. The paper reports 1e-3 over
    /// an (unstated, large) number of query rounds; this reproduction runs
    /// far fewer episodes, so the default is raised to keep the total
    /// policy movement comparable. Set 1e-3 to match the paper verbatim.
    pub lr: f32,
    /// Training episodes against (clones of) the target system.
    pub episodes: usize,
    /// Hidden width of the policy MLPs (the paper sets "the size of action"
    /// to 8; embeddings are 8-dimensional).
    pub hidden: usize,
    /// Clustering-tree decision depth (paper: 3 for Flixster, 6 for
    /// Netflix).
    pub tree_depth: usize,
    /// Number of discrete crafting levels (paper: 10 → {10%, …, 100%}).
    pub clip_levels: usize,
    /// Global-norm gradient clip for the episode update.
    pub grad_clip: f32,
    /// Promotion or demotion (the paper's future-work direction).
    pub goal: AttackGoal,
    /// Recurrent cell encoding the selected-user sequence (the paper says
    /// only "an RNN model"; GRU is the ablation alternative).
    pub encoder: EncoderKind,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AttackConfig {
    fn default() -> Self {
        Self {
            budget: 30,
            n_pretend: 50,
            query_every: 3,
            reward_k: 20,
            discount: 0.6,
            lr: 0.05,
            episodes: 60,
            hidden: 16,
            tree_depth: 3,
            clip_levels: 10,
            grad_clip: 5.0,
            goal: AttackGoal::Promote,
            encoder: EncoderKind::Rnn,
            seed: 0,
        }
    }
}

impl AttackConfig {
    /// Sanity-checks the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.budget == 0 {
            return Err("budget must be positive".into());
        }
        if self.query_every == 0 || self.query_every > self.budget {
            return Err(format!("query_every {} must be in 1..={}", self.query_every, self.budget));
        }
        if !(0.0..=1.0).contains(&self.discount) {
            return Err(format!("discount {} must be in [0, 1]", self.discount));
        }
        if self.clip_levels == 0 {
            return Err("need at least one clipping level".into());
        }
        if self.tree_depth == 0 {
            return Err("tree depth must be at least 1".into());
        }
        Ok(())
    }

    /// The crafting level fractions `{1/L, 2/L, …, 1.0}` (paper's
    /// `W = {10%, …, 100%}` for L = 10).
    pub fn clip_fractions(&self) -> Vec<f32> {
        (1..=self.clip_levels).map(|i| i as f32 / self.clip_levels as f32).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = AttackConfig::default();
        assert_eq!(c.budget, 30);
        assert_eq!(c.n_pretend, 50);
        assert_eq!(c.query_every, 3);
        assert!((c.discount - 0.6).abs() < 1e-6);
        assert!((c.lr - 0.05).abs() < 1e-9);
        assert_eq!(c.clip_levels, 10);
        assert_eq!(c.goal, AttackGoal::Promote);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn clip_fractions_are_the_paper_set() {
        let c = AttackConfig::default();
        let w = c.clip_fractions();
        assert_eq!(w.len(), 10);
        assert!((w[0] - 0.1).abs() < 1e-6);
        assert!((w[4] - 0.5).abs() < 1e-6);
        assert!((w[9] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn validation_rejects_bad_query_cadence() {
        let c = AttackConfig { query_every: 0, ..Default::default() };
        assert!(c.validate().is_err());
        let c = AttackConfig { query_every: 31, budget: 30, ..Default::default() };
        assert!(c.validate().is_err());
    }

    #[test]
    fn goal_reward_transform() {
        assert_eq!(AttackGoal::Promote.reward(0.3), 0.3);
        assert!((AttackGoal::Demote.reward(0.3) - 0.7).abs() < 1e-6);
        assert_eq!(AttackGoal::Demote.reward(0.0), 1.0);
    }

    #[test]
    fn validation_rejects_bad_discount() {
        let c = AttackConfig { discount: 1.5, ..Default::default() };
        assert!(c.validate().is_err());
    }
}
