//! User-profile selection (§4.3): hierarchical-structure policy gradient
//! over the clustering tree, and the flat PolicyNetwork baseline.
//!
//! The state for every decision is `[q_{v*} ⊕ x_{v*}]`, where `q_{v*}` is
//! the source-domain MF embedding of the target item and `x_{v*}` is the
//! RNN encoding of the users already selected this episode. Walking the
//! tree decomposes `π(a^u_t | s^u_t)` into a product of per-node masked
//! softmaxes; the flat baseline spends one softmax over *all* users
//! instead, which is the O(n)-per-decision cost the tree removes.

use ca_cluster::{ClusterTree, NodeId, TreeMask};
use ca_nn::{
    Categorical, EncoderKind, Mlp, MlpCache, MlpGrad, Rnn, RnnCache, RnnGrad, SeqCache, SeqEncoder,
    SeqGrad,
};
use ca_recsys::UserId;
use rand::Rng;

/// One decision on the root→leaf walk.
pub struct SelectionStep {
    /// The internal node where the decision was taken.
    pub node: NodeId,
    /// Distribution over that node's children (masked).
    pub dist: Categorical,
    /// The chosen child position.
    pub action: usize,
    /// Forward cache of the node's policy MLP.
    pub cache: MlpCache,
}

/// A complete sampled selection `a^u_t` (the paper's root→leaf path).
pub struct SelectionSample {
    /// The selected source user.
    pub user: UserId,
    /// Per-node decisions along the path, root first.
    pub steps: Vec<SelectionStep>,
    /// Encoder cache for the state encoding (shared by all steps).
    pub rnn_cache: SeqCache,
    /// The `[q_{v*} ⊕ x_{v*}]` state input used at every node.
    pub state: Vec<f32>,
}

/// Gradient accumulators for a [`HierarchicalPolicy`].
pub struct PolicyGrads {
    nets: Vec<Option<MlpGrad>>,
    rnn: SeqGrad,
}

impl PolicyGrads {
    /// Global L2 norm across all touched parameters.
    pub fn norm(&self) -> f32 {
        let mut acc = self.rnn.norm().powi(2);
        for g in self.nets.iter().flatten() {
            acc += g.norm().powi(2);
        }
        acc.sqrt()
    }

    /// Scales every accumulated gradient by `alpha`.
    pub fn scale(&mut self, alpha: f32) {
        self.rnn.scale(alpha);
        for g in self.nets.iter_mut().flatten() {
            g.scale(alpha);
        }
    }
}

/// The hierarchical-structure policy: one MLP per internal tree node plus a
/// shared RNN state encoder.
#[derive(Clone)]
pub struct HierarchicalPolicy {
    tree: ClusterTree,
    nets: Vec<Mlp>,
    rnn: SeqEncoder,
    embed_dim: usize,
}

impl HierarchicalPolicy {
    /// Builds the policy over a clustering tree with the default Elman RNN
    /// state encoder. `embed_dim` is the MF embedding size `e`; each node
    /// MLP maps `[q ⊕ x] ∈ R^{2e}` to logits over that node's children.
    pub fn new(rng: &mut impl Rng, tree: ClusterTree, embed_dim: usize, hidden: usize) -> Self {
        Self::with_encoder(rng, tree, embed_dim, hidden, EncoderKind::Rnn)
    }

    /// Builds the policy with an explicit state-encoder kind (RNN or GRU) —
    /// the encoder ablation of DESIGN.md §5.
    pub fn with_encoder(
        rng: &mut impl Rng,
        tree: ClusterTree,
        embed_dim: usize,
        hidden: usize,
        encoder: EncoderKind,
    ) -> Self {
        let mut nets = Vec::with_capacity(tree.n_internal());
        for node in tree.internal_nodes() {
            debug_assert_eq!(tree.internal_index(node), nets.len());
            let out = tree.children(node).len();
            nets.push(Mlp::new(rng, &[2 * embed_dim, hidden, out], 0.3));
        }
        let rnn = SeqEncoder::new(encoder, rng, embed_dim, embed_dim, 0.3);
        Self { tree, nets, rnn, embed_dim }
    }

    /// The state-encoder kind in use.
    pub fn encoder_kind(&self) -> EncoderKind {
        self.rnn.kind()
    }

    /// The underlying clustering tree.
    pub fn tree(&self) -> &ClusterTree {
        &self.tree
    }

    /// Number of policy networks (the paper's `I`).
    pub fn n_networks(&self) -> usize {
        self.nets.len()
    }

    /// Total trainable parameters (networks + RNN).
    pub fn param_count(&self) -> usize {
        self.nets.iter().map(Mlp::param_count).sum::<usize>() + self.rnn.param_count()
    }

    /// Encodes the episode state `[q_{v*} ⊕ RNN(selected)]`.
    fn encode_state(&self, q_target: &[f32], prev: &[&[f32]]) -> (Vec<f32>, SeqCache) {
        debug_assert_eq!(q_target.len(), self.embed_dim);
        let (x, cache) = self.rnn.forward(prev);
        let mut state = Vec::with_capacity(2 * self.embed_dim);
        state.extend_from_slice(q_target);
        state.extend_from_slice(&x);
        (state, cache)
    }

    /// Samples a root→leaf walk under the mask.
    ///
    /// # Panics
    /// Panics if the mask blocks the root (no allowed user exists — the
    /// target item must be in the source domain per §3).
    pub fn select(
        &self,
        q_target: &[f32],
        prev: &[&[f32]],
        mask: &TreeMask,
        rng: &mut impl Rng,
    ) -> SelectionSample {
        assert!(mask.any_allowed(), "mask blocks every source user");
        let (state, rnn_cache) = self.encode_state(q_target, prev);
        let mut steps = Vec::new();
        let mut node = self.tree.root();
        while !self.tree.is_leaf(node) {
            let net = &self.nets[self.tree.internal_index(node)];
            let (logits, cache) = net.forward(&state);
            let child_mask = mask.child_mask(&self.tree, node);
            let dist = Categorical::from_masked_logits(&logits, &child_mask);
            let action = dist.sample(rng);
            let next = self.tree.children(node)[action];
            steps.push(SelectionStep { node, dist, action, cache });
            node = next;
        }
        SelectionSample { user: self.tree.leaf_user(node), steps, rnn_cache, state }
    }

    /// Uniformly samples an allowed user (the paper seeds the first action
    /// `a^u_0` at random because the RNN state is empty).
    pub fn random_allowed_user(&self, mask: &TreeMask, rng: &mut impl Rng) -> UserId {
        assert!(mask.any_allowed(), "mask blocks every source user");
        let mut allowed = Vec::with_capacity(mask.n_allowed_leaves());
        let mut stack = vec![self.tree.root()];
        while let Some(id) = stack.pop() {
            if !mask.allowed(id) {
                continue;
            }
            if self.tree.is_leaf(id) {
                allowed.push(self.tree.leaf_user(id));
            } else {
                stack.extend_from_slice(self.tree.children(id));
            }
        }
        allowed[rng.gen_range(0..allowed.len())]
    }

    /// Fresh gradient accumulators.
    pub fn zero_grads(&self) -> PolicyGrads {
        PolicyGrads { nets: self.nets.iter().map(|_| None).collect(), rnn: self.rnn.zero_grad() }
    }

    /// Accumulates the REINFORCE gradient of one selection: each node on
    /// the path gets `advantage · (π − onehot)` pushed through its MLP, and
    /// the state-input gradients flow back through the RNN.
    pub fn accumulate(&self, sample: &SelectionSample, advantage: f32, grads: &mut PolicyGrads) {
        let e = self.embed_dim;
        let mut g_x = vec![0.0f32; e];
        for step in &sample.steps {
            let idx = self.tree.internal_index(step.node);
            let net = &self.nets[idx];
            let g_logits = step.dist.reinforce_logit_grad(step.action, advantage);
            let slot = grads.nets[idx].get_or_insert_with(|| net.zero_grad());
            let g_state = net.backward(&step.cache, &g_logits, slot);
            // The last `e` entries of the state are the RNN output.
            for k in 0..e {
                g_x[k] += g_state[e + k];
            }
        }
        self.rnn.backward(&sample.rnn_cache, &g_x, &mut grads.rnn);
    }

    /// Applies accumulated gradients with learning rate `lr`.
    pub fn apply(&mut self, grads: &PolicyGrads, lr: f32) {
        for (net, g) in self.nets.iter_mut().zip(grads.nets.iter()) {
            if let Some(g) = g {
                net.sgd_step(g, lr);
            }
        }
        self.rnn.sgd_step(&grads.rnn, lr);
    }
}

/// The flat PolicyNetwork baseline: one softmax over every source user.
/// Identical state and training rule; the only difference from
/// [`HierarchicalPolicy`] is the undecomposed action space, making each
/// decision O(n) — this is what renders it infeasible on Netflix-scale
/// source domains (§5.2).
pub struct FlatPolicy {
    net: Mlp,
    rnn: Rnn,
    embed_dim: usize,
}

/// A sampled flat decision.
pub struct FlatSample {
    /// The selected source user.
    pub user: UserId,
    /// Distribution over all users (masked).
    pub dist: Categorical,
    /// Forward cache.
    pub cache: MlpCache,
    /// RNN cache.
    pub rnn_cache: RnnCache,
}

/// Gradients for [`FlatPolicy`].
pub struct FlatGrads {
    net: MlpGrad,
    rnn: RnnGrad,
}

impl FlatPolicy {
    /// Builds the flat policy over `n_users` actions.
    pub fn new(rng: &mut impl Rng, n_users: usize, embed_dim: usize, hidden: usize) -> Self {
        let net = Mlp::new(rng, &[2 * embed_dim, hidden, n_users], 0.3);
        let rnn = Rnn::new(rng, embed_dim, embed_dim, 0.3);
        Self { net, rnn, embed_dim }
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.net.param_count() + self.rnn.param_count()
    }

    /// Samples a user under the per-user mask (`true` = selectable).
    pub fn select(
        &self,
        q_target: &[f32],
        prev: &[&[f32]],
        user_mask: &[bool],
        rng: &mut impl Rng,
    ) -> FlatSample {
        let (x, rnn_cache) = self.rnn.forward(prev);
        let mut state = Vec::with_capacity(2 * self.embed_dim);
        state.extend_from_slice(q_target);
        state.extend_from_slice(&x);
        let (logits, cache) = self.net.forward(&state);
        let dist = Categorical::from_masked_logits(&logits, user_mask);
        let action = dist.sample(rng);
        FlatSample { user: UserId(action as u32), dist, cache, rnn_cache }
    }

    /// Fresh gradient accumulators.
    pub fn zero_grads(&self) -> FlatGrads {
        FlatGrads { net: self.net.zero_grad(), rnn: self.rnn.zero_grad() }
    }

    /// Accumulates the REINFORCE gradient of one decision.
    pub fn accumulate(&self, sample: &FlatSample, advantage: f32, grads: &mut FlatGrads) {
        let g_logits = sample.dist.reinforce_logit_grad(sample.user.idx(), advantage);
        let g_state = self.net.backward(&sample.cache, &g_logits, &mut grads.net);
        let e = self.embed_dim;
        let g_x: Vec<f32> = g_state[e..2 * e].to_vec();
        self.rnn.backward(&sample.rnn_cache, &g_x, &mut grads.rnn);
    }

    /// Applies accumulated gradients.
    pub fn apply(&mut self, grads: &FlatGrads, lr: f32) {
        self.net.sgd_step(&grads.net, lr);
        self.rnn.sgd_step(&grads.rnn, lr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn embeddings(n: usize, dim: usize) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(7);
        (0..n)
            .map(|_| (0..dim).map(|_| ca_tensor::gaussian(&mut rng, 0.0, 1.0)).collect())
            .collect()
    }

    fn policy(n_users: usize) -> HierarchicalPolicy {
        let e = embeddings(n_users, 4);
        let mut rng = StdRng::seed_from_u64(1);
        let tree = ClusterTree::build(&e, 3, &mut rng);
        HierarchicalPolicy::new(&mut rng, tree, 4, 8)
    }

    #[test]
    fn selection_respects_mask() {
        let p = policy(27);
        let allowed = |u: UserId| u.0.is_multiple_of(3);
        let mask = TreeMask::for_predicate(p.tree(), allowed);
        let mut rng = StdRng::seed_from_u64(2);
        let q = vec![0.1, -0.2, 0.3, 0.0];
        for _ in 0..200 {
            let s = p.select(&q, &[], &mask, &mut rng);
            assert!(allowed(s.user), "selected masked user {}", s.user);
        }
    }

    #[test]
    fn path_length_equals_tree_depth_when_balanced() {
        let p = policy(27);
        let mask = TreeMask::allow_all(p.tree());
        let mut rng = StdRng::seed_from_u64(3);
        let q = vec![0.0; 4];
        let s = p.select(&q, &[], &mask, &mut rng);
        assert_eq!(s.steps.len(), p.tree().depth());
    }

    #[test]
    fn random_allowed_user_is_uniform_over_allowed() {
        let p = policy(12);
        let mask = TreeMask::for_predicate(p.tree(), |u| u.0 < 3);
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            let u = p.random_allowed_user(&mask, &mut rng);
            assert!(u.0 < 3);
            counts[u.idx()] += 1;
        }
        for &c in &counts {
            assert!((c as f32 / 3000.0 - 1.0 / 3.0).abs() < 0.05, "{counts:?}");
        }
    }

    #[test]
    fn reinforce_increases_probability_of_rewarded_user() {
        // Bandit: only user 5 gives reward. After training, the walk should
        // reach user 5 much more often than uniform.
        let mut p = policy(27);
        let mask = TreeMask::allow_all(p.tree());
        let q = vec![0.2, 0.1, -0.3, 0.4];
        let mut rng = StdRng::seed_from_u64(5);
        let mut baseline = 0.0f32;
        for _ in 0..600 {
            let s = p.select(&q, &[], &mask, &mut rng);
            let reward = if s.user == UserId(5) { 1.0 } else { 0.0 };
            let adv = reward - baseline;
            baseline = 0.9 * baseline + 0.1 * reward;
            let mut grads = p.zero_grads();
            p.accumulate(&s, adv, &mut grads);
            p.apply(&grads, 0.1);
        }
        let mut hits = 0;
        for _ in 0..300 {
            let s = p.select(&q, &[], &mask, &mut rng);
            if s.user == UserId(5) {
                hits += 1;
            }
        }
        assert!(hits > 150, "user 5 picked {hits}/300 (uniform would be ~11)");
    }

    #[test]
    fn state_depends_on_selection_history() {
        let p = policy(12);
        let mask = TreeMask::allow_all(p.tree());
        let q = vec![0.5, 0.0, 0.0, 0.0];
        let prev1 = [vec![1.0f32, 0.0, 0.0, 0.0]];
        let prev_refs: Vec<&[f32]> = prev1.iter().map(|v| v.as_slice()).collect();
        let mut r1 = StdRng::seed_from_u64(6);
        let mut r2 = StdRng::seed_from_u64(6);
        let s_empty = p.select(&q, &[], &mask, &mut r1);
        let s_hist = p.select(&q, &prev_refs, &mask, &mut r2);
        assert_ne!(s_empty.state, s_hist.state);
    }

    #[test]
    fn flat_policy_respects_mask_and_learns() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut p = FlatPolicy::new(&mut rng, 20, 4, 8);
        let mut mask = vec![true; 20];
        mask[3] = false;
        let q = vec![0.1, 0.2, 0.3, 0.4];
        let mut baseline = 0.0f32;
        for _ in 0..400 {
            let s = p.select(&q, &[], &mask, &mut rng);
            assert_ne!(s.user, UserId(3), "masked user selected");
            let reward = if s.user == UserId(7) { 1.0 } else { 0.0 };
            let adv = reward - baseline;
            baseline = 0.9 * baseline + 0.1 * reward;
            let mut grads = p.zero_grads();
            p.accumulate(&s, adv, &mut grads);
            p.apply(&grads, 0.1);
        }
        let mut hits = 0;
        for _ in 0..200 {
            if p.select(&q, &[], &mask, &mut rng).user == UserId(7) {
                hits += 1;
            }
        }
        assert!(hits > 100, "user 7 picked {hits}/200");
    }

    #[test]
    fn grads_norm_and_scale_behave() {
        let p = policy(12);
        let mask = TreeMask::allow_all(p.tree());
        let q = vec![0.3; 4];
        let mut rng = StdRng::seed_from_u64(9);
        let s = p.select(&q, &[], &mask, &mut rng);
        let mut grads = p.zero_grads();
        p.accumulate(&s, 1.0, &mut grads);
        let n = grads.norm();
        assert!(n > 0.0);
        grads.scale(0.5);
        assert!((grads.norm() - 0.5 * n).abs() < 1e-4);
    }

    #[test]
    fn hierarchical_param_count_is_sublinear_vs_flat() {
        let n = 729; // 3^6 users
        let e = embeddings(n, 4);
        let mut rng = StdRng::seed_from_u64(10);
        let tree = ClusterTree::build(&e, 3, &mut rng);
        let hier = HierarchicalPolicy::new(&mut rng, tree, 4, 8);
        let flat = FlatPolicy::new(&mut rng, n, 4, 8);
        // The flat head has an n-way output layer; hierarchical nodes are
        // fanout-way. The paper's efficiency claim is about per-decision
        // cost: a walk touches depth·(hidden·fanout) outputs vs n.
        let walk_cost = hier.tree().depth() * 8 * 3;
        assert!(walk_cost < n / 3, "walk cost {walk_cost} vs flat {n}");
        assert!(flat.param_count() > 0 && hier.param_count() > 0);
    }
}
