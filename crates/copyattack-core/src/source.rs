//! The attacker's view of the source domain.
//!
//! Under the threat model the attacker fully *observes* the source domain
//! (it can crawl public profiles there) but can only *act* on the target
//! domain through the black-box interface. This struct bundles what the
//! attacker has: the source interaction data, MF embeddings pretrained on
//! it (§4.3.1), and the item alignment between catalogs.

use ca_mf::MfModel;
use ca_recsys::{Dataset, ItemId, UserId};

/// Attacker-side source-domain bundle.
pub struct SourceDomain<'a> {
    /// Source-domain interactions (source item ids).
    pub data: &'a Dataset,
    /// MF embeddings pretrained on the source domain: `p_u` for the
    /// clustering tree and RNN state, `q_v` for the policy-state item half.
    pub mf: &'a MfModel,
    /// Alignment: source item id → target item id.
    pub to_target: &'a [ItemId],
}

impl SourceDomain<'_> {
    /// Translates a source profile into target-domain item ids, preserving
    /// sequence order.
    pub fn translate(&self, profile: &[ItemId]) -> Vec<ItemId> {
        profile.iter().map(|&v| self.to_target[v.idx()]).collect()
    }

    /// Whether the source user's profile contains the (source-domain id of
    /// the) target item.
    pub fn has_item(&self, u: UserId, v_src: ItemId) -> bool {
        self.data.contains(u, v_src)
    }

    /// All source users whose profiles contain `v_src`.
    pub fn users_with_item(&self, v_src: ItemId) -> Vec<UserId> {
        // The source domain is never injected into, so this is a plain
        // copy of the frozen inverted run (`Cow::Borrowed`).
        self.data.item_profile(v_src).into_owned()
    }

    /// The source user embeddings, cloned row-wise (tree-construction
    /// input).
    pub fn user_embeddings(&self) -> Vec<Vec<f32>> {
        (0..self.data.n_users()).map(|u| self.mf.user_vec(UserId(u as u32)).to_vec()).collect()
    }

    /// `p_u` for one user.
    pub fn user_embedding(&self, u: UserId) -> &[f32] {
        self.mf.user_vec(u)
    }

    /// `q_v` for one source item.
    pub fn item_embedding(&self, v_src: ItemId) -> &[f32] {
        self.mf.item_vec(v_src)
    }

    /// Embedding dimensionality `e`.
    pub fn dim(&self) -> usize {
        self.mf.dim()
    }

    /// Number of source users.
    pub fn n_users(&self) -> usize {
        self.data.n_users()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_mf::BprConfig;
    use ca_recsys::DatasetBuilder;

    fn setup() -> (Dataset, MfModel, Vec<ItemId>) {
        let mut b = DatasetBuilder::new(6);
        b.user(&[ItemId(0), ItemId(1)]);
        b.user(&[ItemId(2), ItemId(3), ItemId(1)]);
        b.user(&[ItemId(5)]);
        let ds = b.build();
        let mf = ca_mf::train(&ds, &BprConfig { max_epochs: 2, ..Default::default() });
        // Source item s maps to target item s * 10.
        let map: Vec<ItemId> = (0..6).map(|s| ItemId(s * 10)).collect();
        (ds, mf, map)
    }

    #[test]
    fn translate_preserves_order() {
        let (ds, mf, map) = setup();
        let src = SourceDomain { data: &ds, mf: &mf, to_target: &map };
        let t = src.translate(&[ItemId(2), ItemId(0), ItemId(5)]);
        assert_eq!(t, vec![ItemId(20), ItemId(0), ItemId(50)]);
    }

    #[test]
    fn users_with_item_matches_profiles() {
        let (ds, mf, map) = setup();
        let src = SourceDomain { data: &ds, mf: &mf, to_target: &map };
        assert_eq!(src.users_with_item(ItemId(1)), vec![UserId(0), UserId(1)]);
        assert!(src.has_item(UserId(2), ItemId(5)));
        assert!(!src.has_item(UserId(0), ItemId(5)));
    }

    #[test]
    fn embeddings_have_mf_dimension() {
        let (ds, mf, map) = setup();
        let src = SourceDomain { data: &ds, mf: &mf, to_target: &map };
        assert_eq!(src.dim(), 8);
        assert_eq!(src.user_embeddings().len(), 3);
        assert_eq!(src.user_embedding(UserId(1)).len(), 8);
        assert_eq!(src.item_embedding(ItemId(3)).len(), 8);
    }
}
