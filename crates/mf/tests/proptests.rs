//! Property-based tests for BPR matrix factorization.

use ca_mf::{train, BprConfig, MfModel};
use ca_recsys::{DatasetBuilder, ItemId, Scorer, UserId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn training_is_finite_and_deterministic(
        profiles in prop::collection::vec(prop::collection::vec(0u32..20, 1..8), 2..12),
        seed in 0u64..200,
    ) {
        let mut b = DatasetBuilder::new(20);
        for p in &profiles {
            let items: Vec<ItemId> = p.iter().map(|&v| ItemId(v)).collect();
            b.user(&items);
        }
        let ds = b.build();
        let cfg = BprConfig { max_epochs: 3, seed, ..Default::default() };
        let a = train(&ds, &cfg);
        let b2 = train(&ds, &cfg);
        prop_assert_eq!(a.user_emb.as_slice(), b2.user_emb.as_slice());
        for &x in a.user_emb.as_slice().iter().chain(a.item_emb.as_slice()) {
            prop_assert!(x.is_finite());
        }
        for u in ds.users() {
            for v in ds.items() {
                prop_assert!(a.score(u, v).is_finite());
            }
        }
    }

    #[test]
    fn fresh_model_shapes_follow_arguments(
        n_users in 1usize..50,
        n_items in 1usize..50,
        dim in 1usize..16,
        seed in 0u64..100,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = MfModel::new(&mut rng, n_users, n_items, dim);
        prop_assert_eq!(m.n_users(), n_users);
        prop_assert_eq!(m.n_items(), n_items);
        prop_assert_eq!(m.dim(), dim);
        prop_assert_eq!(m.user_vec(UserId(0)).len(), dim);
    }
}
