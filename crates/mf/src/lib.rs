//! Matrix factorization with BPR training.
//!
//! CopyAttack uses MF in two places (§4.3.1, §4.3.3, §4.4):
//!
//! 1. **source-domain user representations** `p^B_u` — the feature space in
//!    which the hierarchical clustering tree is built;
//! 2. **source-domain item representations** `q^B_v` — the target-item half
//!    of every policy-network state.
//!
//! The paper trains these "with Matrix Factorization techniques" on implicit
//! feedback; we use the standard BPR pairwise objective (Rendle et al.),
//! which is the default way to fit Koren-style MF to implicit data.
//!
//! The model is also a perfectly serviceable recommender on its own, so it
//! doubles as a *second* target model for transferability experiments (see
//! `examples/cross_domain_transfer.rs`); [`MfRecommender`] deploys it
//! behind the black-box surface with mean-embedding fold-in of injected
//! accounts.

#![forbid(unsafe_code)]

pub mod bpr;
pub mod model;
pub mod recommender;

pub use bpr::{train, train_observed, train_with_validation, BprConfig};
pub use model::MfModel;
pub use recommender::MfRecommender;
