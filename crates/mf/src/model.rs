//! The factorization model: one embedding row per user and per item.

use ca_recsys::{ItemId, Scorer, UserId};
use ca_tensor::init::gaussian_matrix;
use ca_tensor::{ops, Matrix};
use rand::Rng;

/// Latent-factor model `score(u, v) = ⟨p_u, q_v⟩ + b_v`.
#[derive(Clone, Debug)]
pub struct MfModel {
    /// User embeddings, `n_users × dim`.
    pub user_emb: Matrix,
    /// Item embeddings, `n_items × dim`.
    pub item_emb: Matrix,
    /// Item popularity bias.
    pub item_bias: Vec<f32>,
}

impl MfModel {
    /// Fresh model with `N(0, 0.1²)` embeddings (the paper's initialization).
    pub fn new(rng: &mut impl Rng, n_users: usize, n_items: usize, dim: usize) -> Self {
        Self {
            user_emb: gaussian_matrix(rng, n_users, dim, 0.0, 0.1),
            item_emb: gaussian_matrix(rng, n_items, dim, 0.0, 0.1),
            item_bias: vec![0.0; n_items],
        }
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.user_emb.cols()
    }

    /// Number of users.
    pub fn n_users(&self) -> usize {
        self.user_emb.rows()
    }

    /// Number of items.
    pub fn n_items(&self) -> usize {
        self.item_emb.rows()
    }

    /// The user embedding `p_u`.
    pub fn user_vec(&self, u: UserId) -> &[f32] {
        self.user_emb.row(u.idx())
    }

    /// The item embedding `q_v`.
    pub fn item_vec(&self, v: ItemId) -> &[f32] {
        self.item_emb.row(v.idx())
    }

    /// Onboards a new user: embedding initialized at the mean of the
    /// profile items' embeddings (the standard fold-in for a deployed MF
    /// system absorbing a fresh account without retraining). Returns the
    /// new user's id.
    pub fn onboard_user(&mut self, profile: &[ItemId]) -> UserId {
        let mut emb = vec![0.0; self.dim()];
        if !profile.is_empty() {
            for &v in profile {
                ops::axpy(1.0, self.item_emb.row(v.idx()), &mut emb);
            }
            ops::scale(&mut emb, 1.0 / profile.len() as f32);
        }
        let uid = UserId(self.user_emb.rows() as u32);
        self.user_emb.push_row(&emb);
        uid
    }
}

impl Scorer for MfModel {
    fn score(&self, user: UserId, item: ItemId) -> f32 {
        ops::dot(self.user_emb.row(user.idx()), self.item_emb.row(item.idx()))
            + self.item_bias[item.idx()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn new_model_has_requested_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = MfModel::new(&mut rng, 10, 20, 8);
        assert_eq!(m.n_users(), 10);
        assert_eq!(m.n_items(), 20);
        assert_eq!(m.dim(), 8);
        assert_eq!(m.user_vec(UserId(3)).len(), 8);
    }

    #[test]
    fn score_is_dot_plus_bias() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = MfModel::new(&mut rng, 2, 2, 4);
        m.item_bias[1] = 0.5;
        let expected = ops::dot(m.user_vec(UserId(0)), m.item_vec(ItemId(1))) + 0.5;
        assert!((m.score(UserId(0), ItemId(1)) - expected).abs() < 1e-6);
    }

    #[test]
    fn initial_embeddings_are_small() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = MfModel::new(&mut rng, 100, 100, 8);
        let max = m.user_emb.as_slice().iter().fold(0.0f32, |a, &b| a.max(b.abs()));
        assert!(max < 1.0, "N(0,0.1) init should stay small, saw {max}");
    }
}
