//! Deployed MF platform: a BPR-trained model serving Top-k behind the
//! black-box surface.
//!
//! MF/BPR is the paper's source-domain representation learner, but it is
//! also a perfectly standard deployed recommender — and the simplest target
//! whose batched scoring is literally one GEMM: a block of user embedding
//! rows times the item-embedding table, plus the item bias. Injection folds
//! the new account in at the mean of its profile items' embeddings
//! ([`MfModel::onboard_user`]); no retraining happens, matching the paper's
//! fixed-target-model setting.

use crate::model::MfModel;
use ca_recsys::engine::{self, EmbeddingEngine, ScoringEngine};
use ca_recsys::{BlackBoxRecommender, Dataset, ItemId, Scorer, UserId};
use ca_tensor::Matrix;

/// A deployed matrix-factorization recommender.
#[derive(Clone, Debug)]
pub struct MfRecommender {
    model: MfModel,
    data: Dataset,
}

impl MfRecommender {
    /// Deploys a trained model over the platform's interaction data.
    ///
    /// # Panics
    /// Panics if model and data disagree on user or catalog counts.
    pub fn deploy(model: MfModel, data: Dataset) -> Self {
        assert_eq!(model.n_users(), data.n_users(), "model/user-base mismatch");
        assert_eq!(model.n_items(), data.n_items(), "model/catalog mismatch");
        Self { model, data }
    }

    /// The platform data (owner-side).
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// The underlying model (owner-side).
    pub fn model(&self) -> &MfModel {
        &self.model
    }
}

impl Scorer for MfRecommender {
    fn score(&self, user: UserId, item: ItemId) -> f32 {
        self.model.score(user, item)
    }
}

impl ScoringEngine for MfRecommender {
    fn catalog_len(&self) -> usize {
        self.model.n_items()
    }

    fn is_seen(&self, user: UserId, item: ItemId) -> bool {
        self.data.contains(user, item)
    }

    fn score_batch(&self, users: &[UserId], out: &mut Matrix) {
        // Gather the batch's embedding rows, then one P_batch · Qᵀ GEMM.
        let dim = self.model.dim();
        let mut p_batch = Matrix::zeros(users.len(), dim);
        for (i, &u) in users.iter().enumerate() {
            p_batch.row_mut(i).copy_from_slice(self.model.user_emb.row(u.idx()));
        }
        p_batch.matmul_nt_into(&self.model.item_emb, out);
        for i in 0..users.len() {
            for (s, b) in out.row_mut(i).iter_mut().zip(self.model.item_bias.iter()) {
                *s += b;
            }
        }
    }
}

impl EmbeddingEngine for MfRecommender {
    /// `dim + 1`: the item bias rides along as an extra coordinate whose
    /// query-side partner is the constant 1, so `dot(query, item)` equals
    /// the full MF score `p_u · q_v + b_v` and cell ranking sees the bias.
    fn embedding_dim(&self) -> usize {
        self.model.dim() + 1
    }

    fn item_embedding_into(&self, item: ItemId, out: &mut [f32]) {
        let d = self.model.dim();
        out[..d].copy_from_slice(self.model.item_emb.row(item.idx()));
        out[d] = self.model.item_bias[item.idx()];
    }

    fn query_embedding_into(&self, user: UserId, out: &mut [f32]) {
        let d = self.model.dim();
        out[..d].copy_from_slice(self.model.user_emb.row(user.idx()));
        out[d] = 1.0;
    }

    fn score_items(&self, user: UserId, items: &[ItemId], out: &mut [f32]) {
        // `MfModel::score` is bitwise equal to the GEMM cells of
        // `score_batch` (pinned by `batched_scores_match_the_scorer`).
        for (o, &v) in out.iter_mut().zip(items) {
            *o = self.model.score(user, v);
        }
    }
}

impl BlackBoxRecommender for MfRecommender {
    fn top_k(&self, user: UserId, k: usize) -> Vec<ItemId> {
        engine::single_top_k(self, user, k)
    }

    fn top_k_batch(&self, users: &[UserId], k: usize) -> Vec<Vec<ItemId>> {
        engine::auto_batch_top_k(self, users, k)
    }

    fn inject_user(&mut self, profile: &[ItemId]) -> UserId {
        let uid = self.data.add_user(profile);
        // `add_user` dedups; read the stored run straight from the arena.
        let mid = self.model.onboard_user(self.data.profile(uid));
        debug_assert_eq!(uid, mid);
        uid
    }

    fn catalog_size(&self) -> usize {
        self.model.n_items()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_recsys::DatasetBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn platform() -> MfRecommender {
        let mut b = DatasetBuilder::new(20);
        for u in 0..12u32 {
            let profile: Vec<ItemId> = (0..5u32).map(|i| ItemId((u * 3 + i) % 20)).collect();
            b.user(&profile);
        }
        let data = b.build();
        let mut rng = StdRng::seed_from_u64(7);
        let model = MfModel::new(&mut rng, data.n_users(), data.n_items(), 8);
        MfRecommender::deploy(model, data)
    }

    #[test]
    fn top_k_excludes_seen_and_is_sorted() {
        let rec = platform();
        for u in 0..12u32 {
            let user = UserId(u);
            let list = rec.top_k(user, 6);
            assert_eq!(list.len(), 6);
            for w in list.windows(2) {
                assert!(rec.score(user, w[0]) >= rec.score(user, w[1]));
            }
            for v in list {
                assert!(!rec.data().contains(user, v));
            }
        }
    }

    #[test]
    fn batched_scores_match_the_scorer() {
        let rec = platform();
        let users: Vec<UserId> = (0..12u32).map(UserId).collect();
        let mut out = Matrix::zeros(users.len(), rec.catalog_len());
        // ca-audit: allow(exact-scan) — parity test pinning the GEMM against the scalar scorer
        rec.score_batch(&users, &mut out);
        for (i, &u) in users.iter().enumerate() {
            for v in 0..rec.catalog_len() {
                assert_eq!(out[(i, v)], rec.score(u, ItemId(v as u32)), "u{u} v{v}");
            }
        }
    }

    #[test]
    fn injected_user_is_onboarded_at_item_mean() {
        let mut rec = platform();
        let uid = rec.inject_user(&[ItemId(1), ItemId(3)]);
        assert_eq!(uid.idx(), 12);
        for k in 0..rec.model().dim() {
            let expected = (rec.model().item_emb[(1, k)] + rec.model().item_emb[(3, k)]) / 2.0;
            assert!((rec.model().user_emb[(12, k)] - expected).abs() < 1e-6);
        }
        let list = rec.top_k(uid, 5);
        assert_eq!(list.len(), 5);
        assert!(!list.contains(&ItemId(1)));
    }

    #[test]
    #[should_panic(expected = "model/user-base mismatch")]
    fn deploy_rejects_mismatched_users() {
        let data = DatasetBuilder::new(5).build();
        let mut rng = StdRng::seed_from_u64(0);
        let model = MfModel::new(&mut rng, 3, 5, 4);
        let _ = MfRecommender::deploy(model, data);
    }
}
