//! BPR (Bayesian Personalized Ranking) trainer.
//!
//! Maximizes `ln σ(score(u, v⁺) − score(u, v⁻))` over observed interactions
//! `(u, v⁺)` and sampled negatives `v⁻ ∉ P_u`, with L2 regularization —
//! the standard implicit-feedback fit for Koren-style MF [14].

use crate::model::MfModel;
use ca_recsys::{Dataset, ItemId, UserId};
use ca_tensor::ops::sigmoid;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// BPR hyper-parameters.
#[derive(Clone, Debug)]
pub struct BprConfig {
    /// Embedding dimensionality (the paper uses 8).
    pub dim: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// L2 regularization strength.
    pub reg: f32,
    /// Training epochs (one pass over all interactions each).
    pub epochs: usize,
    /// RNG seed for init, shuffling, and negative sampling.
    pub seed: u64,
}

impl Default for BprConfig {
    fn default() -> Self {
        Self { dim: 8, lr: 0.05, reg: 1e-4, epochs: 30, seed: 0 }
    }
}

/// Trains an [`MfModel`] on `ds` with BPR-SGD.
pub fn train(ds: &Dataset, cfg: &BprConfig) -> MfModel {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut model = MfModel::new(&mut rng, ds.n_users(), ds.n_items(), cfg.dim);
    let mut pairs: Vec<(UserId, ItemId)> = ds.interactions().collect();
    let n_items = ds.n_items() as u32;

    for _epoch in 0..cfg.epochs {
        pairs.shuffle(&mut rng);
        for &(u, pos) in &pairs {
            // Sample a negative the user has not interacted with.
            let neg = loop {
                let cand = ItemId(rng.gen_range(0..n_items));
                if cand != pos && !ds.contains(u, cand) {
                    break cand;
                }
            };
            sgd_step(&mut model, u, pos, neg, cfg.lr, cfg.reg);
        }
    }
    model
}

/// One BPR-SGD step on the triple `(u, v⁺, v⁻)`.
fn sgd_step(model: &mut MfModel, u: UserId, pos: ItemId, neg: ItemId, lr: f32, reg: f32) {
    let dim = model.dim();
    let s_pos = dot_rows(model, u, pos) + model.item_bias[pos.idx()];
    let s_neg = dot_rows(model, u, neg) + model.item_bias[neg.idx()];
    // dL/d(s_pos - s_neg) of -ln σ(diff) is -σ(-diff).
    let g = sigmoid(s_neg - s_pos); // = σ(-diff), the positive step size

    // Row-local updates; copy p_u first to keep the update order-independent.
    let pu: Vec<f32> = model.user_emb.row(u.idx()).to_vec();
    {
        let (qp, qn) = (pos.idx(), neg.idx());
        for (k, &puk) in pu.iter().enumerate().take(dim) {
            let qpk = model.item_emb[(qp, k)];
            let qnk = model.item_emb[(qn, k)];
            model.user_emb[(u.idx(), k)] += lr * (g * (qpk - qnk) - reg * puk);
            model.item_emb[(qp, k)] += lr * (g * puk - reg * qpk);
            model.item_emb[(qn, k)] += lr * (-g * puk - reg * qnk);
        }
        model.item_bias[qp] += lr * (g - reg * model.item_bias[qp]);
        model.item_bias[qn] += lr * (-g - reg * model.item_bias[qn]);
    }
}

fn dot_rows(model: &MfModel, u: UserId, v: ItemId) -> f32 {
    ca_tensor::ops::dot(model.user_emb.row(u.idx()), model.item_emb.row(v.idx()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_recsys::{DatasetBuilder, Scorer};

    /// Two disjoint user groups with disjoint item tastes.
    fn polarized() -> Dataset {
        let mut b = DatasetBuilder::new(20);
        // Users 0..10 like items 0..10; users 10..20 like items 10..20.
        for u in 0..20u32 {
            let base = if u < 10 { 0u32 } else { 10 };
            let profile: Vec<ItemId> = (0..6).map(|i| ItemId(base + (u * 3 + i) % 10)).collect();
            b.user(&profile);
        }
        b.build()
    }

    #[test]
    fn bpr_learns_group_structure() {
        let ds = polarized();
        let cfg = BprConfig { epochs: 60, seed: 3, ..Default::default() };
        let model = train(&ds, &cfg);
        // Every user should on average score their own group's items above
        // the other group's.
        let mut correct = 0;
        let mut total = 0;
        for u in 0..20u32 {
            let own_base = if u < 10 { 0 } else { 10 };
            let other_base = 10 - own_base;
            let own: f32 = (0..10).map(|i| model.score(UserId(u), ItemId(own_base + i))).sum();
            let other: f32 = (0..10).map(|i| model.score(UserId(u), ItemId(other_base + i))).sum();
            if own > other {
                correct += 1;
            }
            total += 1;
        }
        assert!(correct >= total - 1, "only {correct}/{total} users learned their group");
    }

    #[test]
    fn bpr_ranks_positives_above_sampled_negatives() {
        let ds = polarized();
        let model = train(&ds, &BprConfig { epochs: 60, seed: 4, ..Default::default() });
        let mut rng = StdRng::seed_from_u64(5);
        let mut wins = 0;
        let mut total = 0;
        for (u, pos) in ds.interactions() {
            let neg = loop {
                let cand = ItemId(rng.gen_range(0..ds.n_items() as u32));
                if !ds.contains(u, cand) {
                    break cand;
                }
            };
            if model.score(u, pos) > model.score(u, neg) {
                wins += 1;
            }
            total += 1;
        }
        let auc = wins as f32 / total as f32;
        assert!(auc > 0.9, "training AUC {auc}");
    }

    #[test]
    fn training_is_deterministic() {
        let ds = polarized();
        let cfg = BprConfig { epochs: 5, seed: 9, ..Default::default() };
        let a = train(&ds, &cfg);
        let b = train(&ds, &cfg);
        assert_eq!(a.user_emb.as_slice(), b.user_emb.as_slice());
        assert_eq!(a.item_bias, b.item_bias);
    }

    #[test]
    fn same_taste_users_have_similar_embeddings() {
        let ds = polarized();
        let model = train(&ds, &BprConfig { epochs: 60, seed: 1, ..Default::default() });
        let cos =
            |a: UserId, b: UserId| ca_tensor::ops::cosine(model.user_vec(a), model.user_vec(b));
        // Mean within-group vs cross-group cosine.
        let mut within = 0.0;
        let mut cross = 0.0;
        let mut n = 0;
        for i in 0..10u32 {
            for j in 0..10u32 {
                if i != j {
                    within += cos(UserId(i), UserId(j));
                    cross += cos(UserId(i), UserId(10 + j));
                    n += 1;
                }
            }
        }
        assert!(
            within / n as f32 > cross / n as f32,
            "within {} cross {}",
            within / n as f32,
            cross / n as f32
        );
    }
}
