//! BPR (Bayesian Personalized Ranking) trainer.
//!
//! Maximizes `ln σ(score(u, v⁺) − score(u, v⁻))` over observed interactions
//! `(u, v⁺)` and sampled negatives `v⁻ ∉ P_u`, with L2 regularization —
//! the standard implicit-feedback fit for Koren-style MF \[14\].
//!
//! The epoch loop itself lives in `ca-train` ([`ca_train::fit`]); this
//! module contributes only what is MF-specific: the per-pair gradient
//! against a frozen batch-start model and its fixed-order apply
//! ([`ca_train::PairwiseModel`]), plus the optional HR@10 validation
//! protocol for early stopping.

use crate::model::MfModel;
use ca_recsys::eval::RankingEval;
use ca_recsys::{Dataset, HeldOut, ItemId, UserId};
use ca_tensor::ops::sigmoid;
use ca_train::{
    NullObserver, Optimizer, PairwiseModel, Step, TrainConfig, TrainObserver, TrainOutcome,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// BPR hyper-parameters.
///
/// Naming note: earlier revisions called the epoch budget `epochs` and had
/// no early stopping; the field is now `max_epochs` to match every other
/// trainer in the workspace, and [`BprConfig::patience`] opts into the
/// shared early-stopping rule (the `None` default preserves the historical
/// fixed-epoch behavior bit-for-bit).
#[derive(Clone, Debug)]
pub struct BprConfig {
    /// Embedding dimensionality (the paper uses 8).
    pub dim: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// L2 regularization strength.
    pub reg: f32,
    /// Maximum training epochs (one pass over all interactions each).
    pub max_epochs: usize,
    /// Early-stopping patience on validation HR@10, used only by
    /// [`train_with_validation`]. `None` trains for exactly `max_epochs`.
    pub patience: Option<usize>,
    /// RNG seed for init, shuffling, and negative sampling.
    pub seed: u64,
    /// Per-pair update rule. The [`Optimizer::Sgd`] default reproduces the
    /// historical hand-rolled update loop bit-for-bit.
    pub optimizer: Optimizer,
    /// Pairs per minibatch. Gradients within a minibatch are computed
    /// against the frozen batch-start model (in parallel on the `ca-par`
    /// runtime) and applied in pair order, so results do not depend on the
    /// thread count. `1` recovers classic per-pair SGD exactly.
    pub minibatch: usize,
}

impl Default for BprConfig {
    fn default() -> Self {
        Self {
            dim: 8,
            lr: 0.05,
            reg: 1e-4,
            max_epochs: 30,
            patience: None,
            seed: 0,
            optimizer: Optimizer::Sgd,
            minibatch: 32,
        }
    }
}

impl BprConfig {
    /// The `ca-train` driver configuration this config describes.
    pub fn train_config(&self) -> TrainConfig {
        TrainConfig {
            lr: self.lr,
            reg: self.reg,
            max_epochs: self.max_epochs,
            patience: self.patience,
            minibatch: self.minibatch,
            seed: self.seed,
            optimizer: self.optimizer,
            ..TrainConfig::default()
        }
    }
}

/// The MF side of the [`PairwiseModel`] contract: model + the L2 strength
/// its gradients fold in, plus an optional validation context.
struct MfTrainer<'a> {
    model: MfModel,
    reg: f32,
    val: Option<ValCtx<'a>>,
}

/// Validation protocol for early stopping: HR@10 of a ≤500-pair held-out
/// sample against 100 sampled negatives, on a fresh RNG each epoch.
struct ValCtx<'a> {
    seen: &'a Dataset,
    sample: Vec<HeldOut>,
    seed: u64,
}

impl PairwiseModel for MfTrainer<'_> {
    type Grad = PairGrad;

    fn pair_grad(&self, u: UserId, pos: ItemId, neg: ItemId) -> (PairGrad, f32) {
        pair_grad(&self.model, u, pos, neg, self.reg)
    }

    fn apply(&mut self, u: UserId, pos: ItemId, neg: ItemId, g: &PairGrad, step: &mut Step<'_>) {
        apply_grad(&mut self.model, u, pos, neg, g, step);
    }

    fn validate(&mut self) -> Option<f32> {
        let val = self.val.as_ref()?;
        let ev = RankingEval { seen: val.seen, ks: vec![10] };
        let mut rng = StdRng::seed_from_u64(val.seed);
        Some(ev.evaluate(&self.model, &val.sample, &mut rng).hr(10))
    }
}

/// Trains an [`MfModel`] on `ds` with minibatch BPR-SGD for exactly
/// `cfg.max_epochs` epochs (MF's historical fixed-epoch behavior).
///
/// Determinism: negatives are sampled serially in pair order (the RNG
/// stream is identical for every `minibatch` and thread count); per-pair
/// gradients are order-blind functions of the frozen batch-start model and
/// are applied serially in pair order.
pub fn train(ds: &Dataset, cfg: &BprConfig) -> MfModel {
    train_observed(ds, cfg, &mut NullObserver).0
}

/// [`train`] with training telemetry: per-epoch loss, pairs/sec, and the
/// stop reason stream to `obs` (see [`ca_train::History`]).
pub fn train_observed(
    ds: &Dataset,
    cfg: &BprConfig,
    obs: &mut dyn TrainObserver,
) -> (MfModel, TrainOutcome) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let model = MfModel::new(&mut rng, ds.n_users(), ds.n_items(), cfg.dim);
    let mut trainer = MfTrainer { model, reg: cfg.reg, val: None };
    let driver_cfg = TrainConfig { patience: None, ..cfg.train_config() };
    let outcome = ca_train::fit(&mut trainer, ds, &driver_cfg, &mut rng, obs);
    (trainer.model, outcome)
}

/// Trains with early stopping on validation HR@10 (patience from
/// `cfg.patience`), the same protocol the NCF and GNN trainers use: the
/// held-out sample is shuffled on the trainer RNG and truncated to 500
/// pairs, and each epoch's score is computed post-update on a fresh
/// seeded RNG.
pub fn train_with_validation(
    ds: &Dataset,
    validation: &[HeldOut],
    cfg: &BprConfig,
    obs: &mut dyn TrainObserver,
) -> (MfModel, TrainOutcome) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let model = MfModel::new(&mut rng, ds.n_users(), ds.n_items(), cfg.dim);
    let mut sample: Vec<HeldOut> = validation.to_vec();
    sample.shuffle(&mut rng);
    sample.truncate(500);
    let val = ValCtx { seen: ds, sample, seed: cfg.seed.wrapping_add(31337) };
    let mut trainer = MfTrainer { model, reg: cfg.reg, val: Some(val) };
    let outcome = ca_train::fit(&mut trainer, ds, &cfg.train_config(), &mut rng, obs);
    (trainer.model, outcome)
}

/// Gradient of one BPR triple `(u, v⁺, v⁻)` against a frozen model.
pub struct PairGrad {
    d_pu: Vec<f32>,
    d_qp: Vec<f32>,
    d_qn: Vec<f32>,
    d_bp: f32,
    d_bn: f32,
}

fn pair_grad(model: &MfModel, u: UserId, pos: ItemId, neg: ItemId, reg: f32) -> (PairGrad, f32) {
    let dim = model.dim();
    let s_pos = dot_rows(model, u, pos) + model.item_bias[pos.idx()];
    let s_neg = dot_rows(model, u, neg) + model.item_bias[neg.idx()];
    // dL/d(s_pos - s_neg) of -ln σ(diff) is -σ(-diff).
    let g = sigmoid(s_neg - s_pos); // = σ(-diff), the positive step size

    let (qp, qn) = (pos.idx(), neg.idx());
    let pu = model.user_emb.row(u.idx());
    let mut grad = PairGrad {
        d_pu: Vec::with_capacity(dim),
        d_qp: Vec::with_capacity(dim),
        d_qn: Vec::with_capacity(dim),
        d_bp: g - reg * model.item_bias[qp],
        d_bn: -g - reg * model.item_bias[qn],
    };
    for (k, &puk) in pu.iter().enumerate().take(dim) {
        let qpk = model.item_emb[(qp, k)];
        let qnk = model.item_emb[(qn, k)];
        grad.d_pu.push(g * (qpk - qnk) - reg * puk);
        grad.d_qp.push(g * puk - reg * qpk);
        grad.d_qn.push(-g * puk - reg * qnk);
    }
    let loss = -sigmoid(s_pos - s_neg).ln();
    (grad, loss)
}

/// Block-key layout: user rows at `u`, item rows at `n_users + v`, item
/// biases at `n_users + n_items + v`. All five blocks a pair touches are
/// disjoint (`pos ≠ neg` by sampling), so block-order application is
/// bitwise identical to the historical interleaved per-`k` loop.
fn apply_grad(
    model: &mut MfModel,
    u: UserId,
    pos: ItemId,
    neg: ItemId,
    g: &PairGrad,
    step: &mut Step<'_>,
) {
    let (qp, qn) = (pos.idx(), neg.idx());
    let n_users = model.user_emb.rows();
    let n_items = model.item_emb.rows();
    step.ascend(u.idx(), model.user_emb.row_mut(u.idx()), &g.d_pu);
    step.ascend(n_users + qp, model.item_emb.row_mut(qp), &g.d_qp);
    step.ascend(n_users + qn, model.item_emb.row_mut(qn), &g.d_qn);
    step.ascend1(n_users + n_items + qp, &mut model.item_bias[qp], g.d_bp);
    step.ascend1(n_users + n_items + qn, &mut model.item_bias[qn], g.d_bn);
}

fn dot_rows(model: &MfModel, u: UserId, v: ItemId) -> f32 {
    ca_tensor::ops::dot(model.user_emb.row(u.idx()), model.item_emb.row(v.idx()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_par as par;
    use ca_recsys::{split_dataset, DatasetBuilder, Scorer};
    use rand::Rng;

    /// Two disjoint user groups with disjoint item tastes.
    fn polarized() -> Dataset {
        let mut b = DatasetBuilder::new(20);
        // Users 0..10 like items 0..10; users 10..20 like items 10..20.
        for u in 0..20u32 {
            let base = if u < 10 { 0u32 } else { 10 };
            let profile: Vec<ItemId> = (0..6).map(|i| ItemId(base + (u * 3 + i) % 10)).collect();
            b.user(&profile);
        }
        b.build()
    }

    #[test]
    fn bpr_learns_group_structure() {
        let ds = polarized();
        let cfg = BprConfig { max_epochs: 60, seed: 3, ..Default::default() };
        let model = train(&ds, &cfg);
        // Every user should on average score their own group's items above
        // the other group's.
        let mut correct = 0;
        let mut total = 0;
        for u in 0..20u32 {
            let own_base = if u < 10 { 0 } else { 10 };
            let other_base = 10 - own_base;
            let own: f32 = (0..10).map(|i| model.score(UserId(u), ItemId(own_base + i))).sum();
            let other: f32 = (0..10).map(|i| model.score(UserId(u), ItemId(other_base + i))).sum();
            if own > other {
                correct += 1;
            }
            total += 1;
        }
        assert!(correct >= total - 1, "only {correct}/{total} users learned their group");
    }

    #[test]
    fn bpr_ranks_positives_above_sampled_negatives() {
        let ds = polarized();
        let model = train(&ds, &BprConfig { max_epochs: 60, seed: 4, ..Default::default() });
        let mut rng = StdRng::seed_from_u64(5);
        let mut wins = 0;
        let mut total = 0;
        for (u, pos) in ds.interactions() {
            let neg = loop {
                let cand = ItemId(rng.gen_range(0..ds.n_items() as u32));
                if !ds.contains(u, cand) {
                    break cand;
                }
            };
            if model.score(u, pos) > model.score(u, neg) {
                wins += 1;
            }
            total += 1;
        }
        let auc = wins as f32 / total as f32;
        assert!(auc > 0.9, "training AUC {auc}");
    }

    #[test]
    fn training_is_deterministic() {
        let ds = polarized();
        let cfg = BprConfig { max_epochs: 5, seed: 9, ..Default::default() };
        let a = train(&ds, &cfg);
        let b = train(&ds, &cfg);
        assert_eq!(a.user_emb.as_slice(), b.user_emb.as_slice());
        assert_eq!(a.item_bias, b.item_bias);
    }

    #[test]
    fn training_is_identical_across_thread_counts() {
        let ds = polarized();
        let cfg = BprConfig { max_epochs: 3, seed: 2, ..Default::default() };
        par::set_threads(Some(1));
        let base = train(&ds, &cfg);
        for t in [2, 8] {
            par::set_threads(Some(t));
            let m = train(&ds, &cfg);
            assert_eq!(m.user_emb.as_slice(), base.user_emb.as_slice(), "threads {t}");
            assert_eq!(m.item_emb.as_slice(), base.item_emb.as_slice(), "threads {t}");
            assert_eq!(m.item_bias, base.item_bias, "threads {t}");
        }
        par::set_threads(None);
    }

    #[test]
    fn minibatch_one_recovers_per_pair_sgd() {
        // With a one-pair batch the frozen-model gradient equals the classic
        // sequential sgd_step, and the sampling stream is unchanged — so
        // minibatch size 1 must reproduce per-pair SGD bit for bit. Here we
        // just pin that it trains to the same quality and is deterministic.
        let ds = polarized();
        let cfg = BprConfig { max_epochs: 5, seed: 9, minibatch: 1, ..Default::default() };
        let a = train(&ds, &cfg);
        let b = train(&ds, &cfg);
        assert_eq!(a.user_emb.as_slice(), b.user_emb.as_slice());
    }

    #[test]
    fn observer_sees_a_decreasing_loss_curve() {
        let ds = polarized();
        let cfg = BprConfig { max_epochs: 20, seed: 7, ..Default::default() };
        let mut hist = ca_train::History::new();
        let (_m, outcome) = train_observed(&ds, &cfg, &mut hist);
        assert_eq!(outcome.epochs_run, 20);
        assert_eq!(hist.epochs.len(), 20);
        let curve = hist.loss_curve();
        assert!(
            curve.last().unwrap() < curve.first().unwrap(),
            "BPR loss did not decrease: {curve:?}"
        );
        assert!(outcome.val_history.is_empty(), "plain train has no validation");
    }

    #[test]
    fn validation_early_stopping_is_available() {
        let ds = polarized();
        let mut rng = StdRng::seed_from_u64(1);
        let split = split_dataset(&ds, 0.2, &mut rng);
        let cfg = BprConfig { max_epochs: 80, patience: Some(3), seed: 6, ..Default::default() };
        let (_m, outcome) =
            train_with_validation(&split.train, &split.validation, &cfg, &mut NullObserver);
        assert_eq!(outcome.val_history.len(), outcome.epochs_run);
        assert!(outcome.epochs_run <= 80);
        if let ca_train::StopReason::EarlyStop { best_epoch, .. } = outcome.stop {
            assert!(outcome.epochs_run == best_epoch + 1 + 3, "patience 3 after best epoch");
        }
    }

    #[test]
    fn same_taste_users_have_similar_embeddings() {
        let ds = polarized();
        let model = train(&ds, &BprConfig { max_epochs: 60, seed: 1, ..Default::default() });
        let cos =
            |a: UserId, b: UserId| ca_tensor::ops::cosine(model.user_vec(a), model.user_vec(b));
        // Mean within-group vs cross-group cosine.
        let mut within = 0.0;
        let mut cross = 0.0;
        let mut n = 0;
        for i in 0..10u32 {
            for j in 0..10u32 {
                if i != j {
                    within += cos(UserId(i), UserId(j));
                    cross += cos(UserId(i), UserId(10 + j));
                    n += 1;
                }
            }
        }
        assert!(
            within / n as f32 > cross / n as f32,
            "within {} cross {}",
            within / n as f32,
            cross / n as f32
        );
    }
}
