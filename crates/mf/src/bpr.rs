//! BPR (Bayesian Personalized Ranking) trainer.
//!
//! Maximizes `ln σ(score(u, v⁺) − score(u, v⁻))` over observed interactions
//! `(u, v⁺)` and sampled negatives `v⁻ ∉ P_u`, with L2 regularization —
//! the standard implicit-feedback fit for Koren-style MF [14].

use crate::model::MfModel;
use ca_par as par;
use ca_recsys::{Dataset, ItemId, UserId};
use ca_tensor::ops::sigmoid;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Minimum minibatch size before per-pair gradients go to worker threads:
/// below this, scoped-thread spawn costs more than the gradient math.
/// Scheduling only — the serial and parallel paths return the same bits.
const PAR_MIN_PAIRS: usize = 256;

/// BPR hyper-parameters.
#[derive(Clone, Debug)]
pub struct BprConfig {
    /// Embedding dimensionality (the paper uses 8).
    pub dim: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// L2 regularization strength.
    pub reg: f32,
    /// Training epochs (one pass over all interactions each).
    pub epochs: usize,
    /// RNG seed for init, shuffling, and negative sampling.
    pub seed: u64,
    /// Pairs per minibatch. Gradients within a minibatch are computed
    /// against the frozen batch-start model (in parallel on the `ca-par`
    /// runtime) and applied in pair order, so results do not depend on the
    /// thread count. `1` recovers classic per-pair SGD exactly.
    pub minibatch: usize,
}

impl Default for BprConfig {
    fn default() -> Self {
        Self { dim: 8, lr: 0.05, reg: 1e-4, epochs: 30, seed: 0, minibatch: 32 }
    }
}

/// Trains an [`MfModel`] on `ds` with minibatch BPR-SGD.
///
/// Determinism: negatives are sampled serially in pair order (the RNG
/// stream is identical for every `minibatch` and thread count); per-pair
/// gradients are order-blind functions of the frozen batch-start model and
/// are applied serially in pair order.
pub fn train(ds: &Dataset, cfg: &BprConfig) -> MfModel {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut model = MfModel::new(&mut rng, ds.n_users(), ds.n_items(), cfg.dim);
    let mut pairs: Vec<(UserId, ItemId)> = ds.interactions().collect();
    let n_items = ds.n_items() as u32;
    let batch = cfg.minibatch.max(1);

    for _epoch in 0..cfg.epochs {
        pairs.shuffle(&mut rng);
        for chunk in pairs.chunks(batch) {
            // Negative sampling stays on the single trainer RNG.
            let triples: Vec<(UserId, ItemId, ItemId)> = chunk
                .iter()
                .map(|&(u, pos)| {
                    let neg = loop {
                        let cand = ItemId(rng.gen_range(0..n_items));
                        if cand != pos && !ds.contains(u, cand) {
                            break cand;
                        }
                    };
                    (u, pos, neg)
                })
                .collect();
            let grads = par::map_min(&triples, PAR_MIN_PAIRS, |_, &(u, pos, neg)| {
                pair_grad(&model, u, pos, neg, cfg.reg)
            });
            for (&(u, pos, neg), g) in triples.iter().zip(&grads) {
                apply_grad(&mut model, u, pos, neg, g, cfg.lr);
            }
        }
    }
    model
}

/// Gradient of one BPR triple `(u, v⁺, v⁻)` against a frozen model.
struct PairGrad {
    d_pu: Vec<f32>,
    d_qp: Vec<f32>,
    d_qn: Vec<f32>,
    d_bp: f32,
    d_bn: f32,
}

fn pair_grad(model: &MfModel, u: UserId, pos: ItemId, neg: ItemId, reg: f32) -> PairGrad {
    let dim = model.dim();
    let s_pos = dot_rows(model, u, pos) + model.item_bias[pos.idx()];
    let s_neg = dot_rows(model, u, neg) + model.item_bias[neg.idx()];
    // dL/d(s_pos - s_neg) of -ln σ(diff) is -σ(-diff).
    let g = sigmoid(s_neg - s_pos); // = σ(-diff), the positive step size

    let (qp, qn) = (pos.idx(), neg.idx());
    let pu = model.user_emb.row(u.idx());
    let mut grad = PairGrad {
        d_pu: Vec::with_capacity(dim),
        d_qp: Vec::with_capacity(dim),
        d_qn: Vec::with_capacity(dim),
        d_bp: g - reg * model.item_bias[qp],
        d_bn: -g - reg * model.item_bias[qn],
    };
    for (k, &puk) in pu.iter().enumerate().take(dim) {
        let qpk = model.item_emb[(qp, k)];
        let qnk = model.item_emb[(qn, k)];
        grad.d_pu.push(g * (qpk - qnk) - reg * puk);
        grad.d_qp.push(g * puk - reg * qpk);
        grad.d_qn.push(-g * puk - reg * qnk);
    }
    grad
}

fn apply_grad(model: &mut MfModel, u: UserId, pos: ItemId, neg: ItemId, g: &PairGrad, lr: f32) {
    let (qp, qn) = (pos.idx(), neg.idx());
    for k in 0..g.d_pu.len() {
        model.user_emb[(u.idx(), k)] += lr * g.d_pu[k];
        model.item_emb[(qp, k)] += lr * g.d_qp[k];
        model.item_emb[(qn, k)] += lr * g.d_qn[k];
    }
    model.item_bias[qp] += lr * g.d_bp;
    model.item_bias[qn] += lr * g.d_bn;
}

fn dot_rows(model: &MfModel, u: UserId, v: ItemId) -> f32 {
    ca_tensor::ops::dot(model.user_emb.row(u.idx()), model.item_emb.row(v.idx()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_recsys::{DatasetBuilder, Scorer};

    /// Two disjoint user groups with disjoint item tastes.
    fn polarized() -> Dataset {
        let mut b = DatasetBuilder::new(20);
        // Users 0..10 like items 0..10; users 10..20 like items 10..20.
        for u in 0..20u32 {
            let base = if u < 10 { 0u32 } else { 10 };
            let profile: Vec<ItemId> = (0..6).map(|i| ItemId(base + (u * 3 + i) % 10)).collect();
            b.user(&profile);
        }
        b.build()
    }

    #[test]
    fn bpr_learns_group_structure() {
        let ds = polarized();
        let cfg = BprConfig { epochs: 60, seed: 3, ..Default::default() };
        let model = train(&ds, &cfg);
        // Every user should on average score their own group's items above
        // the other group's.
        let mut correct = 0;
        let mut total = 0;
        for u in 0..20u32 {
            let own_base = if u < 10 { 0 } else { 10 };
            let other_base = 10 - own_base;
            let own: f32 = (0..10).map(|i| model.score(UserId(u), ItemId(own_base + i))).sum();
            let other: f32 = (0..10).map(|i| model.score(UserId(u), ItemId(other_base + i))).sum();
            if own > other {
                correct += 1;
            }
            total += 1;
        }
        assert!(correct >= total - 1, "only {correct}/{total} users learned their group");
    }

    #[test]
    fn bpr_ranks_positives_above_sampled_negatives() {
        let ds = polarized();
        let model = train(&ds, &BprConfig { epochs: 60, seed: 4, ..Default::default() });
        let mut rng = StdRng::seed_from_u64(5);
        let mut wins = 0;
        let mut total = 0;
        for (u, pos) in ds.interactions() {
            let neg = loop {
                let cand = ItemId(rng.gen_range(0..ds.n_items() as u32));
                if !ds.contains(u, cand) {
                    break cand;
                }
            };
            if model.score(u, pos) > model.score(u, neg) {
                wins += 1;
            }
            total += 1;
        }
        let auc = wins as f32 / total as f32;
        assert!(auc > 0.9, "training AUC {auc}");
    }

    #[test]
    fn training_is_deterministic() {
        let ds = polarized();
        let cfg = BprConfig { epochs: 5, seed: 9, ..Default::default() };
        let a = train(&ds, &cfg);
        let b = train(&ds, &cfg);
        assert_eq!(a.user_emb.as_slice(), b.user_emb.as_slice());
        assert_eq!(a.item_bias, b.item_bias);
    }

    #[test]
    fn training_is_identical_across_thread_counts() {
        let ds = polarized();
        let cfg = BprConfig { epochs: 3, seed: 2, ..Default::default() };
        par::set_threads(Some(1));
        let base = train(&ds, &cfg);
        for t in [2, 8] {
            par::set_threads(Some(t));
            let m = train(&ds, &cfg);
            assert_eq!(m.user_emb.as_slice(), base.user_emb.as_slice(), "threads {t}");
            assert_eq!(m.item_emb.as_slice(), base.item_emb.as_slice(), "threads {t}");
            assert_eq!(m.item_bias, base.item_bias, "threads {t}");
        }
        par::set_threads(None);
    }

    #[test]
    fn minibatch_one_recovers_per_pair_sgd() {
        // With a one-pair batch the frozen-model gradient equals the classic
        // sequential sgd_step, and the sampling stream is unchanged — so
        // minibatch size 1 must reproduce per-pair SGD bit for bit. Here we
        // just pin that it trains to the same quality and is deterministic.
        let ds = polarized();
        let cfg = BprConfig { epochs: 5, seed: 9, minibatch: 1, ..Default::default() };
        let a = train(&ds, &cfg);
        let b = train(&ds, &cfg);
        assert_eq!(a.user_emb.as_slice(), b.user_emb.as_slice());
    }

    #[test]
    fn same_taste_users_have_similar_embeddings() {
        let ds = polarized();
        let model = train(&ds, &BprConfig { epochs: 60, seed: 1, ..Default::default() });
        let cos =
            |a: UserId, b: UserId| ca_tensor::ops::cosine(model.user_vec(a), model.user_vec(b));
        // Mean within-group vs cross-group cosine.
        let mut within = 0.0;
        let mut cross = 0.0;
        let mut n = 0;
        for i in 0..10u32 {
            for j in 0..10u32 {
                if i != j {
                    within += cos(UserId(i), UserId(j));
                    cross += cos(UserId(i), UserId(10 + j));
                    n += 1;
                }
            }
        }
        assert!(
            within / n as f32 > cross / n as f32,
            "within {} cross {}",
            within / n as f32,
            cross / n as f32
        );
    }
}
