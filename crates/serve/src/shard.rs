//! One shard: a user-partitioned fault domain under supervision.
//!
//! A shard owns the *current* profiles of its users (platform id mod shard
//! count), a serving replica of the global model
//! ([`ModelVersion`]), and its own seeded fault stream. The supervisor
//! drives it through a small state machine:
//!
//! ```text
//!            retrain due            retrain done
//!  Healthy ───────────────► Retraining ──────────► Healthy
//!     │  ▲                      │
//!     │  │ restart backoff      │ crash/stall roll (every live tick)
//!     ▼  │ elapsed              ▼
//!    Down ◄──────────────── Stalled (health check: no clock progress)
//! ```
//!
//! Crash consistency: the instant a shard crashes, its users and model are
//! rolled back to the last [`ShardCheckpoint`] — every interaction and
//! injection since then is lost, exactly like a process that never flushed.
//! The restart itself is then just a delayed state flip, so recovery can
//! never observe half-applied writes.

use crate::config::ServeConfig;
use crate::model::ModelVersion;
use ca_recsys::{ItemId, SplitMix64};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Lifecycle state of a shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardState {
    /// Serving live traffic from its model replica.
    Healthy,
    /// Mid-retrain until the given tick: tenants get stale popularity,
    /// organic queries are shed.
    Retraining {
        /// Tick at which the pending model is adopted.
        until: u64,
    },
    /// Injected stall: the shard stops progressing; only the supervisor's
    /// logical-clock health check can get it out (by restarting it).
    Stalled,
    /// Crashed; restarting with backoff until the given tick.
    Down {
        /// Tick at which the restart completes.
        until: u64,
    },
}

/// Per-shard supervision counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Crashes (injected, scripted, or stall-escalated).
    pub crashes: u64,
    /// Injected stalls.
    pub stalls: u64,
    /// Completed restarts.
    pub restarts: u64,
    /// Adopted model versions (completed retrains).
    pub retrains: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
}

/// A crash-consistent snapshot of one shard's state.
#[derive(Clone, Debug)]
pub struct ShardCheckpoint {
    /// Tick the checkpoint was taken at.
    pub taken_at: u64,
    users: BTreeMap<u32, Vec<ItemId>>,
    model: Arc<ModelVersion>,
}

/// One user-sharded fault domain.
#[derive(Clone, Debug)]
pub struct Shard {
    id: usize,
    users: BTreeMap<u32, Vec<ItemId>>,
    model: Arc<ModelVersion>,
    pending: Option<Arc<ModelVersion>>,
    state: ShardState,
    restart_attempts: u32,
    last_progress: u64,
    checkpoint: ShardCheckpoint,
    rng: SplitMix64,
    stats: ShardStats,
}

impl Shard {
    /// A fresh shard owning `users`, serving `model`, with its fault
    /// stream seeded from `seed`. The launch state doubles as the first
    /// checkpoint.
    pub fn new(
        id: usize,
        users: BTreeMap<u32, Vec<ItemId>>,
        model: Arc<ModelVersion>,
        seed: u64,
    ) -> Self {
        let checkpoint =
            ShardCheckpoint { taken_at: 0, users: users.clone(), model: model.clone() };
        Self {
            id,
            users,
            model,
            pending: None,
            state: ShardState::Healthy,
            restart_attempts: 0,
            last_progress: 0,
            checkpoint,
            rng: SplitMix64::new(seed),
            stats: ShardStats::default(),
        }
    }

    /// Current lifecycle state.
    pub fn state(&self) -> ShardState {
        self.state
    }

    /// Whether the shard accepts reads and writes at all (healthy or
    /// mid-retrain — degraded, but answering).
    pub fn accepting(&self) -> bool {
        matches!(self.state, ShardState::Healthy | ShardState::Retraining { .. })
    }

    /// Whether the shard serves live (non-degraded) recommendations.
    pub fn is_live(&self) -> bool {
        self.state == ShardState::Healthy
    }

    /// The serving model replica.
    pub fn model(&self) -> &Arc<ModelVersion> {
        &self.model
    }

    /// Current (possibly post-snapshot) profiles of this shard's users.
    pub fn users(&self) -> &BTreeMap<u32, Vec<ItemId>> {
        &self.users
    }

    /// The current profile of one user, if this shard hosts them.
    pub fn profile_of(&self, uid: u32) -> Option<&[ItemId]> {
        self.users.get(&uid).map(Vec::as_slice)
    }

    /// Supervision counters.
    pub fn stats(&self) -> &ShardStats {
        &self.stats
    }

    /// The last crash-consistent checkpoint.
    pub fn checkpoint(&self) -> &ShardCheckpoint {
        &self.checkpoint
    }

    /// Ticks until a degraded shard expects to serve again — the
    /// `retry_after` hint behind [`RecError::Degraded`](ca_recsys::RecError).
    pub fn degraded_retry_after(&self, t: u64, cfg: &ServeConfig) -> u64 {
        match self.state {
            ShardState::Down { until } => until.saturating_sub(t).max(1),
            // A stalled shard first has to fail the health check, then sit
            // out a restart backoff.
            ShardState::Stalled => (self.last_progress + cfg.stall_detect_ticks)
                .saturating_sub(t)
                .saturating_add(cfg.restart_backoff(self.restart_attempts))
                .max(1),
            ShardState::Healthy | ShardState::Retraining { .. } => 1,
        }
    }

    /// One supervisor step at tick `t`. Returns `true` when the shard is
    /// due a retrain — the service then builds (or reuses) the global
    /// snapshot for tick `t` and hands it to [`Shard::begin_retrain`].
    pub(crate) fn supervisor_tick(&mut self, t: u64, cfg: &ServeConfig) -> bool {
        match self.state {
            ShardState::Down { until } => {
                if t >= until {
                    // State was already rolled back when the crash hit;
                    // completing the restart is a pure state flip.
                    self.state = ShardState::Healthy;
                    self.stats.restarts += 1;
                    self.last_progress = t;
                }
                return false;
            }
            ShardState::Stalled => {
                // Health check on the logical clock: a shard that has not
                // progressed for stall_detect_ticks is declared dead and
                // restarted through the crash-recovery path.
                if t.saturating_sub(self.last_progress) >= cfg.stall_detect_ticks {
                    self.crash(t, cfg);
                }
                return false;
            }
            ShardState::Healthy | ShardState::Retraining { .. } => {}
        }
        // Seeded fault injection: one roll per live tick per shard, plus
        // the scripted crashes chaos tests use for exact reproductions.
        let scripted = cfg.scripted_crashes.iter().any(|&(ct, cs)| ct == t && cs == self.id);
        let roll = self.rng.unit_f64();
        if scripted || roll < cfg.crash_prob {
            self.crash(t, cfg);
            return false;
        }
        if roll < cfg.crash_prob + cfg.stall_prob {
            self.stats.stalls += 1;
            self.state = ShardState::Stalled;
            return false;
        }
        if let ShardState::Retraining { until } = self.state {
            if t >= until {
                if let Some(m) = self.pending.take() {
                    self.model = m;
                }
                self.state = ShardState::Healthy;
                self.stats.retrains += 1;
            }
        }
        if self.state == ShardState::Healthy {
            self.last_progress = t;
            if t.is_multiple_of(cfg.checkpoint_every) {
                self.take_checkpoint(t);
            }
            if t.is_multiple_of(cfg.retrain_every) {
                return true;
            }
        }
        false
    }

    /// Starts a retrain at tick `t` onto the given global snapshot. With
    /// `retrain_ticks == 0` the adoption is immediate.
    pub(crate) fn begin_retrain(&mut self, t: u64, cfg: &ServeConfig, snapshot: Arc<ModelVersion>) {
        if cfg.retrain_ticks == 0 {
            self.model = snapshot;
            self.stats.retrains += 1;
        } else {
            self.pending = Some(snapshot);
            self.state = ShardState::Retraining { until: t + cfg.retrain_ticks };
        }
    }

    /// Kills the shard at tick `t`: rolls state back to the last
    /// checkpoint (crash consistency) and schedules a backed-off restart.
    pub(crate) fn crash(&mut self, t: u64, cfg: &ServeConfig) {
        self.users = self.checkpoint.users.clone();
        self.model = self.checkpoint.model.clone();
        self.pending = None;
        let backoff = cfg.restart_backoff(self.restart_attempts);
        self.restart_attempts = self.restart_attempts.saturating_add(1);
        self.state = ShardState::Down { until: t + backoff };
        self.stats.crashes += 1;
    }

    fn take_checkpoint(&mut self, t: u64) {
        self.checkpoint =
            ShardCheckpoint { taken_at: t, users: self.users.clone(), model: self.model.clone() };
        // A clean checkpoint is proof of stability: the restart backoff
        // resets so a later crash starts the ladder from the base again.
        self.restart_attempts = 0;
        self.stats.checkpoints += 1;
    }

    /// Appends an interaction to a hosted user's profile (idempotent per
    /// item). Returns `false` when this shard does not host `uid`.
    pub(crate) fn record_interaction(&mut self, uid: u32, item: ItemId) -> bool {
        match self.users.get_mut(&uid) {
            Some(p) => {
                if !p.contains(&item) {
                    p.push(item);
                }
                true
            }
            None => false,
        }
    }

    /// Registers a newly injected user.
    pub(crate) fn insert_user(&mut self, uid: u32, profile: Vec<ItemId>) {
        self.users.insert(uid, profile);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(v: &[u32]) -> Vec<ItemId> {
        v.iter().map(|&x| ItemId(x)).collect()
    }

    fn shard(cfg: &ServeConfig) -> Shard {
        let users: BTreeMap<u32, Vec<ItemId>> =
            [(0u32, items(&[0, 1])), (4, items(&[2]))].into_iter().collect();
        let pairs: Vec<(u32, Vec<ItemId>)> = users.iter().map(|(&u, p)| (u, p.clone())).collect();
        let model = Arc::new(ModelVersion::build(0, 0, &pairs, 6));
        let _ = cfg;
        Shard::new(0, users, model, 7)
    }

    #[test]
    fn crash_rolls_back_to_checkpoint_and_backs_off() {
        let cfg = ServeConfig { restart_base: 4, restart_max: 16, ..Default::default() };
        let mut s = shard(&cfg);
        s.record_interaction(0, ItemId(5));
        assert_eq!(s.profile_of(0).unwrap().len(), 3);
        s.crash(10, &cfg);
        // Crash-consistent: the un-checkpointed write is gone immediately.
        assert_eq!(s.profile_of(0).unwrap(), &items(&[0, 1])[..]);
        assert_eq!(s.state(), ShardState::Down { until: 14 });
        assert!(!s.accepting());
        // Second crash (after a restart) doubles the backoff.
        assert!(!s.supervisor_tick(14, &cfg));
        assert_eq!(s.state(), ShardState::Healthy);
        s.crash(20, &cfg);
        assert_eq!(s.state(), ShardState::Down { until: 28 });
    }

    #[test]
    fn stall_is_escalated_by_the_logical_clock_health_check() {
        let cfg = ServeConfig {
            stall_prob: 1.0,
            stall_detect_ticks: 5,
            restart_base: 2,
            ..Default::default()
        };
        let mut s = shard(&cfg);
        assert!(!s.supervisor_tick(1, &cfg));
        assert_eq!(s.state(), ShardState::Stalled);
        assert_eq!(s.stats().stalls, 1);
        // Not dead long enough yet.
        assert!(!s.supervisor_tick(4, &cfg));
        assert_eq!(s.state(), ShardState::Stalled);
        // Health check fires: last progress was the launch tick 0.
        assert!(!s.supervisor_tick(5, &cfg));
        assert!(matches!(s.state(), ShardState::Down { .. }));
        assert_eq!(s.stats().crashes, 1);
    }

    #[test]
    fn checkpoint_resets_the_restart_ladder() {
        let cfg = ServeConfig {
            checkpoint_every: 8,
            restart_base: 4,
            restart_max: 64,
            retrain_every: 1000,
            ..Default::default()
        };
        let mut s = shard(&cfg);
        s.crash(1, &cfg);
        assert_eq!(s.state(), ShardState::Down { until: 5 });
        assert!(!s.supervisor_tick(5, &cfg));
        // Tick 8 is a checkpoint tick: stability proven, ladder reset.
        assert!(!s.supervisor_tick(8, &cfg));
        assert_eq!(s.stats().checkpoints, 1);
        s.crash(9, &cfg);
        assert_eq!(s.state(), ShardState::Down { until: 13 }, "backoff restarts from base");
    }

    #[test]
    fn retrain_window_serves_pending_only_after_adoption() {
        let cfg = ServeConfig { retrain_ticks: 3, ..Default::default() };
        let mut s = shard(&cfg);
        let v1 = Arc::new(ModelVersion::build(1, 10, &[(0, items(&[0]))], 6));
        s.begin_retrain(10, &cfg, v1);
        assert_eq!(s.state(), ShardState::Retraining { until: 13 });
        assert_eq!(s.model().version, 0, "still serving the old replica");
        assert!(!s.supervisor_tick(13, &cfg));
        assert_eq!(s.model().version, 1);
        assert_eq!(s.state(), ShardState::Healthy);
        assert_eq!(s.stats().retrains, 1);
    }
}
