//! `ca-serve` — the live platform the attack actually runs against.
//!
//! Everything below the [`FallibleBlackBox`](ca_recsys::FallibleBlackBox)
//! surface in the rest of the workspace is a frozen model; this crate
//! replaces it with a *deployment*: user profiles sharded across
//! supervised fault domains, organic traffic drawn from the generator's
//! latent world model, periodic retrains that drift the served model onto
//! whatever the traffic (and the attacker) did, seeded crash/stall
//! injection, crash-consistent checkpoint recovery, and a graceful
//! degradation ladder instead of stalls.
//!
//! The attack campaign is **one tenant among thousands**: it talks to
//! [`LivePlatform`] through the same fallible trait as any other target,
//! while the supervisor, the organic crowd, and the retrain loop keep the
//! world moving underneath it.
//!
//! Layout:
//!
//! - [`config`] — [`ServeConfig`]: sharding, traffic, cadence, and fault
//!   injection knobs (all in logical ticks; no wall clock anywhere);
//! - [`model`] — [`ModelVersion`]: immutable uid-ordered serving
//!   snapshots, shared by pointer;
//! - [`shard`] — [`Shard`]: one fault domain's state machine, checkpoint
//!   rollback, and bounded restart backoff;
//! - [`service`] — [`LivePlatform`]: the event loop, the degradation
//!   ladder, owner-side metrics, and the deterministic parallel read path.
//!
//! Replays are bit-for-bit at any `CA_THREADS` setting, and — with fault
//! injection off — at any shard count.

#![forbid(unsafe_code)]

pub mod config;
pub mod model;
pub mod service;
pub mod shard;

pub use config::ServeConfig;
pub use model::{ModelVersion, SketchedKnn};
pub use service::{LivePlatform, ServeStats};
pub use shard::{Shard, ShardCheckpoint, ShardState, ShardStats};
