//! Immutable serving-model snapshots.
//!
//! A [`ModelVersion`] is what a shard actually serves from: an
//! [`ItemKnnRecommender`] built over a *snapshot* of every shard's user
//! state at one retrain tick, plus the popularity ranking of the same
//! snapshot for degraded serving. Versions are immutable and shared
//! (`Arc`), so "adopting" or "rolling back to" a model is a pointer swap —
//! which is exactly what makes shard crash recovery cheap and
//! crash-consistent.
//!
//! Drift lives in the gap between versions: interactions and injections
//! that land after `built_at` influence nothing until a later retrain
//! snapshots them. A user injected after the snapshot is *unknown* to the
//! model and is served the popularity fallback until a retrain picks their
//! profile up — the paper's cold-start reality that a live attack campaign
//! has to wait out.
//!
//! With [`RetrievalMode::Ivf`] a snapshot additionally carries a
//! [`SketchedKnn`] embedding (a seeded random-projection sketch of the
//! co-occurrence structure — ItemKNN has no learned item vectors, so the
//! index clusters `g_v = pop_v^{-1/2} Σ_{u ∈ P_v} r_u` Rademacher sums,
//! whose inner products approximate the cosine similarity mass) plus an
//! [`IvfIndex`] over it. The index is part of the snapshot: it is rebuilt
//! at every retrain and frozen in between, so serving drift interacts
//! with cell assignment exactly like a production ANN shard refresh.

use ca_ann::{IvfConfig, IvfIndex};
use ca_recsys::engine::{EmbeddingEngine, ScoringEngine};
use ca_recsys::knn::ItemKnnRecommender;
use ca_recsys::{
    BlackBoxRecommender, Dataset, DatasetBuilder, ItemId, RetrievalMode, Scorer, UserId,
};
use ca_tensor::{ops, Matrix};
use std::collections::BTreeMap;

/// Width of the Rademacher co-occurrence sketch.
const SKETCH_DIM: usize = 32;

/// Salt of the per-user Rademacher sign draws (mixed with the snapshot
/// row id via `ca_par::split_seed`, so the sketch is a pure function of
/// the snapshot contents).
const SKETCH_SEED: u64 = 0x5ce7c4;

/// Item sketch table for a snapshot's dataset: row `v` is
/// `pop_v^{-1/2} · Σ_{u ∈ P_v} r_u` with `r_u ∈ {±1}^{SKETCH_DIM}` drawn
/// from the user's split seed. `dot(g_a, g_b)` concentrates on
/// `SKETCH_DIM · co(a, b) / sqrt(pop_a · pop_b)` — the ItemKNN cosine up
/// to a constant — which is all cell ranking needs.
fn build_sketch(data: &Dataset) -> Matrix {
    let mut sketch = Matrix::zeros(data.n_items(), SKETCH_DIM);
    for v in 0..data.n_items() {
        let users = data.item_profile(ItemId(v as u32));
        if users.is_empty() {
            continue;
        }
        let row = sketch.row_mut(v);
        for &u in users.iter() {
            let bits = ca_par::split_seed(SKETCH_SEED, u.0 as u64);
            for (j, x) in row.iter_mut().enumerate() {
                *x += if bits >> j & 1 == 1 { 1.0 } else { -1.0 };
            }
        }
        ops::scale(row, 1.0 / (users.len() as f32).sqrt());
    }
    sketch
}

/// Borrowed view pairing an [`ItemKnnRecommender`] with its sketch table,
/// giving the co-occurrence model the [`EmbeddingEngine`] surface the IVF
/// index builds and probes against. Candidate scoring stays the exact
/// ItemKNN similarity mass — the sketch only steers which cells are
/// probed.
pub struct SketchedKnn<'a> {
    knn: &'a ItemKnnRecommender,
    sketch: &'a Matrix,
}

impl ScoringEngine for SketchedKnn<'_> {
    fn catalog_len(&self) -> usize {
        self.knn.catalog_len()
    }

    fn score_batch(&self, users: &[UserId], out: &mut Matrix) {
        // ca-audit: allow(exact-scan) — trait delegation; the wrapper only adds the embedding view
        self.knn.score_batch(users, out);
    }

    fn is_seen(&self, user: UserId, item: ItemId) -> bool {
        self.knn.is_seen(user, item)
    }
}

impl EmbeddingEngine for SketchedKnn<'_> {
    fn embedding_dim(&self) -> usize {
        self.sketch.cols()
    }

    fn item_embedding_into(&self, item: ItemId, out: &mut [f32]) {
        out.copy_from_slice(self.sketch.row(item.idx()));
    }

    /// Query = the sum of the profile items' sketches, so
    /// `dot(query, g_v) ≈ SKETCH_DIM · Σ_{i ∈ P_u} sim(i, v)` — the same
    /// similarity mass the exact scorer ranks by.
    fn query_embedding_into(&self, user: UserId, out: &mut [f32]) {
        out.fill(0.0);
        for &i in self.knn.data().profile(user) {
            ops::axpy(1.0, self.sketch.row(i.idx()), out);
        }
    }

    fn score_items(&self, user: UserId, items: &[ItemId], out: &mut [f32]) {
        // `Scorer::score` sums similarities in profile order, bitwise the
        // accumulation order of the `score_batch` row loop.
        for (o, &v) in out.iter_mut().zip(items) {
            *o = self.knn.score(user, v);
        }
    }
}

/// The sketch + index pair an `Ivf` snapshot serves through.
#[derive(Clone, Debug)]
struct AnnState {
    sketch: Matrix,
    index: IvfIndex,
    nprobe: usize,
}

/// One immutable snapshot of the serving model.
#[derive(Clone, Debug)]
pub struct ModelVersion {
    /// Monotone version counter (0 = the launch model).
    pub version: u64,
    /// Logical tick the snapshot was taken at.
    pub built_at: u64,
    knn: ItemKnnRecommender,
    /// Platform user id → row in the snapshot's dataset.
    row_of: BTreeMap<u32, u32>,
    /// Catalog sorted by snapshot popularity (descending, id-ascending on
    /// ties): the stale-popularity degraded serving order.
    pop_rank: Vec<ItemId>,
    /// Sketch + IVF index when the snapshot serves approximately.
    ann: Option<AnnState>,
}

impl ModelVersion {
    /// [`ModelVersion::build_with`] under exact retrieval (the historical
    /// serving path; replay digests are pinned against it).
    pub fn build(
        version: u64,
        built_at: u64,
        users: &[(u32, Vec<ItemId>)],
        n_items: usize,
    ) -> Self {
        Self::build_with(version, built_at, users, n_items, RetrievalMode::Exact)
    }

    /// Builds a version from `(platform uid, profile)` pairs. Callers must
    /// pass the pairs sorted by uid — the row layout (and therefore the
    /// model bits) must not depend on shard count or iteration order.
    /// Under `Ivf` retrieval the snapshot also builds its sketch and index
    /// here, at the retrain boundary.
    pub fn build_with(
        version: u64,
        built_at: u64,
        users: &[(u32, Vec<ItemId>)],
        n_items: usize,
        retrieval: RetrievalMode,
    ) -> Self {
        debug_assert!(users.windows(2).all(|w| w[0].0 < w[1].0), "users must be uid-sorted");
        let mut b = DatasetBuilder::new(n_items);
        let mut row_of = BTreeMap::new();
        for (row, (uid, profile)) in users.iter().enumerate() {
            b.user(profile);
            row_of.insert(*uid, row as u32);
        }
        let data = b.build();
        let mut by_pop: Vec<(usize, u32)> =
            data.items().map(|v| (data.item_popularity(v), v.0)).collect();
        by_pop.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let pop_rank = by_pop.into_iter().map(|(_, v)| ItemId(v)).collect();
        let knn = ItemKnnRecommender::deploy(data);
        let ann = match retrieval {
            RetrievalMode::Exact => None,
            RetrievalMode::Ivf { nlist, nprobe } => {
                let sketch = build_sketch(knn.data());
                let engine = SketchedKnn { knn: &knn, sketch: &sketch };
                let index = IvfIndex::build(&engine, &IvfConfig::new(nlist, nprobe));
                Some(AnnState { sketch, index, nprobe })
            }
        };
        Self { version, built_at, knn, row_of, pop_rank, ann }
    }

    /// Whether the platform user was part of this snapshot.
    pub fn knows(&self, uid: u32) -> bool {
        self.row_of.contains_key(&uid)
    }

    /// Live Top-k for a snapshot user, or `None` if the model has never
    /// seen them (they joined after `built_at`). Served through the
    /// snapshot's IVF index when one was built, exactly otherwise.
    pub fn top_k(&self, uid: u32, k: usize) -> Option<Vec<ItemId>> {
        let &row = self.row_of.get(&uid)?;
        Some(match &self.ann {
            Some(ann) => {
                let engine = SketchedKnn { knn: &self.knn, sketch: &ann.sketch };
                ann.index.top_k(&engine, UserId(row), k, ann.nprobe)
            }
            None => self.knn.top_k(UserId(row), k),
        })
    }

    /// The snapshot's IVF index, when it serves approximately.
    pub fn index(&self) -> Option<&IvfIndex> {
        self.ann.as_ref().map(|a| &a.index)
    }

    /// Popularity-ranked Top-k, excluding `seen` — the degraded serving
    /// path for mid-retrain shards and for users unknown to the snapshot.
    pub fn pop_top_k(&self, seen: &[ItemId], k: usize) -> Vec<ItemId> {
        self.pop_rank.iter().copied().filter(|v| !seen.contains(v)).take(k).collect()
    }

    /// Number of users in the snapshot.
    pub fn n_users(&self) -> usize {
        self.row_of.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(v: &[u32]) -> Vec<ItemId> {
        v.iter().map(|&x| ItemId(x)).collect()
    }

    fn snapshot() -> ModelVersion {
        // Item 1 is most popular, then 0, then 2/3 tie (2 wins by id).
        let users = vec![(0u32, items(&[0, 1])), (2, items(&[1, 2])), (5, items(&[0, 1, 3]))];
        ModelVersion::build(1, 10, &users, 5)
    }

    #[test]
    fn knows_only_snapshot_users() {
        let m = snapshot();
        assert!(m.knows(0) && m.knows(2) && m.knows(5));
        assert!(!m.knows(1) && !m.knows(7));
        assert_eq!(m.n_users(), 3);
        assert!(m.top_k(7, 3).is_none());
        assert_eq!(m.top_k(0, 3).map(|l| l.len()), Some(3));
    }

    #[test]
    fn pop_rank_orders_by_popularity_then_id() {
        let m = snapshot();
        assert_eq!(m.pop_top_k(&[], 5), items(&[1, 0, 2, 3, 4]));
        assert_eq!(m.pop_top_k(&items(&[1, 2]), 2), items(&[0, 3]), "seen items are masked");
    }

    #[test]
    fn ivf_snapshot_serves_unseen_items_and_full_probe_matches_exact() {
        // A catalog large enough for a few real cells.
        let users: Vec<(u32, Vec<ItemId>)> = (0..30u32)
            .map(|u| (u * 2, (0..6u32).map(|i| ItemId((u * 7 + i * 3) % 40)).collect()))
            .collect();
        let exact = ModelVersion::build(3, 9, &users, 40);
        let ivf =
            ModelVersion::build_with(3, 9, &users, 40, RetrievalMode::Ivf { nlist: 8, nprobe: 2 });
        assert!(exact.index().is_none());
        let index = ivf.index().expect("ivf snapshot carries an index");
        assert_eq!(index.len(), 40);
        for &(uid, ref profile) in &users[..5] {
            let list = ivf.top_k(uid, 5).expect("snapshot user");
            // A narrow probe may surface fewer than k unseen candidates —
            // that shortfall is the approximation, never a seen item.
            assert!(!list.is_empty() && list.len() <= 5);
            assert!(list.iter().all(|v| !profile.contains(v)), "seen item served");
        }
        // Probing every cell leaves pruning no room: bitwise the exact list.
        let full =
            ModelVersion::build_with(3, 9, &users, 40, RetrievalMode::Ivf { nlist: 8, nprobe: 8 });
        for &(uid, _) in &users {
            assert_eq!(full.top_k(uid, 10), exact.top_k(uid, 10), "uid {uid}");
        }
        assert!(ivf.top_k(1, 5).is_none(), "unknown users stay unknown");
    }

    #[test]
    fn row_layout_is_uid_ordered_not_shard_ordered() {
        // The same user set presented in any uid-sorted form must produce
        // identical recommendations — the shard-count invariance anchor.
        let a = snapshot();
        let b = snapshot();
        for uid in [0u32, 2, 5] {
            assert_eq!(a.top_k(uid, 4), b.top_k(uid, 4));
        }
    }
}
