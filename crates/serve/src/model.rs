//! Immutable serving-model snapshots.
//!
//! A [`ModelVersion`] is what a shard actually serves from: an
//! [`ItemKnnRecommender`] built over a *snapshot* of every shard's user
//! state at one retrain tick, plus the popularity ranking of the same
//! snapshot for degraded serving. Versions are immutable and shared
//! (`Arc`), so "adopting" or "rolling back to" a model is a pointer swap —
//! which is exactly what makes shard crash recovery cheap and
//! crash-consistent.
//!
//! Drift lives in the gap between versions: interactions and injections
//! that land after `built_at` influence nothing until a later retrain
//! snapshots them. A user injected after the snapshot is *unknown* to the
//! model and is served the popularity fallback until a retrain picks their
//! profile up — the paper's cold-start reality that a live attack campaign
//! has to wait out.

use ca_recsys::knn::ItemKnnRecommender;
use ca_recsys::{BlackBoxRecommender, DatasetBuilder, ItemId, UserId};
use std::collections::BTreeMap;

/// One immutable snapshot of the serving model.
#[derive(Clone, Debug)]
pub struct ModelVersion {
    /// Monotone version counter (0 = the launch model).
    pub version: u64,
    /// Logical tick the snapshot was taken at.
    pub built_at: u64,
    knn: ItemKnnRecommender,
    /// Platform user id → row in the snapshot's dataset.
    row_of: BTreeMap<u32, u32>,
    /// Catalog sorted by snapshot popularity (descending, id-ascending on
    /// ties): the stale-popularity degraded serving order.
    pop_rank: Vec<ItemId>,
}

impl ModelVersion {
    /// Builds a version from `(platform uid, profile)` pairs. Callers must
    /// pass the pairs sorted by uid — the row layout (and therefore the
    /// model bits) must not depend on shard count or iteration order.
    pub fn build(
        version: u64,
        built_at: u64,
        users: &[(u32, Vec<ItemId>)],
        n_items: usize,
    ) -> Self {
        debug_assert!(users.windows(2).all(|w| w[0].0 < w[1].0), "users must be uid-sorted");
        let mut b = DatasetBuilder::new(n_items);
        let mut row_of = BTreeMap::new();
        for (row, (uid, profile)) in users.iter().enumerate() {
            b.user(profile);
            row_of.insert(*uid, row as u32);
        }
        let data = b.build();
        let mut by_pop: Vec<(usize, u32)> =
            data.items().map(|v| (data.item_popularity(v), v.0)).collect();
        by_pop.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let pop_rank = by_pop.into_iter().map(|(_, v)| ItemId(v)).collect();
        Self { version, built_at, knn: ItemKnnRecommender::deploy(data), row_of, pop_rank }
    }

    /// Whether the platform user was part of this snapshot.
    pub fn knows(&self, uid: u32) -> bool {
        self.row_of.contains_key(&uid)
    }

    /// Live Top-k for a snapshot user, or `None` if the model has never
    /// seen them (they joined after `built_at`).
    pub fn top_k(&self, uid: u32, k: usize) -> Option<Vec<ItemId>> {
        self.row_of.get(&uid).map(|&row| self.knn.top_k(UserId(row), k))
    }

    /// Popularity-ranked Top-k, excluding `seen` — the degraded serving
    /// path for mid-retrain shards and for users unknown to the snapshot.
    pub fn pop_top_k(&self, seen: &[ItemId], k: usize) -> Vec<ItemId> {
        self.pop_rank.iter().copied().filter(|v| !seen.contains(v)).take(k).collect()
    }

    /// Number of users in the snapshot.
    pub fn n_users(&self) -> usize {
        self.row_of.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(v: &[u32]) -> Vec<ItemId> {
        v.iter().map(|&x| ItemId(x)).collect()
    }

    fn snapshot() -> ModelVersion {
        // Item 1 is most popular, then 0, then 2/3 tie (2 wins by id).
        let users = vec![(0u32, items(&[0, 1])), (2, items(&[1, 2])), (5, items(&[0, 1, 3]))];
        ModelVersion::build(1, 10, &users, 5)
    }

    #[test]
    fn knows_only_snapshot_users() {
        let m = snapshot();
        assert!(m.knows(0) && m.knows(2) && m.knows(5));
        assert!(!m.knows(1) && !m.knows(7));
        assert_eq!(m.n_users(), 3);
        assert!(m.top_k(7, 3).is_none());
        assert_eq!(m.top_k(0, 3).map(|l| l.len()), Some(3));
    }

    #[test]
    fn pop_rank_orders_by_popularity_then_id() {
        let m = snapshot();
        assert_eq!(m.pop_top_k(&[], 5), items(&[1, 0, 2, 3, 4]));
        assert_eq!(m.pop_top_k(&items(&[1, 2]), 2), items(&[0, 3]), "seen items are masked");
    }

    #[test]
    fn row_layout_is_uid_ordered_not_shard_ordered() {
        // The same user set presented in any uid-sorted form must produce
        // identical recommendations — the shard-count invariance anchor.
        let a = snapshot();
        let b = snapshot();
        for uid in [0u32, 2, 5] {
            assert_eq!(a.top_k(uid, 4), b.top_k(uid, 4));
        }
    }
}
