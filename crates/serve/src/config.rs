//! Service-layer configuration.

use ca_recsys::RetrievalMode;

/// Everything that shapes a [`LivePlatform`](crate::LivePlatform) run:
/// sharding, organic load, retrain cadence, checkpointing, and the seeded
/// fault injection the supervisor must survive.
///
/// All time quantities are *logical ticks* (one tenant call or one platform
/// step); nothing in the service layer reads a wall clock, so a
/// configuration plus a call sequence replays bit for bit.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Master seed: per-shard fault streams and the organic event stream
    /// are split from it.
    pub seed: u64,
    /// Number of user-sharded fault domains.
    pub n_shards: usize,
    /// Organic events per logical tick (fractional rates accumulate).
    pub organic_rate: f64,
    /// Fraction of organic events that are queries (the rest interact).
    pub query_fraction: f64,
    /// Ticks between retrain starts on a healthy shard.
    pub retrain_every: u64,
    /// Ticks a retrain occupies the shard (it serves stale popularity to
    /// tenants and sheds organic queries meanwhile).
    pub retrain_ticks: u64,
    /// Ticks between crash-consistent shard checkpoints.
    pub checkpoint_every: u64,
    /// Per-shard, per-tick probability of an injected crash.
    pub crash_prob: f64,
    /// Per-shard, per-tick probability of an injected stall (the shard
    /// stops progressing until the health check notices).
    pub stall_prob: f64,
    /// Health-check threshold: a shard whose logical clock has not
    /// progressed for this many ticks is declared dead and restarted.
    pub stall_detect_ticks: u64,
    /// Base restart backoff after a crash, in ticks.
    pub restart_base: u64,
    /// Ceiling on the restart backoff.
    pub restart_max: u64,
    /// Deterministic forced crashes `(tick, shard)` — the chaos-test hook
    /// for reproducing an exact mid-campaign shard loss.
    pub scripted_crashes: Vec<(u64, usize)>,
    /// How snapshots answer Top-k: `Exact` full-catalog scoring (the
    /// default, and the historical behavior), or `Ivf` approximate
    /// retrieval over a per-snapshot index — rebuilt at every retrain, so
    /// drift between versions interacts with cell assignment.
    pub retrieval: RetrievalMode,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            seed: 0xCA5E,
            n_shards: 4,
            organic_rate: 2.0,
            query_fraction: 0.7,
            retrain_every: 64,
            retrain_ticks: 8,
            checkpoint_every: 32,
            crash_prob: 0.0,
            stall_prob: 0.0,
            stall_detect_ticks: 16,
            restart_base: 16,
            restart_max: 256,
            scripted_crashes: Vec::new(),
            retrieval: RetrievalMode::Exact,
        }
    }
}

impl ServeConfig {
    /// Sanity-checks the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_shards == 0 {
            return Err("n_shards must be at least 1".into());
        }
        if !(self.organic_rate.is_finite() && self.organic_rate >= 0.0) {
            return Err(format!("organic_rate {} must be finite and >= 0", self.organic_rate));
        }
        for (name, p) in [
            ("query_fraction", self.query_fraction),
            ("crash_prob", self.crash_prob),
            ("stall_prob", self.stall_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} {p} outside [0, 1]"));
            }
        }
        if self.crash_prob + self.stall_prob > 1.0 {
            return Err("crash_prob + stall_prob exceed 1".into());
        }
        if self.retrain_every == 0 || self.checkpoint_every == 0 {
            return Err("retrain_every and checkpoint_every must be positive".into());
        }
        if self.retrain_ticks >= self.retrain_every {
            return Err(format!(
                "retrain_ticks {} must undercut retrain_every {} or the shard never serves live",
                self.retrain_ticks, self.retrain_every
            ));
        }
        if self.stall_detect_ticks == 0 {
            return Err("stall_detect_ticks must be positive".into());
        }
        if self.restart_base == 0 || self.restart_max < self.restart_base {
            return Err(format!(
                "restart backoff range [{}, {}] is empty",
                self.restart_base, self.restart_max
            ));
        }
        if let RetrievalMode::Ivf { nlist, nprobe } = self.retrieval {
            if nlist == 0 || nprobe == 0 {
                return Err(format!("ivf retrieval needs nlist {nlist} and nprobe {nprobe} > 0"));
            }
        }
        Ok(())
    }

    /// Bounded restart backoff for the given 0-based crash count:
    /// `min(restart_base · 2^attempt, restart_max)`.
    pub fn restart_backoff(&self, attempt: u32) -> u64 {
        let exp = self.restart_base.saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX));
        exp.min(self.restart_max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        assert!(ServeConfig::default().validate().is_ok());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(ServeConfig { n_shards: 0, ..Default::default() }.validate().is_err());
        assert!(ServeConfig { crash_prob: 1.5, ..Default::default() }.validate().is_err());
        assert!(ServeConfig { retrain_ticks: 64, retrain_every: 64, ..Default::default() }
            .validate()
            .is_err());
        assert!(ServeConfig { restart_max: 1, restart_base: 16, ..Default::default() }
            .validate()
            .is_err());
        assert!(ServeConfig { organic_rate: f64::NAN, ..Default::default() }.validate().is_err());
        let bad_ivf = RetrievalMode::Ivf { nlist: 8, nprobe: 0 };
        assert!(ServeConfig { retrieval: bad_ivf, ..Default::default() }.validate().is_err());
        let ok_ivf = RetrievalMode::Ivf { nlist: 8, nprobe: 2 };
        assert!(ServeConfig { retrieval: ok_ivf, ..Default::default() }.validate().is_ok());
    }

    #[test]
    fn restart_backoff_is_capped_exponential() {
        let cfg = ServeConfig { restart_base: 8, restart_max: 50, ..Default::default() };
        assert_eq!(cfg.restart_backoff(0), 8);
        assert_eq!(cfg.restart_backoff(1), 16);
        assert_eq!(cfg.restart_backoff(2), 32);
        assert_eq!(cfg.restart_backoff(3), 50, "capped");
        assert_eq!(cfg.restart_backoff(200), 50, "overflow saturates at the cap");
    }
}
