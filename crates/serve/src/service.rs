//! The live platform: a supervised, sharded serving loop.
//!
//! [`LivePlatform`] is the whole deployment: every user's current profile
//! partitioned across [`Shard`] fault domains, a global organic event
//! stream drawn from the generator's latent truth, and a supervisor that
//! drives each shard's state machine once per logical tick. Tenants — an
//! attack [`Campaign`](../../copyattack_core) among thousands of organic
//! users — talk to it through the ordinary
//! [`FallibleBlackBox`] surface; every tenant
//! call advances the world by one tick, so organic traffic, retrains,
//! checkpoints, crashes, and restarts all interleave with the campaign on
//! one deterministic clock.
//!
//! Degradation ladder (cheapest sacrifice first):
//!
//! 1. **Shed organic load.** A retraining, stalled, or down shard drops
//!    organic queries; interactions are dropped only by stalled/down
//!    shards.
//! 2. **Serve stale popularity.** Tenant queries against a retraining
//!    shard get the previous snapshot's popularity ranking — degraded but
//!    answered, never stalled.
//! 3. **Fail typed.** Only a down or stalled shard refuses tenant calls,
//!    and then with [`RecError::Degraded`] carrying a `retry_after` hint a
//!    [`RetryPolicy`](../../copyattack_core) can budget against.
//!
//! Determinism: no wall clock, no ambient RNG, no iteration over unordered
//! maps. At a fixed config the run replays bit for bit at any `CA_THREADS`
//! setting; with fault injection disabled it is also bitwise identical at
//! any shard count (model rows are uid-ordered and all shards share the
//! uniform retrain/checkpoint schedule).

use crate::config::ServeConfig;
use crate::model::ModelVersion;
use crate::shard::{Shard, ShardState};
use ca_datagen::{OrganicEvent, OrganicSampler};
use ca_recsys::{Dataset, FallibleBlackBox, ItemId, RecError, SplitMix64, UserId};
use std::collections::BTreeMap;
use std::sync::Arc;

/// List length computed for organic queries (their results are not
/// observed by tenants; the work still counts toward served load).
const ORGANIC_K: usize = 10;

/// Service-wide traffic and supervision counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Organic queries answered by a healthy shard.
    pub organic_queries_served: u64,
    /// Organic queries shed by a degraded shard (ladder rung 1).
    pub organic_queries_shed: u64,
    /// Organic interactions appended to a profile.
    pub organic_interactions_applied: u64,
    /// Organic interactions dropped by a stalled/down shard.
    pub organic_interactions_dropped: u64,
    /// Tenant queries served live from the user's model rows.
    pub tenant_queries_live: u64,
    /// Tenant queries served stale popularity mid-retrain (ladder rung 2).
    pub tenant_queries_stale: u64,
    /// Tenant queries for users newer than the serving snapshot, served
    /// the cold-start popularity fallback.
    pub tenant_queries_cold: u64,
    /// Tenant queries refused with [`RecError::Degraded`] (ladder rung 3).
    pub tenant_queries_degraded: u64,
    /// Tenant queries for accounts lost to a crash rollback.
    pub tenant_queries_lost: u64,
    /// Accepted tenant account injections.
    pub tenant_injections: u64,
    /// Injections refused by a degraded shard.
    pub tenant_injections_rejected: u64,
    /// Global model snapshots built (shards retraining on the same tick
    /// share one build).
    pub models_built: u64,
}

impl ServeStats {
    /// Fraction of organic queries that were answered.
    pub fn organic_availability(&self) -> f64 {
        let total = self.organic_queries_served + self.organic_queries_shed;
        if total == 0 {
            1.0
        } else {
            self.organic_queries_served as f64 / total as f64
        }
    }

    /// Fraction of tenant queries that got a list (live, stale, or cold).
    pub fn tenant_availability(&self) -> f64 {
        let ok = self.tenant_queries_live + self.tenant_queries_stale + self.tenant_queries_cold;
        let total = ok + self.tenant_queries_degraded + self.tenant_queries_lost;
        if total == 0 {
            1.0
        } else {
            ok as f64 / total as f64
        }
    }
}

/// How a single tenant query was resolved against the ladder.
enum ServeClass {
    Live,
    Stale,
    Cold,
    Lost,
    Degraded,
}

/// A supervised, fault-domained deployment of the recommender.
#[derive(Clone, Debug)]
pub struct LivePlatform {
    cfg: ServeConfig,
    n_items: usize,
    sampler: OrganicSampler,
    organic_rng: SplitMix64,
    /// Fractional-rate accumulator: `organic_rate` is added every tick and
    /// one event fires per whole unit.
    organic_carry: f64,
    clock: u64,
    /// Next platform account id; never reused, never rolled back — an
    /// account lost to a crash stays a dangling id.
    next_uid: u32,
    shards: Vec<Shard>,
    version_counter: u64,
    /// Snapshot built this tick, shared by every shard retraining on it.
    model_cache: Option<(u64, Arc<ModelVersion>)>,
    stats: ServeStats,
}

impl LivePlatform {
    /// Deploys the service over `data` (one profile per organic user, ids
    /// `0..n_users`), with organic traffic drawn from `sampler`.
    pub fn launch(
        data: &Dataset,
        sampler: OrganicSampler,
        cfg: ServeConfig,
    ) -> Result<Self, String> {
        cfg.validate()?;
        if sampler.n_users() > data.n_users() {
            return Err(format!(
                "sampler draws {} users but the dataset hosts {}",
                sampler.n_users(),
                data.n_users()
            ));
        }
        let pairs: Vec<(u32, Vec<ItemId>)> =
            data.users().map(|u| (u.0, data.profile(u).to_vec())).collect();
        let v0 = Arc::new(ModelVersion::build_with(0, 0, &pairs, data.n_items(), cfg.retrieval));
        let mut parts: Vec<BTreeMap<u32, Vec<ItemId>>> = vec![BTreeMap::new(); cfg.n_shards];
        for (uid, profile) in pairs {
            parts[uid as usize % cfg.n_shards].insert(uid, profile);
        }
        let shards = parts
            .into_iter()
            .enumerate()
            .map(|(i, users)| {
                Shard::new(i, users, v0.clone(), ca_par::split_seed(cfg.seed, i as u64 + 1))
            })
            .collect();
        Ok(Self {
            organic_rng: SplitMix64::new(ca_par::split_seed(cfg.seed, 0)),
            n_items: data.n_items(),
            sampler,
            organic_carry: 0.0,
            clock: 0,
            next_uid: data.n_users() as u32,
            shards,
            version_counter: 0,
            model_cache: None,
            stats: ServeStats::default(),
            cfg,
        })
    }

    /// The platform's logical clock (ticks elapsed since launch).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Traffic and supervision counters.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// The shards, in id order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// The service configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Advances the world by `ticks` without any tenant call: organic
    /// traffic flows, supervisors run, retrains and crashes happen.
    pub fn advance(&mut self, ticks: u64) {
        for _ in 0..ticks {
            self.step();
        }
    }

    /// One tick: supervisor pass over every shard, then the tick's share
    /// of organic events.
    fn step(&mut self) {
        self.clock += 1;
        let t = self.clock;
        let mut retrain = Vec::new();
        for (i, shard) in self.shards.iter_mut().enumerate() {
            if shard.supervisor_tick(t, &self.cfg) {
                retrain.push(i);
            }
        }
        if !retrain.is_empty() {
            let snapshot = self.snapshot_model(t);
            for i in retrain {
                self.shards[i].begin_retrain(t, &self.cfg, snapshot.clone());
            }
        }
        self.organic_carry += self.cfg.organic_rate;
        while self.organic_carry >= 1.0 {
            self.organic_carry -= 1.0;
            let ev = self.sampler.sample_event(self.cfg.query_fraction, &mut self.organic_rng);
            self.apply_organic(ev);
        }
    }

    /// Builds (or reuses, when several shards retrain on the same tick)
    /// the global model snapshot for tick `t`: the uid-sorted union of
    /// every shard's current users, so the model bits are independent of
    /// shard count.
    fn snapshot_model(&mut self, t: u64) -> Arc<ModelVersion> {
        if let Some((at, m)) = &self.model_cache {
            if *at == t {
                return m.clone();
            }
        }
        let mut pairs: Vec<(u32, Vec<ItemId>)> = self
            .shards
            .iter()
            .flat_map(|s| s.users().iter().map(|(&u, p)| (u, p.clone())))
            .collect();
        pairs.sort_by_key(|&(uid, _)| uid);
        self.version_counter += 1;
        let m = Arc::new(ModelVersion::build_with(
            self.version_counter,
            t,
            &pairs,
            self.n_items,
            self.cfg.retrieval,
        ));
        self.stats.models_built += 1;
        self.model_cache = Some((t, m.clone()));
        m
    }

    fn apply_organic(&mut self, ev: OrganicEvent) {
        match ev {
            OrganicEvent::Query { user } => {
                let shard = &self.shards[user.idx() % self.shards.len()];
                if shard.is_live() {
                    // The result is not observed, but the scoring work is
                    // real served load.
                    let m = shard.model();
                    let _ =
                        m.top_k(user.0, ORGANIC_K).unwrap_or_else(|| m.pop_top_k(&[], ORGANIC_K));
                    self.stats.organic_queries_served += 1;
                } else {
                    self.stats.organic_queries_shed += 1;
                }
            }
            OrganicEvent::Interaction { user, item } => {
                let si = user.idx() % self.shards.len();
                let shard = &mut self.shards[si];
                if shard.accepting() && shard.record_interaction(user.0, item) {
                    self.stats.organic_interactions_applied += 1;
                } else {
                    self.stats.organic_interactions_dropped += 1;
                }
            }
        }
    }

    /// Resolves one query against the degradation ladder without touching
    /// the clock or the stats — the shared read path behind
    /// [`FallibleBlackBox::try_top_k`], [`LivePlatform::par_serve_queries`],
    /// and the owner-side metrics.
    fn classify_serve(&self, uid: u32, k: usize) -> (Result<Vec<ItemId>, RecError>, ServeClass) {
        let shard = &self.shards[uid as usize % self.shards.len()];
        match shard.state() {
            ShardState::Down { .. } | ShardState::Stalled => {
                let retry = shard.degraded_retry_after(self.clock, &self.cfg);
                (Err(RecError::Degraded { retry_after: retry }), ServeClass::Degraded)
            }
            ShardState::Healthy => match shard.profile_of(uid) {
                // The account was lost to a crash rollback (or never
                // existed): it is gone, not retryable — re-establish it.
                None => (Err(RecError::AccountSuspended), ServeClass::Lost),
                Some(profile) => match shard.model().top_k(uid, k) {
                    Some(list) => (Ok(list), ServeClass::Live),
                    // Newer than the serving snapshot: cold-start
                    // popularity until a retrain picks the profile up.
                    None => (Ok(shard.model().pop_top_k(profile, k)), ServeClass::Cold),
                },
            },
            ShardState::Retraining { .. } => match shard.profile_of(uid) {
                None => (Err(RecError::AccountSuspended), ServeClass::Lost),
                Some(profile) => (Ok(shard.model().pop_top_k(profile, k)), ServeClass::Stale),
            },
        }
    }

    /// Read-only query (no tick, no stats): what the platform would serve
    /// `uid` right now.
    pub fn serve_readonly(&self, uid: u32, k: usize) -> Result<Vec<ItemId>, RecError> {
        self.classify_serve(uid, k).0
    }

    /// Answers a read-only query batch with one deterministic parallel
    /// pass ([`ca_par::map`]): outcome `i` belongs to `users[i]`, bitwise
    /// identical at any `CA_THREADS` setting. This is the throughput path
    /// the serving benchmark measures.
    pub fn par_serve_queries(
        &self,
        users: &[UserId],
        k: usize,
    ) -> Vec<Result<Vec<ItemId>, RecError>> {
        ca_par::map(users, |_, &u| self.serve_readonly(u.0, k))
    }

    /// Owner-side promotion metric: the fraction of organic users whose
    /// current served list contains `item` (degraded users count as
    /// misses). The live-platform analogue of the offline HR@k.
    pub fn owner_hit_rate(&self, item: ItemId, k: usize) -> f64 {
        let users: Vec<UserId> = (0..self.sampler.n_users() as u32).map(UserId).collect();
        if users.is_empty() {
            return 0.0;
        }
        let hits = self
            .par_serve_queries(&users, k)
            .iter()
            .filter(|r| matches!(r, Ok(list) if list.contains(&item)))
            .count();
        hits as f64 / users.len() as f64
    }

    /// Order-sensitive digest of the observable platform state: clock,
    /// accounts, every hosted profile, serving versions, and the full
    /// counter set. Two runs are replays of each other iff their digests
    /// agree tick for tick. Built only from shard-count-independent state
    /// (the uid-ordered user union), so crash-free runs digest identically
    /// at any shard count.
    pub fn replay_digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut absorb = |v: u64| {
            h = (h ^ v).wrapping_mul(0x100_0000_01b3);
            h ^= h >> 29;
        };
        absorb(self.clock);
        absorb(u64::from(self.next_uid));
        absorb(self.version_counter);
        let s = &self.stats;
        for c in [
            s.organic_queries_served,
            s.organic_queries_shed,
            s.organic_interactions_applied,
            s.organic_interactions_dropped,
            s.tenant_queries_live,
            s.tenant_queries_stale,
            s.tenant_queries_cold,
            s.tenant_queries_degraded,
            s.tenant_queries_lost,
            s.tenant_injections,
            s.tenant_injections_rejected,
            s.models_built,
        ] {
            absorb(c);
        }
        // Walk users in global uid order regardless of which shard hosts
        // them; absorb each profile and the user's serving state.
        let mut uids: Vec<u32> =
            self.shards.iter().flat_map(|sh| sh.users().keys().copied()).collect();
        uids.sort_unstable();
        for uid in uids {
            let shard = &self.shards[uid as usize % self.shards.len()];
            absorb(u64::from(uid));
            let profile = shard.profile_of(uid).unwrap_or(&[]);
            absorb(profile.len() as u64);
            for v in profile {
                absorb(u64::from(v.0));
            }
            absorb(shard.model().version);
            absorb(match shard.state() {
                ShardState::Healthy => 0,
                ShardState::Retraining { .. } => 1,
                ShardState::Stalled => 2,
                ShardState::Down { .. } => 3,
            });
        }
        h
    }
}

impl FallibleBlackBox for LivePlatform {
    /// Tenant query. The call itself advances the world one tick — the
    /// platform keeps living between an attacker's calls.
    fn try_top_k(&mut self, user: UserId, k: usize) -> Result<Vec<ItemId>, RecError> {
        self.step();
        let (result, class) = self.classify_serve(user.0, k);
        match class {
            ServeClass::Live => self.stats.tenant_queries_live += 1,
            ServeClass::Stale => self.stats.tenant_queries_stale += 1,
            ServeClass::Cold => self.stats.tenant_queries_cold += 1,
            ServeClass::Lost => self.stats.tenant_queries_lost += 1,
            ServeClass::Degraded => self.stats.tenant_queries_degraded += 1,
        }
        result
    }

    /// Tenant account creation. An account id is consumed only on success,
    /// so a retried rejection replays identically.
    fn try_inject_user(&mut self, profile: &[ItemId]) -> Result<UserId, RecError> {
        self.step();
        for v in profile {
            assert!(v.idx() < self.n_items, "item {} outside the catalog", v.0);
        }
        let uid = self.next_uid;
        let si = uid as usize % self.shards.len();
        let shard = &mut self.shards[si];
        if shard.accepting() {
            let mut dedup: Vec<ItemId> = Vec::with_capacity(profile.len());
            for &v in profile {
                if !dedup.contains(&v) {
                    dedup.push(v);
                }
            }
            shard.insert_user(uid, dedup);
            self.next_uid += 1;
            self.stats.tenant_injections += 1;
            Ok(UserId(uid))
        } else {
            let retry = shard.degraded_retry_after(self.clock, &self.cfg);
            self.stats.tenant_injections_rejected += 1;
            Err(RecError::Degraded { retry_after: retry })
        }
    }

    fn catalog_size(&self) -> usize {
        self.n_items
    }

    /// "Sleeping" through a backoff keeps the world running: organic
    /// traffic flows and supervisors act for every waited tick.
    fn wait(&mut self, ticks: u64) {
        self.advance(ticks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_datagen::{generate, CrossDomainConfig};

    fn world() -> (Dataset, OrganicSampler) {
        let cfg = CrossDomainConfig::tiny(13);
        let w = generate(&cfg);
        let sampler = OrganicSampler::from_truth(&w.truth, cfg.affinity_beta);
        (w.target, sampler)
    }

    fn platform(cfg: ServeConfig) -> LivePlatform {
        let (data, sampler) = world();
        LivePlatform::launch(&data, sampler, cfg).unwrap()
    }

    fn drive(p: &mut LivePlatform, calls: u64) {
        for i in 0..calls {
            let _ = p.try_top_k(UserId((i % 7) as u32), 10);
            if i % 5 == 0 {
                let _ = p.try_inject_user(&[ItemId(1), ItemId(3)]);
            }
            if i % 11 == 0 {
                p.wait(3);
            }
        }
    }

    #[test]
    fn identical_configs_replay_bit_for_bit() {
        let cfg = ServeConfig {
            crash_prob: 0.01,
            stall_prob: 0.005,
            retrain_every: 16,
            retrain_ticks: 4,
            checkpoint_every: 8,
            ..Default::default()
        };
        let mut a = platform(cfg.clone());
        let mut b = platform(cfg);
        drive(&mut a, 120);
        drive(&mut b, 120);
        assert_eq!(a.replay_digest(), b.replay_digest());
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.clock(), b.clock());
    }

    #[test]
    fn crash_free_runs_are_shard_count_invariant() {
        let base = ServeConfig {
            retrain_every: 16,
            retrain_ticks: 4,
            checkpoint_every: 8,
            ..Default::default()
        };
        let digests: Vec<u64> = [1usize, 2, 4]
            .into_iter()
            .map(|n| {
                let mut p = platform(ServeConfig { n_shards: n, ..base.clone() });
                drive(&mut p, 150);
                p.replay_digest()
            })
            .collect();
        assert_eq!(digests[0], digests[1]);
        assert_eq!(digests[1], digests[2]);
    }

    #[test]
    fn scripted_crash_loses_uncheckpointed_state_and_recovers() {
        let cfg = ServeConfig {
            n_shards: 2,
            organic_rate: 0.0,
            checkpoint_every: 100,
            retrain_every: 200,
            restart_base: 4,
            restart_max: 4,
            scripted_crashes: vec![(5, 0)],
            ..Default::default()
        };
        let mut p = platform(cfg);
        // An injected account lands on shard 0 (uid = n_users, even ids on
        // shard 0 because tiny worlds have even user counts).
        let uid = p.try_inject_user(&[ItemId(0), ItemId(2)]).unwrap();
        assert_eq!(uid.idx() % 2, 0);
        assert!(p.serve_readonly(uid.0, 5).is_ok());
        p.advance(5); // tick 5 fires the scripted crash
        assert!(matches!(p.shards()[0].state(), ShardState::Down { .. }));
        // Ladder rung 3: typed failure with a retry hint, never a stall.
        let err = p.serve_readonly(uid.0, 5).unwrap_err();
        assert!(matches!(err, RecError::Degraded { retry_after } if retry_after >= 1));
        p.advance(4); // restart backoff elapses
        assert!(p.shards()[0].state() == ShardState::Healthy);
        assert_eq!(p.shards()[0].stats().restarts, 1);
        // Crash-consistent rollback: the post-launch injection is gone.
        assert_eq!(p.serve_readonly(uid.0, 5), Err(RecError::AccountSuspended));
        assert_eq!(p.stats().models_built, 0);
    }

    #[test]
    fn retraining_shard_serves_stale_popularity_and_sheds_organics() {
        let cfg = ServeConfig {
            n_shards: 1,
            organic_rate: 4.0,
            retrain_every: 10,
            retrain_ticks: 5,
            checkpoint_every: 7,
            ..Default::default()
        };
        let mut p = platform(cfg);
        p.advance(10); // tick 10 starts a retrain until tick 15
        assert!(matches!(p.shards()[0].state(), ShardState::Retraining { .. }));
        let stale = p.try_top_k(UserId(0), 5).unwrap();
        assert_eq!(p.stats().tenant_queries_stale, 1);
        // Stale serving is the snapshot's popularity order minus the
        // user's own profile.
        let shard = &p.shards()[0];
        let expect = shard.model().pop_top_k(shard.profile_of(0).unwrap(), 5);
        assert_eq!(stale, expect);
        assert!(p.stats().organic_queries_shed > 0, "retrain must shed organic queries");
        p.advance(5);
        assert_eq!(p.shards()[0].state(), ShardState::Healthy);
        assert_eq!(p.shards()[0].model().version, 1);
    }

    #[test]
    fn injected_users_are_cold_until_a_retrain_snapshots_them() {
        let cfg = ServeConfig {
            n_shards: 2,
            organic_rate: 1.0,
            retrain_every: 20,
            retrain_ticks: 2,
            checkpoint_every: 10,
            ..Default::default()
        };
        let mut p = platform(cfg);
        let uid = p.try_inject_user(&[ItemId(2), ItemId(4)]).unwrap();
        assert!(!p.shards()[uid.idx() % 2].model().knows(uid.0));
        let _ = p.try_top_k(uid, 5).unwrap();
        assert_eq!(p.stats().tenant_queries_cold, 1, "pre-retrain serving is the cold path");
        p.advance(25); // past the tick-20 retrain and its 2-tick window
        assert!(p.shards()[uid.idx() % 2].model().knows(uid.0), "retrain drifted onto the account");
        let _ = p.try_top_k(uid, 5).unwrap();
        assert_eq!(p.stats().tenant_queries_live, 1);
    }

    #[test]
    fn par_serving_matches_serial_at_any_thread_count() {
        let mut p = platform(ServeConfig {
            crash_prob: 0.02,
            retrain_every: 16,
            retrain_ticks: 4,
            checkpoint_every: 8,
            ..Default::default()
        });
        p.advance(60);
        let users: Vec<UserId> = (0..40).map(UserId).collect();
        let serial: Vec<_> = users.iter().map(|&u| p.serve_readonly(u.0, 8)).collect();
        assert_eq!(p.par_serve_queries(&users, 8), serial);
    }

    #[test]
    fn organic_world_keeps_moving_through_tenant_waits() {
        let mut p = platform(ServeConfig { organic_rate: 2.0, ..Default::default() });
        p.wait(30);
        assert_eq!(p.clock(), 30);
        let s = p.stats();
        assert_eq!(s.organic_queries_served + s.organic_interactions_applied, 60);
    }

    #[test]
    fn launch_rejects_bad_configs() {
        let (data, sampler) = world();
        assert!(LivePlatform::launch(
            &data,
            sampler,
            ServeConfig { n_shards: 0, ..Default::default() }
        )
        .is_err());
    }
}
