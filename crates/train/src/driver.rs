//! The shared epoch driver: one BPR loop for every pairwise model.

use crate::config::TrainConfig;
use crate::observe::{EpochStats, TrainObserver};
use crate::optim::{OptState, Step};
use ca_par as par;
use ca_recsys::{Dataset, ItemId, UserId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Minimum minibatch size before per-pair gradients go to worker threads:
/// below this, scoped-thread spawn costs more than the gradient math.
/// Scheduling only — the serial and parallel paths return the same bits.
pub const PAR_MIN_PAIRS: usize = 256;

/// A model trainable with pairwise (BPR) SGD by [`fit`].
///
/// The contract mirrors what the deterministic minibatch loop needs:
///
/// - [`PairwiseModel::pair_grad`] is a *pure* function of the model as it
///   stood at the start of the minibatch (the driver only calls it between
///   applies of *previous* batches), so it may run on any worker thread;
/// - [`PairwiseModel::apply`] folds one pair's gradient into the model
///   through the driver's [`Step`] (the configured optimizer) and is always
///   called serially, in pair order, on the driver's thread;
/// - [`PairwiseModel::begin_epoch`] runs before each epoch's shuffle — the
///   place to refresh stale per-epoch state (the GNN's neighbor caches);
/// - [`PairwiseModel::validate`] computes the post-update validation score
///   after each epoch; returning `None` (the default) disables early
///   stopping and validation telemetry.
pub trait PairwiseModel: Sync {
    /// Gradient of one training pair, produced by [`PairwiseModel::pair_grad`]
    /// and consumed by [`PairwiseModel::apply`].
    type Grad: Send;

    /// Hook run at the start of each epoch, before shuffling.
    fn begin_epoch(&mut self) {}

    /// Gradient of the BPR triple `(u, v⁺, v⁻)` against the frozen
    /// batch-start model, plus the pair's loss `-ln σ(s⁺ − s⁻)` (telemetry
    /// only — the loss never feeds back into training).
    fn pair_grad(&self, u: UserId, pos: ItemId, neg: ItemId) -> (Self::Grad, f32);

    /// Applies one pair's gradient through `step` (which carries the epoch
    /// learning rate and the configured optimizer's state). Called serially
    /// in pair order. Models route each parameter block they own through
    /// [`Step::ascend`] / [`Step::descend`] under a stable block key.
    fn apply(
        &mut self,
        u: UserId,
        pos: ItemId,
        neg: ItemId,
        grad: &Self::Grad,
        step: &mut Step<'_>,
    );

    /// Post-update validation score (higher is better), or `None` for
    /// models trained a fixed number of epochs.
    fn validate(&mut self) -> Option<f32> {
        None
    }
}

/// Why [`fit`] returned.
#[derive(Clone, Debug, PartialEq)]
pub enum StopReason {
    /// Ran the full `max_epochs`.
    MaxEpochs,
    /// Early stopping: `patience` consecutive epochs failed to improve the
    /// best post-update validation score by more than the tolerance.
    EarlyStop {
        /// 0-based epoch that produced the best validation score.
        best_epoch: usize,
        /// The best validation score.
        best_score: f32,
    },
}

/// Summary of one [`fit`] run.
#[derive(Clone, Debug)]
pub struct TrainOutcome {
    /// Epochs whose updates are present in the model (≤ `max_epochs`).
    pub epochs_run: usize,
    /// Why training stopped.
    pub stop: StopReason,
    /// Post-update validation score per epoch (empty for models without
    /// validation).
    pub val_history: Vec<f32>,
    /// Best validation score observed (`NEG_INFINITY` if no epoch ever
    /// produced a comparable score — no validation, or all-NaN scores).
    pub best_val: f32,
    /// 0-based epoch of the best validation score.
    pub best_epoch: Option<usize>,
}

/// Trains `model` on `ds` with deterministic minibatch BPR-SGD.
///
/// Per epoch: run [`PairwiseModel::begin_epoch`], shuffle the interaction
/// pairs on `rng`, then for each minibatch sample one negative per pair
/// *serially in pair order* on the same `rng` (the random stream is
/// identical at every minibatch size and thread count), compute per-pair
/// gradients against the frozen batch-start model via [`ca_par::map_min`]
/// (parallel at or above [`PAR_MIN_PAIRS`] pairs), and apply them serially
/// in pair order. After the epoch's updates, the post-update validation
/// score (if any) drives the shared early-stopping rule: stop once
/// `patience` consecutive epochs fail to beat the best score by more than
/// `tolerance`.
///
/// The caller owns `rng` so historical draw orders are reproducible (model
/// init on the same stream before training, a validation-sample shuffle
/// between model init and the first epoch); use [`fit_seeded`] when no such
/// prelude exists.
pub fn fit<M: PairwiseModel>(
    model: &mut M,
    ds: &Dataset,
    cfg: &TrainConfig,
    rng: &mut StdRng,
    obs: &mut dyn TrainObserver,
) -> TrainOutcome {
    let mut pairs: Vec<(UserId, ItemId)> = ds.interactions().collect();
    let n_items = ds.n_items() as u32;
    let batch = cfg.minibatch.max(1);
    // Optimizer state (momentum velocities) lives with the driver and is
    // only touched from the serial apply phase below — a momentum run is
    // exactly as thread-count-independent as a plain-SGD run.
    let mut opt = OptState::new(cfg.optimizer);

    let mut val_history = Vec::new();
    let mut best = f32::NEG_INFINITY;
    let mut best_epoch = None;
    let mut since_best = 0usize;
    let mut epochs_run = 0usize;
    let mut stop = StopReason::MaxEpochs;

    for epoch in 0..cfg.max_epochs {
        // ca-audit: allow(wall-clock) — epoch seconds are telemetry only; no result depends on them
        let t0 = Instant::now();
        model.begin_epoch();
        pairs.shuffle(rng);
        let lr = cfg.schedule.lr_at(epoch, cfg.lr);
        let mut loss_sum = 0f64;
        for chunk in pairs.chunks(batch) {
            // Negative sampling stays on the single trainer RNG.
            let triples: Vec<(UserId, ItemId, ItemId)> = chunk
                .iter()
                .map(|&(u, pos)| {
                    let neg = loop {
                        let cand = ItemId(rng.gen_range(0..n_items));
                        if cand != pos && !ds.contains(u, cand) {
                            break cand;
                        }
                    };
                    (u, pos, neg)
                })
                .collect();
            let frozen: &M = model;
            let grads = par::map_min(&triples, PAR_MIN_PAIRS, |_, &(u, pos, neg)| {
                frozen.pair_grad(u, pos, neg)
            });
            for (&(u, pos, neg), (g, loss)) in triples.iter().zip(&grads) {
                loss_sum += *loss as f64;
                model.apply(u, pos, neg, g, &mut opt.step(lr));
            }
        }
        epochs_run += 1;
        let seconds = t0.elapsed().as_secs_f64();

        // The stop criterion reads the *post-update* score: validation runs
        // after this epoch's applies, so the decision (and the recorded
        // history) describes the model the caller will actually receive.
        let val = model.validate();
        obs.on_epoch(&EpochStats {
            epoch,
            pairs: pairs.len(),
            loss: (loss_sum / pairs.len().max(1) as f64) as f32,
            lr,
            val_score: val,
            seconds,
        });
        if let Some(score) = val {
            val_history.push(score);
            if score > best + cfg.tolerance {
                best = score;
                best_epoch = Some(epoch);
                since_best = 0;
            } else {
                since_best += 1;
                if cfg.patience.is_some_and(|p| since_best >= p) {
                    stop = StopReason::EarlyStop {
                        best_epoch: best_epoch.unwrap_or(0),
                        best_score: best,
                    };
                    break;
                }
            }
        }
    }
    obs.on_stop(&stop, epochs_run);
    TrainOutcome { epochs_run, stop, val_history, best_val: best, best_epoch }
}

/// [`fit`] with a fresh `StdRng` seeded from `cfg.seed`.
pub fn fit_seeded<M: PairwiseModel>(
    model: &mut M,
    ds: &Dataset,
    cfg: &TrainConfig,
    obs: &mut dyn TrainObserver,
) -> TrainOutcome {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    fit(model, ds, cfg, &mut rng, obs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::{History, NullObserver};
    use ca_recsys::DatasetBuilder;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A scalar "model" whose score for every pair is `theta` and whose
    /// validation scores are scripted; records the order of driver calls.
    struct Scripted {
        theta: f32,
        val_scores: Vec<f32>,
        epoch: usize,
        applies: AtomicUsize,
        applies_at_validate: Vec<usize>,
        begin_epochs: usize,
    }

    impl Scripted {
        fn new(val_scores: Vec<f32>) -> Self {
            Self {
                theta: 0.0,
                val_scores,
                epoch: 0,
                applies: AtomicUsize::new(0),
                applies_at_validate: Vec::new(),
                begin_epochs: 0,
            }
        }
    }

    impl PairwiseModel for Scripted {
        type Grad = f32;
        fn begin_epoch(&mut self) {
            self.begin_epochs += 1;
        }
        fn pair_grad(&self, _u: UserId, _pos: ItemId, _neg: ItemId) -> (f32, f32) {
            (1.0, self.theta.abs() + 0.5)
        }
        fn apply(&mut self, _u: UserId, _p: ItemId, _n: ItemId, g: &f32, step: &mut Step<'_>) {
            step.ascend(0, std::slice::from_mut(&mut self.theta), std::slice::from_ref(g));
            self.applies.fetch_add(1, Ordering::Relaxed);
        }
        fn validate(&mut self) -> Option<f32> {
            let s = self.val_scores.get(self.epoch).copied();
            self.epoch += 1;
            self.applies_at_validate.push(self.applies.load(Ordering::Relaxed));
            s
        }
    }

    fn world() -> Dataset {
        let mut b = DatasetBuilder::new(20);
        for u in 0..10u32 {
            let profile: Vec<ItemId> = (0..4).map(|i| ItemId((u + i * 5) % 20)).collect();
            b.user(&profile);
        }
        b.build()
    }

    #[test]
    fn fixed_epochs_without_patience() {
        let ds = world();
        // Scores never improve, but patience is None → all epochs run.
        let mut m = Scripted::new(vec![0.1; 8]);
        let cfg = TrainConfig { max_epochs: 8, patience: None, ..Default::default() };
        let out = fit_seeded(&mut m, &ds, &cfg, &mut NullObserver);
        assert_eq!(out.epochs_run, 8);
        assert_eq!(out.stop, StopReason::MaxEpochs);
        assert_eq!(out.val_history.len(), 8);
    }

    #[test]
    fn early_stop_fires_patience_epochs_after_best() {
        let ds = world();
        let mut m = Scripted::new(vec![0.1, 0.3, 0.2, 0.2, 0.2, 0.9]);
        let cfg = TrainConfig { max_epochs: 6, patience: Some(2), ..Default::default() };
        let out = fit_seeded(&mut m, &ds, &cfg, &mut NullObserver);
        // Best at epoch 1; epochs 2 and 3 exhaust patience 2.
        assert_eq!(out.epochs_run, 4);
        assert_eq!(out.stop, StopReason::EarlyStop { best_epoch: 1, best_score: 0.3 });
        assert_eq!(out.best_epoch, Some(1));
        assert_eq!(out.val_history, vec![0.1, 0.3, 0.2, 0.2]);
    }

    /// Regression for the stop-criterion audit: the decision must read the
    /// *post-update* score. Every `validate` call must observe all of the
    /// epoch's applies (40 pairs/epoch here), and the epoch count must
    /// equal the number of epochs whose updates are in the model.
    #[test]
    fn stop_criterion_reads_post_update_score() {
        let ds = world();
        let n_pairs = ds.interactions().count();
        let mut m = Scripted::new(vec![0.5, 0.1, 0.1]);
        let cfg = TrainConfig { max_epochs: 5, patience: Some(2), ..Default::default() };
        let out = fit_seeded(&mut m, &ds, &cfg, &mut NullObserver);
        assert_eq!(out.epochs_run, 3);
        // validate() after epoch e has seen exactly (e+1) × n_pairs applies:
        // the score is computed strictly after the epoch's updates.
        assert_eq!(m.applies_at_validate, vec![n_pairs, 2 * n_pairs, 3 * n_pairs]);
        // Model state contains exactly epochs_run epochs of updates.
        assert_eq!(m.applies.load(Ordering::Relaxed), out.epochs_run * n_pairs);
        assert_eq!(m.begin_epochs, out.epochs_run);
    }

    #[test]
    fn nan_validation_scores_never_count_as_improvement() {
        let ds = world();
        let mut m = Scripted::new(vec![f32::NAN; 6]);
        let cfg = TrainConfig { max_epochs: 6, patience: Some(3), ..Default::default() };
        let out = fit_seeded(&mut m, &ds, &cfg, &mut NullObserver);
        assert_eq!(out.epochs_run, 3);
        assert!(out.best_val == f32::NEG_INFINITY && out.best_epoch.is_none());
    }

    #[test]
    fn history_observer_sees_every_epoch_and_the_stop() {
        let ds = world();
        let mut m = Scripted::new(vec![0.4, 0.1, 0.1]);
        let cfg = TrainConfig { max_epochs: 9, patience: Some(2), ..Default::default() };
        let mut h = History::new();
        let out = fit_seeded(&mut m, &ds, &cfg, &mut h);
        assert_eq!(h.epochs.len(), out.epochs_run);
        assert_eq!(h.val_curve(), out.val_history);
        assert!(h.epochs.iter().all(|e| e.pairs == ds.interactions().count()));
        assert!(h.epochs.iter().all(|e| e.loss > 0.0));
        assert_eq!(h.stop, Some(out.stop));
    }

    #[test]
    fn schedule_drives_per_epoch_lr() {
        let ds = world();
        let mut m = Scripted::new(vec![]);
        let cfg = TrainConfig {
            max_epochs: 4,
            lr: 1.0,
            schedule: crate::LrSchedule::Exponential { gamma: 0.5 },
            ..Default::default()
        };
        let mut h = History::new();
        fit_seeded(&mut m, &ds, &cfg, &mut h);
        let lrs: Vec<f32> = h.epochs.iter().map(|e| e.lr).collect();
        assert_eq!(lrs, vec![1.0, 0.5, 0.25, 0.125]);
    }
}
