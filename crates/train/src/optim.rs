//! Pluggable per-pair update strategies for the shared BPR driver.
//!
//! The driver hands each [`crate::PairwiseModel::apply`] call a [`Step`]
//! instead of a bare learning rate. A model routes every parameter block it
//! owns through [`Step::ascend`] / [`Step::descend`] under a stable block
//! key, and the configured [`Optimizer`] decides what one update means:
//!
//! - [`Optimizer::Sgd`] writes `param[i] += ±lr · grad[i]` — elementwise
//!   *bitwise identical* to the historical hand-rolled loops (`+= lr·g`
//!   ascent in MF, `add_scaled(g, -lr)` / `axpy(-lr, …)` descent in the
//!   NCF/GNN towers), because IEEE-754 negation is exact:
//!   `(-lr)·g ≡ -(lr·g)` and `a + (-x) ≡ a - x`. The golden-hash parity
//!   tests in `tests/train_parity.rs` pin this.
//! - [`Optimizer::Momentum`] keeps one velocity buffer per block key
//!   (`v ← β·v + g`, `param[i] += ±lr · v[i]`), lazily allocated on first
//!   touch — per-pair sparse updates (two item rows out of millions) cost
//!   state proportional to what they actually touch.
//!
//! Determinism: all state lives in [`OptState`], owned by the driver and
//! mutated only from the serial in-pair-order apply phase. Block keys are a
//! pure function of the model layout (never of thread count or timing), so
//! a momentum run is as reproducible as a plain-SGD run.

/// The update rule applied to every parameter block.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum Optimizer {
    /// Plain SGD: `param += ±lr · grad`. Carries no state; this is the
    /// default and reproduces the historical trainers bit-for-bit.
    #[default]
    Sgd,
    /// Classical (heavy-ball) momentum: per block `v ← beta·v + grad`,
    /// then `param += ±lr · v`.
    Momentum {
        /// Velocity decay β ∈ \[0, 1); `0.0` degrades to SGD plus a
        /// velocity copy of the gradient.
        beta: f32,
    },
}

/// Optimizer state across one training run: one velocity buffer per
/// parameter-block key, lazily grown. Plain SGD keeps this empty.
#[derive(Clone, Debug)]
pub struct OptState {
    opt: Optimizer,
    vel: Vec<Vec<f32>>,
}

impl OptState {
    /// Fresh (zero-velocity) state for `opt`.
    pub fn new(opt: Optimizer) -> Self {
        Self { opt, vel: Vec::new() }
    }

    /// Borrows a [`Step`] at learning rate `lr` for one apply call.
    pub fn step(&mut self, lr: f32) -> Step<'_> {
        Step { lr, opt: self.opt, vel: &mut self.vel }
    }

    /// Number of parameter blocks with live velocity state (telemetry /
    /// tests; always 0 for plain SGD).
    pub fn live_blocks(&self) -> usize {
        self.vel.iter().filter(|v| !v.is_empty()).count()
    }
}

/// One model update at a fixed learning rate, borrowed from [`OptState`]
/// for the duration of a single [`crate::PairwiseModel::apply`] call.
///
/// Block keys must be stable across the run (same block ⇒ same key) and
/// disjoint (two different parameter blocks never share a key); each
/// trainer documents its layout next to its `apply`.
pub struct Step<'a> {
    lr: f32,
    opt: Optimizer,
    vel: &'a mut Vec<Vec<f32>>,
}

impl Step<'_> {
    /// The learning rate of this step (for models that keep bespoke update
    /// arithmetic outside the block router).
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Gradient-*ascent* update of one block: `param += lr · dir` where
    /// `dir` is the (possibly velocity-smoothed) gradient.
    pub fn ascend(&mut self, key: usize, param: &mut [f32], grad: &[f32]) {
        self.update(key, param, grad, self.lr);
    }

    /// Gradient-*descent* update of one block: `param += (-lr) · dir` —
    /// bitwise equal to the `-= lr · dir` convention.
    pub fn descend(&mut self, key: usize, param: &mut [f32], grad: &[f32]) {
        self.update(key, param, grad, -self.lr);
    }

    /// [`Step::ascend`] for a scalar parameter (MF's per-item biases).
    pub fn ascend1(&mut self, key: usize, param: &mut f32, grad: f32) {
        self.update(key, std::slice::from_mut(param), &[grad], self.lr);
    }

    /// Descends every layer of an MLP, two blocks per layer (`base + 2·i`
    /// for weights, `base + 2·i + 1` for biases), in layer order — the same
    /// element order as [`ca_nn::Mlp::sgd_step`], so the SGD path stays
    /// bitwise-identical to it. Returns the first key past the tower
    /// (`base + 2·layers`), so callers can stack towers back to back.
    pub fn descend_mlp(
        &mut self,
        base: usize,
        mlp: &mut ca_nn::Mlp,
        grad: &ca_nn::MlpGrad,
    ) -> usize {
        let layers = mlp.layers_mut();
        assert_eq!(layers.len(), grad.layers.len(), "MLP/grad layer count mismatch");
        for (i, (layer, g)) in layers.iter_mut().zip(grad.layers.iter()).enumerate() {
            self.descend(base + 2 * i, layer.w.as_mut_slice(), g.w.as_slice());
            self.descend(base + 2 * i + 1, &mut layer.b, &g.b);
        }
        base + 2 * layers.len()
    }

    fn update(&mut self, key: usize, param: &mut [f32], grad: &[f32], rate: f32) {
        assert_eq!(param.len(), grad.len(), "block {key}: param/grad length mismatch");
        match self.opt {
            Optimizer::Sgd => {
                for (p, &g) in param.iter_mut().zip(grad) {
                    *p += rate * g;
                }
            }
            Optimizer::Momentum { beta } => {
                if self.vel.len() <= key {
                    self.vel.resize_with(key + 1, Vec::new);
                }
                let v = &mut self.vel[key];
                if v.len() < param.len() {
                    v.resize(param.len(), 0.0);
                }
                for ((p, &g), vi) in param.iter_mut().zip(grad).zip(v.iter_mut()) {
                    *vi = beta * *vi + g;
                    *p += rate * *vi;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_descend_is_bitwise_the_historical_loop() {
        let grad = [0.123_f32, -7.5e-3, 1.0e-20, -3.0];
        let lr = 0.05_f32;
        let mut via_step = [1.0_f32, -2.0, 0.5, 1.0e-19];
        let mut historical = via_step;

        let mut state = OptState::new(Optimizer::Sgd);
        state.step(lr).descend(0, &mut via_step, &grad);
        for (p, &g) in historical.iter_mut().zip(&grad) {
            *p += (-lr) * g; // what add_scaled(grad, -lr) / axpy(-lr, …) compute
        }
        let bits = |xs: &[f32]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&via_step), bits(&historical));

        // And the ascent convention matches `+= lr·g`.
        let mut up = [1.0_f32; 4];
        state.step(lr).ascend(0, &mut up, &grad);
        for (i, &g) in grad.iter().enumerate() {
            assert_eq!(up[i].to_bits(), (1.0 + lr * g).to_bits());
        }
        assert_eq!(state.live_blocks(), 0, "SGD must stay stateless");
    }

    #[test]
    fn momentum_accumulates_velocity_per_block() {
        let mut state = OptState::new(Optimizer::Momentum { beta: 0.5 });
        let mut p = [0.0_f32];
        state.step(1.0).ascend(3, &mut p, &[1.0]); // v = 1.0, p = 1.0
        state.step(1.0).ascend(3, &mut p, &[1.0]); // v = 1.5, p = 2.5
        state.step(1.0).ascend(3, &mut p, &[1.0]); // v = 1.75, p = 4.25
        assert_eq!(p[0], 4.25);
        // Only the touched key holds state; untouched lower keys stay empty.
        assert_eq!(state.live_blocks(), 1);
    }

    #[test]
    fn momentum_blocks_are_independent() {
        let mut state = OptState::new(Optimizer::Momentum { beta: 0.9 });
        let (mut a, mut b) = ([0.0_f32], [0.0_f32]);
        state.step(0.1).descend(0, &mut a, &[1.0]);
        state.step(0.1).descend(7, &mut b, &[1.0]);
        // First touch of each block sees the same zero velocity.
        assert_eq!(a[0].to_bits(), b[0].to_bits());
        assert_eq!(state.live_blocks(), 2);
    }

    #[test]
    fn momentum_beta_zero_moves_like_sgd() {
        let grad = [0.25_f32, -0.5];
        let mut sgd = [1.0_f32, 1.0];
        let mut mom = sgd;
        OptState::new(Optimizer::Sgd).step(0.1).descend(0, &mut sgd, &grad);
        OptState::new(Optimizer::Momentum { beta: 0.0 }).step(0.1).descend(0, &mut mom, &grad);
        // β = 0 ⇒ v = 0·v + g = g exactly; the parameter moves identically.
        assert_eq!(sgd[0].to_bits(), mom[0].to_bits());
        assert_eq!(sgd[1].to_bits(), mom[1].to_bits());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_block_shapes_panic() {
        let mut state = OptState::new(Optimizer::Sgd);
        let mut p = [0.0_f32; 3];
        state.step(0.1).ascend(0, &mut p, &[1.0]);
    }
}
