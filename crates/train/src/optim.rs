//! Pluggable per-pair update strategies for the shared BPR driver.
//!
//! The driver hands each [`crate::PairwiseModel::apply`] call a [`Step`]
//! instead of a bare learning rate. A model routes every parameter block it
//! owns through [`Step::ascend`] / [`Step::descend`] under a stable block
//! key, and the configured [`Optimizer`] decides what one update means:
//!
//! - [`Optimizer::Sgd`] writes `param[i] += ±lr · grad[i]` — elementwise
//!   *bitwise identical* to the historical hand-rolled loops (`+= lr·g`
//!   ascent in MF, `add_scaled(g, -lr)` / `axpy(-lr, …)` descent in the
//!   NCF/GNN towers), because IEEE-754 negation is exact:
//!   `(-lr)·g ≡ -(lr·g)` and `a + (-x) ≡ a - x`. The golden-hash parity
//!   tests in `tests/train_parity.rs` pin this.
//! - [`Optimizer::Momentum`] keeps one velocity buffer per block key
//!   (`v ← β·v + g`, `param[i] += ±lr · v[i]`), lazily allocated on first
//!   touch — per-pair sparse updates (two item rows out of millions) cost
//!   state proportional to what they actually touch.
//! - [`Optimizer::Adam`] keeps first/second moment buffers and a step
//!   counter per block key and applies the bias-corrected update
//!   `param[i] += ±lr · m̂ / (√v̂ + ε)` — elementwise bitwise identical to
//!   [`ca_nn::optim::Adam::step`] on the same block, with the per-block
//!   counter playing the per-tensor `t` (each block is its own Adam
//!   instance, so sparsely-touched embedding rows bias-correct by how
//!   often *they* were updated, not by global pair count).
//!
//! Determinism: all state lives in [`OptState`], owned by the driver and
//! mutated only from the serial in-pair-order apply phase. Block keys are a
//! pure function of the model layout (never of thread count or timing), so
//! a momentum or Adam run is as reproducible as a plain-SGD run.

/// The update rule applied to every parameter block.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum Optimizer {
    /// Plain SGD: `param += ±lr · grad`. Carries no state; this is the
    /// default and reproduces the historical trainers bit-for-bit.
    #[default]
    Sgd,
    /// Classical (heavy-ball) momentum: per block `v ← beta·v + grad`,
    /// then `param += ±lr · v`.
    Momentum {
        /// Velocity decay β ∈ \[0, 1); `0.0` degrades to SGD plus a
        /// velocity copy of the gradient.
        beta: f32,
    },
    /// Adam (Kingma & Ba): per block `m ← β₁·m + (1−β₁)·g`,
    /// `v ← β₂·v + (1−β₂)·g²`, bias-corrected by the block's own step
    /// count, then `param += ±lr · m̂ / (√v̂ + ε)`. Use [`Optimizer::adam`]
    /// for the standard hyper-parameters.
    Adam {
        /// First-moment decay β₁ ∈ \[0, 1).
        beta1: f32,
        /// Second-moment decay β₂ ∈ \[0, 1).
        beta2: f32,
        /// Denominator fuzz ε > 0.
        eps: f32,
    },
}

impl Optimizer {
    /// Adam with the standard (0.9, 0.999, 1e-8) hyper-parameters —
    /// the same defaults as [`ca_nn::optim::Adam::new`].
    pub fn adam() -> Self {
        Optimizer::Adam { beta1: 0.9, beta2: 0.999, eps: 1e-8 }
    }
}

/// Per-block Adam state: first/second moment buffers plus the block's own
/// bias-correction step counter.
#[derive(Clone, Debug, Default)]
struct AdamMoments {
    m: Vec<f32>,
    v: Vec<f32>,
    t: i32,
}

/// Optimizer state across one training run: one velocity (momentum) or
/// moment-pair (Adam) buffer per parameter-block key, lazily grown. Plain
/// SGD keeps both empty.
#[derive(Clone, Debug)]
pub struct OptState {
    opt: Optimizer,
    vel: Vec<Vec<f32>>,
    moments: Vec<AdamMoments>,
}

impl OptState {
    /// Fresh (zero-state) optimizer state for `opt`.
    pub fn new(opt: Optimizer) -> Self {
        Self { opt, vel: Vec::new(), moments: Vec::new() }
    }

    /// Borrows a [`Step`] at learning rate `lr` for one apply call.
    pub fn step(&mut self, lr: f32) -> Step<'_> {
        Step { lr, opt: self.opt, vel: &mut self.vel, moments: &mut self.moments }
    }

    /// Number of parameter blocks with live optimizer state (telemetry /
    /// tests; always 0 for plain SGD).
    pub fn live_blocks(&self) -> usize {
        self.vel.iter().filter(|v| !v.is_empty()).count()
            + self.moments.iter().filter(|s| !s.m.is_empty()).count()
    }
}

/// One model update at a fixed learning rate, borrowed from [`OptState`]
/// for the duration of a single [`crate::PairwiseModel::apply`] call.
///
/// Block keys must be stable across the run (same block ⇒ same key) and
/// disjoint (two different parameter blocks never share a key); each
/// trainer documents its layout next to its `apply`.
pub struct Step<'a> {
    lr: f32,
    opt: Optimizer,
    vel: &'a mut Vec<Vec<f32>>,
    moments: &'a mut Vec<AdamMoments>,
}

impl Step<'_> {
    /// The learning rate of this step (for models that keep bespoke update
    /// arithmetic outside the block router).
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Gradient-*ascent* update of one block: `param += lr · dir` where
    /// `dir` is the (possibly velocity-smoothed) gradient.
    pub fn ascend(&mut self, key: usize, param: &mut [f32], grad: &[f32]) {
        self.update(key, param, grad, self.lr);
    }

    /// Gradient-*descent* update of one block: `param += (-lr) · dir` —
    /// bitwise equal to the `-= lr · dir` convention.
    pub fn descend(&mut self, key: usize, param: &mut [f32], grad: &[f32]) {
        self.update(key, param, grad, -self.lr);
    }

    /// [`Step::ascend`] for a scalar parameter (MF's per-item biases).
    pub fn ascend1(&mut self, key: usize, param: &mut f32, grad: f32) {
        self.update(key, std::slice::from_mut(param), &[grad], self.lr);
    }

    /// Descends every layer of an MLP, two blocks per layer (`base + 2·i`
    /// for weights, `base + 2·i + 1` for biases), in layer order — the same
    /// element order as [`ca_nn::Mlp::sgd_step`], so the SGD path stays
    /// bitwise-identical to it. Returns the first key past the tower
    /// (`base + 2·layers`), so callers can stack towers back to back.
    pub fn descend_mlp(
        &mut self,
        base: usize,
        mlp: &mut ca_nn::Mlp,
        grad: &ca_nn::MlpGrad,
    ) -> usize {
        let layers = mlp.layers_mut();
        assert_eq!(layers.len(), grad.layers.len(), "MLP/grad layer count mismatch");
        for (i, (layer, g)) in layers.iter_mut().zip(grad.layers.iter()).enumerate() {
            self.descend(base + 2 * i, layer.w.as_mut_slice(), g.w.as_slice());
            self.descend(base + 2 * i + 1, &mut layer.b, &g.b);
        }
        base + 2 * layers.len()
    }

    fn update(&mut self, key: usize, param: &mut [f32], grad: &[f32], rate: f32) {
        assert_eq!(param.len(), grad.len(), "block {key}: param/grad length mismatch");
        match self.opt {
            Optimizer::Sgd => {
                for (p, &g) in param.iter_mut().zip(grad) {
                    *p += rate * g;
                }
            }
            Optimizer::Momentum { beta } => {
                if self.vel.len() <= key {
                    self.vel.resize_with(key + 1, Vec::new);
                }
                let v = &mut self.vel[key];
                if v.len() < param.len() {
                    v.resize(param.len(), 0.0);
                }
                for ((p, &g), vi) in param.iter_mut().zip(grad).zip(v.iter_mut()) {
                    *vi = beta * *vi + g;
                    *p += rate * *vi;
                }
            }
            Optimizer::Adam { beta1, beta2, eps } => {
                if self.moments.len() <= key {
                    self.moments.resize_with(key + 1, AdamMoments::default);
                }
                let s = &mut self.moments[key];
                if s.m.len() < param.len() {
                    s.m.resize(param.len(), 0.0);
                    s.v.resize(param.len(), 0.0);
                }
                s.t += 1;
                let b1t = 1.0 - beta1.powi(s.t);
                let b2t = 1.0 - beta2.powi(s.t);
                // Same expression shape (and so the same rounding) as
                // `ca_nn::optim::Adam::step`; `rate = -lr` reproduces its
                // descent bit for bit because IEEE negation is exact.
                for i in 0..param.len() {
                    let g = grad[i];
                    s.m[i] = beta1 * s.m[i] + (1.0 - beta1) * g;
                    s.v[i] = beta2 * s.v[i] + (1.0 - beta2) * g * g;
                    let mhat = s.m[i] / b1t;
                    let vhat = s.v[i] / b2t;
                    param[i] += rate * mhat / (vhat.sqrt() + eps);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_descend_is_bitwise_the_historical_loop() {
        let grad = [0.123_f32, -7.5e-3, 1.0e-20, -3.0];
        let lr = 0.05_f32;
        let mut via_step = [1.0_f32, -2.0, 0.5, 1.0e-19];
        let mut historical = via_step;

        let mut state = OptState::new(Optimizer::Sgd);
        state.step(lr).descend(0, &mut via_step, &grad);
        for (p, &g) in historical.iter_mut().zip(&grad) {
            *p += (-lr) * g; // what add_scaled(grad, -lr) / axpy(-lr, …) compute
        }
        let bits = |xs: &[f32]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&via_step), bits(&historical));

        // And the ascent convention matches `+= lr·g`.
        let mut up = [1.0_f32; 4];
        state.step(lr).ascend(0, &mut up, &grad);
        for (i, &g) in grad.iter().enumerate() {
            assert_eq!(up[i].to_bits(), (1.0 + lr * g).to_bits());
        }
        assert_eq!(state.live_blocks(), 0, "SGD must stay stateless");
    }

    #[test]
    fn momentum_accumulates_velocity_per_block() {
        let mut state = OptState::new(Optimizer::Momentum { beta: 0.5 });
        let mut p = [0.0_f32];
        state.step(1.0).ascend(3, &mut p, &[1.0]); // v = 1.0, p = 1.0
        state.step(1.0).ascend(3, &mut p, &[1.0]); // v = 1.5, p = 2.5
        state.step(1.0).ascend(3, &mut p, &[1.0]); // v = 1.75, p = 4.25
        assert_eq!(p[0], 4.25);
        // Only the touched key holds state; untouched lower keys stay empty.
        assert_eq!(state.live_blocks(), 1);
    }

    #[test]
    fn momentum_blocks_are_independent() {
        let mut state = OptState::new(Optimizer::Momentum { beta: 0.9 });
        let (mut a, mut b) = ([0.0_f32], [0.0_f32]);
        state.step(0.1).descend(0, &mut a, &[1.0]);
        state.step(0.1).descend(7, &mut b, &[1.0]);
        // First touch of each block sees the same zero velocity.
        assert_eq!(a[0].to_bits(), b[0].to_bits());
        assert_eq!(state.live_blocks(), 2);
    }

    #[test]
    fn momentum_beta_zero_moves_like_sgd() {
        let grad = [0.25_f32, -0.5];
        let mut sgd = [1.0_f32, 1.0];
        let mut mom = sgd;
        OptState::new(Optimizer::Sgd).step(0.1).descend(0, &mut sgd, &grad);
        OptState::new(Optimizer::Momentum { beta: 0.0 }).step(0.1).descend(0, &mut mom, &grad);
        // β = 0 ⇒ v = 0·v + g = g exactly; the parameter moves identically.
        assert_eq!(sgd[0].to_bits(), mom[0].to_bits());
        assert_eq!(sgd[1].to_bits(), mom[1].to_bits());
    }

    #[test]
    fn adam_descent_is_bitwise_the_nn_reference() {
        // One OptState block must behave exactly like one ca_nn Adam
        // instance: same moments, same bias correction, same rounding.
        let grads = [
            [0.123_f32, -7.5e-3, 1.0e-20, -3.0],
            [0.5, 0.5, -0.25, 2.0e-10],
            [-1.0, 0.0, 4.0, 0.125],
        ];
        let lr = 0.05_f32;
        let mut via_step = [1.0_f32, -2.0, 0.5, 1.0e-19];
        let mut reference = via_step;

        let mut state = OptState::new(Optimizer::adam());
        let mut nn = ca_nn::optim::Adam::new(reference.len());
        for g in &grads {
            state.step(lr).descend(2, &mut via_step, g);
            nn.step(&mut reference, g, lr);
        }
        let bits = |xs: &[f32]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&via_step), bits(&reference));
        assert_eq!(state.live_blocks(), 1);
    }

    #[test]
    fn adam_blocks_bias_correct_independently() {
        // A block touched once must see the t = 1 bias correction no matter
        // how often *other* blocks were updated.
        let mut state = OptState::new(Optimizer::adam());
        let (mut hot, mut cold, mut fresh) = ([0.0_f32], [0.0_f32], [0.0_f32]);
        for _ in 0..5 {
            state.step(0.1).descend(0, &mut hot, &[1.0]);
        }
        state.step(0.1).descend(9, &mut cold, &[1.0]);
        OptState::new(Optimizer::adam()).step(0.1).descend(0, &mut fresh, &[1.0]);
        assert_eq!(cold[0].to_bits(), fresh[0].to_bits());
        assert_eq!(state.live_blocks(), 2);
    }

    #[test]
    fn adam_ascend_is_negated_descent() {
        let grad = [0.25_f32, -0.5, 1.0e-6];
        let mut up = [1.0_f32, 1.0, 1.0];
        let mut down = up;
        OptState::new(Optimizer::adam()).step(0.1).ascend(0, &mut up, &grad);
        OptState::new(Optimizer::adam()).step(0.1).descend(0, &mut down, &grad);
        for (u, d) in up.iter().zip(&down) {
            // Both sit at 1.0 ± the same bias-corrected step.
            assert_eq!((u - 1.0).to_bits(), (-(d - 1.0)).to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_block_shapes_panic() {
        let mut state = OptState::new(Optimizer::Sgd);
        let mut p = [0.0_f32; 3];
        state.step(0.1).ascend(0, &mut p, &[1.0]);
    }
}
