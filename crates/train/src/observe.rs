//! Training telemetry: the observer hook and its standard implementations.

use crate::driver::StopReason;

/// Per-epoch telemetry emitted by the driver after the epoch's updates have
/// been applied (and after validation, when the model provides one).
///
/// Everything except `seconds` is deterministic: `loss` folds the per-pair
/// losses in pair order (a fixed f64 rounding schedule at any thread
/// count), `lr` comes from the schedule, and `val_score` is the model's own
/// deterministic validation protocol. `seconds` (and therefore
/// [`EpochStats::pairs_per_sec`]) is wall-clock — telemetry only, never fed
/// back into training.
#[derive(Clone, Debug)]
pub struct EpochStats {
    /// 0-based epoch index.
    pub epoch: usize,
    /// Training pairs processed this epoch (= the interaction count).
    pub pairs: usize,
    /// Mean BPR loss `-ln σ(s⁺ − s⁻)` over the epoch's pairs, measured
    /// against each pair's frozen batch-start model.
    pub loss: f32,
    /// Learning rate used this epoch.
    pub lr: f32,
    /// Post-update validation score, if the model validates.
    pub val_score: Option<f32>,
    /// Wall-clock seconds spent on the epoch's updates (sampling +
    /// gradients + apply; validation time excluded).
    pub seconds: f64,
}

impl EpochStats {
    /// Training throughput in pairs per second.
    pub fn pairs_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.pairs as f64 / self.seconds
        } else {
            0.0
        }
    }
}

/// Observer of one training run. All methods default to no-ops, so an
/// implementation only overrides what it cares about. Observers receive
/// telemetry *after* the driver's own bookkeeping — they can never perturb
/// the trained model.
pub trait TrainObserver {
    /// Called once per completed epoch.
    fn on_epoch(&mut self, stats: &EpochStats) {
        let _ = stats;
    }

    /// Called once when training ends, with the stop reason and the number
    /// of epochs whose updates are present in the returned model.
    fn on_stop(&mut self, reason: &StopReason, epochs_run: usize) {
        let _ = (reason, epochs_run);
    }
}

/// The do-nothing observer (the default for un-instrumented call sites).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullObserver;

impl TrainObserver for NullObserver {}

/// Records the full run: every epoch's stats plus the stop reason.
#[derive(Clone, Debug, Default)]
pub struct History {
    /// Per-epoch telemetry, in epoch order.
    pub epochs: Vec<EpochStats>,
    /// Why training stopped (`None` while a run is still in progress).
    pub stop: Option<StopReason>,
}

impl History {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The per-epoch mean-loss curve.
    pub fn loss_curve(&self) -> Vec<f32> {
        self.epochs.iter().map(|e| e.loss).collect()
    }

    /// The per-epoch validation-score curve (epochs without validation are
    /// skipped).
    pub fn val_curve(&self) -> Vec<f32> {
        self.epochs.iter().filter_map(|e| e.val_score).collect()
    }

    /// Per-epoch training throughput in pairs per second.
    pub fn pairs_per_sec(&self) -> Vec<f64> {
        self.epochs.iter().map(|e| e.pairs_per_sec()).collect()
    }
}

impl TrainObserver for History {
    fn on_epoch(&mut self, stats: &EpochStats) {
        self.epochs.push(stats.clone());
    }

    fn on_stop(&mut self, reason: &StopReason, _epochs_run: usize) {
        self.stop = Some(reason.clone());
    }
}

/// Live progress lines on stderr, one per epoch.
#[derive(Clone, Debug)]
pub struct StderrProgress {
    label: String,
}

impl StderrProgress {
    /// Progress printer whose lines are prefixed with `label`.
    pub fn new(label: impl Into<String>) -> Self {
        Self { label: label.into() }
    }
}

impl TrainObserver for StderrProgress {
    fn on_epoch(&mut self, s: &EpochStats) {
        let val = match s.val_score {
            Some(v) => format!(" val {v:.4}"),
            None => String::new(),
        };
        eprintln!(
            "[train:{}] epoch {:>3} loss {:.5} lr {:.4} {:>9.0} pairs/s{val}",
            self.label,
            s.epoch,
            s.loss,
            s.lr,
            s.pairs_per_sec(),
        );
    }

    fn on_stop(&mut self, reason: &StopReason, epochs_run: usize) {
        eprintln!("[train:{}] stopped after {epochs_run} epochs: {reason:?}", self.label);
    }
}

/// Fans telemetry out to two observers (nest for more).
pub struct Tee<'a>(pub &'a mut dyn TrainObserver, pub &'a mut dyn TrainObserver);

impl TrainObserver for Tee<'_> {
    fn on_epoch(&mut self, stats: &EpochStats) {
        self.0.on_epoch(stats);
        self.1.on_epoch(stats);
    }

    fn on_stop(&mut self, reason: &StopReason, epochs_run: usize) {
        self.0.on_stop(reason, epochs_run);
        self.1.on_stop(reason, epochs_run);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(epoch: usize, loss: f32, val: Option<f32>) -> EpochStats {
        EpochStats { epoch, pairs: 100, loss, lr: 0.05, val_score: val, seconds: 0.5 }
    }

    #[test]
    fn history_records_curves_in_order() {
        let mut h = History::new();
        h.on_epoch(&stats(0, 0.7, None));
        h.on_epoch(&stats(1, 0.5, Some(0.3)));
        h.on_stop(&StopReason::MaxEpochs, 2);
        assert_eq!(h.loss_curve(), vec![0.7, 0.5]);
        assert_eq!(h.val_curve(), vec![0.3]);
        assert_eq!(h.pairs_per_sec(), vec![200.0, 200.0]);
        assert_eq!(h.stop, Some(StopReason::MaxEpochs));
    }

    #[test]
    fn tee_feeds_both_observers() {
        let mut a = History::new();
        let mut b = History::new();
        {
            let mut tee = Tee(&mut a, &mut b);
            tee.on_epoch(&stats(0, 0.9, None));
            tee.on_stop(&StopReason::MaxEpochs, 1);
        }
        assert_eq!(a.loss_curve(), b.loss_curve());
        assert_eq!(a.stop, b.stop);
    }

    #[test]
    fn zero_second_epoch_reports_zero_throughput() {
        let s = EpochStats { seconds: 0.0, ..stats(0, 0.1, None) };
        assert_eq!(s.pairs_per_sec(), 0.0);
    }
}
