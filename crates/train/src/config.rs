//! The unified training configuration and learning-rate schedules.

use crate::optim::Optimizer;

/// Per-epoch learning-rate schedule.
///
/// The schedule is a pure function of the epoch index and the base rate, so
/// a training run's learning-rate sequence is fully determined by the
/// configuration — it can never depend on wall-clock, thread count, or
/// observer behavior.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LrSchedule {
    /// The base learning rate at every epoch. [`LrSchedule::lr_at`] returns
    /// the base rate *bit-for-bit* (no multiplication by 1.0), so constant
    /// schedules reproduce the historical fixed-rate loops exactly.
    Constant,
    /// Multiply the rate by `factor` every `every` epochs:
    /// `lr(e) = base · factor^(e / every)`.
    StepDecay {
        /// Epochs between decays (≥ 1; 0 is treated as 1).
        every: usize,
        /// Multiplicative decay per step.
        factor: f32,
    },
    /// Exponential decay: `lr(e) = base · gamma^e`.
    Exponential {
        /// Per-epoch decay factor.
        gamma: f32,
    },
}

impl LrSchedule {
    /// The learning rate for 0-based `epoch` under base rate `base`.
    pub fn lr_at(&self, epoch: usize, base: f32) -> f32 {
        match *self {
            LrSchedule::Constant => base,
            LrSchedule::StepDecay { every, factor } => {
                base * factor.powi((epoch / every.max(1)) as i32)
            }
            LrSchedule::Exponential { gamma } => base * gamma.powi(epoch as i32),
        }
    }
}

/// Hyper-parameters of one [`crate::fit`] run — the union of what the three
/// per-crate configs (`BprConfig`, `NcfConfig`, `GnnConfig`) used to carry,
/// under one set of names.
///
/// Model-side hyper-parameters (embedding dim, hidden width) stay in the
/// model crates; this struct owns everything the *epoch loop* needs.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Base SGD learning rate (see [`TrainConfig::schedule`]).
    pub lr: f32,
    /// L2 regularization strength. The driver itself never uses this — the
    /// per-pair gradient folds regularization in — but it is recorded here
    /// so one struct describes the full run.
    pub reg: f32,
    /// Maximum epochs (one pass over all interactions each). Runs exactly
    /// this many unless early stopping fires first.
    pub max_epochs: usize,
    /// Early-stopping patience: stop after this many consecutive epochs
    /// whose post-update validation score failed to beat the best by more
    /// than [`TrainConfig::tolerance`]. `None` disables early stopping
    /// (fixed-epoch training), as does a model with no validation signal.
    pub patience: Option<usize>,
    /// Minimum improvement over the best validation score that resets the
    /// patience counter.
    pub tolerance: f32,
    /// Learning-rate schedule over epochs.
    pub schedule: LrSchedule,
    /// Per-pair update rule ([`Optimizer::Sgd`] reproduces the historical
    /// hand-rolled loops bit-for-bit; see [`crate::optim`]).
    pub optimizer: Optimizer,
    /// Pairs per minibatch: gradients within a batch are computed against
    /// the frozen batch-start model (in parallel on the `ca-par` runtime)
    /// and applied in pair order. `1` recovers classic per-pair SGD
    /// exactly.
    pub minibatch: usize,
    /// RNG seed, used by [`crate::fit_seeded`] to create the trainer RNG.
    /// Callers that need the historical draw order (model init on the same
    /// stream, validation-sample shuffle) create the RNG themselves and
    /// call [`crate::fit`].
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            lr: 0.05,
            reg: 1e-4,
            max_epochs: 30,
            patience: None,
            tolerance: 1e-5,
            schedule: LrSchedule::Constant,
            optimizer: Optimizer::Sgd,
            minibatch: 32,
            seed: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_schedule_is_bitwise_base() {
        for e in 0..100 {
            assert_eq!(LrSchedule::Constant.lr_at(e, 0.05).to_bits(), 0.05f32.to_bits());
        }
    }

    #[test]
    fn step_decay_halves_on_schedule() {
        let s = LrSchedule::StepDecay { every: 10, factor: 0.5 };
        assert_eq!(s.lr_at(0, 1.0), 1.0);
        assert_eq!(s.lr_at(9, 1.0), 1.0);
        assert_eq!(s.lr_at(10, 1.0), 0.5);
        assert_eq!(s.lr_at(25, 1.0), 0.25);
    }

    #[test]
    fn step_decay_zero_period_is_per_epoch() {
        let s = LrSchedule::StepDecay { every: 0, factor: 0.5 };
        assert_eq!(s.lr_at(2, 1.0), 0.25);
    }

    #[test]
    fn exponential_decay_compounds() {
        let s = LrSchedule::Exponential { gamma: 0.9 };
        assert!((s.lr_at(3, 1.0) - 0.9f32.powi(3)).abs() < 1e-7);
    }
}
