//! Shared deterministic BPR trainer for every pairwise model in the
//! workspace.
//!
//! CopyAttack trains recommenders in three places — the attacker's
//! source-domain MF surrogate (§4.1), the frozen-feature MF used by the
//! target GNN, and the deployed target models themselves (PinSage-like GNN,
//! NeuMF-lite) — and before this crate existed each model crate carried its
//! own near-identical epoch loop. `ca-train` owns that loop once:
//!
//! - [`PairwiseModel`] is the contract a model implements to be trainable:
//!   a per-pair gradient against the **frozen batch-start model** plus a
//!   fixed-order apply, with optional per-epoch setup (stale-cache refresh)
//!   and an optional post-update validation score;
//! - [`fit`] is the epoch driver: serial in-order negative sampling on the
//!   single trainer RNG, minibatching, the `ca-par` gradient fan-out behind
//!   [`PAR_MIN_PAIRS`], an early-stopping rule shared by every model, and a
//!   learning-rate schedule;
//! - [`TrainConfig`] unifies the hyper-parameters that used to drift across
//!   the per-crate configs (`epochs` vs `max_epochs`, early stopping only
//!   in some crates);
//! - [`TrainObserver`] is the telemetry hook: every epoch reports loss,
//!   pairs/sec, the learning rate, and the validation score to observers
//!   such as [`History`] (structured record) and [`StderrProgress`] (live
//!   log lines).
//!
//! # Determinism
//!
//! The driver preserves the `ca-par` contract — **bitwise-identical models
//! at any thread count** — by construction:
//!
//! 1. shuffling and negative sampling draw from one trainer RNG, serially,
//!    in pair order; the random stream never depends on `CA_THREADS` or the
//!    minibatch size;
//! 2. per-pair gradients are pure functions of the frozen batch-start
//!    model, computed (possibly in parallel) by [`ca_par::map_min`], which
//!    returns them in input order;
//! 3. gradients are applied serially, in pair order, on the calling thread,
//!    through the configured [`Optimizer`] ([`optim`]): plain SGD is
//!    bitwise-identical to the historical hand-rolled update loops, and
//!    momentum keeps its velocity state in driver-owned [`OptState`] so it
//!    is exactly as reproducible.
//!
//! Telemetry is computed *outside* that loop (loss folds over the returned
//! gradient vector in pair order), so observing a run never perturbs it.
//!
//! # Stop criterion
//!
//! Early stopping always reads the **post-update** validation score: the
//! score computed after the epoch's gradients have been applied. The epoch
//! counted by `epochs_run` is therefore exactly the set of epochs whose
//! updates are present in the returned model, and the score compared
//! against `best + tolerance` describes the model the caller receives —
//! never the previous epoch's parameters.

#![forbid(unsafe_code)]

pub mod config;
pub mod driver;
pub mod observe;
pub mod optim;

pub use config::{LrSchedule, TrainConfig};
pub use driver::{fit, fit_seeded, PairwiseModel, StopReason, TrainOutcome, PAR_MIN_PAIRS};
pub use observe::{EpochStats, History, NullObserver, StderrProgress, Tee, TrainObserver};
pub use optim::{OptState, Optimizer, Step};
