//! NeuMF-lite model: fused GMF + MLP scoring over free embeddings.

use ca_nn::Mlp;
use ca_recsys::{ItemId, Scorer, UserId};
use ca_tensor::init::gaussian_matrix;
use ca_tensor::{ops, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// NCF hyper-parameters.
#[derive(Clone, Debug)]
pub struct NcfConfig {
    /// Embedding dimensionality (paper-scale: 8).
    pub dim: usize,
    /// Hidden width of the MLP branch.
    pub hidden: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// L2 regularization on embeddings.
    pub reg: f32,
    /// Maximum training epochs.
    pub max_epochs: usize,
    /// Early-stopping patience on validation HR@10.
    pub patience: usize,
    /// RNG seed.
    pub seed: u64,
    /// Per-pair update rule for [`crate::train::train`]. The
    /// [`ca_train::Optimizer::Sgd`] default reproduces the historical
    /// hand-rolled update loop bit-for-bit.
    pub optimizer: ca_train::Optimizer,
    /// Pairs per minibatch in [`crate::train::train`]: gradients within a
    /// batch are computed against the frozen batch-start model (in parallel
    /// on the `ca-par` runtime) and applied in pair order. `1` recovers
    /// classic per-pair SGD exactly.
    pub minibatch: usize,
}

impl Default for NcfConfig {
    fn default() -> Self {
        Self {
            dim: 8,
            hidden: 16,
            lr: 0.05,
            reg: 1e-4,
            max_epochs: 30,
            patience: 5,
            seed: 0,
            optimizer: ca_train::Optimizer::Sgd,
            minibatch: 32,
        }
    }
}

/// NeuMF-lite parameters.
#[derive(Clone, Debug)]
pub struct NcfModel {
    /// Hyper-parameters.
    pub cfg: NcfConfig,
    /// User embeddings, `n_users × dim` (grows on onboarding).
    pub p: Matrix,
    /// Item embeddings, `n_items × dim`.
    pub q: Matrix,
    /// GMF fusion weights over the element-wise product.
    pub w_gmf: Vec<f32>,
    /// MLP branch over `[p ⊕ q]`, scalar output.
    pub mlp: Mlp,
}

impl NcfModel {
    /// Fresh model with `N(0, 0.1²)` embeddings (per §5.1.3) and
    /// Xavier-scale MLP weights.
    pub fn new(n_users: usize, n_items: usize, cfg: NcfConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let p = gaussian_matrix(&mut rng, n_users, cfg.dim, 0.0, 0.1);
        let q = gaussian_matrix(&mut rng, n_items, cfg.dim, 0.0, 0.1);
        let w_gmf = vec![1.0; cfg.dim];
        let mlp_std = (2.0 / (2 * cfg.dim + cfg.hidden) as f32).sqrt();
        let mlp = Mlp::new(&mut rng, &[2 * cfg.dim, cfg.hidden, 1], mlp_std);
        Self { cfg, p, q, w_gmf, mlp }
    }

    /// Number of users currently represented.
    pub fn n_users(&self) -> usize {
        self.p.rows()
    }

    /// Catalog size.
    pub fn n_items(&self) -> usize {
        self.q.rows()
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.cfg.dim
    }

    /// The MLP input `[p_u ⊕ q_v]`.
    pub fn fusion_input(&self, u: UserId, v: ItemId) -> Vec<f32> {
        let mut x = Vec::with_capacity(2 * self.dim());
        x.extend_from_slice(self.p.row(u.idx()));
        x.extend_from_slice(self.q.row(v.idx()));
        x
    }

    /// Onboards a new user: embedding initialized at the mean of the
    /// profile items' embeddings (a warm start that local fine-tuning then
    /// sharpens). Returns the new user's id.
    pub fn onboard_user(&mut self, profile: &[ItemId]) -> UserId {
        let dim = self.dim();
        let mut emb = vec![0.0; dim];
        if !profile.is_empty() {
            for &v in profile {
                ops::axpy(1.0, self.q.row(v.idx()), &mut emb);
            }
            ops::scale(&mut emb, 1.0 / profile.len() as f32);
        }
        let uid = UserId(self.p.rows() as u32);
        self.p.push_row(&emb);
        uid
    }
}

impl Scorer for NcfModel {
    fn score(&self, user: UserId, item: ItemId) -> f32 {
        let pu = self.p.row(user.idx());
        let qv = self.q.row(item.idx());
        let mut gmf = 0.0;
        for k in 0..self.dim() {
            gmf += self.w_gmf[k] * pu[k] * qv[k];
        }
        gmf + self.mlp.infer(&self.fusion_input(user, item))[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_model_shapes() {
        let m = NcfModel::new(5, 7, NcfConfig::default());
        assert_eq!(m.n_users(), 5);
        assert_eq!(m.n_items(), 7);
        assert_eq!(m.dim(), 8);
        assert_eq!(m.fusion_input(UserId(0), ItemId(0)).len(), 16);
    }

    #[test]
    fn score_combines_gmf_and_mlp() {
        let mut m = NcfModel::new(2, 2, NcfConfig::default());
        // Zero the MLP contribution by zeroing its final layer.
        for layer in m.mlp.layers_mut() {
            layer.w.fill_zero();
            layer.b.iter_mut().for_each(|b| *b = 0.0);
        }
        let expected: f32 = (0..8).map(|k| m.w_gmf[k] * m.p[(0, k)] * m.q[(1, k)]).sum();
        assert!((m.score(UserId(0), ItemId(1)) - expected).abs() < 1e-6);
    }

    #[test]
    fn onboarding_warm_starts_at_item_mean() {
        let mut m = NcfModel::new(1, 3, NcfConfig::default());
        let uid = m.onboard_user(&[ItemId(0), ItemId(2)]);
        assert_eq!(uid, UserId(1));
        for k in 0..m.dim() {
            let expected = (m.q[(0, k)] + m.q[(2, k)]) / 2.0;
            assert!((m.p[(1, k)] - expected).abs() < 1e-6);
        }
    }

    #[test]
    fn onboarding_empty_profile_gives_zero_embedding() {
        let mut m = NcfModel::new(1, 3, NcfConfig::default());
        let uid = m.onboard_user(&[]);
        assert!(m.p.row(uid.idx()).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn construction_is_deterministic() {
        let a = NcfModel::new(4, 4, NcfConfig::default());
        let b = NcfModel::new(4, 4, NcfConfig::default());
        assert_eq!(a.p.as_slice(), b.p.as_slice());
        assert_eq!(a.q.as_slice(), b.q.as_slice());
    }
}
