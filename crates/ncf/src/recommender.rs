//! Deployed NCF platform: onboarding + periodic fine-tune on fresh data.
//!
//! Unlike the inductive PinSage deployment (fold-in, instant), a
//! transductive platform absorbs new interactions in batches: every
//! `refresh_every` new accounts it fine-tunes on the fresh interactions.
//! Data poisoning reaches the model exactly through that loop — injected
//! `(user, target)` pairs pull the target item's embedding toward the
//! injected users during the refresh.

use crate::model::NcfModel;
use crate::train::{bpr_step, fine_tune_user};
use ca_recsys::engine::{self, EmbeddingEngine, ScoringEngine};
use ca_recsys::{BlackBoxRecommender, Dataset, ItemId, Scorer, UserId};
use ca_tensor::{Matrix, Scratch};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deployed NCF recommender.
#[derive(Clone, Debug)]
pub struct NcfRecommender {
    model: NcfModel,
    data: Dataset,
    /// Global fine-tune after every this many new accounts.
    refresh_every: usize,
    /// Fine-tune passes over the fresh interactions per refresh.
    refresh_epochs: usize,
    fresh_users: Vec<UserId>,
    rng: StdRng,
}

impl NcfRecommender {
    /// Deploys a trained model over its training data.
    ///
    /// # Panics
    /// Panics if model and data disagree on shapes or `refresh_every` is 0.
    pub fn deploy(
        model: NcfModel,
        data: Dataset,
        refresh_every: usize,
        refresh_epochs: usize,
    ) -> Self {
        assert_eq!(model.n_users(), data.n_users(), "model/user-base mismatch");
        assert_eq!(model.n_items(), data.n_items(), "model/catalog mismatch");
        assert!(refresh_every > 0, "refresh cadence must be positive");
        let seed = model.cfg.seed.wrapping_add(0xD1CE);
        Self {
            model,
            data,
            refresh_every,
            refresh_epochs,
            fresh_users: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Owner-side data access.
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// Owner-side model access.
    pub fn model(&self) -> &NcfModel {
        &self.model
    }

    /// Accounts waiting for the next global refresh.
    pub fn pending_refresh(&self) -> usize {
        self.fresh_users.len()
    }

    /// Runs the global fine-tune immediately (the "nightly retrain"),
    /// consuming the fresh-interaction buffer.
    pub fn refresh(&mut self) {
        for _ in 0..self.refresh_epochs {
            for &u in &self.fresh_users {
                for &pos in self.data.profile(u) {
                    let neg = loop {
                        use rand::Rng;
                        let cand = ItemId(self.rng.gen_range(0..self.data.n_items() as u32));
                        if cand != pos && !self.data.contains(u, cand) {
                            break cand;
                        }
                    };
                    bpr_step(&mut self.model, u, pos, neg);
                }
            }
        }
        self.fresh_users.clear();
    }
}

impl Scorer for NcfRecommender {
    fn score(&self, user: UserId, item: ItemId) -> f32 {
        self.model.score(user, item)
    }
}

impl ScoringEngine for NcfRecommender {
    fn catalog_len(&self) -> usize {
        self.data.n_items()
    }

    fn is_seen(&self, user: UserId, item: ItemId) -> bool {
        self.data.contains(user, item)
    }

    fn score_batch(&self, users: &[UserId], out: &mut Matrix) {
        let n = self.data.n_items();
        let dim = self.model.dim();
        let mut scratch = Scratch::new();
        let mut weighted = scratch.take(dim);
        // Fusion inputs `[p_u ⊕ q_v]` for the whole catalog; the q half is
        // user-independent, so it is written once and the p half swapped
        // per user.
        let mut fused = scratch.matrix(n, 2 * dim);
        for v in 0..n {
            fused.row_mut(v)[dim..].copy_from_slice(self.model.q.row(v));
        }
        for (i, &u) in users.iter().enumerate() {
            let pu = self.model.p.row(u.idx());
            // GMF branch as one mat-vec: Q · (w_gmf ⊙ p_u). Multiplication
            // commutes exactly in IEEE 754, so this matches the scalar
            // Σ_k w·p·q loop bitwise.
            for (w, (g, p)) in weighted.iter_mut().zip(self.model.w_gmf.iter().zip(pu)) {
                *w = g * p;
            }
            self.model.q.matvec_into(&weighted, out.row_mut(i));
            // MLP branch over all n fusion rows in one batched forward.
            for v in 0..n {
                fused.row_mut(v)[..dim].copy_from_slice(pu);
            }
            let logits = self.model.mlp.infer_batch(&fused, &mut scratch);
            for (s, l) in out.row_mut(i).iter_mut().zip(logits.as_slice()) {
                *s += l;
            }
            scratch.recycle(logits);
        }
    }
}

impl EmbeddingEngine for NcfRecommender {
    fn embedding_dim(&self) -> usize {
        self.model.dim()
    }

    /// Item representation for indexing: the GMF item factors `q_v`. The
    /// MLP branch has no linear item embedding, so cell ranking sees the
    /// GMF logit only — a coarse but serviceable proxy; candidate scoring
    /// below remains the full exact model.
    fn item_embedding_into(&self, item: ItemId, out: &mut [f32]) {
        out.copy_from_slice(self.model.q.row(item.idx()));
    }

    /// Query vector `w_gmf ⊙ p_u`, so `dot(query, item)` is exactly the
    /// GMF branch of the score.
    fn query_embedding_into(&self, user: UserId, out: &mut [f32]) {
        let pu = self.model.p.row(user.idx());
        for (o, (g, p)) in out.iter_mut().zip(self.model.w_gmf.iter().zip(pu)) {
            *o = g * p;
        }
    }

    fn score_items(&self, user: UserId, items: &[ItemId], out: &mut [f32]) {
        // `NcfModel::score` (scalar GMF loop + per-row `mlp.infer`) is
        // bitwise equal to the batched `score_batch` cells: the mat-vec
        // commutes multiplications exactly, and `infer_batch` row `i` is
        // bitwise `infer(row i)` (pinned in `ca-nn`).
        for (o, &v) in out.iter_mut().zip(items) {
            *o = self.model.score(user, v);
        }
    }
}

impl BlackBoxRecommender for NcfRecommender {
    fn top_k(&self, user: UserId, k: usize) -> Vec<ItemId> {
        engine::single_top_k(self, user, k)
    }

    fn top_k_batch(&self, users: &[UserId], k: usize) -> Vec<Vec<ItemId>> {
        engine::auto_batch_top_k(self, users, k)
    }

    fn inject_user(&mut self, profile: &[ItemId]) -> UserId {
        let uid = self.data.add_user(profile);
        // `add_user` dedups; read the stored run straight from the arena.
        let mid = self.model.onboard_user(self.data.profile(uid));
        debug_assert_eq!(uid, mid);
        // Local onboarding fine-tune (only the new user's embedding moves).
        fine_tune_user(&mut self.model, &self.data, uid, 2, &mut self.rng);
        self.fresh_users.push(uid);
        if self.fresh_users.len() >= self.refresh_every {
            self.refresh();
        }
        uid
    }

    fn catalog_size(&self) -> usize {
        self.data.n_items()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::NcfConfig;
    use crate::train::train;
    use ca_recsys::{split_dataset, DatasetBuilder};

    fn platform(refresh_every: usize) -> NcfRecommender {
        let mut b = DatasetBuilder::new(30);
        for u in 0..40u32 {
            let base: u32 = if u < 20 { 0 } else { 15 };
            let profile: Vec<ItemId> = (0..8u32).map(|i| ItemId(base + (u * 5 + i) % 15)).collect();
            b.user(&profile);
        }
        let ds = b.build();
        let mut rng = StdRng::seed_from_u64(1);
        let split = split_dataset(&ds, 0.1, &mut rng);
        let cfg = NcfConfig { max_epochs: 10, seed: 2, ..Default::default() };
        let (model, _) = train(&split.train, &split.validation, &cfg);
        NcfRecommender::deploy(model, split.train, refresh_every, 2)
    }

    #[test]
    fn top_k_excludes_seen_and_is_sorted() {
        let rec = platform(3);
        let list = rec.top_k(UserId(0), 6);
        assert_eq!(list.len(), 6);
        for w in list.windows(2) {
            assert!(rec.score(UserId(0), w[0]) >= rec.score(UserId(0), w[1]));
        }
        for v in &list {
            assert!(!rec.data().contains(UserId(0), *v));
        }
    }

    #[test]
    fn refresh_fires_on_cadence() {
        let mut rec = platform(3);
        rec.inject_user(&[ItemId(1)]);
        rec.inject_user(&[ItemId(2)]);
        assert_eq!(rec.pending_refresh(), 2);
        rec.inject_user(&[ItemId(3)]);
        assert_eq!(rec.pending_refresh(), 0, "refresh must fire at the cadence");
    }

    #[test]
    fn poisoning_reaches_the_model_through_refresh() {
        let mut rec = platform(5);
        // Cold-ish target item for group-0 users.
        let target = ItemId(14);
        let probe = UserId(0);
        let before = rec.score(probe, target);
        // Inject users pairing the target with group-0's items.
        for _ in 0..10 {
            let mut profile = vec![target];
            profile.extend((0..6u32).map(ItemId));
            rec.inject_user(&profile);
        }
        assert_eq!(rec.pending_refresh(), 0);
        let after = rec.score(probe, target);
        assert!(after > before, "refresh-cycle poisoning failed: {before} -> {after}");
    }

    #[test]
    fn injections_between_refreshes_still_get_onboarded() {
        let mut rec = platform(100); // refresh far away
        let uid = rec.inject_user(&[ItemId(0), ItemId(1)]);
        // The new account must already receive personalized rankings.
        let list = rec.top_k(uid, 5);
        assert_eq!(list.len(), 5);
        assert!(!list.contains(&ItemId(0)));
    }

    #[test]
    #[should_panic(expected = "refresh cadence")]
    fn zero_cadence_rejected() {
        let rec = platform(3);
        let model = rec.model().clone();
        let data = rec.data().clone();
        let _ = NcfRecommender::deploy(model, data, 0, 1);
    }
}
