//! BPR training and incremental fine-tuning for the NCF model.
//!
//! The epoch loop (minibatching, serial negative sampling, parallel
//! gradient fan-out, early stopping) lives in `ca-train`; this module
//! contributes the NCF-specific [`ca_train::PairwiseModel`] implementation
//! — the two-branch (GMF ⊕ MLP) gradient against a frozen batch-start
//! model and its fixed-order apply — plus the validation protocol (HR@10
//! of a ≤500-pair sample, post-update, fresh seeded RNG per epoch).

use crate::model::{NcfConfig, NcfModel};
use ca_nn::MlpGrad;
use ca_recsys::eval::RankingEval;
use ca_recsys::{Dataset, HeldOut, ItemId, UserId};
use ca_tensor::ops::sigmoid;
use ca_train::{NullObserver, PairwiseModel, Step, TrainConfig, TrainObserver};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Training summary.
#[derive(Clone, Debug)]
pub struct NcfTrainReport {
    /// Epochs run (≤ max with early stopping).
    pub epochs_run: usize,
    /// Validation HR@10 per epoch.
    pub val_hr10_history: Vec<f32>,
    /// Best validation HR@10.
    pub best_val_hr10: f32,
}

impl NcfConfig {
    /// The `ca-train` driver configuration this config describes.
    pub fn train_config(&self) -> TrainConfig {
        TrainConfig {
            lr: self.lr,
            reg: self.reg,
            max_epochs: self.max_epochs,
            patience: Some(self.patience),
            minibatch: self.minibatch,
            seed: self.seed,
            optimizer: self.optimizer,
            ..TrainConfig::default()
        }
    }
}

/// The NCF side of the [`PairwiseModel`] contract.
struct NcfTrainer<'a> {
    model: NcfModel,
    seen: &'a Dataset,
    val_sample: Vec<HeldOut>,
    val_seed: u64,
}

impl PairwiseModel for NcfTrainer<'_> {
    type Grad = PairGrad;

    fn pair_grad(&self, u: UserId, pos: ItemId, neg: ItemId) -> (PairGrad, f32) {
        pair_grad(&self.model, u, pos, neg)
    }

    fn apply(&mut self, u: UserId, pos: ItemId, neg: ItemId, g: &PairGrad, step: &mut Step<'_>) {
        apply_grad(&mut self.model, u, pos, neg, g, step);
    }

    /// Post-update validation HR@10 (the stop criterion always reads the
    /// score of the model *after* this epoch's updates).
    fn validate(&mut self) -> Option<f32> {
        let ev = RankingEval { seen: self.seen, ks: vec![10] };
        let mut val_rng = StdRng::seed_from_u64(self.val_seed);
        Some(ev.evaluate(&self.model, &self.val_sample, &mut val_rng).hr(10))
    }
}

/// Trains an [`NcfModel`] on the training split with early stopping.
pub fn train(
    train_ds: &Dataset,
    validation: &[HeldOut],
    cfg: &NcfConfig,
) -> (NcfModel, NcfTrainReport) {
    train_observed(train_ds, validation, cfg, &mut NullObserver)
}

/// [`train`] with training telemetry streamed to `obs` (per-epoch loss,
/// pairs/sec, validation HR@10, stop reason — see [`ca_train::History`]).
pub fn train_observed(
    train_ds: &Dataset,
    validation: &[HeldOut],
    cfg: &NcfConfig,
    obs: &mut dyn TrainObserver,
) -> (NcfModel, NcfTrainReport) {
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(0xACE));
    let model = NcfModel::new(train_ds.n_users(), train_ds.n_items(), cfg.clone());

    let mut val_sample: Vec<HeldOut> = validation.to_vec();
    val_sample.shuffle(&mut rng);
    val_sample.truncate(500);

    let mut trainer =
        NcfTrainer { model, seen: train_ds, val_sample, val_seed: cfg.seed.wrapping_add(31337) };
    let outcome = ca_train::fit(&mut trainer, train_ds, &cfg.train_config(), &mut rng, obs);
    let report = NcfTrainReport {
        epochs_run: outcome.epochs_run,
        val_hr10_history: outcome.val_history,
        best_val_hr10: if outcome.best_val.is_finite() { outcome.best_val } else { 0.0 },
    };
    (trainer.model, report)
}

/// Gradient of one BPR triple through both branches, against a frozen
/// model. Regularization is folded in, so applying is a uniform
/// `param -= lr * d`.
pub struct PairGrad {
    mlp: MlpGrad,
    d_pu: Vec<f32>,
    d_qp: Vec<f32>,
    d_qn: Vec<f32>,
    d_w: Vec<f32>,
}

fn pair_grad(model: &NcfModel, u: UserId, pos: ItemId, neg: ItemId) -> (PairGrad, f32) {
    let reg = model.cfg.reg;
    let dim = model.cfg.dim;

    let x_pos = model.fusion_input(u, pos);
    let x_neg = model.fusion_input(u, neg);
    let (out_pos, cache_pos) = model.mlp.forward(&x_pos);
    let (out_neg, cache_neg) = model.mlp.forward(&x_neg);
    let gmf = |v: ItemId| -> f32 {
        let pu = model.p.row(u.idx());
        let qv = model.q.row(v.idx());
        (0..dim).map(|k| model.w_gmf[k] * pu[k] * qv[k]).sum()
    };
    let s_pos = gmf(pos) + out_pos[0];
    let s_neg = gmf(neg) + out_neg[0];
    let g = sigmoid(s_pos - s_neg) - 1.0; // dL/ds⁺, negative

    let mut mlp = model.mlp.zero_grad();
    let gx_pos = model.mlp.backward(&cache_pos, &[g], &mut mlp);
    let gx_neg = model.mlp.backward(&cache_neg, &[-g], &mut mlp);

    let pu = model.p.row(u.idx());
    let qp = model.q.row(pos.idx());
    let qn = model.q.row(neg.idx());
    let mut grad = PairGrad {
        mlp,
        d_pu: Vec::with_capacity(dim),
        d_qp: Vec::with_capacity(dim),
        d_qn: Vec::with_capacity(dim),
        d_w: Vec::with_capacity(dim),
    };
    for k in 0..dim {
        let w = model.w_gmf[k];
        grad.d_pu.push(g * w * (qp[k] - qn[k]) + gx_pos[k] + gx_neg[k] + reg * pu[k]);
        grad.d_qp.push(g * w * pu[k] + gx_pos[dim + k] + reg * qp[k]);
        grad.d_qn.push(-g * w * pu[k] + gx_neg[dim + k] + reg * qn[k]);
        grad.d_w.push(g * pu[k] * (qp[k] - qn[k]));
    }
    let loss = -sigmoid(s_pos - s_neg).ln();
    (grad, loss)
}

/// Block-key layout: user rows at `u`, item rows at `n_users + v`, the GMF
/// fusion weights at `n_users + n_items`, and the MLP layer blocks from
/// `n_users + n_items + 1` (two per layer, in layer order — the same
/// element order as `Mlp::sgd_step`). All blocks a pair touches are
/// disjoint (`pos ≠ neg` by sampling), so block-order application is
/// bitwise identical to the historical interleaved per-`k` loop.
fn apply_grad(
    model: &mut NcfModel,
    u: UserId,
    pos: ItemId,
    neg: ItemId,
    g: &PairGrad,
    step: &mut Step<'_>,
) {
    let n_users = model.p.rows();
    let n_items = model.q.rows();
    step.descend_mlp(n_users + n_items + 1, &mut model.mlp, &g.mlp);
    step.descend(u.idx(), model.p.row_mut(u.idx()), &g.d_pu);
    step.descend(n_users + pos.idx(), model.q.row_mut(pos.idx()), &g.d_qp);
    step.descend(n_users + neg.idx(), model.q.row_mut(neg.idx()), &g.d_qn);
    step.descend(n_users + n_items, &mut model.w_gmf, &g.d_w);
}

/// One BPR-SGD step on `(u, v⁺, v⁻)` through both branches.
pub(crate) fn bpr_step(model: &mut NcfModel, u: UserId, pos: ItemId, neg: ItemId) {
    let lr = model.cfg.lr;
    let reg = model.cfg.reg;
    let dim = model.cfg.dim;

    let x_pos = model.fusion_input(u, pos);
    let x_neg = model.fusion_input(u, neg);
    let (out_pos, cache_pos) = model.mlp.forward(&x_pos);
    let (out_neg, cache_neg) = model.mlp.forward(&x_neg);
    let gmf = |m: &NcfModel, v: ItemId| -> f32 {
        let pu = m.p.row(u.idx());
        let qv = m.q.row(v.idx());
        (0..dim).map(|k| m.w_gmf[k] * pu[k] * qv[k]).sum()
    };
    let s_pos = gmf(model, pos) + out_pos[0];
    let s_neg = gmf(model, neg) + out_neg[0];
    let g = sigmoid(s_pos - s_neg) - 1.0; // dL/ds⁺, negative

    // MLP branch: backward both passes, collect input grads.
    let mut grad = model.mlp.zero_grad();
    let gx_pos = model.mlp.backward(&cache_pos, &[g], &mut grad);
    let gx_neg = model.mlp.backward(&cache_neg, &[-g], &mut grad);
    model.mlp.sgd_step(&grad, lr);

    // Embedding and GMF-weight updates (copy rows first: the rows alias).
    let pu: Vec<f32> = model.p.row(u.idx()).to_vec();
    let qp: Vec<f32> = model.q.row(pos.idx()).to_vec();
    let qn: Vec<f32> = model.q.row(neg.idx()).to_vec();
    for k in 0..dim {
        let w = model.w_gmf[k];
        // dL/dp_u[k]: GMF from both scores + MLP input grads.
        let d_pu = g * w * (qp[k] - qn[k]) + gx_pos[k] + gx_neg[k];
        let d_qp = g * w * pu[k] + gx_pos[dim + k];
        let d_qn = -g * w * pu[k] + gx_neg[dim + k];
        let d_w = g * pu[k] * (qp[k] - qn[k]);
        model.p[(u.idx(), k)] -= lr * (d_pu + reg * pu[k]);
        model.q[(pos.idx(), k)] -= lr * (d_qp + reg * qp[k]);
        model.q[(neg.idx(), k)] -= lr * (d_qn + reg * qn[k]);
        model.w_gmf[k] -= lr * d_w;
    }
}

/// Local fine-tuning of a *single user's* embedding on their interactions
/// (incremental onboarding): `epochs` BPR passes over the user's profile,
/// updating only `p_u` (item embeddings, GMF weights, and the MLP stay
/// frozen — the platform does not retrain globally for one signup).
pub fn fine_tune_user(
    model: &mut NcfModel,
    data: &Dataset,
    user: UserId,
    epochs: usize,
    rng: &mut impl Rng,
) {
    let dim = model.cfg.dim;
    let lr = model.cfg.lr;
    let n_items = data.n_items() as u32;
    let profile = data.profile(user);
    if profile.is_empty() {
        return;
    }
    for _ in 0..epochs {
        for &pos in profile {
            let neg = loop {
                let cand = ItemId(rng.gen_range(0..n_items));
                if cand != pos && !data.contains(user, cand) {
                    break cand;
                }
            };
            let x_pos = model.fusion_input(user, pos);
            let x_neg = model.fusion_input(user, neg);
            let (out_pos, cache_pos) = model.mlp.forward(&x_pos);
            let (out_neg, cache_neg) = model.mlp.forward(&x_neg);
            let pu: Vec<f32> = model.p.row(user.idx()).to_vec();
            let qp = model.q.row(pos.idx());
            let qn = model.q.row(neg.idx());
            let gmf_pos: f32 = (0..dim).map(|k| model.w_gmf[k] * pu[k] * qp[k]).sum();
            let gmf_neg: f32 = (0..dim).map(|k| model.w_gmf[k] * pu[k] * qn[k]).sum();
            let g = sigmoid(gmf_pos + out_pos[0] - gmf_neg - out_neg[0]) - 1.0;
            // Only p_u moves; reuse the MLP backward for its input grads.
            let mut scratch = model.mlp.zero_grad();
            let gx_pos = model.mlp.backward(&cache_pos, &[g], &mut scratch);
            let gx_neg = model.mlp.backward(&cache_neg, &[-g], &mut scratch);
            for k in 0..dim {
                let d_pu = g * model.w_gmf[k] * (qp[k] - qn[k]) + gx_pos[k] + gx_neg[k];
                model.p[(user.idx(), k)] -= lr * d_pu;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_recsys::{split_dataset, DatasetBuilder, Scorer};

    fn polarized(n_per_group: usize) -> Dataset {
        let mut b = DatasetBuilder::new(30);
        for u in 0..2 * n_per_group {
            let base: u32 = if u < n_per_group { 0 } else { 15 };
            let profile: Vec<ItemId> =
                (0..8u32).map(|i| ItemId(base + (u as u32 * 5 + i) % 15)).collect();
            b.user(&profile);
        }
        b.build()
    }

    #[test]
    fn training_beats_random_ranking() {
        let ds = polarized(20);
        let mut rng = StdRng::seed_from_u64(1);
        let split = split_dataset(&ds, 0.1, &mut rng);
        let cfg = NcfConfig { max_epochs: 15, seed: 2, ..Default::default() };
        let (_m, report) = train(&split.train, &split.validation, &cfg);
        assert!(
            report.best_val_hr10 > 0.3,
            "val HR@10 {} (history {:?})",
            report.best_val_hr10,
            report.val_hr10_history
        );
    }

    #[test]
    fn training_is_deterministic() {
        let ds = polarized(8);
        let mut rng = StdRng::seed_from_u64(3);
        let split = split_dataset(&ds, 0.1, &mut rng);
        let cfg = NcfConfig { max_epochs: 3, seed: 4, ..Default::default() };
        let (a, ra) = train(&split.train, &split.validation, &cfg);
        let (b, rb) = train(&split.train, &split.validation, &cfg);
        assert_eq!(ra.val_hr10_history, rb.val_hr10_history);
        assert_eq!(a.p.as_slice(), b.p.as_slice());
    }

    #[test]
    fn telemetry_matches_the_report() {
        let ds = polarized(8);
        let mut rng = StdRng::seed_from_u64(3);
        let split = split_dataset(&ds, 0.1, &mut rng);
        let cfg = NcfConfig { max_epochs: 4, seed: 4, ..Default::default() };
        let mut hist = ca_train::History::new();
        let (_m, report) = train_observed(&split.train, &split.validation, &cfg, &mut hist);
        assert_eq!(hist.epochs.len(), report.epochs_run);
        assert_eq!(hist.val_curve(), report.val_hr10_history);
        assert!(hist.loss_curve().iter().all(|&l| l.is_finite() && l > 0.0));
    }

    #[test]
    fn fine_tune_raises_own_profile_scores() {
        let ds = polarized(20);
        let mut rng = StdRng::seed_from_u64(5);
        let split = split_dataset(&ds, 0.1, &mut rng);
        let cfg = NcfConfig { max_epochs: 10, seed: 6, ..Default::default() };
        let (mut model, _) = train(&split.train, &split.validation, &cfg);

        // Onboard a user and fine-tune their embedding locally.
        let mut data = split.train.clone();
        let profile: Vec<ItemId> = (0..5u32).map(ItemId).collect();
        let uid = data.add_user(&profile);
        let mid = model.onboard_user(&profile);
        assert_eq!(uid, mid);
        // BPR fine-tuning improves the *margin* between profile items and
        // the rest of the catalog (absolute scores may move either way).
        let margin = |m: &NcfModel| {
            let own: f32 =
                profile.iter().map(|&v| m.score(uid, v)).sum::<f32>() / profile.len() as f32;
            let rest: f32 = (5..30u32).map(|v| m.score(uid, ItemId(v))).sum::<f32>() / 25.0;
            own - rest
        };
        // Start the user cold: onboarding warm-starts from the mean item
        // embedding, which already encodes the profile; fine-tuning must
        // recover that signal from scratch.
        for k in 0..model.cfg.dim {
            model.p[(uid.idx(), k)] = 0.0;
        }
        let before = margin(&model);
        fine_tune_user(&mut model, &data, uid, 5, &mut rng);
        let after = margin(&model);
        assert!(after > before, "fine-tune did not improve the margin: {before} -> {after}");
    }
}
