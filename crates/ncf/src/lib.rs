//! NeuMF-style neural collaborative filtering — a *second* target-model
//! family for the attack.
//!
//! The paper's evaluation protocol follows NCF \[13\] (He et al., WWW 2017),
//! and its target model is the inductive PinSage. This crate adds the other
//! archetype of deployed deep recommenders: a **transductive** model with
//! free user/item embeddings (GMF ⊕ MLP fusion) that cannot fold new users
//! in functionally — instead the platform **fine-tunes periodically** on
//! fresh interactions, which is exactly how classical data poisoning
//! reaches such models.
//!
//! Having both families lets the repository ask questions the paper
//! couldn't: does CopyAttack's query-driven selection transfer across
//! model families (`examples/cross_domain_transfer.rs` for ItemKNN,
//! `tests/` for NCF), and how does attack latency differ between fold-in
//! (instant) and retrain-cycle (delayed) platforms?
//!
//! Architecture (NeuMF-lite, single fused embedding table per side):
//!
//! ```text
//! score(u, v) = ⟨w, p_u ⊙ q_v⟩ + MLP([p_u ⊕ q_v])
//! ```
//!
//! trained with BPR; new users are onboarded by initializing their
//! embedding at the mean of their profile items' embeddings and running a
//! few local SGD steps (the "incremental onboarding" every production
//! system has), with injected interactions entering the global fine-tune
//! on the configured cadence.

#![forbid(unsafe_code)]

pub mod model;
pub mod recommender;
pub mod train;

pub use model::{NcfConfig, NcfModel};
pub use recommender::NcfRecommender;
pub use train::{fine_tune_user, train, train_observed, NcfTrainReport};
