//! The cross-domain dataset generator.
//!
//! Two generation paths share one world model:
//!
//! - [`generate`] — the historical serial path: a single RNG stream drives
//!   the whole world. Its output is bitwise-pinned by golden hashes
//!   (`tests/dataplane_golden.rs`) and must never change.
//! - [`generate_streaming`] — the scale path: user profiles are produced in
//!   fixed-size blocks of [`STREAM_CHUNK`] users, each block seeded from
//!   `split_seed(domain_seed, chunk_index)`, fanned out over `ca-par`, and
//!   emitted straight into the flat [`DatasetBuilder`] arenas in chunk
//!   order. The stream is a pure function of the config seed — identical at
//!   any `CA_THREADS` — but it is a *different* stream from [`generate`]'s
//!   (per-chunk seeding necessarily decouples the draws).

use crate::config::CrossDomainConfig;
use crate::latent::{around, sample_centers, zipf_weights, LatentTruth};
use ca_recsys::{Dataset, DatasetBuilder, ItemId};
use ca_tensor::{ops, Matrix};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A generated pair of domains plus the alignment between their catalogs
/// and the ground-truth latent state.
#[derive(Clone, Debug)]
pub struct CrossDomainDataset {
    /// Target domain `A` (the platform being attacked). Item ids
    /// `0..n_target_items`.
    pub target: Dataset,
    /// Source domain `B`. Its catalog is exactly the overlapping items
    /// (the paper keeps only overlapping items in the source domain),
    /// re-indexed `0..n_overlap`.
    pub source: Dataset,
    /// Alignment map: source item id → target item id. This models the
    /// "aligned by movie name (and year)" step of §5.1.1.
    pub source_to_target: Vec<ItemId>,
    /// Reverse alignment: target item id → source item id (None when the
    /// item does not exist in the source domain).
    pub target_to_source: Vec<Option<ItemId>>,
    /// Ground truth used to generate the world.
    pub truth: LatentTruth,
}

/// Table 1-style statistics of a generated dataset.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DatasetStats {
    /// Target-domain users.
    pub target_users: usize,
    /// Target-domain items.
    pub target_items: usize,
    /// Target-domain interactions.
    pub target_interactions: usize,
    /// Source-domain users.
    pub source_users: usize,
    /// Overlapping items.
    pub overlap_items: usize,
    /// Source-domain interactions.
    pub source_interactions: usize,
}

impl CrossDomainDataset {
    /// The overlapping items, in target-domain ids.
    pub fn overlap_items(&self) -> &[ItemId] {
        &self.source_to_target
    }

    /// Translates one source-domain profile into target-domain item ids
    /// (always succeeds: every source item is an overlapping item).
    pub fn translate_profile(&self, profile: &[ItemId]) -> Vec<ItemId> {
        profile.iter().map(|&v| self.source_to_target[v.idx()]).collect()
    }

    /// The source-domain id of a target item, if it overlaps.
    pub fn source_item(&self, target_item: ItemId) -> Option<ItemId> {
        self.target_to_source[target_item.idx()]
    }

    /// Samples `n` attackable cold target items: fewer than
    /// `max_target_pop` target interactions (the paper uses 10), existing
    /// in the source domain with at least `min_source_pop` source users
    /// (CopyAttack needs at least one copyable profile containing the
    /// item).
    pub fn sample_attackable_cold_items(
        &self,
        n: usize,
        max_target_pop: usize,
        min_source_pop: usize,
        rng: &mut impl Rng,
    ) -> Vec<ItemId> {
        let mut cands: Vec<ItemId> = self
            .source_to_target
            .iter()
            .enumerate()
            .filter(|&(s, &t)| {
                self.target.item_popularity(t) < max_target_pop
                    && self.source.item_popularity(ItemId(s as u32)) >= min_source_pop
            })
            .map(|(_, &t)| t)
            .collect();
        cands.shuffle(rng);
        cands.truncate(n);
        cands
    }

    /// Table 1 statistics.
    pub fn stats(&self) -> DatasetStats {
        DatasetStats {
            target_users: self.target.n_users(),
            target_items: self.target.n_items(),
            target_interactions: self.target.n_interactions(),
            source_users: self.source.n_users(),
            overlap_items: self.source.n_items(),
            source_interactions: self.source.n_interactions(),
        }
    }
}

/// Everything about a generated world except the users: latent structure,
/// popularity, and the cross-domain alignment. Shared by the serial and
/// streaming paths.
struct World {
    centers: Matrix,
    item_vecs: Matrix,
    item_cluster: Vec<usize>,
    item_pop: Vec<f32>,
    source_to_target: Vec<ItemId>,
    target_to_source: Vec<Option<ItemId>>,
    /// `0..n_items` — the target sampling catalog.
    full_catalog: Vec<usize>,
    /// Overlap items as target-space indices — the source sampling catalog.
    overlap_catalog: Vec<usize>,
}

/// Draws the world (centers, item vectors, popularity ranks, overlap) from
/// `rng`. The draw order is part of [`generate`]'s bitwise contract.
fn build_world(rng: &mut StdRng, cfg: &CrossDomainConfig) -> World {
    let centers = sample_centers(rng, cfg.n_clusters, cfg.latent_dim);
    let n_items = cfg.n_target_items;
    let mut item_cluster = Vec::with_capacity(n_items);
    let mut item_vecs = Matrix::zeros(n_items, cfg.latent_dim);
    for i in 0..n_items {
        let c = rng.gen_range(0..cfg.n_clusters);
        item_cluster.push(c);
        let v = around(rng, centers.row(c), cfg.item_noise);
        item_vecs.row_mut(i).copy_from_slice(&v);
    }
    // Popularity ranks: a random permutation of 0..n (rank 0 = most popular).
    let mut ranks: Vec<usize> = (0..n_items).collect();
    ranks.shuffle(rng);
    let item_pop = zipf_weights(&ranks, cfg.popularity_alpha);

    // --- Overlap / alignment ------------------------------------------------
    let mut target_ids: Vec<u32> = (0..n_items as u32).collect();
    target_ids.shuffle(rng);
    let mut overlap: Vec<u32> = target_ids[..cfg.n_overlap].to_vec();
    overlap.sort_unstable();
    let source_to_target: Vec<ItemId> = overlap.iter().map(|&t| ItemId(t)).collect();
    let mut target_to_source = vec![None; n_items];
    for (s, &t) in overlap.iter().enumerate() {
        target_to_source[t as usize] = Some(ItemId(s as u32));
    }
    let overlap_catalog: Vec<usize> = overlap.iter().map(|&t| t as usize).collect();

    World {
        centers,
        item_vecs,
        item_cluster,
        item_pop,
        source_to_target,
        target_to_source,
        full_catalog: (0..n_items).collect(),
        overlap_catalog,
    }
}

/// Draws one user: cluster, latent vector, and a profile over `catalog`
/// (target-space indices). The temporal ordering is applied inside
/// [`sample_profile`].
fn sample_user(
    rng: &mut StdRng,
    world: &World,
    dcfg: &crate::config::DomainConfig,
    catalog: &[usize],
    n_clusters: usize,
    user_noise: f32,
    beta: f32,
) -> (usize, Vec<f32>, Vec<usize>) {
    let c = rng.gen_range(0..n_clusters);
    let uvec = around(rng, world.centers.row(c), user_noise);
    let len = sample_len(rng, dcfg);
    let profile = sample_profile(rng, &uvec, catalog, &world.item_pop, &world.item_vecs, beta, len);
    (c, uvec, profile)
}

/// Generates a cross-domain world from the configuration (serial path;
/// bitwise-pinned by golden hashes).
///
/// # Panics
/// Panics if the configuration fails [`CrossDomainConfig::validate`].
pub fn generate(cfg: &CrossDomainConfig) -> CrossDomainDataset {
    cfg.validate().unwrap_or_else(|e| panic!("invalid config: {e}"));
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let world = build_world(&mut rng, cfg);

    // --- Users and profiles -------------------------------------------------
    let mut target_user_vecs = Matrix::zeros(cfg.target.n_users, cfg.latent_dim);
    let mut target_user_cluster = Vec::with_capacity(cfg.target.n_users);
    let mut target_b = DatasetBuilder::new(cfg.n_target_items);
    let mut ids: Vec<ItemId> = Vec::new();
    for u in 0..cfg.target.n_users {
        let (c, uvec, profile) = sample_user(
            &mut rng,
            &world,
            &cfg.target,
            &world.full_catalog,
            cfg.n_clusters,
            cfg.user_noise,
            cfg.affinity_beta,
        );
        ids.clear();
        ids.extend(profile.iter().map(|&i| ItemId(i as u32)));
        target_b.user(&ids);
        target_user_cluster.push(c);
        target_user_vecs.row_mut(u).copy_from_slice(&uvec);
    }

    let mut source_user_vecs = Matrix::zeros(cfg.source.n_users, cfg.latent_dim);
    let mut source_user_cluster = Vec::with_capacity(cfg.source.n_users);
    let mut source_b = DatasetBuilder::new(cfg.n_overlap);
    for u in 0..cfg.source.n_users {
        // Sample in *target* item space over the overlap catalog, then map
        // down to source ids.
        let (c, uvec, profile) = sample_user(
            &mut rng,
            &world,
            &cfg.source,
            &world.overlap_catalog,
            cfg.n_clusters,
            cfg.user_noise,
            cfg.affinity_beta,
        );
        ids.clear();
        ids.extend(
            profile
                .iter()
                .map(|&t| world.target_to_source[t].expect("overlap catalog item must map back")),
        );
        source_b.user(&ids);
        source_user_cluster.push(c);
        source_user_vecs.row_mut(u).copy_from_slice(&uvec);
    }

    assemble(
        cfg,
        world,
        target_b,
        target_user_vecs,
        target_user_cluster,
        source_b,
        source_user_vecs,
        source_user_cluster,
    )
}

/// Fixed user-block size of [`generate_streaming`]. Part of the determinism
/// contract: chunk `i` always covers users `i*STREAM_CHUNK..`, whatever the
/// thread count, so its seed — and therefore the whole dataset — never
/// depends on scheduling.
pub const STREAM_CHUNK: usize = 1024;

/// One generated block of users, in flat arena form ready to append.
struct ChunkOut {
    clusters: Vec<usize>,
    /// `n_chunk_users × dim`, row-major.
    uvecs: Vec<f32>,
    /// Per-user profile runs, back to back.
    items: Vec<ItemId>,
    /// `n_chunk_users + 1` local offsets into `items`.
    offsets: Vec<u32>,
}

/// Generates a cross-domain world with chunk-seeded parallel user
/// generation (see the [module docs](self)).
///
/// The output is deterministic in `cfg.seed` and independent of
/// `CA_THREADS`, but is a different sample than [`generate`] produces for
/// the same seed.
///
/// # Panics
/// Panics if the configuration fails [`CrossDomainConfig::validate`].
pub fn generate_streaming(cfg: &CrossDomainConfig) -> CrossDomainDataset {
    cfg.validate().unwrap_or_else(|e| panic!("invalid config: {e}"));
    // Stream seed layout: child 0 drives the shared world; children 1 / 2
    // are the target / source domain roots, split once more per chunk.
    let mut world_rng = StdRng::seed_from_u64(ca_par::split_seed(cfg.seed, 0));
    let world = build_world(&mut world_rng, cfg);

    let (target_b, target_user_vecs, target_user_cluster) = stream_domain(
        cfg,
        &world,
        &cfg.target,
        ca_par::split_seed(cfg.seed, 1),
        cfg.n_target_items,
        &world.full_catalog,
        |i| ItemId(i as u32),
    );
    let (source_b, source_user_vecs, source_user_cluster) = stream_domain(
        cfg,
        &world,
        &cfg.source,
        ca_par::split_seed(cfg.seed, 2),
        cfg.n_overlap,
        &world.overlap_catalog,
        |t| world.target_to_source[t].expect("overlap catalog item must map back"),
    );

    assemble(
        cfg,
        world,
        target_b,
        target_user_vecs,
        target_user_cluster,
        source_b,
        source_user_vecs,
        source_user_cluster,
    )
}

/// Streams one domain's users: chunks are generated in parallel waves and
/// appended to the builder in chunk order, so transient memory stays
/// bounded by the wave size while the result is order-identical to a
/// serial chunk walk.
fn stream_domain(
    cfg: &CrossDomainConfig,
    world: &World,
    dcfg: &crate::config::DomainConfig,
    domain_seed: u64,
    n_items: usize,
    catalog: &[usize],
    to_domain_id: impl Fn(usize) -> ItemId + Sync,
) -> (DatasetBuilder, Matrix, Vec<usize>) {
    let n_users = dcfg.n_users;
    let n_chunks = n_users.div_ceil(STREAM_CHUNK);
    let mut builder = DatasetBuilder::new(n_items);
    builder.reserve(n_users * dcfg.profile_len_mean as usize);
    let mut user_vecs = Matrix::zeros(n_users, cfg.latent_dim);
    let mut clusters = Vec::with_capacity(n_users);

    let gen_chunk = |ci: usize| -> ChunkOut {
        let lo = ci * STREAM_CHUNK;
        let hi = (lo + STREAM_CHUNK).min(n_users);
        let mut rng = StdRng::seed_from_u64(ca_par::split_seed(domain_seed, ci as u64));
        let mut out = ChunkOut {
            clusters: Vec::with_capacity(hi - lo),
            uvecs: Vec::with_capacity((hi - lo) * cfg.latent_dim),
            items: Vec::new(),
            offsets: vec![0],
        };
        for _ in lo..hi {
            let (c, uvec, profile) = sample_user(
                &mut rng,
                world,
                dcfg,
                catalog,
                cfg.n_clusters,
                cfg.user_noise,
                cfg.affinity_beta,
            );
            out.clusters.push(c);
            out.uvecs.extend_from_slice(&uvec);
            out.items.extend(profile.iter().map(|&i| to_domain_id(i)));
            out.offsets.push(out.items.len() as u32);
        }
        out
    };

    // Wave size bounds in-flight chunk buffers without affecting the
    // output: chunk content depends only on the chunk index.
    let wave = (ca_par::threads() * 4).max(1);
    let chunk_ids: Vec<usize> = (0..n_chunks).collect();
    for wave_ids in chunk_ids.chunks(wave) {
        for out in ca_par::map(wave_ids, |_, &ci| gen_chunk(ci)) {
            for w in out.offsets.windows(2) {
                builder.user(&out.items[w[0] as usize..w[1] as usize]);
            }
            let row0 = clusters.len();
            user_vecs.row_range_mut(row0, row0 + out.clusters.len()).copy_from_slice(&out.uvecs);
            clusters.extend_from_slice(&out.clusters);
        }
    }
    (builder, user_vecs, clusters)
}

/// Finalizes both domains into a [`CrossDomainDataset`].
#[allow(clippy::too_many_arguments)]
fn assemble(
    cfg: &CrossDomainConfig,
    world: World,
    target_b: DatasetBuilder,
    target_user_vecs: Matrix,
    target_user_cluster: Vec<usize>,
    source_b: DatasetBuilder,
    source_user_vecs: Matrix,
    source_user_cluster: Vec<usize>,
) -> CrossDomainDataset {
    let truth = LatentTruth {
        dim: cfg.latent_dim,
        centers: world.centers,
        item_vecs: world.item_vecs,
        item_cluster: world.item_cluster,
        item_pop: world.item_pop,
        target_user_vecs,
        target_user_cluster,
        source_user_vecs,
        source_user_cluster,
    };
    let target = target_b.build();
    let source = source_b.build();
    debug_assert!(target.check_consistency().is_ok());
    debug_assert!(source.check_consistency().is_ok());
    CrossDomainDataset {
        target,
        source,
        source_to_target: world.source_to_target,
        target_to_source: world.target_to_source,
        truth,
    }
}

/// Samples a profile length: `mean · exp(N(0, 0.5²))`, clamped.
fn sample_len(rng: &mut impl Rng, d: &crate::config::DomainConfig) -> usize {
    let z = ca_tensor::gaussian(rng, 0.0, 0.5);
    let len = (d.profile_len_mean * z.exp()).round() as usize;
    len.clamp(d.profile_len_min, d.profile_len_max)
}

/// Samples `len` distinct items from `catalog` (item indices in target
/// space) with probability ∝ `pop[i] · exp(beta · ⟨uvec, item_vecs[i]⟩)`,
/// then orders them into a temporally coherent sequence.
fn sample_profile(
    rng: &mut impl Rng,
    uvec: &[f32],
    catalog: &[usize],
    pop: &[f32],
    item_vecs: &Matrix,
    beta: f32,
    len: usize,
) -> Vec<usize> {
    debug_assert!(len <= catalog.len());
    // Build the cumulative distribution once; rejection-sample duplicates.
    let mut cdf = Vec::with_capacity(catalog.len());
    let mut acc = 0.0f64;
    for &i in catalog {
        let w = pop[i] as f64 * (beta * ops::dot(uvec, item_vecs.row(i))).exp() as f64;
        acc += w;
        cdf.push(acc);
    }
    let total = acc;
    let mut chosen: Vec<usize> = Vec::with_capacity(len);
    let mut taken = vec![false; catalog.len()];
    let mut guard = 0u32;
    while chosen.len() < len {
        let u: f64 = rng.gen::<f64>() * total;
        let pos = cdf.partition_point(|&c| c < u).min(catalog.len() - 1);
        if !taken[pos] {
            taken[pos] = true;
            chosen.push(catalog[pos]);
        }
        guard += 1;
        if guard > 200_000 {
            // Pathological mass concentration; fill deterministically.
            for (p, t) in taken.iter_mut().enumerate() {
                if chosen.len() >= len {
                    break;
                }
                if !*t {
                    *t = true;
                    chosen.push(catalog[p]);
                }
            }
        }
    }
    order_chain(rng, chosen, item_vecs)
}

/// Greedy similarity chain with Gumbel noise: produces an ordering where
/// consecutive items tend to be similar — the "temporal relations of items
/// interacted around the same time" that profile crafting relies on.
fn order_chain(rng: &mut impl Rng, mut items: Vec<usize>, item_vecs: &Matrix) -> Vec<usize> {
    if items.len() <= 2 {
        return items;
    }
    const TAU: f32 = 0.15;
    let start = rng.gen_range(0..items.len());
    let mut ordered = Vec::with_capacity(items.len());
    ordered.push(items.swap_remove(start));
    while !items.is_empty() {
        let prev = *ordered.last().expect("non-empty");
        let mut best = 0;
        let mut best_score = f32::NEG_INFINITY;
        for (j, &cand) in items.iter().enumerate() {
            let u: f32 = rng.gen::<f32>().max(1e-9);
            let gumbel = -(-u.ln()).ln() * TAU;
            let s = ops::dot(item_vecs.row(prev), item_vecs.row(cand)) + gumbel;
            if s > best_score {
                best_score = s;
                best = j;
            }
        }
        ordered.push(items.swap_remove(best));
    }
    ordered
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CrossDomainConfig;
    use ca_recsys::UserId;

    #[test]
    fn tiny_world_has_configured_shape() {
        let cfg = CrossDomainConfig::tiny(42);
        let world = generate(&cfg);
        let s = world.stats();
        assert_eq!(s.target_users, cfg.target.n_users);
        assert_eq!(s.target_items, cfg.n_target_items);
        assert_eq!(s.source_users, cfg.source.n_users);
        assert_eq!(s.overlap_items, cfg.n_overlap);
        assert!(s.target_interactions > 0);
        assert!(s.source_interactions > s.target_interactions);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = CrossDomainConfig::tiny(7);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.stats(), b.stats());
        for u in a.target.users() {
            assert_eq!(a.target.profile(u), b.target.profile(u));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&CrossDomainConfig::tiny(1));
        let b = generate(&CrossDomainConfig::tiny(2));
        let same = a.target.users().take(20).all(|u| a.target.profile(u) == b.target.profile(u));
        assert!(!same);
    }

    #[test]
    fn alignment_maps_are_mutually_inverse() {
        let world = generate(&CrossDomainConfig::tiny(3));
        for (s, &t) in world.source_to_target.iter().enumerate() {
            assert_eq!(world.target_to_source[t.idx()], Some(ItemId(s as u32)));
        }
        let n_mapped = world.target_to_source.iter().filter(|x| x.is_some()).count();
        assert_eq!(n_mapped, world.source_to_target.len());
    }

    #[test]
    fn translated_profiles_use_valid_target_ids() {
        let world = generate(&CrossDomainConfig::tiny(4));
        for u in world.source.users().take(50) {
            let t = world.translate_profile(world.source.profile(u));
            for v in t {
                assert!(v.idx() < world.target.n_items());
                assert!(world.target_to_source[v.idx()].is_some());
            }
        }
    }

    #[test]
    fn profiles_have_no_duplicates() {
        let world = generate(&CrossDomainConfig::tiny(5));
        for u in world.target.users() {
            let p = world.target.profile(u);
            let mut sorted: Vec<_> = p.to_vec();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), p.len(), "duplicate items in profile of {u}");
        }
    }

    #[test]
    fn popularity_is_skewed() {
        let world = generate(&CrossDomainConfig::tiny(6));
        let mut pops: Vec<usize> =
            world.target.items().map(|v| world.target.item_popularity(v)).collect();
        pops.sort_unstable_by(|a, b| b.cmp(a));
        // Head (top 10%) should hold disproportionately more interactions
        // than the tail (bottom 10%).
        let n = pops.len();
        let head: usize = pops[..n / 10].iter().sum();
        let tail: usize = pops[n - n / 10..].iter().sum();
        assert!(head > 3 * tail, "head {head} vs tail {tail}");
    }

    #[test]
    fn users_prefer_their_clusters_items() {
        let world = generate(&CrossDomainConfig::tiny(8));
        // On average, the affinity between a user and their profile items
        // should exceed the affinity to random items.
        let truth = &world.truth;
        let mut own = 0.0;
        let mut own_n = 0;
        let mut all = 0.0;
        let mut all_n = 0;
        for u in 0..50usize {
            let uvec = truth.target_user_vec(u);
            for &v in world.target.profile(UserId(u as u32)) {
                own += truth.affinity(uvec, v.idx());
                own_n += 1;
            }
            for v in 0..world.target.n_items() {
                all += truth.affinity(uvec, v);
                all_n += 1;
            }
        }
        let own_mean = own / own_n as f32;
        let all_mean = all / all_n as f32;
        assert!(own_mean > all_mean + 0.1, "own {own_mean} vs all {all_mean}");
    }

    #[test]
    fn consecutive_profile_items_are_more_similar_than_random_pairs() {
        let world = generate(&CrossDomainConfig::tiny(9));
        let truth = &world.truth;
        let mut adj = 0.0;
        let mut adj_n = 0;
        let mut far = 0.0;
        let mut far_n = 0;
        for u in 0..50u32 {
            let p = world.target.profile(UserId(u));
            for w in p.windows(2) {
                adj += ops::dot(truth.item_vec(w[0].idx()), truth.item_vec(w[1].idx()));
                adj_n += 1;
            }
            if p.len() >= 4 {
                far += ops::dot(truth.item_vec(p[0].idx()), truth.item_vec(p[p.len() - 1].idx()));
                far_n += 1;
            }
        }
        let adj_mean = adj / adj_n as f32;
        let far_mean = far / far_n.max(1) as f32;
        assert!(
            adj_mean > far_mean,
            "adjacent similarity {adj_mean} should exceed endpoints {far_mean}"
        );
    }

    #[test]
    fn attackable_cold_items_satisfy_constraints() {
        let world = generate(&CrossDomainConfig::small(10));
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let items = world.sample_attackable_cold_items(20, 10, 2, &mut rng);
        assert!(!items.is_empty(), "small preset must contain cold overlap items");
        for v in items {
            assert!(world.target.item_popularity(v) < 10);
            let s = world.source_item(v).expect("must overlap");
            assert!(world.source.item_popularity(s) >= 2);
        }
    }

    #[test]
    fn streaming_world_has_configured_shape() {
        let cfg = CrossDomainConfig::tiny(42);
        let world = generate_streaming(&cfg);
        let s = world.stats();
        assert_eq!(s.target_users, cfg.target.n_users);
        assert_eq!(s.target_items, cfg.n_target_items);
        assert_eq!(s.source_users, cfg.source.n_users);
        assert_eq!(s.overlap_items, cfg.n_overlap);
        assert!(s.target_interactions > 0);
        assert!(world.target.check_consistency().is_ok());
        assert!(world.source.check_consistency().is_ok());
        assert_eq!(world.truth.target_user_cluster.len(), cfg.target.n_users);
        assert_eq!(world.truth.target_user_vecs.rows(), cfg.target.n_users);
    }

    #[test]
    fn streaming_is_thread_count_invariant() {
        // The whole point of chunk seeding: CA_THREADS must not leak into
        // the sample. tiny() has n_users < STREAM_CHUNK for the target and
        // > 1 chunk for nothing — so also widen a preset past one chunk.
        let mut cfg = CrossDomainConfig::tiny(13);
        cfg.target.n_users = STREAM_CHUNK + 257; // straddle a chunk boundary
        let run = |t: usize| {
            ca_par::set_threads(Some(t));
            let w = generate_streaming(&cfg);
            ca_par::set_threads(None);
            w
        };
        let a = run(1);
        let b = run(4);
        assert_eq!(a.stats(), b.stats());
        for u in a.target.users() {
            assert_eq!(a.target.profile(u), b.target.profile(u), "profile of {u} diverged");
        }
        for u in a.source.users() {
            assert_eq!(a.source.profile(u), b.source.profile(u));
        }
        assert_eq!(a.truth.target_user_cluster, b.truth.target_user_cluster);
        assert_eq!(
            a.truth.target_user_vecs.as_slice(),
            b.truth.target_user_vecs.as_slice(),
            "user vectors diverged across thread counts"
        );
    }

    #[test]
    fn streaming_shares_the_world_but_not_the_user_stream() {
        // Same latent world family (both draw a valid alignment), but the
        // user sample is a different stream than the serial path's.
        let cfg = CrossDomainConfig::tiny(21);
        let serial = generate(&cfg);
        let streamed = generate_streaming(&cfg);
        assert_eq!(serial.target.n_users(), streamed.target.n_users());
        let differs = serial
            .target
            .users()
            .take(50)
            .any(|u| serial.target.profile(u) != streamed.target.profile(u));
        assert!(differs, "streaming must be a distinct (chunk-seeded) sample");
    }
}
