//! Ground-truth latent factor model behind the synthetic data.
//!
//! This is the "world model" the generator samples from; it is kept in the
//! output so tests and analyses can compare learned structure (MF
//! embeddings, k-means clusters) against the truth.
//!
//! All vector families live in flat row-major [`Matrix`] storage — one
//! allocation per family instead of one per vector — matching the compact
//! CSR data plane of `ca-recsys`. Row accessors ([`LatentTruth::item_vec`]
//! and friends) hand out `&[f32]` slices.

use ca_tensor::init::gaussian_vec;
use ca_tensor::{ops, Matrix};
use rand::Rng;

/// Ground-truth latent state for one generated cross-domain world.
#[derive(Clone, Debug)]
pub struct LatentTruth {
    /// Latent dimensionality.
    pub dim: usize,
    /// Cluster centers, `n_clusters × dim`, unit rows.
    pub centers: Matrix,
    /// Item latent vectors (unit rows), indexed by *target* item id.
    /// Overlapping items share these vectors across domains.
    pub item_vecs: Matrix,
    /// Item cluster assignment.
    pub item_cluster: Vec<usize>,
    /// Zipf popularity weight per item (sums to 1).
    pub item_pop: Vec<f32>,
    /// Target-domain user vectors (unit rows).
    pub target_user_vecs: Matrix,
    /// Target-domain user cluster assignment.
    pub target_user_cluster: Vec<usize>,
    /// Source-domain user vectors (unit rows).
    pub source_user_vecs: Matrix,
    /// Source-domain user cluster assignment.
    pub source_user_cluster: Vec<usize>,
}

/// Normalizes `v` to unit length in place (no-op for the zero vector).
pub fn normalize(v: &mut [f32]) {
    let n = ops::l2_norm(v);
    if n > 0.0 {
        ops::scale(v, 1.0 / n);
    }
}

/// Samples a unit vector near `center`: `center + N(0, noise²)` normalized.
pub fn around(rng: &mut impl Rng, center: &[f32], noise: f32) -> Vec<f32> {
    let mut v: Vec<f32> = center.to_vec();
    let jitter = gaussian_vec(rng, center.len(), 0.0, noise);
    ops::axpy(1.0, &jitter, &mut v);
    normalize(&mut v);
    v
}

/// Samples `n` unit cluster centers as the rows of an `n × dim` matrix.
pub fn sample_centers(rng: &mut impl Rng, n: usize, dim: usize) -> Matrix {
    let mut m = Matrix::zeros(n, dim);
    for r in 0..n {
        let mut c = gaussian_vec(rng, dim, 0.0, 1.0);
        normalize(&mut c);
        m.row_mut(r).copy_from_slice(&c);
    }
    m
}

/// Zipf weights: weight of the item with popularity rank `r` (0-based) is
/// `(r + 1)^-alpha`, normalized to sum to 1. `ranks[i]` gives item `i`'s
/// rank.
pub fn zipf_weights(ranks: &[usize], alpha: f32) -> Vec<f32> {
    let mut w: Vec<f32> = ranks.iter().map(|&r| ((r + 1) as f32).powf(-alpha)).collect();
    let sum: f32 = w.iter().sum();
    ops::scale(&mut w, 1.0 / sum);
    w
}

impl LatentTruth {
    /// Cluster center `c`.
    pub fn center(&self, c: usize) -> &[f32] {
        self.centers.row(c)
    }

    /// Latent vector of item `v` (target-domain id).
    pub fn item_vec(&self, v: usize) -> &[f32] {
        self.item_vecs.row(v)
    }

    /// Latent vector of target-domain user `u`.
    pub fn target_user_vec(&self, u: usize) -> &[f32] {
        self.target_user_vecs.row(u)
    }

    /// Latent vector of source-domain user `u`.
    pub fn source_user_vec(&self, u: usize) -> &[f32] {
        self.source_user_vecs.row(u)
    }

    /// Number of items in the world.
    pub fn n_items(&self) -> usize {
        self.item_vecs.rows()
    }

    /// Ground-truth affinity between a user vector and item `v`
    /// (cosine, since all vectors are unit length).
    pub fn affinity(&self, user_vec: &[f32], item: usize) -> f32 {
        ops::dot(user_vec, self.item_vec(item))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normalize_produces_unit_vectors() {
        let mut v = vec![3.0, 4.0];
        normalize(&mut v);
        assert!((ops::l2_norm(&v) - 1.0).abs() < 1e-6);
        let mut z = vec![0.0, 0.0];
        normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn around_stays_near_center_for_small_noise() {
        let mut rng = StdRng::seed_from_u64(5);
        let center = {
            let mut c = vec![1.0, 0.0, 0.0, 0.0];
            normalize(&mut c);
            c
        };
        let v = around(&mut rng, &center, 0.1);
        assert!(ops::dot(&v, &center) > 0.9, "cos = {}", ops::dot(&v, &center));
    }

    #[test]
    fn zipf_weights_sum_to_one_and_decay() {
        let ranks: Vec<usize> = (0..100).collect();
        let w = zipf_weights(&ranks, 1.0);
        let sum: f32 = w.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(w[0] > w[10] && w[10] > w[99]);
        // Head heaviness: rank-0 weight is ~ 1/H(100) ≈ 0.19 for alpha=1.
        assert!(w[0] > 0.1);
    }

    #[test]
    fn centers_are_unit_length() {
        let mut rng = StdRng::seed_from_u64(9);
        let centers = sample_centers(&mut rng, 6, 8);
        for r in 0..centers.rows() {
            assert!((ops::l2_norm(centers.row(r)) - 1.0).abs() < 1e-5);
        }
    }
}
