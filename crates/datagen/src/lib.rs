//! Synthetic cross-domain dataset generator.
//!
//! The paper evaluates on MovieLens-10M + Flixster and MovieLens-20M +
//! Netflix. Those corpora are licensed/retired downloads, so this crate
//! substitutes a *seeded synthetic generator* that reproduces every property
//! the attack actually consumes (see DESIGN.md §2):
//!
//! 1. **Shared latent structure across domains** — overlapping items keep
//!    the *same* ground-truth latent vector in both domains, so source-user
//!    behaviour is genuinely informative about target-domain preferences
//!    (the premise of cross-domain attacks).
//! 2. **Cluster structure among users** — user preference vectors are drawn
//!    around a small number of cluster centers, giving the hierarchical
//!    clustering tree something real to find.
//! 3. **Power-law item popularity** — a Zipf weight over items produces the
//!    head/tail skew behind the Figure 4 popularity analysis and the
//!    "< 10 interactions" cold target items.
//! 4. **Temporally coherent sequences** — profiles are ordered by a greedy
//!    similarity chain, so the paper's window-around-the-target-item
//!    crafting operation (§4.4) has meaningful context to keep.
//!
//! Presets mirror the *shape* of Table 1 at ~1/20 scale.

#![forbid(unsafe_code)]

pub mod config;
pub mod generator;
pub mod latent;
pub mod organic;

pub use config::{CrossDomainConfig, DomainConfig};
pub use generator::{generate, generate_streaming, CrossDomainDataset, STREAM_CHUNK};
pub use latent::LatentTruth;
pub use organic::{OrganicEvent, OrganicSampler};
