//! Generator configuration and Table 1 presets.

/// Per-domain knobs.
#[derive(Clone, Debug)]
pub struct DomainConfig {
    /// Number of users in the domain.
    pub n_users: usize,
    /// Mean profile length (log-normal-ish distribution around this).
    pub profile_len_mean: f32,
    /// Minimum profile length.
    pub profile_len_min: usize,
    /// Maximum profile length.
    pub profile_len_max: usize,
}

/// Full cross-domain generator configuration.
#[derive(Clone, Debug)]
pub struct CrossDomainConfig {
    /// Ground-truth latent dimensionality.
    pub latent_dim: usize,
    /// Number of user/item preference clusters.
    pub n_clusters: usize,
    /// Target-domain catalog size.
    pub n_target_items: usize,
    /// Number of overlapping items (the source catalog: the paper keeps
    /// only the overlapping items in the source domain, §5.1.1).
    pub n_overlap: usize,
    /// Target-domain users.
    pub target: DomainConfig,
    /// Source-domain users.
    pub source: DomainConfig,
    /// Zipf exponent for item popularity (larger = heavier head).
    pub popularity_alpha: f32,
    /// Inverse temperature on user–item cosine affinity; larger = users
    /// stick more tightly to their cluster's items.
    pub affinity_beta: f32,
    /// Std of user-around-cluster-center noise.
    pub user_noise: f32,
    /// Std of item-around-cluster-center noise.
    pub item_noise: f32,
    /// Master seed; everything downstream derives from it.
    pub seed: u64,
}

impl CrossDomainConfig {
    /// Miniature preset for unit tests, examples, and doc tests. Runs in
    /// milliseconds even in debug builds.
    pub fn tiny(seed: u64) -> Self {
        Self {
            latent_dim: 8,
            n_clusters: 4,
            n_target_items: 60,
            n_overlap: 40,
            target: DomainConfig {
                n_users: 120,
                profile_len_mean: 8.0,
                profile_len_min: 3,
                profile_len_max: 20,
            },
            source: DomainConfig {
                n_users: 300,
                profile_len_mean: 10.0,
                profile_len_min: 3,
                profile_len_max: 25,
            },
            popularity_alpha: 0.9,
            affinity_beta: 3.0,
            user_noise: 0.4,
            item_noise: 0.6,
            seed,
        }
    }

    /// Small-but-meaningful preset for fast experiments (a few seconds per
    /// attack run in release mode).
    pub fn small(seed: u64) -> Self {
        Self {
            latent_dim: 8,
            n_clusters: 6,
            n_target_items: 250,
            n_overlap: 180,
            target: DomainConfig {
                n_users: 500,
                profile_len_mean: 14.0,
                profile_len_min: 4,
                profile_len_max: 40,
            },
            source: DomainConfig {
                n_users: 1500,
                profile_len_mean: 20.0,
                profile_len_min: 4,
                profile_len_max: 60,
            },
            popularity_alpha: 0.9,
            affinity_beta: 3.0,
            user_noise: 0.4,
            item_noise: 0.6,
            seed,
        }
    }

    /// ML10M-as-target / Flixster-as-source shaped preset at reduced scale.
    ///
    /// Paper (Table 1): target 19,267 users / 6,984 items / 437,746
    /// interactions; source 93,702 users / 5,815 overlapping items /
    /// 4,680,700 interactions. We keep the ratios (source ≈ 3× target
    /// users; overlap ≈ 83% of target catalog; source profiles ≈ 2× longer)
    /// at roughly 1/10 user scale and 1/10 catalog scale.
    pub fn ml10m_fx_like(seed: u64) -> Self {
        Self {
            latent_dim: 8,
            n_clusters: 8,
            n_target_items: 700,
            n_overlap: 580,
            target: DomainConfig {
                n_users: 1900,
                profile_len_mean: 22.0,
                profile_len_min: 5,
                profile_len_max: 80,
            },
            source: DomainConfig {
                n_users: 6000,
                profile_len_mean: 40.0,
                profile_len_min: 5,
                profile_len_max: 150,
            },
            popularity_alpha: 1.4,
            affinity_beta: 3.0,
            user_noise: 0.4,
            item_noise: 0.6,
            seed,
        }
    }

    /// ML20M-as-target / Netflix-as-source shaped preset at reduced scale.
    ///
    /// Paper (Table 1): target 38,087 users / 8,325 items / 838,491
    /// interactions; source 478,471 users / 5,193 overlapping items /
    /// 62,937,958 interactions. The defining features kept here: a much
    /// larger source-user pool (≈ 6× the target users vs ≈ 3× for
    /// ML10M-FX), a smaller overlap fraction, and much longer source
    /// profiles. Source profile length is capped at 50 (paper's Netflix
    /// average is 132) purely for runtime; the attack consumes windows of
    /// ≤ profile length either way.
    pub fn ml20m_nf_like(seed: u64) -> Self {
        Self {
            latent_dim: 8,
            n_clusters: 8,
            n_target_items: 830,
            n_overlap: 520,
            target: DomainConfig {
                n_users: 1900,
                profile_len_mean: 22.0,
                profile_len_min: 5,
                profile_len_max: 80,
            },
            source: DomainConfig {
                n_users: 12000,
                profile_len_mean: 50.0,
                profile_len_min: 5,
                profile_len_max: 150,
            },
            popularity_alpha: 1.4,
            affinity_beta: 3.0,
            user_noise: 0.4,
            item_noise: 0.6,
            seed,
        }
    }

    /// Sanity-checks the configuration, returning a description of the
    /// first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.latent_dim == 0 {
            return Err("latent_dim must be positive".into());
        }
        if self.n_clusters == 0 {
            return Err("n_clusters must be positive".into());
        }
        if self.n_overlap == 0 || self.n_overlap > self.n_target_items {
            return Err(format!(
                "n_overlap {} must be in 1..={}",
                self.n_overlap, self.n_target_items
            ));
        }
        for (name, d) in [("target", &self.target), ("source", &self.source)] {
            if d.n_users == 0 {
                return Err(format!("{name}: n_users must be positive"));
            }
            if d.profile_len_min == 0 || d.profile_len_min > d.profile_len_max {
                return Err(format!("{name}: bad profile length bounds"));
            }
            if (d.profile_len_mean as usize) < d.profile_len_min {
                return Err(format!("{name}: mean below min length"));
            }
        }
        // Profiles sample items without replacement, so the catalog each
        // domain draws from must be large enough.
        if self.source.profile_len_max > self.n_overlap {
            return Err("source profile_len_max exceeds overlap catalog".into());
        }
        if self.target.profile_len_max > self.n_target_items {
            return Err("target profile_len_max exceeds catalog".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for cfg in [
            CrossDomainConfig::tiny(1),
            CrossDomainConfig::small(1),
            CrossDomainConfig::ml10m_fx_like(1),
            CrossDomainConfig::ml20m_nf_like(1),
        ] {
            assert!(cfg.validate().is_ok(), "{cfg:?}");
        }
    }

    #[test]
    fn ml20m_preset_has_larger_source_pool_ratio() {
        let a = CrossDomainConfig::ml10m_fx_like(1);
        let b = CrossDomainConfig::ml20m_nf_like(1);
        let ra = a.source.n_users as f32 / a.target.n_users as f32;
        let rb = b.source.n_users as f32 / b.target.n_users as f32;
        assert!(rb > ra, "NF preset must have the bigger source pool");
    }

    #[test]
    fn validation_catches_bad_overlap() {
        let mut cfg = CrossDomainConfig::tiny(0);
        cfg.n_overlap = cfg.n_target_items + 1;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_catches_profile_longer_than_catalog() {
        let mut cfg = CrossDomainConfig::tiny(0);
        cfg.source.profile_len_max = cfg.n_overlap + 5;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_catches_zero_users() {
        let mut cfg = CrossDomainConfig::tiny(0);
        cfg.target.n_users = 0;
        assert!(cfg.validate().is_err());
    }
}
