//! Organic traffic drawn from the generator's latent ground truth.
//!
//! A live platform is never quiescent: real users keep querying and
//! interacting while an attack campaign runs, and the platform's periodic
//! retrains drift on whatever those interactions were. This module samples
//! that background traffic *from the same latent world model the data came
//! from* ([`LatentTruth`]), so organic interactions are distributionally
//! consistent with the profiles the platform was trained on: item choice
//! follows `pop(v) · exp(β·⟨center_c, q_v⟩)` for the user's ground-truth
//! cluster `c`, exactly the affinity model behind profile generation.
//!
//! Determinism: all draws come from a caller-owned
//! [`SplitMix64`], and the sampler itself is
//! immutable after construction — the event stream is a pure function of
//! `(truth, β, seed)`, independent of platform state, shard count, or
//! thread count. That is what lets `ca-serve` replay a workload bit for
//! bit.

use crate::latent::LatentTruth;
use ca_recsys::{ItemId, SplitMix64, UserId};
use ca_tensor::ops;

/// One organic event hitting the live platform.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OrganicEvent {
    /// An organic user asks for a recommendation list.
    Query {
        /// The platform-side id of the querying user.
        user: UserId,
    },
    /// An organic user interacts with an item; the platform appends it to
    /// the user's profile and the next retrain drifts on it.
    Interaction {
        /// The platform-side id of the interacting user.
        user: UserId,
        /// The item interacted with.
        item: ItemId,
    },
}

impl OrganicEvent {
    /// The user behind the event.
    pub fn user(&self) -> UserId {
        match *self {
            OrganicEvent::Query { user } | OrganicEvent::Interaction { user, .. } => user,
        }
    }
}

/// Seeded sampler of organic queries and interactions over a generated
/// world's latent truth.
#[derive(Clone, Debug)]
pub struct OrganicSampler {
    /// Per-cluster CDFs over the catalog, flattened row-major
    /// (`n_clusters × n_items`): `pop(v) · exp(β·⟨center_c, q_v⟩)`,
    /// cumulated and normalized to end at 1.
    cluster_cdf: Vec<f64>,
    /// Catalog size — the row stride of `cluster_cdf`.
    n_items: usize,
    /// Ground-truth cluster of each target-domain user.
    user_cluster: Vec<usize>,
}

impl OrganicSampler {
    /// Builds the sampler from a world's ground truth. `beta` is the
    /// affinity sharpness (the generator's `affinity_beta` reproduces the
    /// training distribution).
    pub fn from_truth(truth: &LatentTruth, beta: f32) -> Self {
        let n_items = truth.n_items();
        let n_clusters = truth.centers.rows();
        let mut cluster_cdf = Vec::with_capacity(n_clusters * n_items);
        for c in 0..n_clusters {
            let center = truth.center(c);
            let row0 = cluster_cdf.len();
            let mut acc = 0.0f64;
            for (v, &pop) in truth.item_pop.iter().enumerate() {
                acc += f64::from(pop) * f64::from(beta * ops::dot(center, truth.item_vec(v))).exp();
                cluster_cdf.push(acc);
            }
            if acc > 0.0 {
                for x in &mut cluster_cdf[row0..] {
                    *x /= acc;
                }
            }
        }
        Self { cluster_cdf, n_items, user_cluster: truth.target_user_cluster.clone() }
    }

    /// Number of organic (target-domain) users the sampler draws from.
    pub fn n_users(&self) -> usize {
        self.user_cluster.len()
    }

    /// Samples one organic user, uniformly.
    pub fn sample_user(&self, rng: &mut SplitMix64) -> UserId {
        UserId((rng.next_u64() % self.user_cluster.len() as u64) as u32)
    }

    /// Samples an item for `user` from their cluster's affinity-weighted
    /// popularity distribution.
    pub fn sample_item(&self, user: UserId, rng: &mut SplitMix64) -> ItemId {
        let c = self.user_cluster[user.idx()];
        let cdf = &self.cluster_cdf[c * self.n_items..(c + 1) * self.n_items];
        let u = rng.unit_f64();
        let v = cdf.partition_point(|&x| x < u).min(cdf.len() - 1);
        ItemId(v as u32)
    }

    /// Samples one organic event: a query with probability `query_fraction`,
    /// otherwise an interaction. Draw order is fixed (user, kind, item), so
    /// the stream is reproducible from the rng seed alone.
    pub fn sample_event(&self, query_fraction: f64, rng: &mut SplitMix64) -> OrganicEvent {
        let user = self.sample_user(rng);
        if rng.unit_f64() < query_fraction {
            OrganicEvent::Query { user }
        } else {
            OrganicEvent::Interaction { user, item: self.sample_item(user, rng) }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CrossDomainConfig;
    use crate::generator::generate;

    fn sampler() -> (OrganicSampler, usize) {
        let cfg = CrossDomainConfig::tiny(11);
        let world = generate(&cfg);
        (OrganicSampler::from_truth(&world.truth, cfg.affinity_beta), cfg.n_target_items)
    }

    #[test]
    fn event_stream_is_seed_deterministic() {
        let (s, _) = sampler();
        let draw = |seed| {
            let mut rng = SplitMix64::new(seed);
            (0..200).map(|_| s.sample_event(0.7, &mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(5), draw(5));
        assert_ne!(draw(5), draw(6), "different seeds must differ somewhere");
    }

    #[test]
    fn events_stay_inside_the_world() {
        let (s, n_items) = sampler();
        let mut rng = SplitMix64::new(3);
        let mut queries = 0;
        for _ in 0..500 {
            match s.sample_event(0.5, &mut rng) {
                OrganicEvent::Query { user } => {
                    queries += 1;
                    assert!(user.idx() < s.n_users());
                }
                OrganicEvent::Interaction { user, item } => {
                    assert!(user.idx() < s.n_users());
                    assert!(item.idx() < n_items);
                }
            }
        }
        assert!(queries > 150 && queries < 350, "query fraction drifted: {queries}/500");
    }

    #[test]
    fn query_fraction_extremes_are_pure() {
        let (s, _) = sampler();
        let mut rng = SplitMix64::new(9);
        for _ in 0..50 {
            assert!(matches!(s.sample_event(1.0, &mut rng), OrganicEvent::Query { .. }));
            assert!(matches!(s.sample_event(0.0, &mut rng), OrganicEvent::Interaction { .. }));
        }
    }

    #[test]
    fn item_choice_is_affinity_weighted() {
        // With a sharp beta, a user's samples should concentrate on items
        // aligned with their cluster center more than a uniform draw would.
        let cfg = CrossDomainConfig::tiny(11);
        let world = generate(&cfg);
        let s = OrganicSampler::from_truth(&world.truth, 8.0);
        let mut rng = SplitMix64::new(1);
        let user = UserId(0);
        let c = world.truth.target_user_cluster[0];
        let mut aligned = 0;
        let n = 400;
        for _ in 0..n {
            let item = s.sample_item(user, &mut rng);
            if world.truth.item_cluster[item.idx()] == c {
                aligned += 1;
            }
        }
        let uniform_share = world.truth.item_cluster.iter().filter(|&&k| k == c).count() as f64
            / world.truth.item_cluster.len() as f64;
        assert!(
            f64::from(aligned) / f64::from(n) > uniform_share,
            "sharp beta must over-sample the user's own cluster"
        );
    }
}
