//! Property-based tests for the cross-domain world generator.

use ca_datagen::{generate, CrossDomainConfig, DomainConfig};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = CrossDomainConfig> {
    (
        2usize..5,   // clusters
        20usize..50, // target items
        2usize..6,   // latent dim
        0u64..1000,  // seed
        10usize..40, // target users
        15usize..60, // source users
    )
        .prop_map(|(clusters, items, dim, seed, t_users, s_users)| {
            let overlap = (items * 2) / 3;
            CrossDomainConfig {
                latent_dim: dim,
                n_clusters: clusters,
                n_target_items: items,
                n_overlap: overlap,
                target: DomainConfig {
                    n_users: t_users,
                    profile_len_mean: 5.0,
                    profile_len_min: 2,
                    profile_len_max: 10.min(items),
                },
                source: DomainConfig {
                    n_users: s_users,
                    profile_len_mean: 6.0,
                    profile_len_min: 2,
                    profile_len_max: 10.min(overlap),
                },
                popularity_alpha: 1.0,
                affinity_beta: 2.0,
                user_noise: 0.4,
                item_noise: 0.6,
                seed,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_worlds_are_internally_consistent(cfg in arb_config()) {
        prop_assert!(cfg.validate().is_ok());
        let world = generate(&cfg);
        prop_assert!(world.target.check_consistency().is_ok());
        prop_assert!(world.source.check_consistency().is_ok());

        // Alignment is a bijection between the source catalog and a subset
        // of the target catalog.
        prop_assert_eq!(world.source_to_target.len(), cfg.n_overlap);
        let mut seen = vec![false; cfg.n_target_items];
        for &t in &world.source_to_target {
            prop_assert!(t.idx() < cfg.n_target_items);
            prop_assert!(!seen[t.idx()], "duplicate alignment target");
            seen[t.idx()] = true;
        }
        for (t, s) in world.target_to_source.iter().enumerate() {
            if let Some(s) = s {
                prop_assert_eq!(world.source_to_target[s.idx()].idx(), t);
            }
        }

        // Profile lengths respect the configured bounds.
        for u in world.target.users() {
            let l = world.target.profile(u).len();
            prop_assert!(l >= cfg.target.profile_len_min && l <= cfg.target.profile_len_max);
        }

        // Ground truth has matching shapes.
        prop_assert_eq!(world.truth.item_vecs.rows(), cfg.n_target_items);
        prop_assert_eq!(world.truth.target_user_vecs.rows(), cfg.target.n_users);
        prop_assert_eq!(world.truth.source_user_vecs.rows(), cfg.source.n_users);
        let pop_sum: f32 = world.truth.item_pop.iter().sum();
        prop_assert!((pop_sum - 1.0).abs() < 1e-3);
    }

    #[test]
    fn same_seed_same_world(cfg in arb_config()) {
        let a = generate(&cfg);
        let b = generate(&cfg);
        prop_assert_eq!(a.stats(), b.stats());
        for u in a.source.users() {
            prop_assert_eq!(a.source.profile(u), b.source.profile(u));
        }
    }
}
