//! Property-based tests for the deployed recommender: fold-in consistency,
//! top-k correctness, and ranking invariants under arbitrary injections.

use ca_gnn::{GnnConfig, PinSageModel, PinSageRecommender};
use ca_recsys::{BlackBoxRecommender, DatasetBuilder, ItemId, Scorer, UserId};
use proptest::prelude::*;

fn platform(n_items: usize, profiles: &[Vec<u32>], seed: u64) -> PinSageRecommender {
    let mut b = DatasetBuilder::new(n_items);
    for p in profiles {
        let items: Vec<ItemId> = p.iter().map(|&v| ItemId(v % n_items as u32)).collect();
        b.user(&items);
    }
    let model =
        PinSageModel::with_random_features(n_items, GnnConfig { seed, ..Default::default() });
    PinSageRecommender::deploy(model, b.build())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn incremental_foldin_equals_full_recompute(
        profiles in prop::collection::vec(prop::collection::vec(0u32..15, 1..6), 2..8),
        injections in prop::collection::vec(prop::collection::vec(0u32..15, 1..6), 1..6),
        seed in 0u64..100,
    ) {
        let mut rec = platform(15, &profiles, seed);
        for inj in &injections {
            let items: Vec<ItemId> = inj.iter().map(|&v| ItemId(v)).collect();
            rec.inject_user(&items);
        }
        let incremental = rec.clone();
        rec.refresh_all();
        for v in 0..15 {
            for k in 0..8 {
                let a = incremental.caches().h_item[(v, k)];
                let b = rec.caches().h_item[(v, k)];
                prop_assert!((a - b).abs() < 1e-4, "h_item[{v}][{k}]: {a} vs {b}");
            }
        }
    }

    #[test]
    fn top_k_is_sorted_and_unseen(
        profiles in prop::collection::vec(prop::collection::vec(0u32..20, 1..8), 2..10),
        k in 1usize..10,
        seed in 0u64..100,
    ) {
        let rec = platform(20, &profiles, seed);
        for u in 0..profiles.len() as u32 {
            let user = UserId(u);
            let list = rec.top_k(user, k);
            prop_assert!(list.len() <= k);
            for w in list.windows(2) {
                prop_assert!(rec.score(user, w[0]) >= rec.score(user, w[1]));
            }
            for v in &list {
                prop_assert!(!rec.data().contains(user, *v));
            }
            // No duplicates.
            let mut sorted = list.clone();
            sorted.sort();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), list.len());
        }
    }

    #[test]
    fn injection_never_shrinks_target_degree_channel(
        profiles in prop::collection::vec(prop::collection::vec(0u32..12, 1..5), 2..6),
        target in 0u32..12,
        n_inject in 1usize..8,
        seed in 0u64..50,
    ) {
        let mut rec = platform(12, &profiles, seed);
        let before = rec.caches().n_item_cnt[target as usize];
        for _ in 0..n_inject {
            rec.inject_user(&[ItemId(target)]);
        }
        let after = rec.caches().n_item_cnt[target as usize];
        prop_assert_eq!(after, before + n_inject);
    }
}
