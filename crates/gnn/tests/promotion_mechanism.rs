//! End-to-end check of the vulnerability CopyAttack exploits: injecting
//! users whose profiles pair a cold target item with mainstream items must
//! raise the target item's rank for ordinary users, via inductive fold-in
//! alone (no retraining).

use ca_datagen::{generate, CrossDomainConfig};
use ca_gnn::{train, GnnConfig};
use ca_recsys::eval::RankingEval;
use ca_recsys::{split_dataset, BlackBoxRecommender, ItemId, UserId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

#[test]
fn injection_promotes_cold_target_item() {
    let world = generate(&CrossDomainConfig::tiny(11));
    let mut rng = StdRng::seed_from_u64(0);
    let split = split_dataset(&world.target, 0.1, &mut rng);

    let cfg = GnnConfig { max_epochs: 20, seed: 1, ..Default::default() };
    let (mut rec, report) = train(&split.train, &split.validation, &cfg);
    assert!(report.best_val_hr10 > 0.15, "target model too weak: {report:?}");

    // Pick a cold item that exists in the source domain.
    let mut cold_rng = StdRng::seed_from_u64(5);
    let targets = world.sample_attackable_cold_items(5, 10, 2, &mut cold_rng);
    assert!(!targets.is_empty());
    let target = targets[0];

    // Evaluation users: 40 real target-domain users.
    let mut users: Vec<UserId> = world.target.users().collect();
    users.shuffle(&mut cold_rng);
    users.truncate(40);

    let ev = RankingEval::standard(&split.train);
    let mut eval_rng = StdRng::seed_from_u64(9);
    let before = ev.evaluate_promotion(&rec, &users, target, &mut eval_rng);

    // Inject 30 source users who interacted with the target item (this is
    // the TargetAttack baseline's selection rule).
    let src = world.source_item(target).expect("cold item overlaps");
    let mut candidates: Vec<UserId> =
        world.source.users().filter(|&u| world.source.contains(u, src)).collect();
    candidates.shuffle(&mut cold_rng);
    let mut injected = 0;
    for &u in candidates.iter() {
        if injected >= 30 {
            break;
        }
        let profile = world.translate_profile(world.source.profile(u));
        rec.inject_user(&profile);
        injected += 1;
    }
    assert!(injected >= 3, "need at least a few copyable profiles, got {injected}");

    let mut eval_rng2 = StdRng::seed_from_u64(9);
    let after = ev.evaluate_promotion(&rec, &users, target, &mut eval_rng2);

    assert!(
        after.hr(20) > before.hr(20),
        "promotion failed: HR@20 {} -> {} ({} injected)",
        before.hr(20),
        after.hr(20),
        injected
    );
}

#[test]
fn random_injection_barely_moves_the_target() {
    // Control: injecting random source users (who mostly do NOT contain the
    // target item) must not promote it — this is the RandomAttack row of
    // Table 2 staying at the no-attack level.
    let world = generate(&CrossDomainConfig::tiny(11));
    let mut rng = StdRng::seed_from_u64(0);
    let split = split_dataset(&world.target, 0.1, &mut rng);
    let cfg = GnnConfig { max_epochs: 20, seed: 1, ..Default::default() };
    let (mut rec, _) = train(&split.train, &split.validation, &cfg);

    let mut cold_rng = StdRng::seed_from_u64(5);
    let targets = world.sample_attackable_cold_items(5, 10, 2, &mut cold_rng);
    let target = targets[0];

    let mut users: Vec<UserId> = world.target.users().collect();
    users.shuffle(&mut cold_rng);
    users.truncate(40);

    let ev = RankingEval::standard(&split.train);
    let mut eval_rng = StdRng::seed_from_u64(9);
    let before = ev.evaluate_promotion(&rec, &users, target, &mut eval_rng);

    let mut all_source: Vec<UserId> = world.source.users().collect();
    all_source.shuffle(&mut cold_rng);
    let src = world.source_item(target).expect("overlap");
    let mut injected = 0;
    for &u in &all_source {
        if injected >= 30 {
            break;
        }
        if world.source.contains(u, src) {
            continue; // random-but-not-containing control
        }
        let profile = world.translate_profile(world.source.profile(u));
        rec.inject_user(&profile);
        injected += 1;
    }

    let mut eval_rng2 = StdRng::seed_from_u64(9);
    let after = ev.evaluate_promotion(&rec, &users, target, &mut eval_rng2);
    // Not containing the target item, these users cannot touch its
    // aggregate; scores of *other* items may shift slightly, so allow a
    // small tolerance.
    assert!(
        (after.hr(20) - before.hr(20)).abs() < 0.15,
        "control moved too much: {} -> {}",
        before.hr(20),
        after.hr(20)
    );
}

#[test]
fn foldin_is_cheap_relative_to_redeploy() {
    // The platform folds injected users in incrementally; a full cache
    // recompute would defeat the query loop. This guards the complexity
    // class (smoke-level: 100 injections must run quickly even in debug).
    let world = generate(&CrossDomainConfig::tiny(13));
    let mut rng = StdRng::seed_from_u64(0);
    let split = split_dataset(&world.target, 0.1, &mut rng);
    let cfg = GnnConfig { max_epochs: 2, seed: 1, ..Default::default() };
    let (mut rec, _) = train(&split.train, &split.validation, &cfg);
    let profile: Vec<ItemId> = world.target.profile(UserId(0)).to_vec();
    // ca-audit: allow(wall-clock) — this perf smoke test asserts on elapsed time by design
    let t0 = std::time::Instant::now();
    for _ in 0..100 {
        rec.inject_user(&profile);
    }
    assert!(t0.elapsed().as_secs_f64() < 5.0, "fold-in too slow: {:?}", t0.elapsed());
}
