//! The deployed recommender: model + live interaction data + representation
//! caches, with inductive fold-in of injected users.

use crate::model::PinSageModel;
use ca_recsys::engine::{self, EmbeddingEngine, ScoringEngine};
use ca_recsys::{BlackBoxRecommender, Dataset, ItemId, Scorer, UserId};
use ca_tensor::{ops, Matrix, Scratch};

/// Representation caches for the current state of the platform.
#[derive(Clone, Debug)]
pub struct Caches {
    /// `h_u` per user, `n_users × dim`.
    pub h_user: Matrix,
    /// Running sum of `h_u` over each item's interacting users.
    pub n_item_sum: Vec<Vec<f32>>,
    /// Number of users aggregated per item.
    pub n_item_cnt: Vec<usize>,
    /// `h_v` per item, `n_items × dim`.
    pub h_item: Matrix,
}

impl Caches {
    /// Computes all caches from scratch, running each tower once over a
    /// stacked input matrix instead of row by row.
    pub fn compute(model: &PinSageModel, data: &Dataset) -> Self {
        let dim = model.dim();
        let mut scratch = Scratch::new();
        let mut m_users = Matrix::zeros(data.n_users(), model.feat_dim());
        for u in data.users() {
            m_users.row_mut(u.idx()).copy_from_slice(&model.aggregate_profile(data.profile(u)));
        }
        let h_user = model.user_tower.infer_batch(&m_users, &mut scratch);
        let mut n_item_sum = vec![vec![0.0; dim]; data.n_items()];
        let mut n_item_cnt = vec![0usize; data.n_items()];
        for u in data.users() {
            let hu = h_user.row(u.idx());
            for &v in data.profile(u) {
                ops::axpy(1.0, hu, &mut n_item_sum[v.idx()]);
                n_item_cnt[v.idx()] += 1;
            }
        }
        let mut x_items = Matrix::zeros(data.n_items(), model.feat_dim() + dim + 1);
        for v in 0..data.n_items() {
            let n_v = mean_from_sum(&n_item_sum[v], n_item_cnt[v]);
            let x = model.item_tower_input(ItemId(v as u32), &n_v, n_item_cnt[v]);
            x_items.row_mut(v).copy_from_slice(&x);
        }
        let h_item = model.item_tower.infer_batch(&x_items, &mut scratch);
        Self { h_user, n_item_sum, n_item_cnt, h_item }
    }

    /// The user→item aggregate `n_v`.
    pub fn n_item(&self, v: ItemId) -> Vec<f32> {
        mean_from_sum(&self.n_item_sum[v.idx()], self.n_item_cnt[v.idx()])
    }
}

fn mean_from_sum(sum: &[f32], cnt: usize) -> Vec<f32> {
    let mut m = sum.to_vec();
    if cnt > 0 {
        ops::scale(&mut m, 1.0 / cnt as f32);
    }
    m
}

/// A deployed PinSage recommender: the black-box system under attack.
#[derive(Clone, Debug)]
pub struct PinSageRecommender {
    model: PinSageModel,
    data: Dataset,
    caches: Caches,
}

impl PinSageRecommender {
    /// Deploys a trained model over the platform's interaction data.
    pub fn deploy(model: PinSageModel, data: Dataset) -> Self {
        assert_eq!(model.n_items(), data.n_items(), "model/catalog mismatch");
        let caches = Caches::compute(&model, &data);
        Self { model, data, caches }
    }

    /// The platform's interaction data (owner-side access; not visible to
    /// the attacker).
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// The underlying model (owner-side access).
    pub fn model(&self) -> &PinSageModel {
        &self.model
    }

    /// Current representation caches (owner-side access).
    pub fn caches(&self) -> &Caches {
        &self.caches
    }

    /// Rebuilds all caches from scratch (used by tests to validate the
    /// incremental fold-in).
    pub fn refresh_all(&mut self) {
        self.caches = Caches::compute(&self.model, &self.data);
    }
}

impl Scorer for PinSageRecommender {
    fn score(&self, user: UserId, item: ItemId) -> f32 {
        self.model.score_reprs(
            self.caches.h_user.row(user.idx()),
            self.caches.h_item.row(item.idx()),
            item,
        )
    }
}

impl ScoringEngine for PinSageRecommender {
    fn catalog_len(&self) -> usize {
        self.data.n_items()
    }

    fn is_seen(&self, user: UserId, item: ItemId) -> bool {
        self.data.contains(user, item)
    }

    fn score_batch(&self, users: &[UserId], out: &mut Matrix) {
        // Both representations are cached, so batched scoring is one
        // H_users · H_itemsᵀ GEMM over the gathered user rows.
        let mut hu_batch = Matrix::zeros(users.len(), self.model.dim());
        for (i, &u) in users.iter().enumerate() {
            hu_batch.row_mut(i).copy_from_slice(self.caches.h_user.row(u.idx()));
        }
        hu_batch.matmul_nt_into(&self.caches.h_item, out);
    }
}

impl EmbeddingEngine for PinSageRecommender {
    fn embedding_dim(&self) -> usize {
        self.model.dim()
    }

    fn item_embedding_into(&self, item: ItemId, out: &mut [f32]) {
        out.copy_from_slice(self.caches.h_item.row(item.idx()));
    }

    fn query_embedding_into(&self, user: UserId, out: &mut [f32]) {
        out.copy_from_slice(self.caches.h_user.row(user.idx()));
    }

    fn score_items(&self, user: UserId, items: &[ItemId], out: &mut [f32]) {
        // `score_reprs` is the plain `h_u · h_v` dot, bitwise equal to the
        // cached-representation GEMM cells of `score_batch`.
        for (o, &v) in out.iter_mut().zip(items) {
            *o = self.model.score_reprs(
                self.caches.h_user.row(user.idx()),
                self.caches.h_item.row(v.idx()),
                v,
            );
        }
    }
}

impl BlackBoxRecommender for PinSageRecommender {
    fn top_k(&self, user: UserId, k: usize) -> Vec<ItemId> {
        engine::single_top_k(self, user, k)
    }

    fn top_k_batch(&self, users: &[UserId], k: usize) -> Vec<Vec<ItemId>> {
        engine::auto_batch_top_k(self, users, k)
    }

    /// Registers a new account with `profile` and folds it in inductively:
    /// the new user's representation is computed from the item embeddings,
    /// and the aggregates / representations of exactly the touched items are
    /// refreshed. No retraining happens — mirroring both PinSage's
    /// inductive deployment and the paper's fixed-target-model setting.
    fn inject_user(&mut self, profile: &[ItemId]) -> UserId {
        let uid = self.data.add_user(profile);
        // `add_user` dedups; read the stored run straight from the arena
        // (disjoint field borrows: `data` read, `caches`/`model` written).
        let stored = self.data.profile(uid);
        let hu = self.model.user_repr(stored);
        for &v in stored {
            ops::axpy(1.0, &hu, &mut self.caches.n_item_sum[v.idx()]);
            self.caches.n_item_cnt[v.idx()] += 1;
            let n_v = self.caches.n_item(v);
            let repr = self.model.item_repr(v, &n_v, self.caches.n_item_cnt[v.idx()]);
            self.caches.h_item.row_mut(v.idx()).copy_from_slice(&repr);
        }
        self.caches.h_user.push_row(&hu);
        uid
    }

    fn catalog_size(&self) -> usize {
        self.data.n_items()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GnnConfig;
    use ca_recsys::DatasetBuilder;

    fn tiny_platform() -> PinSageRecommender {
        let mut b = DatasetBuilder::new(12);
        for u in 0..8u32 {
            let profile: Vec<ItemId> = (0..4).map(|i| ItemId((u + i * 3) % 12)).collect();
            b.user(&profile);
        }
        let data = b.build();
        let model = PinSageModel::with_random_features(12, GnnConfig::default());
        PinSageRecommender::deploy(model, data)
    }

    #[test]
    fn top_k_excludes_profile_items() {
        let rec = tiny_platform();
        for u in 0..8u32 {
            let user = UserId(u);
            for v in rec.top_k(user, 5) {
                assert!(!rec.data().contains(user, v), "{user} recommended seen item {v}");
            }
        }
    }

    #[test]
    fn top_k_is_sorted_by_score() {
        let rec = tiny_platform();
        let list = rec.top_k(UserId(0), 6);
        for w in list.windows(2) {
            assert!(rec.score(UserId(0), w[0]) >= rec.score(UserId(0), w[1]));
        }
    }

    #[test]
    fn top_k_matches_exhaustive_argmax() {
        let rec = tiny_platform();
        let user = UserId(2);
        let list = rec.top_k(user, 3);
        let mut best: Vec<(f32, ItemId)> = (0..12u32)
            .map(ItemId)
            .filter(|&v| !rec.data().contains(user, v))
            .map(|v| (rec.score(user, v), v))
            .collect();
        best.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
        let expected: Vec<ItemId> = best.into_iter().take(3).map(|(_, v)| v).collect();
        assert_eq!(list, expected);
    }

    #[test]
    fn incremental_foldin_matches_full_recompute() {
        let mut rec = tiny_platform();
        let profile = vec![ItemId(0), ItemId(5), ItemId(11)];
        rec.inject_user(&profile);
        rec.inject_user(&[ItemId(5), ItemId(6)]);
        let incremental = rec.clone();
        rec.refresh_all();
        for v in 0..12 {
            for k in 0..8 {
                let a = incremental.caches().h_item[(v, k)];
                let b = rec.caches().h_item[(v, k)];
                assert!((a - b).abs() < 1e-5, "h_item[{v}][{k}]: {a} vs {b}");
            }
        }
        assert_eq!(incremental.caches().h_user.rows(), rec.caches().h_user.rows());
        for u in 0..rec.caches().h_user.rows() {
            for k in 0..8 {
                let a = incremental.caches().h_user[(u, k)];
                let b = rec.caches().h_user[(u, k)];
                assert!((a - b).abs() < 1e-5, "h_user[{u}][{k}]");
            }
        }
    }

    #[test]
    fn injection_changes_touched_item_reprs_only() {
        let mut rec = tiny_platform();
        let before = rec.caches().h_item.clone();
        rec.inject_user(&[ItemId(7)]);
        for v in 0..12 {
            let changed = rec.caches().h_item.row(v) != before.row(v);
            assert_eq!(changed, v == 7, "item {v} changed={changed}");
        }
    }

    #[test]
    fn injected_user_gets_representation_and_recommendations() {
        let mut rec = tiny_platform();
        let uid = rec.inject_user(&[ItemId(1), ItemId(2)]);
        assert_eq!(uid.idx(), 8);
        let list = rec.top_k(uid, 4);
        assert_eq!(list.len(), 4);
        assert!(!list.contains(&ItemId(1)));
    }

    #[test]
    #[should_panic(expected = "model/catalog mismatch")]
    fn deploy_rejects_mismatched_catalog() {
        let data = DatasetBuilder::new(5).build();
        let model = PinSageModel::with_random_features(6, GnnConfig::default());
        let _ = PinSageRecommender::deploy(model, data);
    }
}
