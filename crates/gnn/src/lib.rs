//! PinSage-like inductive GNN recommender — the black-box target model.
//!
//! §5.1.3 of the paper adopts PinSage \[24\], an industrial graph neural
//! network over the user–item bipartite graph that "aggregates the local
//! neighbors (users/items) in an inductive way". The essential property the
//! attack depends on is that *inductiveness*: when a new user registers and
//! interacts, the platform can compute the user's representation — and
//! refresh the representations of the items they touched — from neighbor
//! aggregation alone, without retraining. Injected profiles therefore shift
//! the target item's representation immediately.
//!
//! The model implemented here keeps that structure at the paper's scale:
//!
//! ```text
//! m_u = mean_{v ∈ P_u} q_v                       (item→user aggregation)
//! h_u = MLP_user(m_u)                            (user tower)
//! n_v = mean_{u ∈ P_v} h_u                       (user→item aggregation)
//! h_v = q_v + MLP_item(n_v)                      (item tower, residual)
//! score(u, v) = ⟨h_u, h_v⟩ + b_v
//! ```
//!
//! Training is BPR over the 80% training split with the neighbor aggregates
//! `n_v` held stale within an epoch and refreshed between epochs (the
//! standard large-graph trick; PinSage itself trains on sampled, effectively
//! stale neighborhoods). Early stopping follows §5.1.3: patience 5 on
//! validation HR@10.

#![forbid(unsafe_code)]

pub mod config;
pub mod model;
pub mod recommender;
pub mod train;

pub use config::GnnConfig;
pub use model::PinSageModel;
pub use recommender::PinSageRecommender;
pub use train::{
    train, train_observed, train_with_features, train_with_features_observed, TrainReport,
};
