//! Model parameters and representation functions.
//!
//! PinSage computes item embeddings from **content features + neighbor
//! aggregation** — there is no free per-item embedding table at inference
//! time. That is the property that makes the deployed model inductive (new
//! users/interactions change representations without retraining) and is
//! exactly the channel a profile-injection attack manipulates. We keep that
//! structure:
//!
//! ```text
//! f_v  : frozen item features (content proxies; in the experiment pipeline
//!        these are MF item embeddings pretrained on the clean data)
//! m_u  = mean_{v ∈ P_u} f_v                       (item→user aggregation)
//! h_u  = MLP_user(m_u)                            (user tower)
//! n_v  = mean_{u ∈ P_v} h_u                       (user→item aggregation)
//! h_v  = MLP_item([f_v ⊕ n_v ⊕ log(1 + deg_v)])   (item tower)
//! score(u, v) = ⟨h_u, h_v⟩
//! ```
//!
//! The degree input mirrors PinSage's importance pooling, where an item's
//! visit counts shape its representation: interaction volume is a live,
//! recomputable-on-fold-in signal, not a frozen trained bias.
//!
//! Only the two towers are trainable. An earlier draft added a free
//! embedding `q_v` and a popularity bias `b_v`; BPR then routed all item
//! identity through those and the aggregate path went unused — the model
//! scored well but was (unrealistically) immune to injection. See
//! DESIGN.md §5, ablation 4.

use crate::config::GnnConfig;
use ca_nn::Mlp;
use ca_recsys::ItemId;
use ca_tensor::{ops, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Parameters of the PinSage-like recommender.
#[derive(Clone, Debug)]
pub struct PinSageModel {
    /// Hyper-parameters the model was built with.
    pub cfg: GnnConfig,
    /// Frozen item content features, `n_items × feat_dim`.
    pub features: Matrix,
    /// User tower: `m_u → h_u`, input `feat_dim`, output `dim`.
    pub user_tower: Mlp,
    /// Item tower: `[f_v ⊕ n_v ⊕ log(1+deg)] → h_v`, input
    /// `feat_dim + dim + 1`, output `dim`.
    pub item_tower: Mlp,
}

impl PinSageModel {
    /// Builds a model over the given frozen item features.
    pub fn new(features: Matrix, cfg: GnnConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let feat_dim = features.cols();
        // Activation-scale-preserving init; the paper's N(0, 0.1²) makes the
        // composed two-tower path vanish at these widths.
        let user_std = (2.0 / (feat_dim + cfg.hidden) as f32).sqrt();
        let item_std = (2.0 / (feat_dim + cfg.dim + 1 + cfg.hidden) as f32).sqrt();
        let user_tower = Mlp::new(&mut rng, &[feat_dim, cfg.hidden, cfg.dim], user_std);
        let item_tower =
            Mlp::new(&mut rng, &[feat_dim + cfg.dim + 1, cfg.hidden, cfg.dim], item_std);
        Self { cfg, features, user_tower, item_tower }
    }

    /// Convenience: random `N(0, 1)` features (for tests and worlds without
    /// a content/MF feature source).
    pub fn with_random_features(n_items: usize, cfg: GnnConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(0xFEED));
        let features = ca_tensor::init::gaussian_matrix(&mut rng, n_items, cfg.dim, 0.0, 1.0);
        Self::new(features, cfg)
    }

    /// Number of items in the catalog.
    pub fn n_items(&self) -> usize {
        self.features.rows()
    }

    /// Representation dimensionality (tower output).
    pub fn dim(&self) -> usize {
        self.cfg.dim
    }

    /// Item feature dimensionality.
    pub fn feat_dim(&self) -> usize {
        self.features.cols()
    }

    /// Item→user aggregation `m_u`: mean feature vector of the profile's
    /// items (zero for an empty profile).
    pub fn aggregate_profile(&self, profile: &[ItemId]) -> Vec<f32> {
        let mut m = vec![0.0; self.feat_dim()];
        if profile.is_empty() {
            return m;
        }
        for &v in profile {
            ops::axpy(1.0, self.features.row(v.idx()), &mut m);
        }
        ops::scale(&mut m, 1.0 / profile.len() as f32);
        m
    }

    /// Inductive user representation `h_u = MLP_user(m_u)`.
    ///
    /// This is the function the platform applies to *any* profile — real,
    /// pretend, or injected — which is what makes the model attackable
    /// without retraining.
    pub fn user_repr(&self, profile: &[ItemId]) -> Vec<f32> {
        self.user_tower.infer(&self.aggregate_profile(profile))
    }

    /// Concatenated item-tower input `[f_v ⊕ n_v ⊕ log(1 + deg_v)]`.
    pub fn item_tower_input(&self, v: ItemId, n_v: &[f32], degree: usize) -> Vec<f32> {
        let mut x = Vec::with_capacity(self.feat_dim() + self.dim() + 1);
        x.extend_from_slice(self.features.row(v.idx()));
        x.extend_from_slice(n_v);
        x.push((1.0 + degree as f32).ln());
        x
    }

    /// Item representation `h_v = MLP_item([f_v ⊕ n_v ⊕ log(1+deg)])` given
    /// the user→item aggregate `n_v` and the item's interaction count.
    pub fn item_repr(&self, v: ItemId, n_v: &[f32], degree: usize) -> Vec<f32> {
        self.item_tower.infer(&self.item_tower_input(v, n_v, degree))
    }

    /// Final score `⟨h_u, h_v⟩`.
    pub fn score_reprs(&self, h_u: &[f32], h_v: &[f32], _v: ItemId) -> f32 {
        ops::dot(h_u, h_v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PinSageModel {
        PinSageModel::with_random_features(10, GnnConfig::default())
    }

    #[test]
    fn aggregate_of_empty_profile_is_zero() {
        let m = model();
        assert_eq!(m.aggregate_profile(&[]), vec![0.0; m.feat_dim()]);
    }

    #[test]
    fn aggregate_is_mean_of_feature_rows() {
        let m = model();
        let agg = m.aggregate_profile(&[ItemId(0), ItemId(1)]);
        for (k, &a) in agg.iter().enumerate() {
            let expected = (m.features[(0, k)] + m.features[(1, k)]) / 2.0;
            assert!((a - expected).abs() < 1e-6);
        }
    }

    #[test]
    fn user_repr_is_profile_dependent() {
        let m = model();
        let a = m.user_repr(&[ItemId(0), ItemId(1)]);
        let b = m.user_repr(&[ItemId(5), ItemId(6)]);
        assert_ne!(a, b);
    }

    #[test]
    fn item_repr_depends_on_aggregate() {
        let m = model();
        let zero = vec![0.0; m.dim()];
        let ones = vec![1.0; m.dim()];
        let a = m.item_repr(ItemId(3), &zero, 4);
        let b = m.item_repr(ItemId(3), &ones, 4);
        assert_ne!(a, b, "the aggregate channel must reach the representation");
    }

    #[test]
    fn item_tower_input_layout() {
        let m = model();
        let n_v = vec![9.0; m.dim()];
        let x = m.item_tower_input(ItemId(2), &n_v, 7);
        assert_eq!(x.len(), m.feat_dim() + m.dim() + 1);
        assert_eq!(&x[m.feat_dim()..m.feat_dim() + m.dim()], &n_v[..]);
        assert!((x[m.feat_dim() + m.dim()] - (8.0f32).ln()).abs() < 1e-6);
    }

    #[test]
    fn construction_is_deterministic_per_seed() {
        let a = PinSageModel::with_random_features(10, GnnConfig::default());
        let b = PinSageModel::with_random_features(10, GnnConfig::default());
        assert_eq!(a.features.as_slice(), b.features.as_slice());
    }
}
