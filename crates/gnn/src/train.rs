//! BPR training of the PinSage-like model with stale neighbor aggregates
//! and early stopping on validation HR@10 (§5.1.3).
//!
//! The epoch loop lives in `ca-train`; this module contributes the
//! PinSage-specific [`ca_train::PairwiseModel`] implementation: tower
//! gradients against the frozen batch-start model *and* the epoch-start
//! stale aggregate caches (recomputed in `begin_epoch`, before the pair
//! shuffle), with validation scored through fresh caches after every
//! epoch's updates.

use crate::config::GnnConfig;
use crate::model::PinSageModel;
use crate::recommender::{Caches, PinSageRecommender};
use ca_recsys::eval::RankingEval;
use ca_recsys::{Dataset, HeldOut, ItemId, Scorer, UserId};
use ca_tensor::ops::{self, sigmoid};
use ca_train::{NullObserver, PairwiseModel, Step, TrainConfig, TrainObserver};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Summary of a training run.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Epochs actually run (≤ `max_epochs` with early stopping).
    pub epochs_run: usize,
    /// Validation HR@10 after each epoch.
    pub val_hr10_history: Vec<f32>,
    /// Best validation HR@10 observed.
    pub best_val_hr10: f32,
}

impl GnnConfig {
    /// The `ca-train` driver configuration this config describes. PinSage
    /// has no weight decay (features are frozen), so `reg` is zero.
    pub fn train_config(&self) -> TrainConfig {
        TrainConfig {
            lr: self.lr,
            reg: 0.0,
            max_epochs: self.max_epochs,
            patience: Some(self.patience),
            minibatch: self.minibatch,
            seed: self.seed,
            optimizer: self.optimizer,
            ..TrainConfig::default()
        }
    }
}

/// View used for validation scoring during training.
struct EvalView<'a> {
    model: &'a PinSageModel,
    caches: &'a Caches,
}

impl Scorer for EvalView<'_> {
    fn score(&self, user: UserId, item: ItemId) -> f32 {
        self.model.score_reprs(
            self.caches.h_user.row(user.idx()),
            self.caches.h_item.row(item.idx()),
            item,
        )
    }
}

/// The PinSage side of the [`PairwiseModel`] contract.
struct GnnTrainer<'a> {
    model: PinSageModel,
    ds: &'a Dataset,
    /// Stale aggregates, recomputed at the top of each epoch.
    caches: Option<Caches>,
    val_sample: Vec<HeldOut>,
    val_seed: u64,
}

impl PairwiseModel for GnnTrainer<'_> {
    type Grad = PairGrad;

    /// Recompute the stale neighbor aggregates for this epoch (before the
    /// driver shuffles the pair order).
    fn begin_epoch(&mut self) {
        self.caches = Some(Caches::compute(&self.model, self.ds));
    }

    fn pair_grad(&self, u: UserId, pos: ItemId, neg: ItemId) -> (PairGrad, f32) {
        let caches = self.caches.as_ref().expect("begin_epoch computes the caches");
        pair_grad(&self.model, self.ds, caches, u, pos, neg)
    }

    /// Block-key layout: the item tower's layer blocks from key 0, the user
    /// tower's directly after (two keys per layer, in layer order — the
    /// same element order as `Mlp::sgd_step`, so the SGD path is bitwise
    /// identical to the historical tower updates).
    fn apply(&mut self, _u: UserId, _pos: ItemId, _neg: ItemId, g: &PairGrad, step: &mut Step<'_>) {
        let next = step.descend_mlp(0, &mut self.model.item_tower, &g.item);
        step.descend_mlp(next, &mut self.model.user_tower, &g.user);
    }

    /// Post-update validation HR@10 through *fresh* caches (the stop
    /// criterion always reads the score of the model after this epoch's
    /// updates, not the stale training aggregates).
    fn validate(&mut self) -> Option<f32> {
        let fresh = Caches::compute(&self.model, self.ds);
        let view = EvalView { model: &self.model, caches: &fresh };
        let ev = RankingEval { seen: self.ds, ks: vec![10] };
        let mut val_rng = StdRng::seed_from_u64(self.val_seed);
        Some(ev.evaluate(&view, &self.val_sample, &mut val_rng).hr(10))
    }
}

/// Trains on `train_ds` with random item features. See [`train_with_features`].
pub fn train(
    train_ds: &Dataset,
    validation: &[HeldOut],
    cfg: &GnnConfig,
) -> (PinSageRecommender, TrainReport) {
    train_observed(train_ds, validation, cfg, &mut NullObserver)
}

/// [`train`] with training telemetry streamed to `obs`.
pub fn train_observed(
    train_ds: &Dataset,
    validation: &[HeldOut],
    cfg: &GnnConfig,
    obs: &mut dyn TrainObserver,
) -> (PinSageRecommender, TrainReport) {
    let model = PinSageModel::with_random_features(train_ds.n_items(), cfg.clone());
    train_model(model, train_ds, validation, obs)
}

/// Trains on `train_ds` with the given frozen item features (e.g. MF item
/// embeddings pretrained on the clean data), early-stopping on `validation`,
/// and deploys the model over `train_ds`.
///
/// Validation pairs are subsampled to at most 500 for epoch-time evaluation;
/// this only affects the early-stopping signal, not reported metrics.
pub fn train_with_features(
    features: ca_tensor::Matrix,
    train_ds: &Dataset,
    validation: &[HeldOut],
    cfg: &GnnConfig,
) -> (PinSageRecommender, TrainReport) {
    train_with_features_observed(features, train_ds, validation, cfg, &mut NullObserver)
}

/// [`train_with_features`] with training telemetry streamed to `obs`.
pub fn train_with_features_observed(
    features: ca_tensor::Matrix,
    train_ds: &Dataset,
    validation: &[HeldOut],
    cfg: &GnnConfig,
    obs: &mut dyn TrainObserver,
) -> (PinSageRecommender, TrainReport) {
    assert_eq!(features.rows(), train_ds.n_items(), "feature/catalog mismatch");
    let model = PinSageModel::new(features, cfg.clone());
    train_model(model, train_ds, validation, obs)
}

fn train_model(
    model: PinSageModel,
    train_ds: &Dataset,
    validation: &[HeldOut],
    obs: &mut dyn TrainObserver,
) -> (PinSageRecommender, TrainReport) {
    let cfg = model.cfg.clone();
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(0x9E37_79B9));

    let mut val_sample: Vec<HeldOut> = validation.to_vec();
    val_sample.shuffle(&mut rng);
    val_sample.truncate(500);

    let mut trainer = GnnTrainer {
        model,
        ds: train_ds,
        caches: None,
        val_sample,
        val_seed: cfg.seed.wrapping_add(7777),
    };
    let outcome = ca_train::fit(&mut trainer, train_ds, &cfg.train_config(), &mut rng, obs);

    let rec = PinSageRecommender::deploy(trainer.model, train_ds.clone());
    let report = TrainReport {
        epochs_run: outcome.epochs_run,
        val_hr10_history: outcome.val_history,
        best_val_hr10: if outcome.best_val.is_finite() { outcome.best_val } else { 0.0 },
    };
    (rec, report)
}

/// Tower gradients of one BPR triple against frozen towers (features are
/// frozen, so gradients stop at the tower inputs).
pub struct PairGrad {
    item: ca_nn::MlpGrad,
    user: ca_nn::MlpGrad,
}

fn pair_grad(
    model: &PinSageModel,
    ds: &Dataset,
    caches: &Caches,
    u: UserId,
    pos: ItemId,
    neg: ItemId,
) -> (PairGrad, f32) {
    let profile = ds.profile(u);

    // Forward.
    let m_u = model.aggregate_profile(profile);
    let (h_u, cache_u) = model.user_tower.forward(&m_u);

    let x_pos = model.item_tower_input(pos, &caches.n_item(pos), caches.n_item_cnt[pos.idx()]);
    let x_neg = model.item_tower_input(neg, &caches.n_item(neg), caches.n_item_cnt[neg.idx()]);
    let (h_pos, cache_pos) = model.item_tower.forward(&x_pos);
    let (h_neg, cache_neg) = model.item_tower.forward(&x_neg);

    let s_pos = ops::dot(&h_u, &h_pos);
    let s_neg = ops::dot(&h_u, &h_neg);
    let g = sigmoid(s_pos - s_neg) - 1.0; // dL/d(s_pos) for L = -ln σ(s⁺−s⁻)

    // dL/dh_u = g * (h_pos - h_neg); dL/dh_pos = g * h_u; dL/dh_neg = -g * h_u.
    let dim = model.dim();
    let mut g_hu = vec![0.0; dim];
    for k in 0..dim {
        g_hu[k] = g * (h_pos[k] - h_neg[k]);
    }
    let g_hpos: Vec<f32> = h_u.iter().map(|x| g * x).collect();
    let g_hneg: Vec<f32> = h_u.iter().map(|x| -g * x).collect();

    let mut item = model.item_tower.zero_grad();
    model.item_tower.backward(&cache_pos, &g_hpos, &mut item);
    model.item_tower.backward(&cache_neg, &g_hneg, &mut item);

    let mut user = model.user_tower.zero_grad();
    model.user_tower.backward(&cache_u, &g_hu, &mut user);

    let loss = -sigmoid(s_pos - s_neg).ln();
    (PairGrad { item, user }, loss)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_recsys::split_dataset;
    use ca_recsys::DatasetBuilder;

    /// Polarized two-group world, same flavor as the MF tests.
    fn polarized(n_per_group: usize) -> Dataset {
        let mut b = DatasetBuilder::new(30);
        for u in 0..2 * n_per_group {
            let base: u32 = if u < n_per_group { 0 } else { 15 };
            let profile: Vec<ItemId> =
                (0..8u32).map(|i| ItemId(base + (u as u32 * 5 + i) % 15)).collect();
            b.user(&profile);
        }
        b.build()
    }

    #[test]
    fn training_improves_validation_ranking() {
        let ds = polarized(20);
        let mut rng = StdRng::seed_from_u64(1);
        let split = split_dataset(&ds, 0.1, &mut rng);
        let cfg = GnnConfig { max_epochs: 15, seed: 2, ..Default::default() };
        let (_rec, report) = train(&split.train, &split.validation, &cfg);
        assert!(report.epochs_run >= 1);
        // Random ranking against 100 negatives gives HR@10 ≈ 0.1; the model
        // must clearly beat that.
        assert!(
            report.best_val_hr10 > 0.3,
            "best val HR@10 = {} (history {:?})",
            report.best_val_hr10,
            report.val_hr10_history
        );
    }

    #[test]
    fn early_stopping_respects_patience() {
        let ds = polarized(10);
        let mut rng = StdRng::seed_from_u64(3);
        let split = split_dataset(&ds, 0.1, &mut rng);
        let cfg = GnnConfig { max_epochs: 40, patience: 2, seed: 4, ..Default::default() };
        let (_rec, report) = train(&split.train, &split.validation, &cfg);
        assert!(report.epochs_run <= 40);
        // With patience 2 the run must not continue more than 2 epochs past
        // the best epoch.
        let best_idx = report
            .val_hr10_history
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        assert!(report.epochs_run <= best_idx + 1 + 2 + 1);
    }

    #[test]
    fn trained_model_separates_groups() {
        let ds = polarized(20);
        let mut rng = StdRng::seed_from_u64(5);
        let split = split_dataset(&ds, 0.1, &mut rng);
        let cfg = GnnConfig { max_epochs: 12, seed: 6, ..Default::default() };
        let (rec, _) = train(&split.train, &split.validation, &cfg);
        // Group-0 users should rank group-0 items above group-1 items.
        let mut ok = 0;
        for u in 0..20u32 {
            let own: f32 = (0..15u32).map(|v| rec.score(UserId(u), ItemId(v))).sum();
            let other: f32 = (15..30u32).map(|v| rec.score(UserId(u), ItemId(v))).sum();
            if own > other {
                ok += 1;
            }
        }
        assert!(ok >= 17, "only {ok}/20 group-0 users prefer their items");
    }

    #[test]
    fn training_is_deterministic() {
        let ds = polarized(8);
        let mut rng = StdRng::seed_from_u64(7);
        let split = split_dataset(&ds, 0.1, &mut rng);
        let cfg = GnnConfig { max_epochs: 3, seed: 8, ..Default::default() };
        let (a, ra) = train(&split.train, &split.validation, &cfg);
        let (b, rb) = train(&split.train, &split.validation, &cfg);
        assert_eq!(ra.val_hr10_history, rb.val_hr10_history);
        assert_eq!(
            a.model().user_tower.layers()[0].w.as_slice(),
            b.model().user_tower.layers()[0].w.as_slice()
        );
    }

    #[test]
    fn telemetry_matches_the_report() {
        let ds = polarized(8);
        let mut rng = StdRng::seed_from_u64(7);
        let split = split_dataset(&ds, 0.1, &mut rng);
        let cfg = GnnConfig { max_epochs: 4, seed: 8, ..Default::default() };
        let mut hist = ca_train::History::new();
        let (_rec, report) = train_observed(&split.train, &split.validation, &cfg, &mut hist);
        assert_eq!(hist.epochs.len(), report.epochs_run);
        assert_eq!(hist.val_curve(), report.val_hr10_history);
        assert!(hist.loss_curve().iter().all(|&l| l.is_finite() && l > 0.0));
    }
}
