//! BPR training of the PinSage-like model with stale neighbor aggregates
//! and early stopping on validation HR@10 (§5.1.3).

use crate::config::GnnConfig;
use crate::model::PinSageModel;
use crate::recommender::{Caches, PinSageRecommender};
use ca_par as par;
use ca_recsys::eval::RankingEval;
use ca_recsys::{Dataset, HeldOut, ItemId, Scorer, UserId};
use ca_tensor::ops::{self, sigmoid};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Minimum minibatch size before per-pair gradients go to worker threads:
/// below this, scoped-thread spawn costs more than the gradient math.
/// Scheduling only — the serial and parallel paths return the same bits.
const PAR_MIN_PAIRS: usize = 256;

/// Summary of a training run.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Epochs actually run (≤ `max_epochs` with early stopping).
    pub epochs_run: usize,
    /// Validation HR@10 after each epoch.
    pub val_hr10_history: Vec<f32>,
    /// Best validation HR@10 observed.
    pub best_val_hr10: f32,
}

/// View used for validation scoring during training.
struct EvalView<'a> {
    model: &'a PinSageModel,
    caches: &'a Caches,
}

impl Scorer for EvalView<'_> {
    fn score(&self, user: UserId, item: ItemId) -> f32 {
        self.model.score_reprs(
            self.caches.h_user.row(user.idx()),
            self.caches.h_item.row(item.idx()),
            item,
        )
    }
}

/// Trains on `train_ds` with random item features. See [`train_with_features`].
pub fn train(
    train_ds: &Dataset,
    validation: &[HeldOut],
    cfg: &GnnConfig,
) -> (PinSageRecommender, TrainReport) {
    let model = PinSageModel::with_random_features(train_ds.n_items(), cfg.clone());
    train_model(model, train_ds, validation)
}

/// Trains on `train_ds` with the given frozen item features (e.g. MF item
/// embeddings pretrained on the clean data), early-stopping on `validation`,
/// and deploys the model over `train_ds`.
///
/// Validation pairs are subsampled to at most 500 for epoch-time evaluation;
/// this only affects the early-stopping signal, not reported metrics.
pub fn train_with_features(
    features: ca_tensor::Matrix,
    train_ds: &Dataset,
    validation: &[HeldOut],
    cfg: &GnnConfig,
) -> (PinSageRecommender, TrainReport) {
    assert_eq!(features.rows(), train_ds.n_items(), "feature/catalog mismatch");
    let model = PinSageModel::new(features, cfg.clone());
    train_model(model, train_ds, validation)
}

fn train_model(
    mut model: PinSageModel,
    train_ds: &Dataset,
    validation: &[HeldOut],
) -> (PinSageRecommender, TrainReport) {
    let cfg = model.cfg.clone();
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(0x9E37_79B9));
    let mut pairs: Vec<(UserId, ItemId)> = train_ds.interactions().collect();
    let n_items = train_ds.n_items() as u32;

    let mut val_sample: Vec<HeldOut> = validation.to_vec();
    val_sample.shuffle(&mut rng);
    val_sample.truncate(500);

    let mut history = Vec::new();
    let mut best = f32::NEG_INFINITY;
    let mut since_best = 0usize;
    let mut epochs_run = 0usize;

    let batch = cfg.minibatch.max(1);
    for _epoch in 0..cfg.max_epochs {
        // Stale aggregates for this epoch.
        let caches = Caches::compute(&model, train_ds);
        pairs.shuffle(&mut rng);
        for chunk in pairs.chunks(batch) {
            // Negative sampling stays on the single trainer RNG, so the
            // random stream is identical at every minibatch/thread count.
            let triples: Vec<(UserId, ItemId, ItemId)> = chunk
                .iter()
                .map(|&(u, pos)| {
                    let neg = loop {
                        let cand = ItemId(rng.gen_range(0..n_items));
                        if cand != pos && !train_ds.contains(u, cand) {
                            break cand;
                        }
                    };
                    (u, pos, neg)
                })
                .collect();
            let grads = par::map_min(&triples, PAR_MIN_PAIRS, |_, &(u, pos, neg)| {
                pair_grad(&model, train_ds, &caches, u, pos, neg)
            });
            let lr = model.cfg.lr;
            for g in &grads {
                model.item_tower.sgd_step(&g.item, lr);
                model.user_tower.sgd_step(&g.user, lr);
            }
        }
        epochs_run += 1;

        // Validation with fresh caches.
        let fresh = Caches::compute(&model, train_ds);
        let view = EvalView { model: &model, caches: &fresh };
        let ev = RankingEval { seen: train_ds, ks: vec![10] };
        let mut val_rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(7777));
        let acc = ev.evaluate(&view, &val_sample, &mut val_rng);
        let hr10 = acc.hr(10);
        history.push(hr10);

        if hr10 > best + 1e-5 {
            best = hr10;
            since_best = 0;
        } else {
            since_best += 1;
            if since_best >= cfg.patience {
                break;
            }
        }
    }

    let rec = PinSageRecommender::deploy(model, train_ds.clone());
    let report = TrainReport {
        epochs_run,
        val_hr10_history: history,
        best_val_hr10: if best.is_finite() { best } else { 0.0 },
    };
    (rec, report)
}

/// Tower gradients of one BPR triple against frozen towers (features are
/// frozen, so gradients stop at the tower inputs).
struct PairGrad {
    item: ca_nn::MlpGrad,
    user: ca_nn::MlpGrad,
}

fn pair_grad(
    model: &PinSageModel,
    ds: &Dataset,
    caches: &Caches,
    u: UserId,
    pos: ItemId,
    neg: ItemId,
) -> PairGrad {
    let profile = ds.profile(u);

    // Forward.
    let m_u = model.aggregate_profile(profile);
    let (h_u, cache_u) = model.user_tower.forward(&m_u);

    let x_pos = model.item_tower_input(pos, &caches.n_item(pos), caches.n_item_cnt[pos.idx()]);
    let x_neg = model.item_tower_input(neg, &caches.n_item(neg), caches.n_item_cnt[neg.idx()]);
    let (h_pos, cache_pos) = model.item_tower.forward(&x_pos);
    let (h_neg, cache_neg) = model.item_tower.forward(&x_neg);

    let s_pos = ops::dot(&h_u, &h_pos);
    let s_neg = ops::dot(&h_u, &h_neg);
    let g = sigmoid(s_pos - s_neg) - 1.0; // dL/d(s_pos) for L = -ln σ(s⁺−s⁻)

    // dL/dh_u = g * (h_pos - h_neg); dL/dh_pos = g * h_u; dL/dh_neg = -g * h_u.
    let dim = model.dim();
    let mut g_hu = vec![0.0; dim];
    for k in 0..dim {
        g_hu[k] = g * (h_pos[k] - h_neg[k]);
    }
    let g_hpos: Vec<f32> = h_u.iter().map(|x| g * x).collect();
    let g_hneg: Vec<f32> = h_u.iter().map(|x| -g * x).collect();

    let mut item = model.item_tower.zero_grad();
    model.item_tower.backward(&cache_pos, &g_hpos, &mut item);
    model.item_tower.backward(&cache_neg, &g_hneg, &mut item);

    let mut user = model.user_tower.zero_grad();
    model.user_tower.backward(&cache_u, &g_hu, &mut user);

    PairGrad { item, user }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_recsys::split_dataset;
    use ca_recsys::DatasetBuilder;

    /// Polarized two-group world, same flavor as the MF tests.
    fn polarized(n_per_group: usize) -> Dataset {
        let mut b = DatasetBuilder::new(30);
        for u in 0..2 * n_per_group {
            let base: u32 = if u < n_per_group { 0 } else { 15 };
            let profile: Vec<ItemId> =
                (0..8u32).map(|i| ItemId(base + (u as u32 * 5 + i) % 15)).collect();
            b.user(&profile);
        }
        b.build()
    }

    #[test]
    fn training_improves_validation_ranking() {
        let ds = polarized(20);
        let mut rng = StdRng::seed_from_u64(1);
        let split = split_dataset(&ds, 0.1, &mut rng);
        let cfg = GnnConfig { max_epochs: 15, seed: 2, ..Default::default() };
        let (_rec, report) = train(&split.train, &split.validation, &cfg);
        assert!(report.epochs_run >= 1);
        // Random ranking against 100 negatives gives HR@10 ≈ 0.1; the model
        // must clearly beat that.
        assert!(
            report.best_val_hr10 > 0.3,
            "best val HR@10 = {} (history {:?})",
            report.best_val_hr10,
            report.val_hr10_history
        );
    }

    #[test]
    fn early_stopping_respects_patience() {
        let ds = polarized(10);
        let mut rng = StdRng::seed_from_u64(3);
        let split = split_dataset(&ds, 0.1, &mut rng);
        let cfg = GnnConfig { max_epochs: 40, patience: 2, seed: 4, ..Default::default() };
        let (_rec, report) = train(&split.train, &split.validation, &cfg);
        assert!(report.epochs_run <= 40);
        // With patience 2 the run must not continue more than 2 epochs past
        // the best epoch.
        let best_idx = report
            .val_hr10_history
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        assert!(report.epochs_run <= best_idx + 1 + 2 + 1);
    }

    #[test]
    fn trained_model_separates_groups() {
        let ds = polarized(20);
        let mut rng = StdRng::seed_from_u64(5);
        let split = split_dataset(&ds, 0.1, &mut rng);
        let cfg = GnnConfig { max_epochs: 12, seed: 6, ..Default::default() };
        let (rec, _) = train(&split.train, &split.validation, &cfg);
        // Group-0 users should rank group-0 items above group-1 items.
        let mut ok = 0;
        for u in 0..20u32 {
            let own: f32 = (0..15u32).map(|v| rec.score(UserId(u), ItemId(v))).sum();
            let other: f32 = (15..30u32).map(|v| rec.score(UserId(u), ItemId(v))).sum();
            if own > other {
                ok += 1;
            }
        }
        assert!(ok >= 17, "only {ok}/20 group-0 users prefer their items");
    }

    #[test]
    fn training_is_deterministic() {
        let ds = polarized(8);
        let mut rng = StdRng::seed_from_u64(7);
        let split = split_dataset(&ds, 0.1, &mut rng);
        let cfg = GnnConfig { max_epochs: 3, seed: 8, ..Default::default() };
        let (a, ra) = train(&split.train, &split.validation, &cfg);
        let (b, rb) = train(&split.train, &split.validation, &cfg);
        assert_eq!(ra.val_hr10_history, rb.val_hr10_history);
        assert_eq!(
            a.model().user_tower.layers()[0].w.as_slice(),
            b.model().user_tower.layers()[0].w.as_slice()
        );
    }
}
