//! GNN target-model hyper-parameters.

/// Hyper-parameters for the PinSage-like target recommender.
#[derive(Clone, Debug)]
pub struct GnnConfig {
    /// Representation dimensionality of the tower outputs (paper: 8).
    pub dim: usize,
    /// Hidden width of the user/item towers.
    pub hidden: usize,
    /// SGD learning rate for the towers.
    pub lr: f32,
    /// Maximum training epochs.
    pub max_epochs: usize,
    /// Early-stopping patience on validation HR@10 (paper: 5).
    pub patience: usize,
    /// RNG seed.
    pub seed: u64,
    /// Per-pair update rule for tower training. The
    /// [`ca_train::Optimizer::Sgd`] default reproduces the historical
    /// hand-rolled tower updates bit-for-bit.
    pub optimizer: ca_train::Optimizer,
    /// Pairs per minibatch in training: gradients within a batch are
    /// computed against the frozen batch-start towers (in parallel on the
    /// `ca-par` runtime) and applied in pair order. `1` recovers classic
    /// per-pair SGD exactly.
    pub minibatch: usize,
}

impl Default for GnnConfig {
    fn default() -> Self {
        Self {
            dim: 8,
            hidden: 16,
            lr: 0.05,
            max_epochs: 40,
            patience: 5,
            seed: 0,
            optimizer: ca_train::Optimizer::Sgd,
            minibatch: 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_scale() {
        let c = GnnConfig::default();
        assert_eq!(c.dim, 8);
        assert_eq!(c.patience, 5);
    }
}
