//! Property-based tests for balanced clustering and the masked tree.

use ca_cluster::{balanced::balanced_groups, ClusterTree, TreeMask};
use ca_recsys::UserId;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn embeddings(n: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| (0..4).map(|_| ca_tensor::gaussian(&mut rng, 0.0, 1.0)).collect()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn balanced_sizes_differ_by_at_most_one(
        n in 2usize..80,
        k_frac in 0.1f64..1.0,
        seed in 0u64..500,
    ) {
        let k = ((n as f64 * k_frac) as usize).clamp(1, n);
        let pts = embeddings(n, seed);
        let refs: Vec<&[f32]> = pts.iter().map(|p| p.as_slice()).collect();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF00);
        let groups = balanced_groups(&refs, k, 15, &mut rng);
        let sizes: Vec<usize> = groups.iter().map(Vec::len).collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        prop_assert!(max - min <= 1, "n={n} k={k} sizes={sizes:?}");
        prop_assert_eq!(sizes.iter().sum::<usize>(), n);
    }

    #[test]
    fn tree_covers_every_user_exactly_once(
        n in 2usize..120,
        fanout in 2usize..6,
        seed in 0u64..300,
    ) {
        let e = embeddings(n, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let tree = ClusterTree::build(&e, fanout, &mut rng);
        prop_assert_eq!(tree.n_leaves(), n);
        let mut seen = vec![0u32; n];
        for id in 0..tree.n_nodes() {
            if tree.is_leaf(id) {
                seen[tree.leaf_user(id).idx()] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn tree_depth_is_logarithmic(
        n in 4usize..200,
        fanout in 2usize..6,
        seed in 0u64..200,
    ) {
        let e = embeddings(n, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let tree = ClusterTree::build(&e, fanout, &mut rng);
        let bound = (n as f64).log(fanout as f64).ceil() as usize + 1;
        prop_assert!(
            tree.depth() <= bound,
            "n={n} c={fanout}: depth {} > bound {bound}",
            tree.depth()
        );
    }

    #[test]
    fn mask_soundness_and_completeness(
        n in 2usize..80,
        fanout in 2usize..5,
        modulus in 1u32..10,
        seed in 0u64..200,
    ) {
        let e = embeddings(n, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let tree = ClusterTree::build(&e, fanout, &mut rng);
        let pred = |u: UserId| u.0.is_multiple_of(modulus);
        let mask = TreeMask::for_predicate(&tree, pred);

        // Soundness: every reachable leaf satisfies the predicate.
        // Completeness: every satisfying user is reachable.
        let mut reached = vec![false; n];
        let mut stack = vec![tree.root()];
        while let Some(id) = stack.pop() {
            if !mask.allowed(id) {
                continue;
            }
            if tree.is_leaf(id) {
                let u = tree.leaf_user(id);
                prop_assert!(pred(u), "reached masked user {u}");
                reached[u.idx()] = true;
            } else {
                stack.extend_from_slice(tree.children(id));
            }
        }
        for u in 0..n as u32 {
            if pred(UserId(u)) {
                prop_assert!(reached[u as usize], "allowed user u{u} unreachable");
            }
        }
        prop_assert_eq!(
            mask.n_allowed_leaves(),
            (0..n as u32).filter(|&u| pred(UserId(u))).count()
        );
    }
}
