//! Lloyd's k-means [17] with k-means++ seeding.

use ca_tensor::ops::sq_dist;
use rand::Rng;

/// Result of a k-means run.
#[derive(Clone, Debug)]
pub struct KMeansResult {
    /// Cluster centroids, `k × dim`.
    pub centroids: Vec<Vec<f32>>,
    /// Cluster index per input point.
    pub assignment: Vec<usize>,
    /// Final within-cluster sum of squared distances.
    pub inertia: f32,
}

/// Runs k-means over `points` (each of equal dimension).
///
/// Uses k-means++ seeding and at most `max_iters` Lloyd iterations,
/// stopping early when assignments stabilize. Empty clusters are re-seeded
/// on the farthest point from its centroid.
///
/// # Panics
/// Panics if `k == 0`, `points.is_empty()`, or `k > points.len()`.
pub fn kmeans(points: &[&[f32]], k: usize, max_iters: usize, rng: &mut impl Rng) -> KMeansResult {
    assert!(k > 0, "k must be positive");
    assert!(!points.is_empty(), "no points to cluster");
    assert!(k <= points.len(), "k = {k} exceeds {} points", points.len());
    let dim = points[0].len();

    let mut centroids = plus_plus_seed(points, k, rng);
    let mut assignment = vec![usize::MAX; points.len()];

    for _ in 0..max_iters {
        // Assignment step.
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let c = nearest(p, &centroids);
            if assignment[i] != c {
                assignment[i] = c;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        // Update step.
        let mut sums = vec![vec![0.0f32; dim]; k];
        let mut counts = vec![0usize; k];
        for (i, p) in points.iter().enumerate() {
            let c = assignment[i];
            for (s, &x) in sums[c].iter_mut().zip(p.iter()) {
                *s += x;
            }
            counts[c] += 1;
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed the empty cluster on the point farthest from its
                // current centroid.
                let far = (0..points.len())
                    .max_by(|&a, &b| {
                        let da = sq_dist(points[a], &centroids[assignment[a]]);
                        let db = sq_dist(points[b], &centroids[assignment[b]]);
                        da.partial_cmp(&db).expect("no NaN distances")
                    })
                    .expect("non-empty points");
                centroids[c] = points[far].to_vec();
            } else {
                for (j, s) in sums[c].iter().enumerate() {
                    centroids[c][j] = s / counts[c] as f32;
                }
            }
        }
    }

    let inertia =
        points.iter().enumerate().map(|(i, p)| sq_dist(p, &centroids[assignment[i]])).sum();
    KMeansResult { centroids, assignment, inertia }
}

/// k-means++ seeding: first centroid uniform, then each next centroid drawn
/// with probability proportional to squared distance from the nearest
/// already-chosen centroid.
fn plus_plus_seed(points: &[&[f32]], k: usize, rng: &mut impl Rng) -> Vec<Vec<f32>> {
    let mut centroids: Vec<Vec<f32>> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].to_vec());
    let mut d2: Vec<f32> = points.iter().map(|p| sq_dist(p, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f32 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All points coincide with chosen centroids; pick uniformly.
            rng.gen_range(0..points.len())
        } else {
            let mut u = rng.gen::<f32>() * total;
            let mut pick = points.len() - 1;
            for (i, &w) in d2.iter().enumerate() {
                if u < w {
                    pick = i;
                    break;
                }
                u -= w;
            }
            pick
        };
        centroids.push(points[next].to_vec());
        let c = centroids.last().expect("just pushed");
        for (i, p) in points.iter().enumerate() {
            let d = sq_dist(p, c);
            if d < d2[i] {
                d2[i] = d;
            }
        }
    }
    centroids
}

/// Index of the nearest centroid.
pub(crate) fn nearest(p: &[f32], centroids: &[Vec<f32>]) -> usize {
    let mut best = 0;
    let mut best_d = f32::INFINITY;
    for (c, centroid) in centroids.iter().enumerate() {
        let d = sq_dist(p, centroid);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Three well-separated blobs of 20 points each.
    fn blobs() -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(1);
        let centers = [[0.0f32, 0.0], [10.0, 0.0], [0.0, 10.0]];
        let mut pts = Vec::new();
        for c in &centers {
            for _ in 0..20 {
                pts.push(vec![
                    c[0] + ca_tensor::gaussian(&mut rng, 0.0, 0.5),
                    c[1] + ca_tensor::gaussian(&mut rng, 0.0, 0.5),
                ]);
            }
        }
        pts
    }

    #[test]
    fn recovers_separated_blobs() {
        let pts = blobs();
        let refs: Vec<&[f32]> = pts.iter().map(|p| p.as_slice()).collect();
        let mut rng = StdRng::seed_from_u64(2);
        let res = kmeans(&refs, 3, 50, &mut rng);
        // Points within the same blob must share a cluster.
        for blob in 0..3 {
            let first = res.assignment[blob * 20];
            for i in 0..20 {
                assert_eq!(res.assignment[blob * 20 + i], first, "blob {blob} split");
            }
        }
        // And different blobs must differ.
        assert_ne!(res.assignment[0], res.assignment[20]);
        assert_ne!(res.assignment[20], res.assignment[40]);
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let pts = blobs();
        let refs: Vec<&[f32]> = pts.iter().map(|p| p.as_slice()).collect();
        let mut rng = StdRng::seed_from_u64(3);
        let i1 = kmeans(&refs, 1, 50, &mut rng).inertia;
        let i3 = kmeans(&refs, 3, 50, &mut rng).inertia;
        assert!(i3 < i1 * 0.2, "k=3 inertia {i3} vs k=1 {i1}");
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let pts = [vec![0.0f32, 0.0], vec![1.0, 1.0], vec![2.0, 2.0]];
        let refs: Vec<&[f32]> = pts.iter().map(|p| p.as_slice()).collect();
        let mut rng = StdRng::seed_from_u64(4);
        let res = kmeans(&refs, 3, 50, &mut rng);
        assert!(res.inertia < 1e-9);
    }

    #[test]
    fn handles_duplicate_points() {
        let pts = vec![vec![1.0f32, 1.0]; 10];
        let refs: Vec<&[f32]> = pts.iter().map(|p| p.as_slice()).collect();
        let mut rng = StdRng::seed_from_u64(5);
        let res = kmeans(&refs, 3, 20, &mut rng);
        assert_eq!(res.assignment.len(), 10);
        assert!(res.inertia < 1e-9);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn rejects_k_larger_than_n() {
        let pts = [vec![0.0f32]];
        let refs: Vec<&[f32]> = pts.iter().map(|p| p.as_slice()).collect();
        let mut rng = StdRng::seed_from_u64(6);
        let _ = kmeans(&refs, 2, 10, &mut rng);
    }
}
