//! Lloyd's k-means \[17\] with k-means++ seeding.
//!
//! The Lloyd iterations run on the deterministic parallel runtime
//! (`ca-par`): the assignment step is an ordered parallel map over fixed
//! row-chunks of the flattened point matrix, and the update step is a
//! `map_reduce` whose per-chunk partial sums are combined in ascending
//! chunk order — so the result is bitwise identical at any `CA_THREADS`.
//! Seeding stays serial (it is inherently sequential in the RNG) and
//! consumes exactly the same random stream as the single-threaded path.

use ca_par as par;
use ca_tensor::ops::sq_dist;
use ca_tensor::Matrix;
use rand::Rng;

/// Rows per parallel work chunk in the assignment/update/inertia sweeps.
/// Part of the deterministic contract: the chunk grid (and therefore the
/// floating-point reduction order) depends only on the point count.
const CHUNK_ROWS: usize = 256;

/// Result of a k-means run.
#[derive(Clone, Debug)]
pub struct KMeansResult {
    /// Cluster centroids, `k × dim`.
    pub centroids: Vec<Vec<f32>>,
    /// Cluster index per input point.
    pub assignment: Vec<usize>,
    /// Final within-cluster sum of squared distances.
    pub inertia: f32,
}

/// Runs k-means over `points` (each of equal dimension).
///
/// Uses k-means++ seeding and at most `max_iters` Lloyd iterations,
/// stopping early when assignments stabilize. Empty clusters are re-seeded
/// on the farthest point from its centroid.
///
/// # Panics
/// Panics if `k == 0`, `points.is_empty()`, or `k > points.len()`.
pub fn kmeans(points: &[&[f32]], k: usize, max_iters: usize, rng: &mut impl Rng) -> KMeansResult {
    assert!(k > 0, "k must be positive");
    assert!(!points.is_empty(), "no points to cluster");
    assert!(k <= points.len(), "k = {k} exceeds {} points", points.len());
    let dim = points[0].len();
    let n = points.len();

    // One flat `n × dim` copy of the points: the hot sweeps below walk
    // contiguous row-chunks instead of chasing `&[&[f32]]` pointers.
    let flat = Matrix::from_rows(points);

    // Flattened `k × dim` centroid buffer (same rationale: the assignment
    // step's inner loop reads all k centroids per point).
    let mut centroids: Vec<f32> = Vec::with_capacity(k * dim);
    for c in plus_plus_seed(points, k, rng) {
        centroids.extend_from_slice(&c);
    }
    let mut assignment = vec![usize::MAX; n];

    for _ in 0..max_iters {
        // Assignment step: ordered parallel map over fixed row-chunks.
        let chunk_views: Vec<&[f32]> = flat.row_chunks(CHUNK_ROWS).collect();
        let new_chunks = par::map(&chunk_views, |_, rows| {
            rows.chunks_exact(dim).map(|p| nearest(p, &centroids, dim)).collect::<Vec<usize>>()
        });
        let mut changed = false;
        let mut i = 0;
        for chunk in new_chunks {
            for c in chunk {
                if assignment[i] != c {
                    assignment[i] = c;
                    changed = true;
                }
                i += 1;
            }
        }
        if !changed {
            break;
        }
        // Update step: per-chunk partial sums, combined in chunk order.
        let chunks: Vec<(usize, &[f32])> = flat
            .row_chunks(CHUNK_ROWS)
            .enumerate()
            .map(|(c, rows)| (c * CHUNK_ROWS, rows))
            .collect();
        let (sums, counts) = par::map_reduce(
            &chunks,
            1,
            |_, part| {
                let mut sums = vec![0.0f32; k * dim];
                let mut counts = vec![0usize; k];
                for &(start, rows) in part {
                    for (j, p) in rows.chunks_exact(dim).enumerate() {
                        let c = assignment[start + j];
                        for (s, &x) in sums[c * dim..(c + 1) * dim].iter_mut().zip(p) {
                            *s += x;
                        }
                        counts[c] += 1;
                    }
                }
                (sums, counts)
            },
            |(mut sa, mut ca), (sb, cb)| {
                for (a, b) in sa.iter_mut().zip(&sb) {
                    *a += b;
                }
                for (a, b) in ca.iter_mut().zip(&cb) {
                    *a += b;
                }
                (sa, ca)
            },
        )
        .expect("non-empty points");
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed the empty cluster on the point farthest from its
                // current centroid. `total_cmp` keeps this panic-free even
                // if degenerate inputs produce NaN distances.
                let far = (0..n)
                    .max_by(|&a, &b| {
                        let da = sq_dist(points[a], centroid(&centroids, assignment[a], dim));
                        let db = sq_dist(points[b], centroid(&centroids, assignment[b], dim));
                        da.total_cmp(&db)
                    })
                    .expect("non-empty points");
                centroids[c * dim..(c + 1) * dim].copy_from_slice(points[far]);
            } else {
                for (j, s) in sums[c * dim..(c + 1) * dim].iter().enumerate() {
                    centroids[c * dim + j] = s / counts[c] as f32;
                }
            }
        }
    }

    // Inertia: same fixed-chunk reduction discipline as the update step.
    let chunks: Vec<(usize, &[f32])> =
        flat.row_chunks(CHUNK_ROWS).enumerate().map(|(c, rows)| (c * CHUNK_ROWS, rows)).collect();
    let inertia = par::map_reduce(
        &chunks,
        1,
        |_, part| {
            let mut acc = 0.0f32;
            for &(start, rows) in part {
                for (j, p) in rows.chunks_exact(dim).enumerate() {
                    acc += sq_dist(p, centroid(&centroids, assignment[start + j], dim));
                }
            }
            acc
        },
        |a, b| a + b,
    )
    .expect("non-empty points");

    let centroids = centroids.chunks_exact(dim).map(<[f32]>::to_vec).collect();
    KMeansResult { centroids, assignment, inertia }
}

/// Row `c` of the flattened centroid buffer.
#[inline]
fn centroid(flat: &[f32], c: usize, dim: usize) -> &[f32] {
    &flat[c * dim..(c + 1) * dim]
}

/// k-means++ seeding: first centroid uniform, then each next centroid drawn
/// with probability proportional to squared distance from the nearest
/// already-chosen centroid.
fn plus_plus_seed(points: &[&[f32]], k: usize, rng: &mut impl Rng) -> Vec<Vec<f32>> {
    let mut centroids: Vec<Vec<f32>> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].to_vec());
    let mut d2: Vec<f32> = points.iter().map(|p| sq_dist(p, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f32 = d2.iter().sum();
        // A NaN or infinite total (a NaN distance anywhere would otherwise
        // poison the cumulative scan below and silently pin the pick on the
        // last point) falls back to a uniform draw, as does an all-zero one.
        // Both branches consume exactly one random word, so the choice of
        // branch never desynchronizes the caller's stream.
        let next = if !total.is_finite() || total <= 0.0 {
            rng.gen_range(0..points.len())
        } else {
            let mut u = rng.gen::<f32>() * total;
            let mut pick = points.len() - 1;
            for (i, &w) in d2.iter().enumerate() {
                if u < w {
                    pick = i;
                    break;
                }
                u -= w;
            }
            pick
        };
        centroids.push(points[next].to_vec());
        let c = centroids.last().expect("just pushed");
        for (i, p) in points.iter().enumerate() {
            let d = sq_dist(p, c);
            if d < d2[i] {
                d2[i] = d;
            }
        }
    }
    centroids
}

/// Index of the nearest centroid in a flattened `k × dim` buffer.
///
/// A single linear sweep over contiguous memory — the hot inner loop of the
/// assignment step, kept free of the per-centroid `Vec` pointer chase.
#[inline]
pub(crate) fn nearest(p: &[f32], centroids_flat: &[f32], dim: usize) -> usize {
    let mut best = 0;
    let mut best_d = f32::INFINITY;
    for (c, centroid) in centroids_flat.chunks_exact(dim).enumerate() {
        let d = sq_dist(p, centroid);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Three well-separated blobs of 20 points each.
    fn blobs() -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(1);
        let centers = [[0.0f32, 0.0], [10.0, 0.0], [0.0, 10.0]];
        let mut pts = Vec::new();
        for c in &centers {
            for _ in 0..20 {
                pts.push(vec![
                    c[0] + ca_tensor::gaussian(&mut rng, 0.0, 0.5),
                    c[1] + ca_tensor::gaussian(&mut rng, 0.0, 0.5),
                ]);
            }
        }
        pts
    }

    #[test]
    fn recovers_separated_blobs() {
        let pts = blobs();
        let refs: Vec<&[f32]> = pts.iter().map(|p| p.as_slice()).collect();
        let mut rng = StdRng::seed_from_u64(2);
        let res = kmeans(&refs, 3, 50, &mut rng);
        // Points within the same blob must share a cluster.
        for blob in 0..3 {
            let first = res.assignment[blob * 20];
            for i in 0..20 {
                assert_eq!(res.assignment[blob * 20 + i], first, "blob {blob} split");
            }
        }
        // And different blobs must differ.
        assert_ne!(res.assignment[0], res.assignment[20]);
        assert_ne!(res.assignment[20], res.assignment[40]);
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let pts = blobs();
        let refs: Vec<&[f32]> = pts.iter().map(|p| p.as_slice()).collect();
        let mut rng = StdRng::seed_from_u64(3);
        let i1 = kmeans(&refs, 1, 50, &mut rng).inertia;
        let i3 = kmeans(&refs, 3, 50, &mut rng).inertia;
        assert!(i3 < i1 * 0.2, "k=3 inertia {i3} vs k=1 {i1}");
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let pts = [vec![0.0f32, 0.0], vec![1.0, 1.0], vec![2.0, 2.0]];
        let refs: Vec<&[f32]> = pts.iter().map(|p| p.as_slice()).collect();
        let mut rng = StdRng::seed_from_u64(4);
        let res = kmeans(&refs, 3, 50, &mut rng);
        assert!(res.inertia < 1e-9);
    }

    #[test]
    fn handles_duplicate_points() {
        let pts = vec![vec![1.0f32, 1.0]; 10];
        let refs: Vec<&[f32]> = pts.iter().map(|p| p.as_slice()).collect();
        let mut rng = StdRng::seed_from_u64(5);
        let res = kmeans(&refs, 3, 20, &mut rng);
        assert_eq!(res.assignment.len(), 10);
        assert!(res.inertia < 1e-9);
    }

    #[test]
    fn survives_nan_coordinates_without_panicking() {
        // A NaN coordinate poisons every distance it touches; the re-seed
        // comparator and the seeding fallback must both stay total. (The
        // pre-`total_cmp` code panicked on "no NaN distances" here.)
        let mut pts: Vec<Vec<f32>> = (0..8).map(|i| vec![i as f32, 0.0]).collect();
        pts.push(vec![f32::NAN, 0.0]);
        let refs: Vec<&[f32]> = pts.iter().map(|p| p.as_slice()).collect();
        let mut rng = StdRng::seed_from_u64(11);
        let res = kmeans(&refs, 3, 10, &mut rng);
        assert_eq!(res.assignment.len(), 9);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn rejects_k_larger_than_n() {
        let pts = [vec![0.0f32]];
        let refs: Vec<&[f32]> = pts.iter().map(|p| p.as_slice()).collect();
        let mut rng = StdRng::seed_from_u64(6);
        let _ = kmeans(&refs, 2, 10, &mut rng);
    }

    #[test]
    fn result_is_bitwise_identical_across_thread_counts() {
        let pts = blobs();
        let refs: Vec<&[f32]> = pts.iter().map(|p| p.as_slice()).collect();
        let run = || {
            let mut rng = StdRng::seed_from_u64(7);
            kmeans(&refs, 4, 50, &mut rng)
        };
        par::set_threads(Some(1));
        let base = run();
        for t in [2, 3, 8] {
            par::set_threads(Some(t));
            let r = run();
            assert_eq!(r.assignment, base.assignment, "threads {t}");
            assert_eq!(r.centroids, base.centroids, "threads {t}");
            assert_eq!(r.inertia.to_bits(), base.inertia.to_bits(), "threads {t}");
        }
        par::set_threads(None);
    }
}
