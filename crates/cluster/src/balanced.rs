//! Equal-size ("balanced") k-means assignment (§4.3.1).
//!
//! The paper: "we first apply the traditional K-mean clustering … to obtain
//! the set of c centroids. Then, we reassign the users to these c centroids
//! one at a time based on their Euclidean distance to ensure we have a
//! balanced set of clusters" (sizes off by at most one).

use crate::kmeans::kmeans;
use ca_tensor::ops::sq_dist;
use rand::Rng;

/// Runs k-means, then reassigns points to equal-size clusters.
///
/// The reassignment considers all (point, centroid) pairs in ascending
/// distance order and greedily fixes each point to the closest centroid
/// that still has capacity. Capacities are `⌈n/k⌉` for the first `n mod k`
/// clusters and `⌊n/k⌋` for the rest, so sizes differ by at most one.
///
/// Returns the assignment vector (cluster index per point).
pub fn balanced_kmeans(
    points: &[&[f32]],
    k: usize,
    max_iters: usize,
    rng: &mut impl Rng,
) -> Vec<usize> {
    assert!(k > 0 && k <= points.len(), "bad k = {k} for {} points", points.len());
    let res = kmeans(points, k, max_iters, rng);
    let n = points.len();

    // Capacity per cluster.
    let base = n / k;
    let extra = n % k;
    let mut capacity: Vec<usize> = (0..k).map(|c| base + usize::from(c < extra)).collect();

    // All pairs sorted by distance.
    let mut pairs: Vec<(f32, u32, u32)> = Vec::with_capacity(n * k);
    for (i, p) in points.iter().enumerate() {
        for (c, centroid) in res.centroids.iter().enumerate() {
            pairs.push((sq_dist(p, centroid), i as u32, c as u32));
        }
    }
    // `total_cmp` keeps the sort panic-free on NaN distances (they order
    // last, so finite pairs still win every capacity slot first).
    pairs.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));

    let mut assignment = vec![usize::MAX; n];
    let mut assigned = 0usize;
    for &(_, i, c) in &pairs {
        let (i, c) = (i as usize, c as usize);
        if assignment[i] != usize::MAX || capacity[c] == 0 {
            continue;
        }
        assignment[i] = c;
        capacity[c] -= 1;
        assigned += 1;
        if assigned == n {
            break;
        }
    }
    debug_assert!(assignment.iter().all(|&a| a != usize::MAX));
    assignment
}

/// Convenience: groups point indices by their balanced cluster.
pub fn balanced_groups(
    points: &[&[f32]],
    k: usize,
    max_iters: usize,
    rng: &mut impl Rng,
) -> Vec<Vec<usize>> {
    let assignment = balanced_kmeans(points, k, max_iters, rng);
    let mut groups = vec![Vec::new(); k];
    for (i, &c) in assignment.iter().enumerate() {
        groups[c].push(i);
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ring(n: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| {
                let a = i as f32 / n as f32 * std::f32::consts::TAU;
                vec![a.cos(), a.sin()]
            })
            .collect()
    }

    #[test]
    fn sizes_differ_by_at_most_one() {
        for (n, k) in [(30, 4), (31, 4), (33, 4), (10, 3), (7, 7)] {
            let pts = ring(n);
            let refs: Vec<&[f32]> = pts.iter().map(|p| p.as_slice()).collect();
            let mut rng = StdRng::seed_from_u64(1);
            let groups = balanced_groups(&refs, k, 30, &mut rng);
            let sizes: Vec<usize> = groups.iter().map(Vec::len).collect();
            let max = *sizes.iter().max().unwrap();
            let min = *sizes.iter().min().unwrap();
            assert!(max - min <= 1, "n={n} k={k} sizes {sizes:?}");
            assert_eq!(sizes.iter().sum::<usize>(), n);
        }
    }

    #[test]
    fn every_point_is_assigned_exactly_once() {
        let pts = ring(25);
        let refs: Vec<&[f32]> = pts.iter().map(|p| p.as_slice()).collect();
        let mut rng = StdRng::seed_from_u64(2);
        let assignment = balanced_kmeans(&refs, 5, 30, &mut rng);
        assert_eq!(assignment.len(), 25);
        assert!(assignment.iter().all(|&c| c < 5));
    }

    #[test]
    fn balanced_assignment_respects_geometry_for_balanced_data() {
        // Two blobs of equal size: the balanced constraint should not force
        // cross-blob mixing.
        let mut pts: Vec<Vec<f32>> = (0..10).map(|i| vec![0.0, i as f32 * 0.01]).collect();
        pts.extend((0..10).map(|i| vec![100.0, i as f32 * 0.01]));
        let refs: Vec<&[f32]> = pts.iter().map(|p| p.as_slice()).collect();
        let mut rng = StdRng::seed_from_u64(3);
        let assignment = balanced_kmeans(&refs, 2, 30, &mut rng);
        let first = assignment[0];
        assert!(assignment[..10].iter().all(|&c| c == first));
        assert!(assignment[10..].iter().all(|&c| c != first));
    }

    #[test]
    fn single_cluster_takes_everything() {
        let pts = ring(9);
        let refs: Vec<&[f32]> = pts.iter().map(|p| p.as_slice()).collect();
        let mut rng = StdRng::seed_from_u64(4);
        let groups = balanced_groups(&refs, 1, 10, &mut rng);
        assert_eq!(groups[0].len(), 9);
    }
}
