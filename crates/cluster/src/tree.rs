//! The balanced c-ary hierarchical clustering tree (§4.3.1).
//!
//! Construction is seed-split: the caller's RNG contributes exactly one
//! 64-bit root seed, and every node derives its own k-means RNG and its
//! children's subtree seeds from its position in the tree
//! ([`ca_par::SeedSplit`]). Sibling subtrees therefore never share random
//! state, so they build independently — in parallel on the `ca-par`
//! runtime — and the finished tree is bitwise identical at any
//! `CA_THREADS` setting.

use crate::balanced::balanced_groups;
use ca_par::{self as par, SeedSplit};
use ca_recsys::UserId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Index of a node within a [`ClusterTree`].
pub type NodeId = usize;

/// Smallest member count worth forking sibling builds for. The gate depends
/// only on the subtree size — never the thread count — so the recursion
/// structure (and with seed-splitting, the output) is invariant.
const PAR_MIN_MEMBERS: usize = 256;

/// Node payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// Non-leaf: hosts a policy network choosing among `children`.
    Internal {
        /// Child node ids, in the order the policy network's outputs map to.
        children: Vec<NodeId>,
    },
    /// Leaf: one source-domain user.
    Leaf {
        /// The user this leaf represents.
        user: UserId,
    },
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct Node {
    kind: NodeKind,
    #[allow(dead_code)] // kept for tree inspection / future traversals
    parent: Option<NodeId>,
}

/// One independently built subtree: nodes in DFS preorder with local ids
/// (0 = subtree root, local parent links), plus its decision depth.
struct Sub {
    nodes: Vec<Node>,
    depth: usize,
}

/// Balanced hierarchical clustering tree over source-domain users.
///
/// Built top-down: a node holding more than `fanout` users splits them into
/// `fanout` equal-size clusters (balanced k-means on the user embeddings)
/// and recurses; a node holding at most `fanout` users becomes the parent
/// of those users' leaves.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterTree {
    fanout: usize,
    nodes: Vec<Node>,
    leaf_of_user: Vec<NodeId>,
    internal_index: Vec<Option<usize>>,
    n_internal: usize,
    depth: usize,
}

impl ClusterTree {
    /// Builds the tree over user embeddings; `embeddings[i]` belongs to
    /// `UserId(i)`. Draws a single root seed from `rng` and delegates to
    /// [`Self::build_seeded`].
    ///
    /// # Panics
    /// Panics if `fanout < 2` or there are no users.
    pub fn build(embeddings: &[Vec<f32>], fanout: usize, rng: &mut impl Rng) -> Self {
        let root_seed = rng.gen::<u64>();
        Self::build_seeded(embeddings, fanout, root_seed)
    }

    /// Builds the tree from an explicit root seed. The same
    /// `(embeddings, fanout, seed)` triple yields the same tree on every
    /// run and at every thread count.
    ///
    /// # Panics
    /// Panics if `fanout < 2` or there are no users.
    pub fn build_seeded(embeddings: &[Vec<f32>], fanout: usize, seed: u64) -> Self {
        assert!(fanout >= 2, "fanout must be at least 2");
        assert!(!embeddings.is_empty(), "cannot build a tree over zero users");
        let all: Vec<usize> = (0..embeddings.len()).collect();
        let sub = build_subtree(embeddings, &all, fanout, SeedSplit::new(seed));

        let mut leaf_of_user = vec![usize::MAX; embeddings.len()];
        let mut internal_index = vec![None; sub.nodes.len()];
        let mut n_internal = 0;
        for (id, node) in sub.nodes.iter().enumerate() {
            match node.kind {
                NodeKind::Internal { .. } => {
                    internal_index[id] = Some(n_internal);
                    n_internal += 1;
                }
                NodeKind::Leaf { user } => leaf_of_user[user.idx()] = id,
            }
        }
        Self {
            fanout,
            nodes: sub.nodes,
            leaf_of_user,
            internal_index,
            n_internal,
            depth: sub.depth,
        }
    }

    /// Builds a tree of (approximately) the requested decision depth by
    /// choosing `fanout = ⌈n^(1/depth)⌉` — this is how the Figure 3 depth
    /// sweep varies `d` at a fixed user count.
    pub fn build_with_depth(embeddings: &[Vec<f32>], depth: usize, rng: &mut impl Rng) -> Self {
        assert!(depth >= 1, "depth must be at least 1");
        let n = embeddings.len() as f64;
        let fanout = (n.powf(1.0 / depth as f64).ceil() as usize).max(2);
        Self::build(embeddings, fanout, rng)
    }

    /// The root node (always id 0).
    pub fn root(&self) -> NodeId {
        0
    }

    /// Configured fanout c.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// The node's payload.
    pub fn kind(&self, node: NodeId) -> &NodeKind {
        &self.nodes[node].kind
    }

    /// Children of an internal node.
    ///
    /// # Panics
    /// Panics if `node` is a leaf.
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        match &self.nodes[node].kind {
            NodeKind::Internal { children } => children,
            NodeKind::Leaf { .. } => panic!("node {node} is a leaf"),
        }
    }

    /// Whether the node is a leaf.
    pub fn is_leaf(&self, node: NodeId) -> bool {
        matches!(self.nodes[node].kind, NodeKind::Leaf { .. })
    }

    /// The user at a leaf.
    ///
    /// # Panics
    /// Panics if `node` is internal.
    pub fn leaf_user(&self, node: NodeId) -> UserId {
        match self.nodes[node].kind {
            NodeKind::Leaf { user } => user,
            NodeKind::Internal { .. } => panic!("node {node} is internal"),
        }
    }

    /// The leaf holding `user`.
    pub fn leaf_of_user(&self, user: UserId) -> NodeId {
        self.leaf_of_user[user.idx()]
    }

    /// Maximum number of decisions on any root→leaf path.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of internal nodes (= number of policy networks, the paper's
    /// `I`).
    pub fn n_internal(&self) -> usize {
        self.n_internal
    }

    /// Total node count.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves (= number of users).
    pub fn n_leaves(&self) -> usize {
        self.leaf_of_user.len()
    }

    /// Dense index of an internal node in `0..n_internal()`, used to map
    /// nodes to their policy networks.
    ///
    /// # Panics
    /// Panics if `node` is a leaf.
    pub fn internal_index(&self, node: NodeId) -> usize {
        self.internal_index[node].unwrap_or_else(|| panic!("node {node} is a leaf"))
    }

    /// Iterates over all internal node ids.
    pub fn internal_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).filter(|&id| !self.is_leaf(id))
    }
}

/// Builds one subtree over `members` (global user indices).
///
/// RNG discipline: this node's balanced k-means runs on `seed.child(0)`,
/// and child subtree `i` receives `seed.child(i + 1)` — so a subtree's
/// randomness is a pure function of its position under the root seed,
/// independent of when (or on which thread) it is built.
fn build_subtree(
    embeddings: &[Vec<f32>],
    members: &[usize],
    fanout: usize,
    seed: SeedSplit,
) -> Sub {
    let mut nodes = vec![Node { kind: NodeKind::Internal { children: Vec::new() }, parent: None }];

    if members.len() <= fanout {
        // Attach leaves directly, in member order.
        let children: Vec<NodeId> = members
            .iter()
            .map(|&m| {
                nodes.push(Node {
                    kind: NodeKind::Leaf { user: UserId(m as u32) },
                    parent: Some(0),
                });
                nodes.len() - 1
            })
            .collect();
        nodes[0].kind = NodeKind::Internal { children };
        return Sub { nodes, depth: 1 };
    }

    let mut rng = StdRng::seed_from_u64(seed.child(0).seed());
    let refs: Vec<&[f32]> = members.iter().map(|&m| embeddings[m].as_slice()).collect();
    let groups = balanced_groups(&refs, fanout, 25, &mut rng);
    let group_members: Vec<Vec<usize>> = groups
        .into_iter()
        .map(|group| {
            debug_assert!(!group.is_empty(), "balanced split produced an empty group");
            group.into_iter().map(|local| members[local]).collect()
        })
        .collect();

    // Sibling subtrees are seed-independent, so they can build on worker
    // threads; small nodes recurse inline to avoid fork overhead.
    let subs: Vec<Sub> = if members.len() >= PAR_MIN_MEMBERS {
        par::map(&group_members, |i, sub_members| {
            build_subtree(embeddings, sub_members, fanout, seed.child(i as u64 + 1))
        })
    } else {
        group_members
            .iter()
            .enumerate()
            .map(|(i, sub_members)| {
                build_subtree(embeddings, sub_members, fanout, seed.child(i as u64 + 1))
            })
            .collect()
    };

    // Splice the subtrees in fixed child order, remapping local ids by each
    // subtree's offset. The result is exactly the DFS preorder a serial
    // recursive build would produce.
    let mut children = Vec::with_capacity(subs.len());
    let mut depth = 0;
    for sub in subs {
        let offset = nodes.len();
        children.push(offset);
        depth = depth.max(sub.depth);
        for mut node in sub.nodes {
            node.parent = Some(node.parent.map_or(0, |p| p + offset));
            if let NodeKind::Internal { children } = &mut node.kind {
                for c in children.iter_mut() {
                    *c += offset;
                }
            }
            nodes.push(node);
        }
    }
    nodes[0].kind = NodeKind::Internal { children };
    Sub { nodes, depth: depth + 1 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn embeddings(n: usize) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(9);
        (0..n).map(|_| (0..4).map(|_| ca_tensor::gaussian(&mut rng, 0.0, 1.0)).collect()).collect()
    }

    #[test]
    fn every_user_has_exactly_one_leaf() {
        let e = embeddings(50);
        let mut rng = StdRng::seed_from_u64(1);
        let tree = ClusterTree::build(&e, 3, &mut rng);
        let mut seen = [false; 50];
        for id in 0..tree.n_nodes() {
            if tree.is_leaf(id) {
                let u = tree.leaf_user(id);
                assert!(!seen[u.idx()], "user {u} appears twice");
                seen[u.idx()] = true;
                assert_eq!(tree.leaf_of_user(u), id);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn depth_matches_logarithmic_bound() {
        let e = embeddings(64);
        let mut rng = StdRng::seed_from_u64(2);
        let tree = ClusterTree::build(&e, 4, &mut rng);
        // 4^3 = 64, so the decision depth must be 3 (paper: c^{d-1} < n ≤ c^d).
        assert_eq!(tree.depth(), 3);
    }

    #[test]
    fn paper_example_shape() {
        // 8 users, fanout 2 → depth 3, 7 internal nodes (the Figure 2 example).
        let e = embeddings(8);
        let mut rng = StdRng::seed_from_u64(3);
        let tree = ClusterTree::build(&e, 2, &mut rng);
        assert_eq!(tree.depth(), 3);
        assert_eq!(tree.n_internal(), 7);
        assert_eq!(tree.n_leaves(), 8);
    }

    #[test]
    fn internal_indices_are_dense() {
        let e = embeddings(30);
        let mut rng = StdRng::seed_from_u64(4);
        let tree = ClusterTree::build(&e, 3, &mut rng);
        let mut seen = vec![false; tree.n_internal()];
        for id in tree.internal_nodes() {
            let idx = tree.internal_index(id);
            assert!(!seen[idx]);
            seen[idx] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn build_with_depth_hits_requested_depth() {
        let e = embeddings(100);
        for d in 2..=4 {
            let mut rng = StdRng::seed_from_u64(5);
            let tree = ClusterTree::build_with_depth(&e, d, &mut rng);
            assert!(
                tree.depth() <= d && tree.depth() + 1 >= d,
                "requested {d}, got {} (fanout {})",
                tree.depth(),
                tree.fanout()
            );
        }
    }

    #[test]
    fn children_counts_respect_fanout() {
        let e = embeddings(40);
        let mut rng = StdRng::seed_from_u64(6);
        let tree = ClusterTree::build(&e, 3, &mut rng);
        for id in tree.internal_nodes() {
            let c = tree.children(id).len();
            assert!((1..=3).contains(&c), "node {id} has {c} children");
        }
    }

    #[test]
    fn similar_users_share_subtrees() {
        // Two tight blobs; with fanout 2 the first split must separate them.
        let mut e: Vec<Vec<f32>> = (0..8).map(|i| vec![0.0, i as f32 * 0.01]).collect();
        e.extend((0..8).map(|i| vec![50.0, i as f32 * 0.01]));
        let mut rng = StdRng::seed_from_u64(7);
        let tree = ClusterTree::build(&e, 2, &mut rng);
        let top = tree.children(tree.root());
        // Collect users under each top-level child.
        let mut groups: Vec<Vec<u32>> = Vec::new();
        for &child in top {
            let mut stack = vec![child];
            let mut users = Vec::new();
            while let Some(id) = stack.pop() {
                if tree.is_leaf(id) {
                    users.push(tree.leaf_user(id).0);
                } else {
                    stack.extend_from_slice(tree.children(id));
                }
            }
            users.sort_unstable();
            groups.push(users);
        }
        let blob_a: Vec<u32> = (0..8).collect();
        let blob_b: Vec<u32> = (8..16).collect();
        assert!(
            (groups[0] == blob_a && groups[1] == blob_b)
                || (groups[0] == blob_b && groups[1] == blob_a),
            "top split mixed the blobs: {groups:?}"
        );
    }

    #[test]
    fn build_is_identical_across_thread_counts() {
        // 300 users crosses PAR_MIN_MEMBERS, so the root-level siblings fork
        // onto workers whenever more than one thread is available.
        let e = embeddings(300);
        par::set_threads(Some(1));
        let base = ClusterTree::build_seeded(&e, 4, 0xC0FFEE);
        for t in [2, 3, 8] {
            par::set_threads(Some(t));
            let tree = ClusterTree::build_seeded(&e, 4, 0xC0FFEE);
            assert_eq!(tree, base, "threads {t}");
        }
        par::set_threads(None);
    }

    #[test]
    fn build_seeded_is_a_pure_function_of_its_seed() {
        let e = embeddings(60);
        let a = ClusterTree::build_seeded(&e, 3, 5);
        let b = ClusterTree::build_seeded(&e, 3, 5);
        let c = ClusterTree::build_seeded(&e, 3, 6);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should (generically) differ");
    }

    #[test]
    #[should_panic(expected = "fanout must be at least 2")]
    fn rejects_unary_fanout() {
        let e = embeddings(4);
        let mut rng = StdRng::seed_from_u64(8);
        let _ = ClusterTree::build(&e, 1, &mut rng);
    }
}
