//! The balanced c-ary hierarchical clustering tree (§4.3.1).

use crate::balanced::balanced_groups;
use ca_recsys::UserId;
use rand::Rng;

/// Index of a node within a [`ClusterTree`].
pub type NodeId = usize;

/// Node payload.
#[derive(Clone, Debug)]
pub enum NodeKind {
    /// Non-leaf: hosts a policy network choosing among `children`.
    Internal {
        /// Child node ids, in the order the policy network's outputs map to.
        children: Vec<NodeId>,
    },
    /// Leaf: one source-domain user.
    Leaf {
        /// The user this leaf represents.
        user: UserId,
    },
}

#[derive(Clone, Debug)]
struct Node {
    kind: NodeKind,
    #[allow(dead_code)] // kept for tree inspection / future traversals
    parent: Option<NodeId>,
}

/// Balanced hierarchical clustering tree over source-domain users.
///
/// Built top-down: a node holding more than `fanout` users splits them into
/// `fanout` equal-size clusters (balanced k-means on the user embeddings)
/// and recurses; a node holding at most `fanout` users becomes the parent
/// of those users' leaves.
#[derive(Clone, Debug)]
pub struct ClusterTree {
    fanout: usize,
    nodes: Vec<Node>,
    leaf_of_user: Vec<NodeId>,
    internal_index: Vec<Option<usize>>,
    n_internal: usize,
    depth: usize,
}

impl ClusterTree {
    /// Builds the tree over user embeddings; `embeddings[i]` belongs to
    /// `UserId(i)`.
    ///
    /// # Panics
    /// Panics if `fanout < 2` or there are no users.
    pub fn build(embeddings: &[Vec<f32>], fanout: usize, rng: &mut impl Rng) -> Self {
        assert!(fanout >= 2, "fanout must be at least 2");
        assert!(!embeddings.is_empty(), "cannot build a tree over zero users");
        let mut tree = Self {
            fanout,
            nodes: Vec::new(),
            leaf_of_user: vec![usize::MAX; embeddings.len()],
            internal_index: Vec::new(),
            n_internal: 0,
            depth: 0,
        };
        let all: Vec<usize> = (0..embeddings.len()).collect();
        let root = tree.build_node(embeddings, all, None, 1, rng);
        debug_assert_eq!(root, 0, "root must be node 0");
        tree.internal_index = vec![None; tree.nodes.len()];
        let mut next = 0;
        for id in 0..tree.nodes.len() {
            if matches!(tree.nodes[id].kind, NodeKind::Internal { .. }) {
                tree.internal_index[id] = Some(next);
                next += 1;
            }
        }
        tree.n_internal = next;
        tree
    }

    /// Builds a tree of (approximately) the requested decision depth by
    /// choosing `fanout = ⌈n^(1/depth)⌉` — this is how the Figure 3 depth
    /// sweep varies `d` at a fixed user count.
    pub fn build_with_depth(embeddings: &[Vec<f32>], depth: usize, rng: &mut impl Rng) -> Self {
        assert!(depth >= 1, "depth must be at least 1");
        let n = embeddings.len() as f64;
        let fanout = (n.powf(1.0 / depth as f64).ceil() as usize).max(2);
        Self::build(embeddings, fanout, rng)
    }

    fn build_node(
        &mut self,
        embeddings: &[Vec<f32>],
        members: Vec<usize>,
        parent: Option<NodeId>,
        level: usize,
        rng: &mut impl Rng,
    ) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(Node { kind: NodeKind::Internal { children: Vec::new() }, parent });
        let mut children = Vec::new();
        if members.len() <= self.fanout {
            // Attach leaves directly.
            for &m in &members {
                let leaf_id = self.nodes.len();
                self.nodes.push(Node {
                    kind: NodeKind::Leaf { user: UserId(m as u32) },
                    parent: Some(id),
                });
                self.leaf_of_user[m] = leaf_id;
                children.push(leaf_id);
            }
            self.depth = self.depth.max(level);
        } else {
            let refs: Vec<&[f32]> = members.iter().map(|&m| embeddings[m].as_slice()).collect();
            let groups = balanced_groups(&refs, self.fanout, 25, rng);
            for group in groups {
                let sub: Vec<usize> = group.into_iter().map(|local| members[local]).collect();
                debug_assert!(!sub.is_empty(), "balanced split produced an empty group");
                let child = self.build_node(embeddings, sub, Some(id), level + 1, rng);
                children.push(child);
            }
        }
        match &mut self.nodes[id].kind {
            NodeKind::Internal { children: c } => *c = children,
            NodeKind::Leaf { .. } => unreachable!(),
        }
        id
    }

    /// The root node (always id 0).
    pub fn root(&self) -> NodeId {
        0
    }

    /// Configured fanout c.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// The node's payload.
    pub fn kind(&self, node: NodeId) -> &NodeKind {
        &self.nodes[node].kind
    }

    /// Children of an internal node.
    ///
    /// # Panics
    /// Panics if `node` is a leaf.
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        match &self.nodes[node].kind {
            NodeKind::Internal { children } => children,
            NodeKind::Leaf { .. } => panic!("node {node} is a leaf"),
        }
    }

    /// Whether the node is a leaf.
    pub fn is_leaf(&self, node: NodeId) -> bool {
        matches!(self.nodes[node].kind, NodeKind::Leaf { .. })
    }

    /// The user at a leaf.
    ///
    /// # Panics
    /// Panics if `node` is internal.
    pub fn leaf_user(&self, node: NodeId) -> UserId {
        match self.nodes[node].kind {
            NodeKind::Leaf { user } => user,
            NodeKind::Internal { .. } => panic!("node {node} is internal"),
        }
    }

    /// The leaf holding `user`.
    pub fn leaf_of_user(&self, user: UserId) -> NodeId {
        self.leaf_of_user[user.idx()]
    }

    /// Maximum number of decisions on any root→leaf path.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of internal nodes (= number of policy networks, the paper's
    /// `I`).
    pub fn n_internal(&self) -> usize {
        self.n_internal
    }

    /// Total node count.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves (= number of users).
    pub fn n_leaves(&self) -> usize {
        self.leaf_of_user.len()
    }

    /// Dense index of an internal node in `0..n_internal()`, used to map
    /// nodes to their policy networks.
    ///
    /// # Panics
    /// Panics if `node` is a leaf.
    pub fn internal_index(&self, node: NodeId) -> usize {
        self.internal_index[node].unwrap_or_else(|| panic!("node {node} is a leaf"))
    }

    /// Iterates over all internal node ids.
    pub fn internal_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).filter(|&id| !self.is_leaf(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn embeddings(n: usize) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(9);
        (0..n).map(|_| (0..4).map(|_| ca_tensor::gaussian(&mut rng, 0.0, 1.0)).collect()).collect()
    }

    #[test]
    fn every_user_has_exactly_one_leaf() {
        let e = embeddings(50);
        let mut rng = StdRng::seed_from_u64(1);
        let tree = ClusterTree::build(&e, 3, &mut rng);
        let mut seen = [false; 50];
        for id in 0..tree.n_nodes() {
            if tree.is_leaf(id) {
                let u = tree.leaf_user(id);
                assert!(!seen[u.idx()], "user {u} appears twice");
                seen[u.idx()] = true;
                assert_eq!(tree.leaf_of_user(u), id);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn depth_matches_logarithmic_bound() {
        let e = embeddings(64);
        let mut rng = StdRng::seed_from_u64(2);
        let tree = ClusterTree::build(&e, 4, &mut rng);
        // 4^3 = 64, so the decision depth must be 3 (paper: c^{d-1} < n ≤ c^d).
        assert_eq!(tree.depth(), 3);
    }

    #[test]
    fn paper_example_shape() {
        // 8 users, fanout 2 → depth 3, 7 internal nodes (the Figure 2 example).
        let e = embeddings(8);
        let mut rng = StdRng::seed_from_u64(3);
        let tree = ClusterTree::build(&e, 2, &mut rng);
        assert_eq!(tree.depth(), 3);
        assert_eq!(tree.n_internal(), 7);
        assert_eq!(tree.n_leaves(), 8);
    }

    #[test]
    fn internal_indices_are_dense() {
        let e = embeddings(30);
        let mut rng = StdRng::seed_from_u64(4);
        let tree = ClusterTree::build(&e, 3, &mut rng);
        let mut seen = vec![false; tree.n_internal()];
        for id in tree.internal_nodes() {
            let idx = tree.internal_index(id);
            assert!(!seen[idx]);
            seen[idx] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn build_with_depth_hits_requested_depth() {
        let e = embeddings(100);
        for d in 2..=4 {
            let mut rng = StdRng::seed_from_u64(5);
            let tree = ClusterTree::build_with_depth(&e, d, &mut rng);
            assert!(
                tree.depth() <= d && tree.depth() + 1 >= d,
                "requested {d}, got {} (fanout {})",
                tree.depth(),
                tree.fanout()
            );
        }
    }

    #[test]
    fn children_counts_respect_fanout() {
        let e = embeddings(40);
        let mut rng = StdRng::seed_from_u64(6);
        let tree = ClusterTree::build(&e, 3, &mut rng);
        for id in tree.internal_nodes() {
            let c = tree.children(id).len();
            assert!((1..=3).contains(&c), "node {id} has {c} children");
        }
    }

    #[test]
    fn similar_users_share_subtrees() {
        // Two tight blobs; with fanout 2 the first split must separate them.
        let mut e: Vec<Vec<f32>> = (0..8).map(|i| vec![0.0, i as f32 * 0.01]).collect();
        e.extend((0..8).map(|i| vec![50.0, i as f32 * 0.01]));
        let mut rng = StdRng::seed_from_u64(7);
        let tree = ClusterTree::build(&e, 2, &mut rng);
        let top = tree.children(tree.root());
        // Collect users under each top-level child.
        let mut groups: Vec<Vec<u32>> = Vec::new();
        for &child in top {
            let mut stack = vec![child];
            let mut users = Vec::new();
            while let Some(id) = stack.pop() {
                if tree.is_leaf(id) {
                    users.push(tree.leaf_user(id).0);
                } else {
                    stack.extend_from_slice(tree.children(id));
                }
            }
            users.sort_unstable();
            groups.push(users);
        }
        let blob_a: Vec<u32> = (0..8).collect();
        let blob_b: Vec<u32> = (8..16).collect();
        assert!(
            (groups[0] == blob_a && groups[1] == blob_b)
                || (groups[0] == blob_b && groups[1] == blob_a),
            "top split mixed the blobs: {groups:?}"
        );
    }

    #[test]
    #[should_panic(expected = "fanout must be at least 2")]
    fn rejects_unary_fanout() {
        let e = embeddings(4);
        let mut rng = StdRng::seed_from_u64(8);
        let _ = ClusterTree::build(&e, 1, &mut rng);
    }
}
