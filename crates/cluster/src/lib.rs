//! Balanced hierarchical clustering tree over source-domain users (§4.3.1)
//! and the per-target-item masking mechanism (§4.3.2).
//!
//! The attack's action space is "pick one of |U^B| source users". The paper
//! makes that tractable by organizing users into a *balanced* c-ary tree
//! built by top-down divisive clustering:
//!
//! - each **leaf** is one source user (identified by their MF embedding);
//! - each **non-leaf** hosts a policy network choosing among its c children;
//! - clusters at every level are forced to equal sizes (±1) so the tree
//!   depth is `⌈log_c n⌉` — "an unbalanced clustering tree in the worst case
//!   could result in a linked list of policy networks".
//!
//! The masking mechanism then prunes, per target item `v*`, every subtree
//! none of whose leaf users has `v*` in their profile, shrinking the
//! explorable action space to the useful region.

#![forbid(unsafe_code)]

pub mod balanced;
pub mod kmeans;
pub mod mask;
pub mod tree;

pub use balanced::balanced_kmeans;
pub use kmeans::{kmeans, KMeansResult};
pub use mask::TreeMask;
pub use tree::{ClusterTree, NodeId, NodeKind};
