//! The masking mechanism (§4.3.2).
//!
//! For each target item `v*`, subtrees containing no user whose profile
//! includes `v*` are masked: the RL agent can never walk into them. This
//! shrinks the effective action space to the users that can actually carry
//! the target item into the target domain.

use crate::tree::{ClusterTree, NodeId};
use ca_recsys::UserId;

/// Per-node feasibility mask for one target item.
#[derive(Clone, Debug)]
pub struct TreeMask {
    allowed: Vec<bool>,
    n_allowed_leaves: usize,
}

impl TreeMask {
    /// Builds the mask from a per-user predicate (`true` = this user's
    /// profile contains the target item). An internal node is allowed iff
    /// any of its descendant leaves is allowed.
    pub fn for_predicate(tree: &ClusterTree, pred: impl Fn(UserId) -> bool) -> Self {
        let mut allowed = vec![false; tree.n_nodes()];
        let mut n_allowed_leaves = 0;
        // Nodes are created parent-before-child, so a reverse scan sees all
        // children before their parent.
        for id in (0..tree.n_nodes()).rev() {
            if tree.is_leaf(id) {
                let ok = pred(tree.leaf_user(id));
                allowed[id] = ok;
                n_allowed_leaves += usize::from(ok);
            } else {
                allowed[id] = tree.children(id).iter().any(|&c| allowed[c]);
            }
        }
        Self { allowed, n_allowed_leaves }
    }

    /// A mask that allows everything (used by the CopyAttack−Masking
    /// ablation, where the agent may select any source user).
    pub fn allow_all(tree: &ClusterTree) -> Self {
        Self { allowed: vec![true; tree.n_nodes()], n_allowed_leaves: tree.n_leaves() }
    }

    /// Whether a node may be entered.
    pub fn allowed(&self, node: NodeId) -> bool {
        self.allowed[node]
    }

    /// Feasibility of each child of an internal node, in child order —
    /// exactly the mask handed to the node's masked softmax.
    pub fn child_mask(&self, tree: &ClusterTree, node: NodeId) -> Vec<bool> {
        tree.children(node).iter().map(|&c| self.allowed[c]).collect()
    }

    /// Number of reachable (allowed) leaves.
    pub fn n_allowed_leaves(&self) -> usize {
        self.n_allowed_leaves
    }

    /// Whether any leaf at all is reachable (false ⇒ the target item has no
    /// carrier in the source domain; CopyAttack requires `v* ∈ V^A ∩ V^B`).
    pub fn any_allowed(&self) -> bool {
        self.n_allowed_leaves > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tree(n: usize, fanout: usize) -> ClusterTree {
        let mut rng = StdRng::seed_from_u64(3);
        let e: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..4).map(|_| ca_tensor::gaussian(&mut rng, 0.0, 1.0)).collect())
            .collect();
        ClusterTree::build(&e, fanout, &mut rng)
    }

    #[test]
    fn leaf_masks_follow_predicate() {
        let t = tree(20, 3);
        let mask = TreeMask::for_predicate(&t, |u| u.0.is_multiple_of(2));
        for id in 0..t.n_nodes() {
            if t.is_leaf(id) {
                assert_eq!(mask.allowed(id), t.leaf_user(id).0.is_multiple_of(2));
            }
        }
        assert_eq!(mask.n_allowed_leaves(), 10);
    }

    #[test]
    fn internal_allowed_iff_some_descendant_allowed() {
        let t = tree(30, 3);
        let mask = TreeMask::for_predicate(&t, |u| u.0 == 7);
        // Exactly the ancestors of user 7's leaf are allowed.
        let mut expect = vec![false; t.n_nodes()];
        let leaf = t.leaf_of_user(UserId(7));
        expect[leaf] = true;
        // Walk up via repeated scans (no parent pointer exposed).
        loop {
            let mut changed = false;
            for id in t.internal_nodes() {
                if !expect[id] && t.children(id).iter().any(|&c| expect[c]) {
                    expect[id] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        for (id, &want) in expect.iter().enumerate() {
            assert_eq!(mask.allowed(id), want, "node {id}");
        }
    }

    #[test]
    fn masked_walk_reaches_only_allowed_users() {
        let t = tree(40, 4);
        let good = |u: UserId| u.0.is_multiple_of(5);
        let mask = TreeMask::for_predicate(&t, good);
        // Exhaustively follow every unmasked path.
        let mut stack = vec![t.root()];
        while let Some(id) = stack.pop() {
            if t.is_leaf(id) {
                assert!(good(t.leaf_user(id)), "reached masked user {}", t.leaf_user(id));
                continue;
            }
            for (&child, ok) in t.children(id).iter().zip(mask.child_mask(&t, id)) {
                if ok {
                    stack.push(child);
                }
            }
        }
    }

    #[test]
    fn all_allowed_users_remain_reachable() {
        let t = tree(40, 4);
        let good = |u: UserId| u.0.is_multiple_of(7);
        let mask = TreeMask::for_predicate(&t, good);
        let mut reached = Vec::new();
        let mut stack = vec![t.root()];
        while let Some(id) = stack.pop() {
            if t.is_leaf(id) {
                reached.push(t.leaf_user(id).0);
                continue;
            }
            for (&child, ok) in t.children(id).iter().zip(mask.child_mask(&t, id)) {
                if ok {
                    stack.push(child);
                }
            }
        }
        reached.sort_unstable();
        let expected: Vec<u32> = (0..40u32).filter(|x| x.is_multiple_of(7)).collect();
        assert_eq!(reached, expected);
    }

    #[test]
    fn empty_predicate_blocks_the_root() {
        let t = tree(12, 3);
        let mask = TreeMask::for_predicate(&t, |_| false);
        assert!(!mask.any_allowed());
        assert!(!mask.allowed(t.root()));
    }

    #[test]
    fn allow_all_opens_every_leaf() {
        let t = tree(12, 3);
        let mask = TreeMask::allow_all(&t);
        assert_eq!(mask.n_allowed_leaves(), 12);
        assert!(mask.allowed(t.root()));
    }
}
