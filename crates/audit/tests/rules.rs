//! Fixture tests for the rule engine: every rule must fire on its
//! known-bad fixture at the exact marked line, stay silent on the decoys,
//! and be silenced by (only) a *reasoned* suppression pragma.
//!
//! Fixtures live in `tests/fixtures/` and are never compiled; the
//! workspace audit skips them via the allowlist, so they keep their
//! violations on purpose.

use ca_audit::{analyze_source, AuditConfig, Finding, Rule};

/// 1-based line of the first fixture line containing `needle`.
fn line_of(src: &str, needle: &str) -> u32 {
    src.lines()
        .position(|l| l.contains(needle))
        .unwrap_or_else(|| panic!("marker {needle:?} not found")) as u32
        + 1
}

fn strict(rel_path: &str, src: &str) -> Vec<Finding> {
    analyze_source(rel_path, src, &AuditConfig::strict())
}

/// (rule id, line) pairs, sorted, for compact exact-match assertions.
fn fired(findings: &[Finding]) -> Vec<(&'static str, u32)> {
    let mut v: Vec<_> = findings.iter().map(|f| (f.rule.id(), f.line)).collect();
    v.sort();
    v
}

/// Copy of `src` with a reasoned `allow(rule)` pragma inserted directly
/// above every line containing `marker` (line-above suppression form).
fn pragma_above(src: &str, marker: &str, rule: &str) -> String {
    let mut out = String::new();
    for l in src.lines() {
        if l.contains(marker) {
            out.push_str(&format!("// ca-audit: allow({rule}) — fixture suppression check\n"));
        }
        out.push_str(l);
        out.push('\n');
    }
    out
}

#[test]
fn hash_collections_fires_at_the_marked_line_only() {
    let src = include_str!("fixtures/hash_collections.rs");
    let f = strict("crates/x/src/lib.rs", src);
    // The lib-root path also lacks #![forbid(unsafe_code)] — expected.
    assert_eq!(
        fired(&f),
        vec![("hash-collections", line_of(src, "MARK: fires")), ("unsafe-audit", 1)]
    );
}

#[test]
fn wall_clock_fires_on_both_clocks_never_in_strings_or_comments() {
    let src = include_str!("fixtures/wall_clock.rs");
    let f = strict("crates/x/src/telemetry.rs", src);
    assert_eq!(
        fired(&f),
        vec![
            ("wall-clock", line_of(src, "MARK: instant fires")),
            ("wall-clock", line_of(src, "MARK: system-time fires")),
        ]
    );
}

#[test]
fn ad_hoc_rng_fires_on_ambient_sources_not_seeded_ones() {
    let src = include_str!("fixtures/ad_hoc_rng.rs");
    let f = strict("crates/x/src/sampling.rs", src);
    assert_eq!(
        fired(&f),
        vec![
            ("ad-hoc-rng", line_of(src, "MARK: thread_rng fires")),
            ("ad-hoc-rng", line_of(src, "MARK: from_entropy fires")),
        ]
    );
}

#[test]
fn raw_thread_fires_on_std_paths_not_scope_handle_methods() {
    let src = include_str!("fixtures/raw_thread.rs");
    let f = strict("crates/x/src/workers.rs", src);
    assert_eq!(
        fired(&f),
        vec![
            ("raw-thread", line_of(src, "MARK: scope fires")),
            ("raw-thread", line_of(src, "MARK: spawn fires")),
        ]
    );
}

#[test]
fn raw_top_k_fires_only_inside_copyattack_core() {
    let src = include_str!("fixtures/raw_top_k.rs");
    let f = strict("crates/copyattack-core/src/campaign.rs", src);
    assert_eq!(
        fired(&f),
        vec![
            ("raw-top-k", line_of(src, "MARK: top_k fires")),
            ("raw-top-k", line_of(src, "MARK: top_k_batch fires")),
        ]
    );
    // The same source outside the attack crate is not query-metered code.
    // (A non-data-plane path, so the fixture's Vec<Vec<…>> return stays
    // out of nested-vec's scope too.)
    assert!(strict("crates/train/src/driver.rs", src).is_empty());
}

#[test]
fn env_injection_fires_in_attack_code_but_not_in_the_env_itself() {
    let src = include_str!("fixtures/env_injection.rs");
    let expected = vec![
        ("env-injection", line_of(src, "MARK: inject_user fires")),
        ("env-injection", line_of(src, "MARK: try_inject_user fires")),
        ("env-injection", line_of(src, "MARK: append_profile fires")),
    ];
    let sorted = |mut v: Vec<(&'static str, u32)>| {
        v.sort();
        v
    };
    // Attack code anywhere in copyattack-core is in scope.
    assert_eq!(fired(&strict("crates/copyattack-core/src/baselines.rs", src)), sorted(expected));
    // env.rs *is* the injection surface: the same calls are its
    // implementation, not a bypass.
    assert!(strict("crates/copyattack-core/src/env.rs", src).is_empty());
    // Outside the attack crate, platform-side code injects freely.
    assert!(strict("crates/serve/src/shard.rs", src).is_empty());
    assert!(strict("src/pipeline.rs", src).is_empty());
}

#[test]
fn service_sleep_fires_only_in_service_path_crates() {
    let src = include_str!("fixtures/service_sleep.rs");
    let expected = vec![
        ("service-sleep", line_of(src, "MARK: qualified sleep fires")),
        ("service-sleep", line_of(src, "MARK: imported sleep fires")),
    ];
    // Both service-path crates are in scope: the live platform and the
    // fault/retry layer it is built on.
    assert_eq!(fired(&strict("crates/serve/src/shard.rs", src)), expected);
    assert_eq!(fired(&strict("crates/recsys/src/faults.rs", src)), expected);
    // The same source elsewhere is not bound by the logical-clock contract.
    assert!(strict("crates/train/src/driver.rs", src).is_empty());
    assert!(strict("src/pipeline.rs", src).is_empty());
}

#[test]
fn nested_vec_fires_only_in_data_plane_crates() {
    let src = include_str!("fixtures/nested_vec.rs");
    let expected = vec![
        ("nested-vec", line_of(src, "MARK: field fires")),
        ("nested-vec", line_of(src, "MARK: return type fires")),
    ];
    // Both compact-data-plane crates are in scope.
    assert_eq!(fired(&strict("crates/recsys/src/dataset.rs", src)), expected);
    assert_eq!(fired(&strict("crates/datagen/src/latent.rs", src)), expected);
    // Elsewhere the nested shape carries no dataset-scale state contract.
    assert!(strict("crates/mf/src/recommender.rs", src).is_empty());
    assert!(strict("src/pipeline.rs", src).is_empty());
}

#[test]
fn exact_scan_fires_everywhere_except_the_retrieval_path() {
    let src = include_str!("fixtures/exact_scan.rs");
    let expected = vec![
        ("exact-scan", line_of(src, "MARK: method call fires")),
        ("exact-scan", line_of(src, "MARK: chained call fires")),
    ];
    // Full-catalog scans are flagged wherever they appear off-path…
    assert_eq!(fired(&strict("crates/mf/src/recommender.rs", src)), expected);
    assert_eq!(fired(&strict("src/pipeline.rs", src)), expected);
    assert_eq!(fired(&strict("tests/ann_parity.rs", src)), expected);
    // …but the engine module and the ANN crate *are* the retrieval path.
    // (engine.rs is also data-plane scoped, so filter to this rule only.)
    let silent = |path| strict(path, src).iter().all(|f| f.rule != Rule::ExactScan);
    assert!(silent("crates/recsys/src/engine.rs"));
    assert!(silent("crates/ann/src/ivf.rs"));
    assert!(silent("crates/ann/src/recommender.rs"));
}

#[test]
fn unsafe_audit_fires_on_lib_roots_only() {
    let src = include_str!("fixtures/unsafe_audit.rs");
    assert_eq!(fired(&strict("crates/x/src/lib.rs", src)), vec![("unsafe-audit", 1)]);
    assert_eq!(fired(&strict("src/lib.rs", src)), vec![("unsafe-audit", 1)]);
    // Non-root modules and binaries are out of the rule's scope.
    assert!(strict("crates/x/src/util.rs", src).is_empty());
    assert!(strict("crates/x/src/main.rs", src).is_empty());
    // A file-scope pragma (anywhere in the file) suppresses it.
    let pragmad =
        format!("{src}\n// ca-audit: allow(unsafe-audit) — FFI shim needs raw pointers\n");
    assert!(strict("crates/x/src/lib.rs", &pragmad).is_empty());
}

#[test]
fn unordered_reduce_fires_on_par_map_chains_not_map_reduce() {
    let src = include_str!("fixtures/unordered_reduce.rs");
    let f = strict("crates/x/src/stats.rs", src);
    assert_eq!(fired(&f), vec![("unordered-reduce", line_of(src, "MARK: sum fires"))]);
}

#[test]
fn reasoned_pragmas_suppress_on_their_line_and_the_line_below() {
    let src = include_str!("fixtures/suppressed.rs");
    assert!(
        strict("crates/x/src/telemetry.rs", src).is_empty(),
        "reasoned pragmas must fully silence the fixture"
    );
}

#[test]
fn reasonless_pragma_is_a_finding_and_suppresses_nothing() {
    let src = include_str!("fixtures/pragma_missing_reason.rs");
    let f = strict("crates/x/src/telemetry.rs", src);
    assert_eq!(
        fired(&f),
        vec![
            ("pragma-missing-reason", line_of(src, "ca-audit: allow(wall-clock)")),
            ("wall-clock", line_of(src, "MARK: still fires")),
        ]
    );
}

#[test]
fn unknown_rule_in_pragma_is_reported() {
    let src = include_str!("fixtures/pragma_unknown_rule.rs");
    let f = strict("crates/x/src/anything.rs", src);
    assert_eq!(fired(&f), vec![("pragma-unknown-rule", line_of(src, "MARK: typo'd"))]);
}

#[test]
fn every_code_rule_is_silenced_by_a_reasoned_pragma_above_the_line() {
    // (fixture, rule id, markers on its violating lines, analysis path).
    // Non-root module paths keep unsafe-audit out of the picture; raw-top-k
    // needs a copyattack-core path to fire at all.
    let cases: &[(&str, &str, &[&str], &str)] = &[
        (
            include_str!("fixtures/hash_collections.rs"),
            "hash-collections",
            &["MARK: fires"],
            "crates/x/src/util.rs",
        ),
        (
            include_str!("fixtures/wall_clock.rs"),
            "wall-clock",
            &["MARK: instant fires", "MARK: system-time fires"],
            "crates/x/src/telemetry.rs",
        ),
        (
            include_str!("fixtures/ad_hoc_rng.rs"),
            "ad-hoc-rng",
            &["MARK: thread_rng fires", "MARK: from_entropy fires"],
            "crates/x/src/sampling.rs",
        ),
        (
            include_str!("fixtures/raw_thread.rs"),
            "raw-thread",
            &["MARK: scope fires", "MARK: spawn fires"],
            "crates/x/src/workers.rs",
        ),
        (
            include_str!("fixtures/raw_top_k.rs"),
            "raw-top-k",
            &["MARK: top_k fires", "MARK: top_k_batch fires"],
            "crates/copyattack-core/src/campaign.rs",
        ),
        (
            include_str!("fixtures/env_injection.rs"),
            "env-injection",
            &[
                "MARK: inject_user fires",
                "MARK: try_inject_user fires",
                "MARK: append_profile fires",
            ],
            "crates/copyattack-core/src/baselines.rs",
        ),
        (
            include_str!("fixtures/unordered_reduce.rs"),
            "unordered-reduce",
            &["MARK: sum fires"],
            "crates/x/src/stats.rs",
        ),
        (
            include_str!("fixtures/service_sleep.rs"),
            "service-sleep",
            &["MARK: qualified sleep fires", "MARK: imported sleep fires"],
            "crates/serve/src/shard.rs",
        ),
        (
            include_str!("fixtures/nested_vec.rs"),
            "nested-vec",
            &["MARK: field fires", "MARK: return type fires"],
            "crates/datagen/src/organic.rs",
        ),
        (
            include_str!("fixtures/exact_scan.rs"),
            "exact-scan",
            &["MARK: method call fires", "MARK: chained call fires"],
            "crates/mf/src/recommender.rs",
        ),
    ];
    for (src, rule, markers, path) in cases {
        assert!(!strict(path, src).is_empty(), "{rule}: fixture must fire unsuppressed");
        let mut patched = src.to_string();
        for m in *markers {
            patched = pragma_above(&patched, m, rule);
        }
        assert!(
            strict(path, &patched).is_empty(),
            "{rule}: reasoned pragma above each violation must silence the fixture"
        );
    }
}

#[test]
fn every_rule_has_a_distinct_id_roundtripping_through_from_id() {
    for r in Rule::ALL {
        assert_eq!(Rule::from_id(r.id()), Some(r));
    }
    let mut ids: Vec<_> = Rule::ALL.iter().map(|r| r.id()).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), Rule::ALL.len(), "rule ids must be unique");
}

#[test]
fn allowlist_entries_beat_strict_findings() {
    let src = include_str!("fixtures/wall_clock.rs");
    let cfg = AuditConfig::workspace_default();
    assert!(
        analyze_source("crates/bench/src/bin/offline.rs", src, &cfg).is_empty(),
        "bench binaries are fully exempt by policy"
    );
    assert!(
        !analyze_source("crates/train/src/driver.rs", src, &cfg).is_empty(),
        "library crates get no such pass"
    );
}
